// Quickstart: train AMF on one sparse QoS slice and predict the missing
// entries of candidate services.
//
//   build/examples/quickstart
//
// Walks through the whole public API surface once: generate a dataset,
// sample an observed subset, fit AMF, score it against PMF, and keep the
// model updating online as new observations arrive.
#include <iostream>

#include "cf/pmf.h"
#include "core/amf_predictor.h"
#include "common/string_util.h"
#include "data/masking.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

int main() {
  using namespace amf;

  // 1) A small synthetic QoS dataset (stand-in for real measurements).
  data::SyntheticConfig dataset_config;
  dataset_config.users = 80;
  dataset_config.services = 400;
  dataset_config.slices = 4;
  dataset_config.seed = 7;
  const data::SyntheticQoSDataset dataset(dataset_config);
  std::cout << "dataset: " << dataset.num_users() << " users x "
            << dataset.num_services() << " services x "
            << dataset.num_slices() << " slices\n";

  // 2) Observe 20% of slice 0; the remaining 80% is what we must predict.
  const linalg::Matrix slice =
      dataset.DenseSlice(data::QoSAttribute::kResponseTime, 0);
  common::Rng mask_rng(123);
  const data::TrainTestSplit split = data::SplitSlice(slice, 0.2, mask_rng);
  std::cout << "observed " << split.train.nnz() << " entries, predicting "
            << split.test.size() << "\n";

  // 3) Fit AMF (paper Table-I response-time configuration).
  core::AmfPredictor amf(core::MakeResponseTimeConfig(/*seed=*/1));
  amf.Fit(split.train);
  const eval::Metrics amf_metrics =
      eval::EvaluatePredictor(amf, split.test);

  // 4) Compare with the offline PMF baseline.
  cf::Pmf pmf;
  pmf.Fit(split.train);
  const eval::Metrics pmf_metrics =
      eval::EvaluatePredictor(pmf, split.test);

  auto report = [](const std::string& name, const eval::Metrics& m) {
    std::cout << name << ":  MAE=" << common::FormatFixed(m.mae, 3)
              << "  MRE=" << common::FormatFixed(m.mre, 3)
              << "  NPRE=" << common::FormatFixed(m.npre, 3) << "\n";
  };
  report("AMF", amf_metrics);
  report("PMF", pmf_metrics);

  // 5) Predict one candidate service the user never invoked.
  const data::UserId user = 3;
  const data::ServiceId candidate = 42;
  std::cout << "predicted RT of candidate service " << candidate
            << " for user " << user << ": "
            << common::FormatFixed(amf.Predict(user, candidate), 3)
            << "s (truth " << common::FormatFixed(slice(user, candidate), 3)
            << "s)\n";

  // 6) Online: a new observation arrives, the model updates in O(d).
  amf.model().OnlineUpdate(user, candidate, slice(user, candidate));
  std::cout << "after one online update: "
            << common::FormatFixed(amf.Predict(user, candidate), 3)
            << "s\n";
  return 0;
}

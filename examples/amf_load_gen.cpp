// amf_load_gen: closed-loop/open-loop driver for a live amf_server.
//
//   amf_load_gen --port P [--host 127.0.0.1 --quick 0|1
//                 --out BENCH_serving.json --connections N
//                 --users N --services M]
//
// Runs a fixed phase plan against the server:
//
//   warmup        closed loop (connections threads, short)
//   load-low/mid/high   open loop at three offered-load levels —
//                 latency vs offered load with coordinated omission
//                 avoided by absolute-deadline sends
//   flash-crowd   open loop at a rate well above load-high for a short
//                 burst, the ISSUE's adaptation-under-drift scenario
//   mixed         closed loop with a REPORT_OBS fraction, exercising
//                 ingest + journal alongside reads
//
// and writes a BENCH_serving.json-shaped report: per-phase p50/p95/p99
// and achieved rps, plus the server-side coalescing ratio
// (serve.coalesce.requests / serve.coalesce.flushes deltas read over the
// METRICS opcode), protocol-error and slow-reader-drop deltas. --quick 1
// shrinks rates and durations for CI. Exit code 0 when every phase
// completed (errors are *reported*, not fatal — the CI assertions on the
// JSON decide pass/fail), 2 when the server cannot be reached.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/string_util.h"
#include "serve/client.h"
#include "serve/loadgen.h"

namespace {

using namespace amf;

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; i += 2) {
      std::string key = argv[i];
      AMF_CHECK_MSG(common::StartsWith(key, "--"),
                    "expected --flag value, got " << key);
      values_[key.substr(2)] = argv[i + 1];
    }
  }
  std::string Get(const std::string& key, const std::string& def) const {
    const auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }
  std::int64_t GetInt(const std::string& key, std::int64_t def) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return def;
    const auto v = common::ParseInt(it->second);
    AMF_CHECK_MSG(v, "--" << key << " expects an integer");
    return *v;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  serve::LoadGenConfig config;
  config.host = args.Get("host", "127.0.0.1");
  config.port = static_cast<std::uint16_t>(args.GetInt("port", 7421));
  const bool quick = args.GetInt("quick", 0) != 0;
  const auto connections =
      static_cast<std::size_t>(args.GetInt("connections", quick ? 4 : 8));
  const auto num_users =
      static_cast<std::uint32_t>(args.GetInt("users", 32));
  const auto num_services =
      static_cast<std::uint32_t>(args.GetInt("services", 128));
  const std::string out_path = args.Get("out", "BENCH_serving.json");

  serve::Client probe;
  if (!probe.ConnectWithRetry(config.host, config.port, 10.0) ||
      !probe.Ping()) {
    std::cerr << "amf_load_gen: no server at " << config.host << ":"
              << config.port << "\n";
    return 2;
  }
  const std::string before = probe.Metrics().value_or("");
  const std::vector<serve::LoadPhase> plan =
      serve::StandardPhasePlan(quick, connections, num_users, num_services);

  std::vector<serve::PhaseResult> results;
  for (const serve::LoadPhase& phase : plan) {
    std::cerr << "amf_load_gen: phase " << phase.name << " ("
              << (phase.mode == serve::LoadMode::kOpen ? "open" : "closed")
              << ", " << phase.connections << " conns";
    if (phase.mode == serve::LoadMode::kOpen) {
      std::cerr << ", " << phase.target_rps << " rps";
    }
    std::cerr << ")\n";
    const auto result = serve::RunLoadPhase(config, phase);
    if (!result) {
      std::cerr << "amf_load_gen: phase " << phase.name
                << " got no responses\n";
      return 2;
    }
    std::cerr << "amf_load_gen:   " << result->responses << " responses, "
              << result->achieved_rps << " rps, p95 "
              << result->p95_s * 1e3 << " ms\n";
    results.push_back(*result);
  }

  const std::string after = probe.Metrics().value_or("");
  const serve::ServingDeltas deltas =
      serve::ComputeServingDeltas(before, after);
  const std::string json =
      serve::RenderServingReport(quick, connections, results, deltas);

  std::ofstream os(out_path, std::ios::trunc);
  AMF_CHECK_MSG(os.good(), "cannot open --out file " << out_path);
  os << json;
  std::cout << json;
  return 0;
}

// amf_cli: command-line front end to the library.
//
//   amf_cli generate --out data.triplets [--users N --services M
//           --slices T --seed S --attr rt|tp]
//       Writes a synthetic QoS dataset as "user service slice value"
//       triplet lines (same layout WS-DREAM dumps use).
//
//   amf_cli train --data data.triplets --model model.amf
//           [--users N --services M --slices T --slice K --density D
//            --attr rt|tp --seed S]
//       Trains AMF on the observed entries of one slice (optionally
//       sub-sampled to a density) and saves the model.
//
//   amf_cli predict --model model.amf --user U --service S
//       Prints the predicted QoS value for one pair.
//
//   amf_cli evaluate --data data.triplets --model model.amf
//            [--users N --services M --slices T --slice K --attr rt|tp]
//       Scores the model on all entries of a slice (MAE/MRE/NPRE).
//
//   amf_cli summarize --data data.triplets
//            [--users N --services M --slices T --attr rt|tp]
//       Prints the Fig.-6-style statistics table for a triplet file.
//
//   amf_cli recommend --model model.amf --user U [--top 10]
//       Ranks all services for a user by predicted QoS (ascending) and
//       prints the top-k candidates with uncertainty.
//
//   amf_cli metrics [--seconds SEC --users N --services M --seed S
//           --ring CAP --shards K --watch 0|1 --interval-ms MS
//           --train-interval-ms MS --format json|prom --out FILE
//           --read-precision fp64|fp32|bf16]
//       Runs a synthetic concurrent workload (producer uploads, trainer
//       ticks, predictions in flight) against a ConcurrentPredictionService
//       for SEC seconds, then dumps its metrics registry — counters,
//       gauges, and latency-histogram percentiles — as JSON (default) or
//       Prometheus text. --watch 1 additionally prints a live counter
//       line to stderr every --interval-ms milliseconds (default 1000)
//       while the workload runs, demonstrating that snapshots never wait
//       for training. Both the watch reporter and the trainer tick
//       thread (--train-interval-ms, default 20) pace themselves on
//       absolute deadlines, so neither drifts under load nor burns a
//       core polling.
//       --read-precision fp32|bf16 routes the prediction reads through
//       the compressed replica slabs (DESIGN.md section 13); the replica.*
//       series then report refresh and staleness activity.
//       --shards K (default 1) runs the same workload against a
//       user-sharded ShardedPredictionService (DESIGN.md section 15);
//       the dumped registry then aggregates counters across all shards.
//
//   amf_cli chaos [--users N --services M --slices T --seed S --shards K
//           --ticks K --tick-seconds DT --per-tick P
//           --drop p --corrupt p --duplicate p --spike p --churn p
//           --ckpt-dir DIR --ckpt-interval SEC --retention R
//           --crash-tick K2 --truncate 0|1
//           --wal-dir DIR --fsync os|interval|always
//           --wal-torn 0|1 --wal-bitflip 0|1 --wal-drop-middle 0|1]
//       End-to-end fault-tolerance drill: streams faulted observations
//       (drops retried with backoff; corrupt/duplicate/spiked samples go
//       through the ingestion guards) into a prediction service that
//       checkpoints periodically, kills and restores the service mid-run
//       (optionally hand-truncating the newest checkpoint to prove the
//       fallback), and reports pipeline/fault/degradation counters plus
//       the end-state MRE against ground truth. With --wal-dir the
//       service journals every accepted observation and the crash
//       recovers through Recover() (checkpoint + journal replay); the
//       --wal-* switches damage the journal at the crash point (torn
//       tail from a mid-append kill, a flipped payload byte, a deleted
//       middle segment) to prove recovery truncates / quarantines /
//       skips instead of dying. --shards K (K > 1) runs the drill
//       against the user-sharded facade instead: the whole shard set
//       (per-shard checkpoints, WAL subdirectories, binding manifest)
//       crashes at --crash-tick and must come back through the facade's
//       Recover(); requires --wal-dir, honours --wal-torn (tears shard
//       0's tail), scores the end state via plain PredictQoS.
//
//   amf_cli wal --dir DIR [--after LSN] [--dump K]
//       Inspects a journal directory without touching it: per-segment
//       base/first/last LSN, record and byte counts, quarantined bytes,
//       header validity; totals with the covered LSN range, CRC-verified
//       record count, skip/gap/quarantine accounting; optionally dumps
//       the last K records after --after.
//
//   amf_cli recover --ckpt-dir DIR --wal-dir DIR [--dry-run 1 --seed S]
//       Point-in-time recovery. --dry-run 1 is read-only: reports which
//       checkpoint would restore, its journal watermark (or the
//       full-replay fallback), and how many journal records would
//       replay. Without it the state is actually rebuilt (checkpoint +
//       replay through the validation pipeline), collapsed into a fresh
//       checkpoint, and fully-covered journal segments are removed.
//
// Exit code 0 on success, 1 on usage errors, 2 on runtime failure.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "adapt/concurrent_service.h"
#include "adapt/environment.h"
#include "adapt/fault_injector.h"
#include "adapt/prediction_service.h"
#include "adapt/sharded_service.h"
#include "common/check.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/amf_predictor.h"
#include "core/checkpoint.h"
#include "core/model_io.h"
#include "data/csv_io.h"
#include "data/masking.h"
#include "data/summary.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "eval/ranking.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "stream/wal.h"

namespace {

using namespace amf;

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i + 1 < argc; i += 2) {
      std::string key = argv[i];
      AMF_CHECK_MSG(common::StartsWith(key, "--"),
                    "expected --flag value, got " << key);
      values_[key.substr(2)] = argv[i + 1];
    }
  }

  std::string Get(const std::string& key, const std::string& def) const {
    const auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }

  std::int64_t GetInt(const std::string& key, std::int64_t def) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return def;
    const auto v = common::ParseInt(it->second);
    AMF_CHECK_MSG(v, "--" << key << " expects an integer");
    return *v;
  }

  double GetDouble(const std::string& key, double def) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return def;
    const auto v = common::ParseDouble(it->second);
    AMF_CHECK_MSG(v, "--" << key << " expects a number");
    return *v;
  }

  std::string Require(const std::string& key) const {
    const auto it = values_.find(key);
    AMF_CHECK_MSG(it != values_.end(), "missing required --" << key);
    return it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

data::QoSAttribute ParseAttr(const std::string& s) {
  const std::string lower = common::ToLower(s);
  if (lower == "rt") return data::QoSAttribute::kResponseTime;
  if (lower == "tp") return data::QoSAttribute::kThroughput;
  AMF_CHECK_MSG(false, "--attr must be rt or tp, got " << s);
  return data::QoSAttribute::kResponseTime;
}

data::InMemoryDataset LoadDataset(const Args& args,
                                  data::QoSAttribute attr) {
  data::InMemoryDataset dataset(
      static_cast<std::size_t>(args.GetInt("users", 142)),
      static_cast<std::size_t>(args.GetInt("services", 4500)),
      static_cast<std::size_t>(args.GetInt("slices", 64)));
  data::ReadTripletsFile(args.Require("data"), dataset, attr);
  return dataset;
}

int CmdGenerate(const Args& args) {
  data::SyntheticConfig cfg;
  cfg.users = static_cast<std::size_t>(args.GetInt("users", 142));
  cfg.services = static_cast<std::size_t>(args.GetInt("services", 4500));
  cfg.slices = static_cast<std::size_t>(args.GetInt("slices", 64));
  cfg.seed = static_cast<std::uint64_t>(args.GetInt("seed", 2014));
  const data::SyntheticQoSDataset dataset(cfg);
  const std::string out = args.Require("out");
  data::WriteTripletsFile(out, dataset, ParseAttr(args.Get("attr", "rt")));
  std::cout << "wrote " << cfg.users << "x" << cfg.services << "x"
            << cfg.slices << " triplets to " << out << "\n";
  return 0;
}

int CmdTrain(const Args& args) {
  const data::QoSAttribute attr = ParseAttr(args.Get("attr", "rt"));
  const data::InMemoryDataset dataset = LoadDataset(args, attr);
  const auto slice_id =
      static_cast<data::SliceId>(args.GetInt("slice", 0));
  const linalg::Matrix slice = dataset.DenseSlice(attr, slice_id);

  const double density = args.GetDouble("density", 1.0);
  common::Rng rng(static_cast<std::uint64_t>(args.GetInt("seed", 1)));
  const data::SparseMatrix train =
      data::SampleDensity(slice, density, rng);
  AMF_CHECK_MSG(train.nnz() > 0, "no observed entries in slice");

  core::AmfConfig cfg =
      attr == data::QoSAttribute::kResponseTime
          ? core::MakeResponseTimeConfig(
                static_cast<std::uint64_t>(args.GetInt("seed", 1)))
          : core::MakeThroughputConfig(
                static_cast<std::uint64_t>(args.GetInt("seed", 1)));
  core::AmfPredictor amf(cfg);
  amf.Fit(train);
  core::SaveModelFile(args.Require("model"), amf.model());
  std::cout << "trained on " << train.nnz() << " observations (slice "
            << slice_id << ", density "
            << common::FormatFixed(100 * density, 0) << "%), "
            << amf.epochs_run() << " epochs; model saved to "
            << args.Require("model") << "\n";
  return 0;
}

int CmdPredict(const Args& args) {
  const core::AmfModel model = core::LoadModelFile(args.Require("model"));
  const auto u = static_cast<data::UserId>(args.GetInt("user", 0));
  const auto s = static_cast<data::ServiceId>(args.GetInt("service", 0));
  AMF_CHECK_MSG(model.HasUser(u) && model.HasService(s),
                "pair (" << u << "," << s << ") outside the trained model");
  std::cout << common::FormatFixed(model.PredictRaw(u, s), 6) << "\n";
  return 0;
}

int CmdEvaluate(const Args& args) {
  const data::QoSAttribute attr = ParseAttr(args.Get("attr", "rt"));
  const data::InMemoryDataset dataset = LoadDataset(args, attr);
  const core::AmfModel model = core::LoadModelFile(args.Require("model"));
  const auto slice_id =
      static_cast<data::SliceId>(args.GetInt("slice", 0));

  // Gather the scoreable entries, then predict them in one batched pass
  // (one gather-GEMV row segment per user instead of a Predict call per
  // entry).
  std::vector<data::QoSSample> samples;
  std::vector<double> truth;
  for (data::UserId u = 0; u < dataset.num_users(); ++u) {
    if (!model.HasUser(u)) continue;
    for (data::ServiceId s = 0; s < dataset.num_services(); ++s) {
      if (!model.HasService(s)) continue;
      if (!dataset.Has(attr, u, s, slice_id)) continue;
      samples.push_back(data::QoSSample{.slice = slice_id,
                                        .user = u,
                                        .service = s,
                                        .value =
                                            dataset.Value(attr, u, s, slice_id)});
      truth.push_back(samples.back().value);
    }
  }
  AMF_CHECK_MSG(!samples.empty(), "nothing to evaluate");
  const std::vector<double> pred = core::PredictSamplesRaw(model, samples);
  const eval::Metrics m = eval::ComputeMetrics(pred, truth);
  std::cout << "entries=" << m.count
            << " MAE=" << common::FormatFixed(m.mae, 4)
            << " MRE=" << common::FormatFixed(m.mre, 4)
            << " NPRE=" << common::FormatFixed(m.npre, 4)
            << " RMSE=" << common::FormatFixed(m.rmse, 4) << "\n";
  return 0;
}

int CmdSummarize(const Args& args) {
  // Load both attributes if present; missing entries are simply skipped.
  data::InMemoryDataset dataset(
      static_cast<std::size_t>(args.GetInt("users", 142)),
      static_cast<std::size_t>(args.GetInt("services", 4500)),
      static_cast<std::size_t>(args.GetInt("slices", 64)));
  data::ReadTripletsFile(args.Require("data"), dataset,
                         ParseAttr(args.Get("attr", "rt")));
  const data::DatasetSummary summary = data::Summarize(dataset);
  std::cout << data::SummaryTable(summary);
  return 0;
}

int CmdRecommend(const Args& args) {
  const core::AmfModel model = core::LoadModelFile(args.Require("model"));
  const auto u = static_cast<data::UserId>(args.GetInt("user", 0));
  AMF_CHECK_MSG(model.HasUser(u), "user " << u << " not in the model");
  const auto top =
      static_cast<std::size_t>(args.GetInt("top", 10));

  // One batched pass over the whole catalog, then a partial sort for the
  // requested prefix — no per-service Predict calls, no full sort.
  std::vector<double> scores(model.num_services());
  model.PredictRowRaw(u, scores);
  const std::vector<std::size_t> best =
      eval::TopKByValue(scores, top, /*smaller_is_better=*/true);
  std::cout << "top " << best.size() << " candidate services for user " << u
            << " (ascending predicted QoS):\n";
  for (const std::size_t i : best) {
    const auto s = static_cast<data::ServiceId>(i);
    std::cout << "  service " << s << "  predicted "
              << common::FormatFixed(scores[i], 4) << "  uncertainty "
              << common::FormatFixed(model.PredictionUncertainty(u, s), 3)
              << "\n";
  }
  return 0;
}

/// Body of the metrics subcommand, shared between the single-instance
/// service and the user-sharded facade — both expose the same member
/// names, and the facade's registry aggregates across shards.
template <typename ServiceT>
int RunMetricsWorkload(const Args& args, ServiceT& service) {
  const double seconds = args.GetDouble("seconds", 1.0);
  const std::string format = common::ToLower(args.Get("format", "json"));
  AMF_CHECK_MSG(format == "json" || format == "prom",
                "--format must be json or prom, got " << format);
  const bool live = args.GetInt("watch", 0) != 0;
  const auto interval_ms = args.GetInt("interval-ms", 1000);
  AMF_CHECK_MSG(interval_ms > 0, "--interval-ms must be positive");
  const auto train_interval_ms = args.GetInt("train-interval-ms", 20);
  AMF_CHECK_MSG(train_interval_ms > 0, "--train-interval-ms must be positive");
  const auto users = static_cast<std::size_t>(args.GetInt("users", 32));
  const auto services = static_cast<std::size_t>(args.GetInt("services", 128));
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 2014));
  for (std::size_t u = 0; u < users; ++u) {
    service.RegisterUser("u" + std::to_string(u));
  }
  for (std::size_t s = 0; s < services; ++s) {
    service.RegisterService("s" + std::to_string(s));
  }
  const std::string precision_flag =
      common::ToLower(args.Get("read-precision", "fp64"));
  const auto precision = core::ParseReadPrecision(precision_flag);
  AMF_CHECK_MSG(precision.has_value(),
                "--read-precision must be fp64, fp32, or bf16, got "
                    << precision_flag);
  if (*precision != core::ReadPrecision::kFp64) {
    service.SetReadPrecision(*precision);
  }

  // Closed-loop synthetic workload: every instrumented hot path (ingest
  // ring, trainer, prediction reads) stays busy while the clock runs.
  std::atomic<bool> stop{false};
  common::Stopwatch clock;
  std::thread producer([&] {
    common::Rng rng(seed ^ 0xab);
    while (!stop.load(std::memory_order_relaxed)) {
      service.ReportObservation(data::QoSSample{
          .slice = 0,
          .user = static_cast<data::UserId>(rng.Index(users)),
          .service = static_cast<data::ServiceId>(rng.Index(services)),
          .value = rng.LogNormal(-1.0, 0.5),
          .timestamp = clock.ElapsedSeconds()});
    }
  });
  // Absolute-deadline pacing (next += interval, sleep_until) for both
  // paced threads: a tick that runs long shortens the following sleep
  // instead of pushing every later deadline back, and an idle loop costs
  // zero CPU between deadlines — unlike the old `Tick; sleep_for(2ms)`
  // shape, which both drifted by the tick's own cost and woke 500x/s
  // whether or not anything needed doing.
  std::thread trainer([&] {
    auto next = std::chrono::steady_clock::now();
    const auto interval = std::chrono::milliseconds(train_interval_ms);
    while (!stop.load(std::memory_order_relaxed)) {
      service.Tick(clock.ElapsedSeconds());
      next += interval;
      const auto now = std::chrono::steady_clock::now();
      if (next < now) next = now;  // overloaded: skip forward, don't burst
      std::this_thread::sleep_until(next);
    }
  });
  std::thread watcher;
  if (live) {
    watcher = std::thread([&] {
      auto next = std::chrono::steady_clock::now();
      const auto interval = std::chrono::milliseconds(interval_ms);
      while (!stop.load(std::memory_order_relaxed)) {
        next += interval;
        const auto now = std::chrono::steady_clock::now();
        if (next < now) next = now;
        std::this_thread::sleep_until(next);
        if (stop.load(std::memory_order_relaxed)) break;
        // Snapshots are wait-free: this runs while the trainer thread is
        // mid-tick and never queues behind it.
        const obs::MetricsSnapshot snap = service.metrics().Snapshot();
        std::cerr << "[metrics] t="
                  << common::FormatFixed(clock.ElapsedSeconds(), 2)
                  << " reported=" << snap.CounterValue("ingest.reported")
                  << " ring_dropped="
                  << snap.CounterValue("ingest.ring_dropped")
                  << " updates=" << snap.CounterValue("trainer.updates")
                  << " predictions=" << snap.CounterValue("predict.calls")
                  << "\n";
      }
    });
  }

  common::Rng rng(seed ^ 0xcd);
  std::vector<data::ServiceId> candidates(16);
  std::vector<double> values(candidates.size());
  while (clock.ElapsedSeconds() < seconds) {
    const auto u = static_cast<data::UserId>(rng.Index(users));
    service.PredictQoS(u, static_cast<data::ServiceId>(rng.Index(services)));
    for (data::ServiceId& c : candidates) {
      c = static_cast<data::ServiceId>(rng.Index(services));
    }
    service.PredictQoSMany(u, candidates, values);
  }
  stop.store(true, std::memory_order_relaxed);
  producer.join();
  trainer.join();
  if (watcher.joinable()) watcher.join();
  service.Tick(clock.ElapsedSeconds());  // final drain so totals settle

  const obs::MetricsSnapshot snap = service.metrics().Snapshot();
  const std::string text =
      format == "json" ? obs::ToJson(snap) : obs::ToPrometheus(snap);
  const std::string out = args.Get("out", "");
  if (!out.empty()) {
    std::ofstream os(out, std::ios::trunc);
    AMF_CHECK_MSG(os.good(), "cannot open --out file " << out);
    os << text << "\n";
  }
  std::cout << text << "\n";
  return 0;
}

int CmdMetrics(const Args& args) {
  const auto shards = static_cast<std::size_t>(args.GetInt("shards", 1));
  AMF_CHECK_MSG(shards >= 1, "--shards must be >= 1");
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 2014));
  const auto ring = static_cast<std::size_t>(args.GetInt("ring", 4096));
  adapt::PredictionServiceConfig cfg;
  cfg.model = core::MakeResponseTimeConfig(seed);
  if (shards == 1) {
    adapt::ConcurrentPredictionService service(cfg, ring);
    return RunMetricsWorkload(args, service);
  }
  adapt::ShardedServiceConfig scfg;
  scfg.num_shards = shards;
  scfg.service = cfg;
  scfg.ring_capacity = ring;
  adapt::ShardedPredictionService service(scfg);
  return RunMetricsWorkload(args, service);
}

/// Chaos drill against the user-sharded facade: the whole shard set
/// (per-shard checkpoints + WAL subdirectories + the binding manifest)
/// dies at --crash-tick and must come back through the facade's
/// Recover(). --wal-torn additionally tears shard 0's journal tail to
/// prove per-shard truncation still works behind the manifest gate.
/// End-state scoring goes through plain PredictQoS (the degradation
/// ladder is a serial-service feature).
int CmdChaosSharded(const Args& args, std::size_t shards) {
  data::SyntheticConfig synth;
  synth.users = static_cast<std::size_t>(args.GetInt("users", 24));
  synth.services = static_cast<std::size_t>(args.GetInt("services", 80));
  synth.slices = static_cast<std::size_t>(args.GetInt("slices", 8));
  synth.seed = static_cast<std::uint64_t>(args.GetInt("seed", 2014));
  const data::SyntheticQoSDataset dataset(synth);
  const adapt::Environment env(dataset);

  adapt::FaultInjectorConfig faults;
  faults.drop_prob = args.GetDouble("drop", 0.05);
  faults.corrupt_prob = args.GetDouble("corrupt", 0.10);
  faults.duplicate_prob = args.GetDouble("duplicate", 0.02);
  faults.spike_prob = args.GetDouble("spike", 0.02);
  faults.churn_prob = args.GetDouble("churn", 0.0);
  faults.seed = synth.seed ^ 0xc4a05;
  adapt::FaultInjector injector(env, faults);

  core::CheckpointManagerConfig ckpt;
  ckpt.directory = args.Get("ckpt-dir", "amf_chaos_ckpt");
  ckpt.interval_seconds = args.GetDouble("ckpt-interval", 120.0);
  ckpt.retention = static_cast<std::size_t>(args.GetInt("retention", 4));
  stream::JournalConfig wal;
  wal.directory = args.Get("wal-dir", "");
  AMF_CHECK_MSG(!wal.directory.empty(),
                "sharded chaos needs --wal-dir (Recover() is the only "
                "restore path for a shard set)");
  const auto policy = stream::ParseFsyncPolicy(args.Get("fsync", "interval"));
  AMF_CHECK_MSG(policy, "--fsync must be os, interval, or always");
  wal.fsync_policy = *policy;

  adapt::ShardedServiceConfig scfg;
  scfg.num_shards = shards;
  scfg.service.model = core::MakeResponseTimeConfig(synth.seed);
  const auto make_service = [&] {
    auto svc = std::make_unique<adapt::ShardedPredictionService>(scfg);
    for (std::size_t u = 0; u < synth.users; ++u) {
      svc->RegisterUser("u" + std::to_string(u));
    }
    for (std::size_t s = 0; s < synth.services; ++s) {
      svc->RegisterService("s" + std::to_string(s));
    }
    svc->EnableCheckpoints(ckpt);
    svc->EnableJournal(wal);
    return svc;
  };
  auto service = make_service();

  const auto ticks = static_cast<std::size_t>(args.GetInt("ticks", 40));
  const double tick_seconds = args.GetDouble("tick-seconds", 15.0);
  const auto per_tick = static_cast<std::size_t>(args.GetInt("per-tick", 150));
  const auto crash_tick = static_cast<std::size_t>(
      args.GetInt("crash-tick", static_cast<std::int64_t>(ticks / 2)));
  const common::BackoffConfig backoff{.max_attempts = 3,
                                      .initial_delay_seconds = 1e-4,
                                      .multiplier = 2.0,
                                      .max_delay_seconds = 1e-3};

  common::Rng rng(synth.seed ^ 0x5eed);
  std::uint64_t give_ups = 0;
  double now = 0.0;
  for (std::size_t tick = 0; tick < ticks; ++tick) {
    now = static_cast<double>(tick + 1) * tick_seconds;
    for (std::size_t i = 0; i < per_tick; ++i) {
      const auto u = static_cast<data::UserId>(rng.Index(synth.users));
      const auto s = static_cast<data::ServiceId>(rng.Index(synth.services));
      const std::optional<adapt::InvocationResult> result =
          common::RetryWithBackoff(
              [&]() { return injector.Invoke(u, s, now); }, backoff);
      if (!result) {
        ++give_ups;
        continue;
      }
      const data::QoSSample observed{.slice = env.SliceAt(now),
                                     .user = u,
                                     .service = s,
                                     .value = result->response_time,
                                     .timestamp = now};
      for (const data::QoSSample& delivered : injector.Deliver(observed)) {
        service->ReportObservation(delivered);
      }
    }
    service->Tick(now);

    if (tick + 1 == crash_tick) {
      service.reset();  // the whole shard set dies at once
      if (args.GetInt("wal-torn", 0) != 0) {
        namespace fs = std::filesystem;
        std::vector<std::string> segments;
        const std::string shard0 = wal.directory + "/shard-0";
        for (const auto& entry : fs::directory_iterator(shard0)) {
          if (entry.path().extension() == ".amfwal") {
            segments.push_back(entry.path().string());
          }
        }
        std::sort(segments.begin(), segments.end());
        if (!segments.empty() && fs::file_size(segments.back()) > 3) {
          fs::resize_file(segments.back(),
                          fs::file_size(segments.back()) - 3);
          std::cout << "[chaos] tore journal tail: " << segments.back()
                    << "\n";
        }
      }
      std::cout << "[chaos] tick " << tick + 1 << ": crashed (all " << shards
                << " shards)\n";
      service = make_service();
      const adapt::ShardedPredictionService::RecoveryReport rec =
          service->Recover();
      std::cout << "[chaos] recover: manifest="
                << (rec.manifest_ok ? "ok" : rec.manifest_error)
                << " shards_restored=" << rec.shards_restored << "/" << shards
                << " scanned=" << rec.scanned << " replayed=" << rec.replayed
                << " rejected{generation=" << rec.rejected_generation
                << " retired=" << rec.rejected_retired
                << "} quarantined_segments=" << rec.quarantined_segments
                << "\n";
      if (!rec.manifest_ok) return 2;
    }
  }

  std::vector<double> pred;
  std::vector<double> truth;
  for (std::size_t u = 0; u < synth.users; ++u) {
    for (std::size_t s = 0; s < synth.services; ++s) {
      const std::optional<double> p =
          service->PredictQoS(static_cast<data::UserId>(u),
                              static_cast<data::ServiceId>(s));
      if (!p.has_value() || !std::isfinite(*p)) continue;
      pred.push_back(*p);
      truth.push_back(env.TrueResponseTime(static_cast<data::UserId>(u),
                                           static_cast<data::ServiceId>(s),
                                           now));
    }
  }
  const eval::Metrics m = eval::ComputeMetrics(pred, truth);
  const adapt::FaultInjectionStats& fi = injector.stats();
  const obs::MetricsSnapshot snap = service->metrics().Snapshot();
  std::cout << "faults: invocations=" << fi.invocations << " drops="
            << fi.drops << " (gave up " << give_ups << ") spikes="
            << fi.spikes << " corruptions=" << fi.corruptions
            << " duplicates=" << fi.duplicates << " churns=" << fi.churns
            << "\n";
  std::cout << "shards: count=" << shards << " merges=" << service->merges()
            << " reported=" << snap.CounterValue("ingest.reported")
            << " updates=" << snap.CounterValue("trainer.updates") << "\n";
  std::cout << "end-state: entries=" << m.count
            << " MRE=" << common::FormatFixed(m.mre, 4)
            << " MAE=" << common::FormatFixed(m.mae, 4) << "\n";
  return 0;
}

int CmdChaos(const Args& args) {
  const auto shards = static_cast<std::size_t>(args.GetInt("shards", 1));
  AMF_CHECK_MSG(shards >= 1, "--shards must be >= 1");
  if (shards > 1) return CmdChaosSharded(args, shards);
  // --- Ground truth + fault layer ----------------------------------------
  data::SyntheticConfig synth;
  synth.users = static_cast<std::size_t>(args.GetInt("users", 24));
  synth.services = static_cast<std::size_t>(args.GetInt("services", 80));
  synth.slices = static_cast<std::size_t>(args.GetInt("slices", 8));
  synth.seed = static_cast<std::uint64_t>(args.GetInt("seed", 2014));
  const data::SyntheticQoSDataset dataset(synth);
  const adapt::Environment env(dataset);

  adapt::FaultInjectorConfig faults;
  faults.drop_prob = args.GetDouble("drop", 0.05);
  faults.corrupt_prob = args.GetDouble("corrupt", 0.10);
  faults.duplicate_prob = args.GetDouble("duplicate", 0.02);
  faults.spike_prob = args.GetDouble("spike", 0.02);
  faults.churn_prob = args.GetDouble("churn", 0.0);
  faults.seed = synth.seed ^ 0xc4a05;
  adapt::FaultInjector injector(env, faults);

  // --- Service under test, with checkpointing ----------------------------
  core::CheckpointManagerConfig ckpt;
  ckpt.directory = args.Get("ckpt-dir", "amf_chaos_ckpt");
  ckpt.interval_seconds = args.GetDouble("ckpt-interval", 120.0);
  ckpt.retention = static_cast<std::size_t>(args.GetInt("retention", 4));

  stream::JournalConfig wal;
  wal.directory = args.Get("wal-dir", "");
  const bool journaled = !wal.directory.empty();
  if (journaled) {
    const auto policy = stream::ParseFsyncPolicy(args.Get("fsync", "interval"));
    AMF_CHECK_MSG(policy, "--fsync must be os, interval, or always");
    wal.fsync_policy = *policy;
  }

  adapt::PredictionServiceConfig service_cfg;
  service_cfg.model = core::MakeResponseTimeConfig(synth.seed);
  const auto make_service = [&](bool register_names) {
    auto svc = std::make_unique<adapt::QoSPredictionService>(service_cfg);
    svc->EnableCheckpoints(ckpt);
    if (journaled) svc->EnableJournal(wal);
    if (register_names) {
      for (std::size_t u = 0; u < synth.users; ++u) {
        svc->RegisterUser("u" + std::to_string(u));
      }
      for (std::size_t s = 0; s < synth.services; ++s) {
        svc->RegisterService("s" + std::to_string(s));
      }
    }
    return svc;
  };
  std::unique_ptr<adapt::QoSPredictionService> service =
      make_service(/*register_names=*/true);

  // --- Faulted streaming loop --------------------------------------------
  const auto ticks = static_cast<std::size_t>(args.GetInt("ticks", 40));
  const double tick_seconds = args.GetDouble("tick-seconds", 15.0);
  const auto per_tick = static_cast<std::size_t>(args.GetInt("per-tick", 150));
  const auto crash_tick = static_cast<std::size_t>(
      args.GetInt("crash-tick", static_cast<std::int64_t>(ticks / 2)));
  const bool truncate_newest = args.GetInt("truncate", 1) != 0;
  const common::BackoffConfig backoff{.max_attempts = 3,
                                      .initial_delay_seconds = 1e-4,
                                      .multiplier = 2.0,
                                      .max_delay_seconds = 1e-3};

  common::Rng rng(synth.seed ^ 0x5eed);
  std::uint64_t give_ups = 0;
  double now = 0.0;
  for (std::size_t tick = 0; tick < ticks; ++tick) {
    now = static_cast<double>(tick + 1) * tick_seconds;
    for (std::size_t i = 0; i < per_tick; ++i) {
      const auto u = static_cast<data::UserId>(rng.Index(synth.users));
      const auto s = static_cast<data::ServiceId>(rng.Index(synth.services));
      // A dropped read is transient: retry with exponential backoff, then
      // give up on the observation (the stream is lossy by design).
      const std::optional<adapt::InvocationResult> result =
          common::RetryWithBackoff(
              [&]() { return injector.Invoke(u, s, now); }, backoff);
      if (!result) {
        ++give_ups;
        continue;
      }
      const data::QoSSample observed{.slice = env.SliceAt(now),
                                     .user = u,
                                     .service = s,
                                     .value = result->response_time,
                                     .timestamp = now};
      for (const data::QoSSample& delivered : injector.Deliver(observed)) {
        service->ReportObservation(delivered);
      }
    }
    service->Tick(now);

    if (tick + 1 == crash_tick) {
      // Simulated process death: the service (model, trainer, stats) is
      // destroyed; only the checkpoint + journal directories survive.
      // Without a journal, take a parting checkpoint (the old drill);
      // with one, everything since the last interval checkpoint must
      // come back through journal replay — that is the point.
      if (!journaled) {
        service->checkpoints()->Save(service->model(),
                                     service->trainer().store(), now,
                                     service->trainer().last_epoch_error());
      }
      service.reset();
      if (truncate_newest) {
        // Hand-truncate the newest checkpoint: recovery must detect it and
        // fall back to the previous valid one.
        core::CheckpointManager probe(ckpt);
        const std::vector<std::string> files = probe.List();
        if (!files.empty()) {
          const std::string& victim = files.back();
          const auto size = std::filesystem::file_size(victim);
          std::filesystem::resize_file(victim, size / 2);
          std::cout << "[chaos] tick " << tick + 1 << ": crashed; truncated "
                    << victim << " to " << size / 2 << " bytes\n";
        }
      } else {
        std::cout << "[chaos] tick " << tick + 1 << ": crashed\n";
      }
      if (journaled) {
        // Journal damage drills: a mid-append kill (torn tail), silent
        // media corruption (flipped payload byte), and a lost segment.
        namespace fs = std::filesystem;
        std::vector<std::string> segments;
        for (const auto& entry : fs::directory_iterator(wal.directory)) {
          if (entry.path().extension() == ".amfwal") {
            segments.push_back(entry.path().string());
          }
        }
        std::sort(segments.begin(), segments.end());
        if (args.GetInt("wal-torn", 0) != 0 && !segments.empty()) {
          const std::string& victim = segments.back();
          const auto size = fs::file_size(victim);
          if (size > 3) {
            fs::resize_file(victim, size - 3);
            std::cout << "[chaos] tore journal tail: " << victim << "\n";
          }
        }
        if (args.GetInt("wal-bitflip", 0) != 0 && !segments.empty()) {
          const std::string& victim = segments.front();
          if (fs::file_size(victim) > 40) {
            std::fstream f(victim, std::ios::in | std::ios::out |
                                       std::ios::binary);
            f.seekg(36);  // inside the first record's payload
            char byte = 0;
            f.read(&byte, 1);
            byte = static_cast<char>(byte ^ 0x40);
            f.seekp(36);
            f.write(&byte, 1);
            std::cout << "[chaos] flipped a payload byte in " << victim
                      << "\n";
          }
        }
        if (args.GetInt("wal-drop-middle", 0) != 0 && segments.size() >= 3) {
          const std::string& victim = segments[segments.size() / 2];
          fs::remove(victim);
          std::cout << "[chaos] removed middle segment " << victim << "\n";
        }
      }
      service = make_service(/*register_names=*/true);
      if (journaled) {
        const adapt::QoSPredictionService::RecoveryReport rec =
            service->Recover();
        std::cout << "[chaos] recover: checkpoint="
                  << (rec.checkpoint_restored ? "restored" : "none")
                  << " watermark=" << rec.watermark
                  << " scanned=" << rec.scanned
                  << " replayed=" << rec.replayed
                  << " rejected{generation=" << rec.rejected_generation
                  << " retired=" << rec.rejected_retired
                  << "} quarantined_segments=" << rec.quarantined_segments
                  << ", corrupt checkpoints skipped: "
                  << service->checkpoints()->corrupt_skipped() << "\n";
      } else {
        const bool restored = service->RestoreFromLatestCheckpoint();
        std::cout << "[chaos] restore "
                  << (restored ? "succeeded" : "FAILED (cold start)")
                  << ", corrupt checkpoints skipped: "
                  << service->checkpoints()->corrupt_skipped() << "\n";
      }
    }
  }

  // --- End-state scoring (resilient ladder vs ground truth) --------------
  std::vector<double> pred;
  std::vector<double> truth;
  std::uint64_t non_model = 0;
  for (std::size_t u = 0; u < synth.users; ++u) {
    for (std::size_t s = 0; s < synth.services; ++s) {
      const adapt::QoSPredictionService::ResilientPrediction p =
          service->PredictResilient(static_cast<data::UserId>(u),
                                    static_cast<data::ServiceId>(s));
      if (!std::isfinite(p.value)) continue;
      if (p.source != adapt::QoSPredictionService::PredictionSource::kModel) {
        ++non_model;
      }
      pred.push_back(p.value);
      truth.push_back(env.TrueResponseTime(static_cast<data::UserId>(u),
                                           static_cast<data::ServiceId>(s),
                                           now));
    }
  }
  const eval::Metrics m = eval::ComputeMetrics(pred, truth);

  const core::PipelineStats stats = service->pipeline_stats();
  const adapt::FaultInjectionStats& fi = injector.stats();
  const auto& deg = service->degradation_stats();
  std::cout << "faults: invocations=" << fi.invocations
            << " drops=" << fi.drops << " (gave up " << give_ups
            << ") spikes=" << fi.spikes << " corruptions=" << fi.corruptions
            << " duplicates=" << fi.duplicates << " churns=" << fi.churns
            << "\n";
  std::cout << "pipeline: " << stats.ToString() << "\n";
  std::cout << "degradation: model=" << deg.model
            << " service_mean=" << deg.service_mean
            << " last_known_good=" << deg.last_known_good
            << " unavailable=" << deg.unavailable << " (" << non_model
            << " predictions served off-ladder)\n";
  std::cout << "checkpoints: written=" << service->checkpoints()->written()
            << " on disk=" << service->checkpoints()->List().size() << "\n";
  if (journaled) {
    const stream::ObservationJournal& j = *service->journal();
    std::cout << "journal: fsync=" << stream::FsyncPolicyName(wal.fsync_policy)
              << " appends=" << j.appends() << " failures="
              << j.append_failures() << " bytes=" << j.bytes_appended()
              << " syncs=" << j.syncs() << " rotations=" << j.rotations()
              << " torn_tails_truncated=" << j.torn_tail_truncations()
              << " segments_gc=" << j.segments_removed()
              << " last_lsn=" << j.last_lsn() << "\n";
  }
  std::cout << "end-state: entries=" << m.count
            << " MRE=" << common::FormatFixed(m.mre, 4)
            << " MAE=" << common::FormatFixed(m.mae, 4) << "\n";
  return 0;
}

int CmdWal(const Args& args) {
  const std::string dir = args.Require("dir");
  const auto after = static_cast<std::uint64_t>(args.GetInt("after", 0));
  const auto dump = static_cast<std::size_t>(args.GetInt("dump", 0));

  std::deque<stream::JournalRecord> tail;
  const stream::JournalScanResult scan = stream::ScanJournal(
      dir, after, [&](const stream::JournalRecord& r) {
        if (dump == 0) return;
        tail.push_back(r);
        if (tail.size() > dump) tail.pop_front();
      });

  for (const stream::JournalSegmentInfo& seg : scan.segments) {
    std::cout << std::filesystem::path(seg.path).filename().string()
              << " base=" << seg.base_lsn;
    if (seg.records > 0) {
      std::cout << " lsn=[" << seg.first_lsn << ".." << seg.last_lsn << "]";
    } else {
      std::cout << " lsn=[]";
    }
    std::cout << " records=" << seg.records << " bytes=" << seg.bytes;
    if (!seg.header_ok) std::cout << " BAD-HEADER";
    if (seg.quarantined_bytes > 0) {
      std::cout << " quarantined_bytes=" << seg.quarantined_bytes;
    }
    std::cout << "\n";
  }
  std::cout << "total: segments=" << scan.segments.size()
            << " records=" << scan.records_scanned;
  if (scan.records_scanned > 0) {
    std::cout << " lsn=[" << scan.min_lsn << ".." << scan.max_lsn << "]";
  }
  if (after > 0) std::cout << " (after lsn " << after << ")";
  std::cout << " skipped=" << scan.records_skipped
            << " gaps=" << scan.lsn_gaps
            << " quarantined{segments=" << scan.quarantined_segments
            << " bytes=" << scan.quarantined_bytes << "}\n";
  std::cout << "crc: " << (scan.quarantined_segments == 0 ? "OK" : "FAILED")
            << " (every surviving record above is CRC-verified)\n";
  for (const stream::JournalRecord& r : tail) {
    std::cout << "  lsn=" << r.lsn << " user=" << r.sample.user
              << " service=" << r.sample.service
              << " slice=" << r.sample.slice << " value="
              << common::FormatFixed(r.sample.value, 6) << " timestamp="
              << common::FormatFixed(r.sample.timestamp, 3)
              << " gen{user=" << r.user_generation
              << " service=" << r.service_generation << "}\n";
  }
  return scan.quarantined_segments == 0 ? 0 : 2;
}

int CmdRecover(const Args& args) {
  core::CheckpointManagerConfig ckpt;
  ckpt.directory = args.Require("ckpt-dir");
  stream::JournalConfig wal;
  wal.directory = args.Require("wal-dir");

  if (args.GetInt("dry-run", 0) != 0) {
    // Read-only preview: probe checkpoints newest-first for the first
    // loadable one, then count what its watermark would leave to replay.
    core::CheckpointManager probe(ckpt);
    const std::vector<std::string> files = probe.List();
    std::optional<std::uint64_t> watermark;
    std::string used;
    for (auto it = files.rbegin(); it != files.rend(); ++it) {
      try {
        const core::CheckpointData data = core::ReadCheckpointFile(*it);
        watermark = data.wal_watermark;
        used = *it;
        break;
      } catch (const std::exception&) {
        continue;  // corrupt / torn: real recovery skips it too
      }
    }
    if (used.empty()) {
      std::cout << "checkpoint: none loadable (cold start)\n";
    } else {
      std::cout << "checkpoint: " << used << "\n";
    }
    if (watermark) {
      std::cout << "watermark: " << *watermark << "\n";
    } else {
      std::cout << "watermark: none (pre-v3 checkpoint or cold start): "
                   "the FULL journal would replay\n";
    }
    std::uint64_t would_replay = 0;
    const stream::JournalScanResult scan = stream::ScanJournal(
        wal.directory, watermark.value_or(0),
        [&](const stream::JournalRecord&) { ++would_replay; });
    std::cout << "journal: segments=" << scan.segments.size()
              << " would_replay=" << would_replay;
    if (would_replay > 0) {
      std::cout << " lsn=[" << scan.min_lsn << ".." << scan.max_lsn << "]";
    }
    std::cout << " quarantined_segments=" << scan.quarantined_segments
              << " gaps=" << scan.lsn_gaps << "\n";
    return 0;
  }

  adapt::PredictionServiceConfig cfg;
  cfg.model = core::MakeResponseTimeConfig(
      static_cast<std::uint64_t>(args.GetInt("seed", 2014)));
  adapt::QoSPredictionService service(cfg);
  service.EnableCheckpoints(ckpt);
  service.EnableJournal(wal);
  const adapt::QoSPredictionService::RecoveryReport rec = service.Recover();
  std::cout << "checkpoint=" << (rec.checkpoint_restored ? "restored" : "none")
            << " watermark=" << rec.watermark << " scanned=" << rec.scanned
            << " replayed=" << rec.replayed
            << " rejected{generation=" << rec.rejected_generation
            << " retired=" << rec.rejected_retired
            << "} quarantined_segments=" << rec.quarantined_segments << "\n";

  // Collapse the recovered state into a fresh checkpoint so the replay
  // work is not repeated on the next start, then drop covered segments.
  service.journal()->SyncNow();
  const std::uint64_t new_watermark = service.journal()->last_lsn();
  const core::CheckpointRegistries regs{service.users().ToImage(),
                                        service.services().ToImage()};
  const std::string path = service.checkpoints()->Save(
      service.model(), service.trainer().store(), service.trainer().now(),
      service.trainer().last_epoch_error(), &regs, &new_watermark);
  const std::uint64_t removed =
      service.journal()->RemoveSegmentsCoveredBy(new_watermark);
  std::cout << "checkpointed recovered state to " << path << " (watermark "
            << new_watermark << "), removed " << removed
            << " covered journal segments\n";
  return 0;
}

int Usage() {
  std::cerr << "usage: amf_cli "
               "<generate|train|predict|evaluate|summarize|recommend|"
               "metrics|chaos|wal|recover> "
               "[--flag value ...]\n(see the header of amf_cli.cpp)\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  try {
    Args args(argc, argv);
    if (cmd == "generate") return CmdGenerate(args);
    if (cmd == "train") return CmdTrain(args);
    if (cmd == "predict") return CmdPredict(args);
    if (cmd == "evaluate") return CmdEvaluate(args);
    if (cmd == "summarize") return CmdSummarize(args);
    if (cmd == "recommend") return CmdRecommend(args);
    if (cmd == "metrics") return CmdMetrics(args);
    if (cmd == "chaos") return CmdChaos(args);
    if (cmd == "wal") return CmdWal(args);
    if (cmd == "recover") return CmdRecover(args);
    return Usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}

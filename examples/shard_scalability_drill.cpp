// Shard scalability acceptance drill (DESIGN.md §15): proves the
// user-sharded multi-instance layer is an accuracy-neutral scale-out.
//
//   build/examples/shard_scalability_drill [--shards N] [--events E]
//                                          [--quick] [--out <path>]
//
// Phase 1 (accuracy band): one synthetic observation stream is fed both
// to a single-instance control and to an N-shard facade (users
// partitioned by the frozen hash router, service factors reconciled by
// the periodic hogwild-style merge). Held-out MRE of the sharded
// instance must land within a small band of the control — sharding may
// not silently cost accuracy.
//
// Phase 2 (survivor bit-identity): the trained facade checkpoints every
// shard plus the binding manifest, "crashes", and a fresh facade
// Recover()s the whole set. Every surviving (user, service) prediction
// must be BIT-identical to the pre-crash value.
//
// Phase 3 (throughput scaling): per-shard trainer threads feed + tick
// their own shard at 1, 2, and N shards while reconciliation merges run;
// events/sec per shard count is reported with a speedup_valid honesty
// flag (a container with fewer cores than shards cannot show linear
// scaling, and pretending otherwise would poison the JSON).
//
// Writes a BENCH_-style JSON summary; CI asserts the MRE band and the
// zero-bit-mismatch recovery on the 4-shard configuration.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adapt/concurrent_service.h"
#include "adapt/sharded_service.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/amf_predictor.h"
#include "core/checkpoint.h"
#include "eval/metrics.h"
#include "stream/wal.h"

namespace {

using namespace amf;

constexpr std::size_t kUsers = 48;
constexpr std::size_t kServices = 24;
constexpr std::uint64_t kSeed = 2014;
constexpr double kMreBand = 0.02;

/// Deterministic synthetic ground-truth response time in ~(0.1, 3.0)s —
/// a low-rank-ish structure both facades can actually learn.
double TruthRt(std::size_t u, std::size_t s) {
  const double a = 0.5 + 0.45 * std::sin(0.37 * static_cast<double>(u));
  const double b = 0.5 + 0.45 * std::cos(0.53 * static_cast<double>(s));
  return 0.1 + 2.0 * a * b;
}

adapt::PredictionServiceConfig ServiceConfig() {
  adapt::PredictionServiceConfig cfg;
  cfg.model = core::MakeResponseTimeConfig(kSeed);
  // No tick-time replay epochs: a Tick that checkpoints must not train
  // past its own snapshot, or phase 2's bit-identity would be vacuous.
  cfg.replay_epochs_per_tick = 0;
  return cfg;
}

template <typename ServiceT>
void RegisterPopulation(ServiceT& svc) {
  for (std::size_t u = 0; u < kUsers; ++u) {
    svc.RegisterUser("u" + std::to_string(u));
  }
  for (std::size_t s = 0; s < kServices; ++s) {
    svc.RegisterService("s" + std::to_string(s));
  }
}

std::vector<data::QoSSample> MakeStream(std::size_t events) {
  common::Rng rng(kSeed ^ 0xd5);
  std::vector<data::QoSSample> stream;
  stream.reserve(events);
  double now = 0.0;
  for (std::size_t i = 0; i < events; ++i) {
    now += 1e-3;
    const std::size_t u = rng.Index(kUsers);
    const std::size_t s = rng.Index(kServices);
    // Mild multiplicative noise around the ground truth.
    const double noise = rng.LogNormal(0.0, 0.08);
    stream.push_back(data::QoSSample{
        .slice = 0,
        .user = static_cast<data::UserId>(u),
        .service = static_cast<data::ServiceId>(s),
        .value = TruthRt(u, s) * noise,
        .timestamp = now});
  }
  return stream;
}

template <typename ServiceT>
void FeedStream(ServiceT& svc, const std::vector<data::QoSSample>& stream) {
  for (std::size_t i = 0; i < stream.size(); ++i) {
    AMF_CHECK_MSG(svc.ReportObservation(stream[i]), "ingest ring overflow");
    if ((i & 255) == 255) svc.Tick(stream[i].timestamp);
  }
  // Alternating converge/merge rounds: on the sharded facade each
  // TrainToConvergence ends in a service-factor merge, so the next round
  // re-fits user factors against the reconciled rows. On the control the
  // extra rounds are near no-ops (already converged) — fair comparison.
  for (int round = 0; round < 4; ++round) {
    svc.TrainToConvergence(stream.back().timestamp);
  }
}

/// Held-out MRE over every (user, service) pair against the noiseless
/// ground truth.
template <typename ServiceT>
double HeldOutMre(const ServiceT& svc) {
  std::vector<double> predicted;
  std::vector<double> actual;
  predicted.reserve(kUsers * kServices);
  actual.reserve(kUsers * kServices);
  for (std::size_t u = 0; u < kUsers; ++u) {
    for (std::size_t s = 0; s < kServices; ++s) {
      const auto p = svc.PredictQoS(static_cast<data::UserId>(u),
                                    static_cast<data::ServiceId>(s));
      AMF_CHECK_MSG(p.has_value(), "registered pair must predict");
      predicted.push_back(*p);
      actual.push_back(TruthRt(u, s));
    }
  }
  return eval::ComputeMetrics(predicted, actual).mre;
}

/// One scaling measurement: K per-shard trainer threads feed + tick
/// their own shard while the main thread runs reconciliation merges;
/// returns observation+prediction events per second.
double MeasureEventsPerSec(std::size_t shards, double seconds) {
  adapt::ShardedServiceConfig cfg;
  cfg.num_shards = shards;
  cfg.service = ServiceConfig();
  cfg.merge_every_ticks = 0;  // merges driven explicitly below
  cfg.ring_capacity = 1 << 14;
  adapt::ShardedPredictionService svc(cfg);
  RegisterPopulation(svc);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> events{0};
  std::vector<std::thread> workers;
  workers.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    workers.emplace_back([&svc, i, &stop, &events] {
      common::Rng rng(kSeed + 31 * i);
      std::vector<data::ServiceId> candidates(kServices);
      for (std::size_t s = 0; s < kServices; ++s) {
        candidates[s] = static_cast<data::ServiceId>(s);
      }
      std::vector<double> values(kServices);
      double now = 1.0;
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int k = 0; k < 64; ++k) {
          now += 1e-3;
          const std::size_t u = rng.Index(kUsers);
          const std::size_t s = rng.Index(kServices);
          if (svc.ReportObservation(data::QoSSample{
                  .slice = 0,
                  .user = static_cast<data::UserId>(u),
                  .service = static_cast<data::ServiceId>(s),
                  .value = TruthRt(u, s),
                  .timestamp = now})) {
            ++local;
          }
        }
        svc.shard(i).Tick(now);
        for (int k = 0; k < 8; ++k) {
          const auto u = static_cast<data::UserId>(rng.Index(kUsers));
          if (svc.PredictQoSMany(u, candidates, values)) {
            local += kServices;
          }
        }
        events.fetch_add(local, std::memory_order_relaxed);
        local = 0;
      }
    });
  }
  common::Stopwatch clock;
  while (clock.ElapsedSeconds() < seconds) {
    svc.MergeServiceFactors();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : workers) t.join();
  const double elapsed = clock.ElapsedSeconds();
  return static_cast<double>(events.load()) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t shards = 4;
  std::size_t events = 40000;
  double measure_seconds = 1.0;
  std::string out_path = "BENCH_shard_scalability.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      events = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      events = 12000;
      measure_seconds = 0.25;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--shards N] [--events E] [--quick] "
                   "[--out <path>]\n",
                   argv[0]);
      return 2;
    }
  }
  AMF_CHECK_MSG(shards >= 2, "--shards must be >= 2 (1 is the control)");

  const auto started = std::chrono::steady_clock::now();
  const std::vector<data::QoSSample> stream = MakeStream(events);

  // --- Phase 1: held-out accuracy within the band -------------------------
  adapt::ConcurrentPredictionService control(ServiceConfig(), 1 << 14);
  RegisterPopulation(control);
  FeedStream(control, stream);
  const double control_mre = HeldOutMre(control);

  adapt::ShardedServiceConfig scfg;
  scfg.num_shards = shards;
  scfg.service = ServiceConfig();
  scfg.merge_every_ticks = 1;
  scfg.ring_capacity = 1 << 14;
  auto sharded = std::make_unique<adapt::ShardedPredictionService>(scfg);
  RegisterPopulation(*sharded);
  FeedStream(*sharded, stream);
  const double sharded_mre = HeldOutMre(*sharded);
  const std::uint64_t merges = sharded->merges();

  const double mre_delta = std::fabs(sharded_mre - control_mre);
  std::fprintf(stderr,
               "accuracy: control_mre=%.4f sharded_mre=%.4f delta=%.4f "
               "(band %.2f, %llu merges)\n",
               control_mre, sharded_mre, mre_delta, kMreBand,
               static_cast<unsigned long long>(merges));
  AMF_CHECK_MSG(mre_delta <= kMreBand,
                "sharded MRE " << sharded_mre << " strayed more than "
                               << kMreBand << " from control "
                               << control_mre);

  // --- Phase 2: checkpoint / crash / Recover, bit-identical survivors -----
  const std::string root =
      (std::filesystem::temp_directory_path() / "shard_drill").string();
  std::filesystem::remove_all(root);
  core::CheckpointManagerConfig ck;
  ck.directory = root + "/ckpt";
  ck.interval_seconds = 1e9;  // exactly one checkpoint, on the next Tick
  stream::JournalConfig wal;
  wal.directory = root + "/wal";
  wal.fsync_policy = stream::FsyncPolicy::kAlways;

  sharded->EnableCheckpoints(ck);
  sharded->EnableJournal(wal);
  sharded->Tick(stream.back().timestamp + 1.0);  // checkpoints every shard

  std::vector<double> survivors(kUsers * kServices, 0.0);
  for (std::size_t u = 0; u < kUsers; ++u) {
    for (std::size_t s = 0; s < kServices; ++s) {
      survivors[u * kServices + s] =
          *sharded->PredictQoS(static_cast<data::UserId>(u),
                               static_cast<data::ServiceId>(s));
    }
  }
  sharded.reset();  // crash

  auto recovered = std::make_unique<adapt::ShardedPredictionService>(scfg);
  RegisterPopulation(*recovered);
  recovered->EnableCheckpoints(ck);
  recovered->EnableJournal(wal);
  const auto report = recovered->Recover();
  AMF_CHECK_MSG(report.manifest_ok, "manifest: " << report.manifest_error);
  AMF_CHECK_MSG(report.shards_restored == shards,
                "restored " << report.shards_restored << "/" << shards);
  std::size_t survivor_bit_mismatches = 0;
  for (std::size_t u = 0; u < kUsers; ++u) {
    for (std::size_t s = 0; s < kServices; ++s) {
      const auto p = recovered->PredictQoS(static_cast<data::UserId>(u),
                                           static_cast<data::ServiceId>(s));
      AMF_CHECK_MSG(p.has_value(), "recovered pair must predict");
      if (*p != survivors[u * kServices + s]) ++survivor_bit_mismatches;
    }
  }
  std::fprintf(stderr, "recovery: %zu shards, %zu bit mismatches\n",
               static_cast<std::size_t>(report.shards_restored),
               survivor_bit_mismatches);
  AMF_CHECK_MSG(survivor_bit_mismatches == 0,
                "recovered predictions diverged from the survivors");
  recovered.reset();
  std::filesystem::remove_all(root);

  // --- Phase 3: throughput scaling ----------------------------------------
  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<std::size_t> ladder{1, 2};
  if (shards != 1 && shards != 2) ladder.push_back(shards);
  std::vector<double> eps;
  for (const std::size_t k : ladder) {
    eps.push_back(MeasureEventsPerSec(k, measure_seconds));
    std::fprintf(stderr, "scaling: %zu shard(s) -> %.0f events/s\n", k,
                 eps.back());
  }

  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"shard_scalability\",\n");
  std::fprintf(out, "  \"shards\": %zu,\n", shards);
  std::fprintf(out, "  \"events\": %zu,\n", events);
  std::fprintf(out, "  \"users\": %zu,\n", kUsers);
  std::fprintf(out, "  \"services\": %zu,\n", kServices);
  std::fprintf(out, "  \"router_version\": %u,\n",
               adapt::ShardRouter::kHashVersion);
  std::fprintf(out, "  \"control_mre\": %.6f,\n", control_mre);
  std::fprintf(out, "  \"sharded_mre\": %.6f,\n", sharded_mre);
  std::fprintf(out, "  \"mre_delta_abs\": %.6f,\n", mre_delta);
  std::fprintf(out, "  \"mre_band\": %.2f,\n", kMreBand);
  std::fprintf(out, "  \"merges\": %llu,\n",
               static_cast<unsigned long long>(merges));
  std::fprintf(out, "  \"shards_restored\": %zu,\n",
               static_cast<std::size_t>(report.shards_restored));
  std::fprintf(out, "  \"wal_replayed\": %llu,\n",
               static_cast<unsigned long long>(report.replayed));
  std::fprintf(out, "  \"survivor_bit_mismatches\": %zu,\n",
               survivor_bit_mismatches);
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n", hw);
  std::fprintf(out, "  \"scaling\": [\n");
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    // Honesty flag: speedup numbers only mean something when the host
    // actually has a core per trainer thread plus one for the merger.
    const bool valid = hw >= ladder[i] + 1;
    std::fprintf(out,
                 "    {\"shards\": %zu, \"events_per_sec\": %.0f, "
                 "\"speedup\": %.3f, \"speedup_valid\": %s}%s\n",
                 ladder[i], eps[i], eps[i] / eps[0],
                 valid ? "true" : "false",
                 i + 1 < ladder.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"seconds\": %.3f\n", seconds);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}

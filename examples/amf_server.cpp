// amf_server: standalone networked serving front-end (DESIGN.md §14).
//
//   amf_server [--host 127.0.0.1 --port 7421 --users N --services M
//               --seed S --ring CAP --seconds SEC --shards K
//               --coalesce-window-us US --coalesce-max-batch B
//               --train-interval-ms MS
//               --wal-dir DIR --fsync os|interval|always]
//
// Boots a ConcurrentPredictionService (--shards 1, the default) or a
// user-sharded ShardedPredictionService (--shards K routes every user to
// one of K independent model instances and reconciles the replicated
// service factors at each trainer tick), pre-registers N users and M
// services, warms the model on a synthetic workload slice so PREDICT
// answers are meaningful from the first request, then serves the binary
// protocol (PREDICT / PREDICT_MANY / REPORT_OBS / METRICS / PING) until
// SIGINT/SIGTERM or --seconds elapses. --port 0 binds an ephemeral port
// (printed on stdout as "listening <host> <port>", which scripted
// drivers parse).
//
// With --wal-dir the service journals accepted observations; the
// server's event loop and trainer keep the kInterval fsync window honest
// while idle, and shutdown drains in-flight requests, ticks the trainer
// once more to journal everything acked, and fsyncs the WAL tail before
// the process exits.
//
// Exit code 0 on a clean (signalled or timed) shutdown, 1 on usage
// errors, 2 when the listen socket cannot be bound.
#include <csignal>
#include <cstdint>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "adapt/concurrent_service.h"
#include "adapt/sharded_service.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/amf_predictor.h"
#include "serve/server.h"
#include "stream/wal.h"

namespace {

using namespace amf;

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; i += 2) {
      std::string key = argv[i];
      AMF_CHECK_MSG(common::StartsWith(key, "--"),
                    "expected --flag value, got " << key);
      values_[key.substr(2)] = argv[i + 1];
    }
  }
  std::string Get(const std::string& key, const std::string& def) const {
    const auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }
  std::int64_t GetInt(const std::string& key, std::int64_t def) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return def;
    const auto v = common::ParseInt(it->second);
    AMF_CHECK_MSG(v, "--" << key << " expects an integer");
    return *v;
  }
  double GetDouble(const std::string& key, double def) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return def;
    const auto v = common::ParseDouble(it->second);
    AMF_CHECK_MSG(v, "--" << key << " expects a number");
    return *v;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto users = static_cast<std::size_t>(args.GetInt("users", 32));
  const auto services = static_cast<std::size_t>(args.GetInt("services", 128));
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 2014));
  const double seconds = args.GetDouble("seconds", 0.0);
  const auto shards = static_cast<std::size_t>(args.GetInt("shards", 1));
  const auto ring = static_cast<std::size_t>(args.GetInt("ring", 4096));
  AMF_CHECK_MSG(shards >= 1, "--shards must be >= 1");

  adapt::PredictionServiceConfig cfg;
  cfg.model = core::MakeResponseTimeConfig(seed);

  std::unique_ptr<adapt::ConcurrentPredictionService> single;
  std::unique_ptr<adapt::ShardedPredictionService> sharded;
  std::unique_ptr<serve::Backend> backend;
  if (shards == 1) {
    single = std::make_unique<adapt::ConcurrentPredictionService>(cfg, ring);
    backend = std::make_unique<serve::ConcurrentBackend>(single.get());
  } else {
    adapt::ShardedServiceConfig scfg;
    scfg.num_shards = shards;
    scfg.service = cfg;
    scfg.ring_capacity = ring;
    sharded = std::make_unique<adapt::ShardedPredictionService>(scfg);
    backend = std::make_unique<serve::ShardedBackend>(sharded.get());
  }

  // Registration, journal arming, and warm-up are identical across the
  // two facades — both expose the same member names.
  auto prepare = [&](auto& service) {
    for (std::size_t u = 0; u < users; ++u) {
      service.RegisterUser("u" + std::to_string(u));
    }
    for (std::size_t s = 0; s < services; ++s) {
      service.RegisterService("s" + std::to_string(s));
    }

    const std::string wal_dir = args.Get("wal-dir", "");
    if (!wal_dir.empty()) {
      stream::JournalConfig jc;
      jc.directory = wal_dir;
      const std::string fsync = common::ToLower(args.Get("fsync", "interval"));
      if (fsync == "os") {
        jc.fsync_policy = stream::FsyncPolicy::kOs;
      } else if (fsync == "always") {
        jc.fsync_policy = stream::FsyncPolicy::kAlways;
      } else {
        AMF_CHECK_MSG(fsync == "interval",
                      "--fsync must be os, interval, or always");
        jc.fsync_policy = stream::FsyncPolicy::kInterval;
      }
      service.EnableJournal(jc);
    }

    // Warm-up: a burst of synthetic observations trained to convergence,
    // so the first remote PREDICT sees a fitted model, not random init.
    common::Rng rng(seed ^ 0x5e);
    common::Stopwatch clock;
    for (std::size_t i = 0; i < users * services / 4; ++i) {
      service.ReportObservation(data::QoSSample{
          .slice = 0,
          .user = static_cast<data::UserId>(rng.Index(users)),
          .service = static_cast<data::ServiceId>(rng.Index(services)),
          .value = rng.LogNormal(-1.0, 0.5),
          .timestamp = clock.ElapsedSeconds()});
      if ((i & 1023) == 1023) service.Tick(clock.ElapsedSeconds());
    }
    service.TrainToConvergence(clock.ElapsedSeconds());
  };
  if (single != nullptr) {
    prepare(*single);
  } else {
    prepare(*sharded);
  }

  serve::ServerConfig sc;
  sc.host = args.Get("host", "127.0.0.1");
  sc.port = static_cast<std::uint16_t>(args.GetInt("port", 7421));
  sc.coalesce_window_us = args.GetDouble("coalesce-window-us", 200.0);
  sc.coalesce_max_batch =
      static_cast<std::size_t>(args.GetInt("coalesce-max-batch", 64));
  sc.train_interval_ms =
      static_cast<int>(args.GetInt("train-interval-ms", 20));
  serve::Server server(backend.get(), sc);
  if (!server.Start()) {
    std::cerr << "amf_server: " << server.last_error() << "\n";
    return 2;
  }
  std::cout << "listening " << sc.host << " " << server.port() << std::endl;

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  common::Stopwatch uptime;
  while (g_stop == 0 && (seconds <= 0.0 || uptime.ElapsedSeconds() < seconds)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Ordered drain: stop accepting, answer everything already read, drain
  // socket buffers, final trainer Tick (journals acked observations),
  // fsync the WAL tail. Only then report and exit.
  server.Shutdown();
  const obs::MetricsSnapshot snap = backend->metrics().Snapshot();
  std::cerr << "amf_server: served="
            << snap.CounterValue("serve.requests")
            << " coalesce_flushes="
            << snap.CounterValue("serve.coalesce.flushes")
            << " protocol_errors="
            << snap.CounterValue("serve.protocol_errors")
            << " slow_reader_drops="
            << snap.CounterValue("serve.slow_reader_drops") << "\n";
  return 0;
}

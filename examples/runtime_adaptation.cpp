// Runtime service adaptation end to end (Figs. 1 & 3).
//
//   build/examples/runtime_adaptation
//
// A fleet of service-based applications runs a 3-task workflow whose tasks
// each have functionally equivalent candidate services. Mid-run, the bound
// services of one task suffer an outage and other bindings degrade with
// the environment's QoS drift. Four adaptation policies are compared:
//   none          never adapt
//   random        switch to a random candidate on SLA violation
//   amf-predicted switch to the candidate AMF predicts to be fastest
//   oracle        switch to the truly fastest candidate (upper bound)
#include <iostream>

#include "adapt/simulation.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/synthetic.h"

namespace {

using namespace amf;

/// Builds the 3-task workflow over fixed candidate pools. Initial bindings
/// are spread across candidates per app (different applications use
/// different providers), which is exactly what gives the collaborative
/// predictor its training data on every candidate.
adapt::Workflow MakeWorkflow(std::size_t app_index) {
  std::vector<adapt::AbstractTask> tasks;
  tasks.push_back({"auth", {0, 1, 2, 3, 4}});
  tasks.push_back({"inventory", {5, 6, 7, 8, 9, 10}});
  tasks.push_back({"payment", {11, 12, 13, 14}});
  adapt::Workflow wf(std::move(tasks));
  for (std::size_t i = 0; i < wf.num_tasks(); ++i) {
    const auto& cands = wf.task(i).candidates;
    wf.Rebind(i, cands[(app_index + i) % cands.size()]);
  }
  return wf;
}

struct PolicyRun {
  std::string name;
  adapt::AppStats stats;
};

}  // namespace

int main() {
  data::SyntheticConfig dataset_config;
  dataset_config.users = 40;
  dataset_config.services = 15;  // the candidate pool of the workflow
  dataset_config.slices = 48;
  dataset_config.seed = 21;
  const data::SyntheticQoSDataset dataset(dataset_config);

  const double kSla = 2.0;         // seconds
  const double kTick = 900.0;      // one slice per tick
  const std::size_t kTicks = 48;
  const std::size_t kApps = 30;

  std::vector<PolicyRun> runs;
  for (const char* policy_cstr :
       {"none", "random", "amf-predicted", "oracle"}) {
    const std::string policy_name = policy_cstr;
    adapt::Environment env(dataset, kTick, /*timeout=*/20.0);
    // Outage: the initially-bound service of task "auth" goes down for
    // slices 10-20 (the Fig. 1 "invocation to B1 fails" scenario).
    env.AddOutage({0, 10 * kTick, 20 * kTick});

    adapt::QoSPredictionService service;
    for (std::size_t u = 0; u < kApps; ++u) {
      service.RegisterUser("app-" + std::to_string(u));
    }
    for (std::size_t s = 0; s < dataset.num_services(); ++s) {
      service.RegisterService("svc-" + std::to_string(s));
    }

    adapt::NoAdaptationPolicy none;
    adapt::RandomPolicy random(77);
    adapt::PredictedBestPolicy predicted(service);
    adapt::OraclePolicy oracle(env);
    adapt::AdaptationPolicy* policy = nullptr;
    if (policy_name == "none") policy = &none;
    if (policy_name == "random") policy = &random;
    if (policy_name == "amf-predicted") policy = &predicted;
    if (policy_name == "oracle") policy = &oracle;

    adapt::SimulationConfig sim_config;
    sim_config.ticks = kTicks;
    sim_config.tick_seconds = kTick;
    adapt::AdaptationSimulation sim(env, &service, sim_config);
    for (std::size_t u = 0; u < kApps; ++u) {
      sim.AddApplication(static_cast<data::UserId>(u), MakeWorkflow(u),
                         *policy, kSla);
    }
    sim.Run();
    runs.push_back({policy_name, sim.TotalStats()});
  }

  common::TablePrinter table({"policy", "invocations", "violations",
                              "violation rate", "mean RT (s)",
                              "adaptations"});
  for (const PolicyRun& run : runs) {
    table.AddRow({run.name, std::to_string(run.stats.invocations),
                  std::to_string(run.stats.violations),
                  common::FormatFixed(run.stats.ViolationRate(), 3),
                  common::FormatFixed(run.stats.MeanRt(), 3),
                  std::to_string(run.stats.adaptations)});
  }
  table.Print(std::cout);
  std::cout << "expected: oracle best; amf-predicted close behind, with "
               "notably fewer adaptations than random; none worst.\n";
  return 0;
}

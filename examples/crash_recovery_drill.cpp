// crash_recovery_drill: kill -9 loop against the durable observation
// journal (DESIGN.md §12).
//
// A child process streams a deterministic observation sequence into a
// QoSPredictionService with checkpoints + the WAL under fsync=always,
// acknowledging each observation over a pipe only after its journal
// append is durable. The parent SIGKILLs the child mid-stream several
// times (kills land anywhere — mid-append, mid-checkpoint); each respawn
// recovers (checkpoint + journal replay) and resumes exactly where the
// journal ends. After a final uncrashed round the parent verifies the
// drill's two contracts:
//
//   1. zero acked loss — every acknowledged observation is in the
//      recovered state (the journal's last LSN covers every ack), and
//   2. bit-identity — the recovered model factors and predictions equal
//      an uncrashed control fed the same stream in one process.
//
// Emits a JSON summary (--out FILE) for CI assertions. Exit 0 on
// success, 2 on any contract violation.
//
//   crash_recovery_drill [--samples N --kill-rounds K --out FILE
//                         --dir DIR --seed S]
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "adapt/prediction_service.h"
#include "common/check.h"
#include "common/string_util.h"
#include "core/checkpoint.h"
#include "stream/wal.h"

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#define AMF_DRILL_POSIX 1
#endif

namespace {

using namespace amf;

constexpr std::size_t kUsers = 6;
constexpr std::size_t kServices = 10;
constexpr std::size_t kTickEvery = 20;

// The deterministic observation stream: pairs cycle with strictly
// increasing timestamps, so every sample is validator-clean.
data::QoSSample Sample(std::size_t i) {
  return data::QoSSample{
      .slice = 0,
      .user = static_cast<data::UserId>(i % kUsers),
      .service = static_cast<data::ServiceId>((i / kUsers) % kServices),
      .value = 0.2 + 0.003 * static_cast<double>(i % 97),
      .timestamp = 1.0 + 0.1 * static_cast<double>(i)};
}

adapt::PredictionServiceConfig DrillConfig(std::uint64_t seed) {
  // replay_epochs_per_tick = 0: applying a sample sequence is then
  // RNG-free and clock-independent, which is what makes "crashed run ==
  // uncrashed control" a bitwise statement rather than a statistical one.
  return adapt::PredictionServiceConfig{core::MakeResponseTimeConfig(seed),
                                        core::TrainerConfig{}, 0};
}

std::unique_ptr<adapt::QoSPredictionService> MakeService(
    const std::string& dir, std::uint64_t seed) {
  auto svc = std::make_unique<adapt::QoSPredictionService>(DrillConfig(seed));
  for (std::size_t u = 0; u < kUsers; ++u) {
    svc->RegisterUser("u" + std::to_string(u));
  }
  for (std::size_t s = 0; s < kServices; ++s) {
    svc->RegisterService("s" + std::to_string(s));
  }
  core::CheckpointManagerConfig ckpt;
  ckpt.directory = dir + "/ckpt";
  ckpt.interval_seconds = 2.0;  // every 20 samples of trainer time
  ckpt.retention = 3;
  svc->EnableCheckpoints(ckpt);
  stream::JournalConfig wal;
  wal.directory = dir + "/wal";
  wal.fsync_policy = stream::FsyncPolicy::kAlways;
  wal.segment_max_bytes = 4096;  // force rotation + watermark GC
  svc->EnableJournal(wal);
  return svc;
}

#ifdef AMF_DRILL_POSIX

[[noreturn]] void RunChild(int ack_fd, const std::string& dir,
                           std::uint64_t seed, std::size_t samples) {
  auto svc = MakeService(dir, seed);
  svc->Recover();
  // The journal IS the resume cursor: record lsn maps 1:1 to stream
  // index, so everything durable is exactly the stream prefix [0, lsn).
  const std::size_t resume =
      static_cast<std::size_t>(svc->journal()->last_lsn());
  for (std::size_t i = resume; i < samples; ++i) {
    svc->ReportObservation(Sample(i));
    if (svc->journal()->last_lsn() != i + 1) _exit(3);  // journal-dropped
    if ((i + 1) % kTickEvery == 0) svc->Tick(Sample(i).timestamp);
    // Durable (fsync=always happened inside ReportObservation) -> ack.
    const std::uint32_t ack = static_cast<std::uint32_t>(i);
    if (write(ack_fd, &ack, sizeof(ack)) != sizeof(ack)) _exit(4);
  }
  svc->Tick(Sample(samples - 1).timestamp);
  _exit(0);
}

#endif  // AMF_DRILL_POSIX

std::map<std::string, std::string> ParseArgs(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    AMF_CHECK_MSG(common::StartsWith(key, "--"),
                  "expected --flag value, got " << key);
    args[key.substr(2)] = argv[i + 1];
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
#ifndef AMF_DRILL_POSIX
  (void)argc;
  (void)argv;
  std::cout << "{\"skipped\": \"requires POSIX fork/kill\"}\n";
  return 0;
#else
  const auto args = ParseArgs(argc, argv);
  const auto get = [&](const std::string& k, const std::string& def) {
    const auto it = args.find(k);
    return it == args.end() ? def : it->second;
  };
  const std::size_t samples =
      static_cast<std::size_t>(std::stoul(get("samples", "400")));
  const std::size_t kill_rounds =
      static_cast<std::size_t>(std::stoul(get("kill-rounds", "6")));
  const auto seed = static_cast<std::uint64_t>(std::stoul(get("seed", "17")));
  const std::string dir = get("dir", "amf_crash_drill");
  const std::string out = get("out", "");

  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  std::size_t rounds = 0, kills = 0;
  std::int64_t max_acked = -1;
  bool completed = false;
  // Each killed round must make >= 1 durable ack of progress, so the
  // loop terminates well within samples + kill_rounds rounds.
  while (rounds < kill_rounds + samples && !completed) {
    int pipe_fds[2];
    AMF_CHECK_MSG(pipe(pipe_fds) == 0, "pipe() failed");
    const pid_t child = fork();
    AMF_CHECK_MSG(child >= 0, "fork() failed");
    if (child == 0) {
      close(pipe_fds[0]);
      RunChild(pipe_fds[1], dir, seed, samples);
    }
    close(pipe_fds[1]);
    ++rounds;
    // Kill after a fixed amount of fresh progress for the first
    // kill_rounds rounds; afterwards let the child run to completion.
    const bool lethal = rounds <= kill_rounds;
    const std::int64_t kill_after = max_acked + 30;
    std::uint32_t ack = 0;
    ssize_t got;
    while ((got = read(pipe_fds[0], &ack, sizeof(ack))) == sizeof(ack)) {
      max_acked = std::max(max_acked, static_cast<std::int64_t>(ack));
      if (lethal && max_acked >= kill_after) {
        kill(child, SIGKILL);  // lands anywhere: mid-append, mid-ckpt
        ++kills;
        break;
      }
    }
    if (got == 0) completed = true;  // EOF: child finished every sample
    close(pipe_fds[0]);
    int status = 0;
    waitpid(child, &status, 0);
    if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
      std::cerr << "child failed with exit " << WEXITSTATUS(status) << "\n";
      return 2;
    }
  }
  AMF_CHECK_MSG(completed, "drill never reached an uncrashed round");

  // --- Verification ------------------------------------------------------
  auto recovered = MakeService(dir, seed);
  const adapt::QoSPredictionService::RecoveryReport rec =
      recovered->Recover();
  const std::uint64_t recovered_lsn = recovered->journal()->last_lsn();

  // Contract 1: zero acked loss. Ack i implies record i+1 was durable,
  // and the journal's LSNs are the stream prefix.
  const std::uint64_t acked = static_cast<std::uint64_t>(max_acked + 1);
  const std::uint64_t acked_loss = acked > recovered_lsn
                                       ? acked - recovered_lsn
                                       : 0;

  // Contract 2: bit-identity with an uncrashed control run.
  adapt::QoSPredictionService control(DrillConfig(seed));
  for (std::size_t u = 0; u < kUsers; ++u) {
    control.RegisterUser("u" + std::to_string(u));
  }
  for (std::size_t s = 0; s < kServices; ++s) {
    control.RegisterService("s" + std::to_string(s));
  }
  for (std::size_t i = 0; i < samples; ++i) {
    control.ReportObservation(Sample(i));
    if ((i + 1) % kTickEvery == 0) control.Tick(Sample(i).timestamp);
  }
  control.Tick(Sample(samples - 1).timestamp);

  std::uint64_t factor_mismatches = 0;
  const core::AmfModel& a = recovered->model();
  const core::AmfModel& b = control.model();
  if (a.num_users() != b.num_users() ||
      a.num_services() != b.num_services()) {
    ++factor_mismatches;
  } else {
    for (data::UserId u = 0; u < a.num_users(); ++u) {
      const auto fa = a.UserFactors(u);
      const auto fb = b.UserFactors(u);
      for (std::size_t k = 0; k < fa.size(); ++k) {
        if (fa[k] != fb[k]) ++factor_mismatches;
      }
    }
    for (data::ServiceId s = 0; s < a.num_services(); ++s) {
      const auto fa = a.ServiceFactors(s);
      const auto fb = b.ServiceFactors(s);
      for (std::size_t k = 0; k < fa.size(); ++k) {
        if (fa[k] != fb[k]) ++factor_mismatches;
      }
    }
  }
  std::uint64_t prediction_mismatches = 0;
  for (std::size_t u = 0; u < kUsers; ++u) {
    for (std::size_t s = 0; s < kServices; ++s) {
      const auto pa = recovered->PredictQoS(static_cast<data::UserId>(u),
                                            static_cast<data::ServiceId>(s));
      const auto pb = control.PredictQoS(static_cast<data::UserId>(u),
                                         static_cast<data::ServiceId>(s));
      if (pa.has_value() != pb.has_value() ||
          (pa && (*pa != *pb || !std::isfinite(*pa)))) {
        ++prediction_mismatches;
      }
    }
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"samples\": " << samples << ",\n"
       << "  \"rounds\": " << rounds << ",\n"
       << "  \"kills\": " << kills << ",\n"
       << "  \"acked\": " << acked << ",\n"
       << "  \"recovered_lsn\": " << recovered_lsn << ",\n"
       << "  \"acked_loss\": " << acked_loss << ",\n"
       << "  \"final_checkpoint_restored\": "
       << (rec.checkpoint_restored ? "true" : "false") << ",\n"
       << "  \"final_watermark\": " << rec.watermark << ",\n"
       << "  \"final_replayed\": " << rec.replayed << ",\n"
       << "  \"quarantined_segments\": " << rec.quarantined_segments << ",\n"
       << "  \"factor_bit_mismatches\": " << factor_mismatches << ",\n"
       << "  \"prediction_bit_mismatches\": " << prediction_mismatches << "\n"
       << "}";
  if (!out.empty()) {
    std::ofstream os(out, std::ios::trunc);
    AMF_CHECK_MSG(os.good(), "cannot open --out file " << out);
    os << json.str() << "\n";
  }
  std::cout << json.str() << "\n";

  const bool ok = acked_loss == 0 && factor_mismatches == 0 &&
                  prediction_mismatches == 0 && kills == kill_rounds &&
                  recovered_lsn == samples;
  if (!ok) {
    std::cerr << "CRASH DRILL FAILED\n";
    return 2;
  }
  return 0;
#endif  // AMF_DRILL_POSIX
}

// Churn demo (the Fig. 14 scenario as an example).
//
//   build/examples/churn_scalability
//
// Trains AMF on 80% of users/services; after convergence the remaining 20%
// join. Thanks to adaptive weights, the newcomers' error drops quickly
// while the existing entities stay stable — no whole-model retraining.
#include <cmath>
#include <iostream>
#include <vector>

#include "common/statistics.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/amf_model.h"
#include "core/online_trainer.h"
#include "data/masking.h"
#include "data/synthetic.h"

int main() {
  using namespace amf;

  data::SyntheticConfig dataset_config;
  dataset_config.users = 100;
  dataset_config.services = 500;
  dataset_config.slices = 2;
  dataset_config.seed = 31;
  const data::SyntheticQoSDataset dataset(dataset_config);

  const std::size_t existing_users = 80;     // 80%
  const std::size_t existing_services = 400;

  const linalg::Matrix slice =
      dataset.DenseSlice(data::QoSAttribute::kResponseTime, 0);
  common::Rng rng(5);
  const data::TrainTestSplit split = data::SplitSlice(slice, 0.15, rng);

  core::AmfModel model(core::MakeResponseTimeConfig(1));
  core::TrainerConfig trainer_config;
  trainer_config.expiry_seconds = 0;  // no expiry in this demo
  core::OnlineTrainer trainer(model, trainer_config);

  auto is_existing = [&](const data::QoSSample& s) {
    return s.user < existing_users && s.service < existing_services;
  };

  // Phase 1: only the existing 80% x 80% block is known.
  for (const data::QoSSample& s : split.train.ToSamples()) {
    if (is_existing(s)) trainer.Observe(s);
  }
  const std::size_t warmup_epochs = trainer.RunUntilConverged();

  auto mre_of = [&](bool existing) {
    std::vector<double> rel;
    for (const data::QoSSample& s : split.test) {
      if (is_existing(s) != existing) continue;
      if (!model.HasUser(s.user) || !model.HasService(s.service)) continue;
      if (s.value <= 0.0) continue;
      rel.push_back(std::abs(model.PredictRaw(s.user, s.service) - s.value) /
                    s.value);
    }
    return rel.empty() ? std::nan("") : common::Median(rel);
  };

  std::cout << "phase 1: trained existing 80% to convergence in "
            << warmup_epochs << " epochs; existing MRE = "
            << common::FormatFixed(mre_of(true), 3) << "\n\n";

  // Phase 2: the remaining 20% join. Register them first (random factors)
  // to expose the initial error a newcomer starts from.
  model.EnsureUser(static_cast<data::UserId>(dataset.num_users() - 1));
  model.EnsureService(
      static_cast<data::ServiceId>(dataset.num_services() - 1));
  common::TablePrinter table({"replay epoch", "existing MRE", "new MRE"});
  table.AddRow({"join (random init)", common::FormatFixed(mre_of(true), 3),
                common::FormatFixed(mre_of(false), 3)});

  for (const data::QoSSample& s : split.train.ToSamples()) {
    if (!is_existing(s)) trainer.Observe(s);
  }
  trainer.ProcessIncoming();
  table.AddRow({"first updates", common::FormatFixed(mre_of(true), 3),
                common::FormatFixed(mre_of(false), 3)});
  for (int epoch = 1; epoch <= 10; ++epoch) {
    trainer.ReplayEpoch();
    table.AddRow({std::to_string(epoch),
                  common::FormatFixed(mre_of(true), 3),
                  common::FormatFixed(mre_of(false), 3)});
  }
  table.Print(std::cout);
  std::cout << "new-entity MRE should fall toward the existing level while "
               "existing MRE stays stable.\n";
  return 0;
}

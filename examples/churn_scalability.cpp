// Churn-scalability drill (DESIGN.md §10): proves that entity churn is
// bounded-memory and non-destructive.
//
//   build/examples/churn_scalability [--cycles N] [--active W]
//                                    [--tick-every T] [--quick]
//                                    [--out <path>]
//
// Phase 1 registers a base population and trains it to convergence, in
// TWO independent service instances; one stays churn-free for the rest of
// the run (the control), the other takes the churn.
//
// Phase 2 runs N join/observe/leave cycles over a sliding window of at
// most W concurrently-active transient users/services, Ticking the
// trainer throughout. Every departure goes through Retire*: the registry
// slot is recycled through the free-list under a bumped generation, the
// factor row is re-initialized, and the tenant's samples are purged.
//
// Phase 3 asserts the lifecycle contract:
//   - registry slots stay bounded by peak-active + slack (no growth),
//   - slot recycling is exact (registrations - slots == recycled),
//   - every base prediction is BIT-identical to the churn-free control,
//   - a checkpoint round-trip (v2 format: registries persisted) preserves
//     every name -> prediction binding,
// and writes a BENCH_-style JSON summary.
//
// The acceptance-scale run is `--cycles 1000000 --active 10000`; the
// defaults are sized for CI.
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <string>
#include <vector>

#include "adapt/prediction_service.h"
#include "common/check.h"

namespace {

using amf::adapt::PredictionServiceConfig;
using amf::adapt::QoSPredictionService;

constexpr std::size_t kBaseUsers = 24;
constexpr std::size_t kBaseServices = 48;
// Free-list slack: the window briefly holds W+1 entities between a join
// and the matching retire, plus one slot of LIFO hand-off headroom.
constexpr std::size_t kSlotSlack = 2;

std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic synthetic response time in (0.1, 3.0) seconds.
double SyntheticRt(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t h = Mix(a * 0x100000001b3ULL + b + 1);
  return 0.1 + 2.9 * static_cast<double>(h >> 11) * 0x1.0p-53;
}

PredictionServiceConfig MakeConfig() {
  PredictionServiceConfig config;
  config.model = amf::core::MakeResponseTimeConfig();
  config.trainer.expiry_seconds = 0;  // churn, not staleness, is under test
  // Tick applies incoming observations online but replays nothing: churn
  // cycles must leave the converged base rows untouched so the
  // bit-identity assertion is exact.
  config.replay_epochs_per_tick = 0;
  return config;
}

std::string UserName(std::uint64_t c) { return "t-u-" + std::to_string(c); }
std::string ServiceName(std::uint64_t c) { return "t-s-" + std::to_string(c); }

/// Registers and trains the shared base population (identical in both
/// service instances).
void TrainBase(QoSPredictionService& service) {
  for (std::size_t u = 0; u < kBaseUsers; ++u) {
    service.RegisterUser("base-u-" + std::to_string(u));
  }
  for (std::size_t s = 0; s < kBaseServices; ++s) {
    service.RegisterService("base-s-" + std::to_string(s));
  }
  for (std::size_t u = 0; u < kBaseUsers; ++u) {
    for (std::size_t s = 0; s < kBaseServices; ++s) {
      service.ReportObservation({0, static_cast<amf::data::UserId>(u),
                                 static_cast<amf::data::ServiceId>(s),
                                 SyntheticRt(u, s), 0.0});
    }
  }
  service.TrainToConvergence(1.0);
}

std::vector<double> SnapshotBase(const QoSPredictionService& service) {
  std::vector<double> out;
  out.reserve(kBaseUsers * kBaseServices);
  for (std::size_t u = 0; u < kBaseUsers; ++u) {
    for (std::size_t s = 0; s < kBaseServices; ++s) {
      const auto p = service.PredictQoS(static_cast<amf::data::UserId>(u),
                                        static_cast<amf::data::ServiceId>(s));
      AMF_CHECK_MSG(p.has_value(), "base pair unpredictable");
      out.push_back(*p);
    }
  }
  return out;
}

std::size_t CountBitMismatches(const std::vector<double>& a,
                               const std::vector<double>& b) {
  AMF_CHECK_MSG(a.size() == b.size(), "snapshot size mismatch");
  std::size_t bad = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i]) !=
        std::bit_cast<std::uint64_t>(b[i])) {
      ++bad;
    }
  }
  return bad;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t cycles = 20000;
  std::size_t active = 512;
  std::size_t tick_every = 256;
  std::string out_path = "BENCH_churn_scalability.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cycles") == 0 && i + 1 < argc) {
      cycles = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--active") == 0 && i + 1 < argc) {
      active = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--tick-every") == 0 && i + 1 < argc) {
      tick_every =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      cycles = 4000;
      active = 128;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--cycles N] [--active W] [--tick-every T] "
                   "[--quick] [--out <path>]\n",
                   argv[0]);
      return 2;
    }
  }
  AMF_CHECK_MSG(active >= 1 && tick_every >= 1, "bad drill parameters");

  const auto started = std::chrono::steady_clock::now();

  // Phase 1: identical base training in the churned and control services.
  QoSPredictionService service(MakeConfig());
  QoSPredictionService control(MakeConfig());
  TrainBase(service);
  TrainBase(control);
  const std::vector<double> baseline = SnapshotBase(control);
  AMF_CHECK_MSG(CountBitMismatches(SnapshotBase(service), baseline) == 0,
                "base training is not deterministic across instances");
  std::fprintf(stderr, "base trained: %zu users x %zu services\n", kBaseUsers,
               kBaseServices);

  // Phase 2: join/observe/leave cycles over a bounded sliding window.
  std::deque<std::uint64_t> live;
  std::size_t peak_active_users = 0;
  std::size_t peak_active_services = 0;
  double now = 2.0;
  for (std::uint64_t c = 0; c < cycles; ++c) {
    const amf::data::UserId u = service.RegisterUser(UserName(c));
    const amf::data::ServiceId s = service.RegisterService(ServiceName(c));
    service.ReportObservation({0, u, s, SyntheticRt(c, ~c), now});
    live.push_back(c);
    peak_active_users = std::max(peak_active_users, service.users().num_active());
    peak_active_services =
        std::max(peak_active_services, service.services().num_active());
    if (live.size() > active) {
      const std::uint64_t old = live.front();
      live.pop_front();
      AMF_CHECK_MSG(service.RetireUser(UserName(old)), "retire lost a user");
      AMF_CHECK_MSG(service.RetireService(ServiceName(old)),
                    "retire lost a service");
    }
    if ((c + 1) % tick_every == 0) {
      now += 1.0;
      service.Tick(now);
    }
  }
  now += 1.0;
  service.Tick(now);

  // Phase 3a: bounded slots + exact recycling accounting.
  const std::size_t user_slots = service.users().size();
  const std::size_t service_slots = service.services().size();
  AMF_CHECK_MSG(user_slots <= peak_active_users + kSlotSlack,
                "user slots grew past peak-active + slack: "
                    << user_slots << " > " << peak_active_users + kSlotSlack);
  AMF_CHECK_MSG(service_slots <= peak_active_services + kSlotSlack,
                "service slots grew past peak-active + slack: "
                    << service_slots << " > "
                    << peak_active_services + kSlotSlack);
  AMF_CHECK_MSG(service.users().recycled_total() ==
                    kBaseUsers + cycles - user_slots,
                "user slot recycling accounting is off");
  AMF_CHECK_MSG(service.services().recycled_total() ==
                    kBaseServices + cycles - service_slots,
                "service slot recycling accounting is off");

  // Phase 3b: the churn-free control and the churned service must agree
  // on every base prediction, to the bit.
  const std::size_t mismatches =
      CountBitMismatches(SnapshotBase(service), baseline);
  AMF_CHECK_MSG(mismatches == 0,
                mismatches << " base predictions diverged under churn");

  // Phase 3c: checkpoint round-trip preserves every name -> prediction
  // binding (v2 checkpoints persist both registries).
  const std::filesystem::path ckpt_dir =
      std::filesystem::temp_directory_path() / "amf_churn_drill_ckpt";
  std::filesystem::remove_all(ckpt_dir);
  amf::core::CheckpointManagerConfig ckpt;
  ckpt.directory = ckpt_dir.string();
  ckpt.retention = 1;
  ckpt.interval_seconds = 0.0;
  service.EnableCheckpoints(ckpt);
  now += 1.0;
  service.Tick(now);  // interval 0 => this tick saves, registries included

  QoSPredictionService restored(MakeConfig());
  restored.EnableCheckpoints(ckpt);
  AMF_CHECK_MSG(restored.RestoreFromLatestCheckpoint(),
                "checkpoint restore failed");
  std::size_t bindings_checked = 0;
  const auto check_binding = [&](const std::string& user,
                                 const std::string& svc) {
    const auto u1 = service.users().Lookup(user);
    const auto s1 = service.services().Lookup(svc);
    const auto u2 = restored.users().Lookup(user);
    const auto s2 = restored.services().Lookup(svc);
    AMF_CHECK_MSG(u1 && s1 && u2 && s2,
                  "binding lost across restore: " << user << " / " << svc);
    const auto p1 = service.PredictQoS(*u1, *s1);
    const auto p2 = restored.PredictQoS(*u2, *s2);
    AMF_CHECK_MSG(p1 && p2 &&
                      std::bit_cast<std::uint64_t>(*p1) ==
                          std::bit_cast<std::uint64_t>(*p2),
                  "prediction changed across restore: " << user << " / "
                                                        << svc);
    ++bindings_checked;
  };
  for (std::size_t u = 0; u < kBaseUsers; ++u) {
    for (std::size_t s = 0; s < kBaseServices; ++s) {
      check_binding("base-u-" + std::to_string(u),
                    "base-s-" + std::to_string(s));
    }
  }
  for (const std::uint64_t c : live) {
    check_binding(UserName(c), ServiceName(c));
  }
  std::filesystem::remove_all(ckpt_dir);

  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  const amf::core::PipelineStats stats = service.pipeline_stats();
  std::fprintf(stderr,
               "churn: %zu cycles, window %zu: user slots %zu (peak active "
               "%zu, recycled %llu), service slots %zu (peak active %zu, "
               "recycled %llu), purged samples %llu, %.2fs\n",
               cycles, active, user_slots, peak_active_users,
               static_cast<unsigned long long>(service.users().recycled_total()),
               service_slots, peak_active_services,
               static_cast<unsigned long long>(
                   service.services().recycled_total()),
               static_cast<unsigned long long>(stats.purged_samples), seconds);

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"churn_scalability\",\n");
  std::fprintf(out, "  \"cycles\": %zu,\n", cycles);
  std::fprintf(out, "  \"active_window\": %zu,\n", active);
  std::fprintf(out, "  \"tick_every\": %zu,\n", tick_every);
  std::fprintf(out, "  \"base_users\": %zu,\n", kBaseUsers);
  std::fprintf(out, "  \"base_services\": %zu,\n", kBaseServices);
  std::fprintf(out, "  \"peak_active_users\": %zu,\n", peak_active_users);
  std::fprintf(out, "  \"peak_active_services\": %zu,\n",
               peak_active_services);
  std::fprintf(out, "  \"user_slots\": %zu,\n", user_slots);
  std::fprintf(out, "  \"service_slots\": %zu,\n", service_slots);
  std::fprintf(out, "  \"slot_slack\": %zu,\n", kSlotSlack);
  std::fprintf(out, "  \"users_recycled\": %llu,\n",
               static_cast<unsigned long long>(
                   service.users().recycled_total()));
  std::fprintf(out, "  \"services_recycled\": %llu,\n",
               static_cast<unsigned long long>(
                   service.services().recycled_total()));
  std::fprintf(out, "  \"purged_samples\": %llu,\n",
               static_cast<unsigned long long>(stats.purged_samples));
  std::fprintf(out, "  \"rejected_unregistered\": %llu,\n",
               static_cast<unsigned long long>(stats.rejected_unregistered));
  std::fprintf(out, "  \"base_prediction_bit_mismatches\": %zu,\n",
               mismatches);
  std::fprintf(out, "  \"checkpoint_bindings_checked\": %zu,\n",
               bindings_checked);
  std::fprintf(out, "  \"seconds\": %.3f\n", seconds);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}

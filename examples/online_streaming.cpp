// Online streaming prediction: the Fig. 3 service loop.
//
//   build/examples/online_streaming
//
// Replays a multi-slice QoS dataset as a timestamped observation stream.
// At each slice the prediction service ingests the new observations,
// updates the AMF model incrementally (no retraining), and is scored on
// the entries it has NOT seen in that slice. Old samples expire after one
// slice interval, exactly like Algorithm 1.
#include <iostream>

#include "common/statistics.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/amf_predictor.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "stream/sample_stream.h"

int main() {
  using namespace amf;

  data::SyntheticConfig dataset_config;
  dataset_config.users = 80;
  dataset_config.services = 400;
  dataset_config.slices = 12;
  dataset_config.seed = 11;
  const data::SyntheticQoSDataset dataset(dataset_config);

  stream::StreamConfig stream_config;
  stream_config.density = 0.15;
  stream_config.resample_pairs_each_slice = true;  // fresh invocations
  stream_config.seed = 5;
  const stream::SampleStream stream(dataset, stream_config);

  core::AmfConfig model_config = core::MakeResponseTimeConfig(/*seed=*/1);
  core::AmfModel model(model_config);
  model.EnsureUser(static_cast<data::UserId>(dataset.num_users() - 1));
  model.EnsureService(
      static_cast<data::ServiceId>(dataset.num_services() - 1));
  core::TrainerConfig trainer_config;
  trainer_config.expiry_seconds = 900.0;  // one slice
  core::OnlineTrainer trainer(model, trainer_config);

  common::TablePrinter table(
      {"slice", "new samples", "epochs", "store", "MRE", "NPRE"});
  common::Rng test_rng(99);
  for (data::SliceId t = 0; t < dataset.num_slices(); ++t) {
    const std::vector<data::QoSSample> observed = stream.Slice(t);
    trainer.AdvanceTime(dataset.SliceTimestamp(t));
    for (const data::QoSSample& s : observed) trainer.Observe(s);
    const std::size_t epochs = trainer.RunUntilConverged();

    // Score on 2,000 random unobserved pairs of this slice.
    std::vector<double> rel_errors;
    for (int i = 0; i < 2000; ++i) {
      const auto u =
          static_cast<data::UserId>(test_rng.Index(dataset.num_users()));
      const auto s = static_cast<data::ServiceId>(
          test_rng.Index(dataset.num_services()));
      if (trainer.store().Contains(u, s)) continue;
      const double truth =
          dataset.Value(data::QoSAttribute::kResponseTime, u, s, t);
      if (truth <= 0.0) continue;
      rel_errors.push_back(std::abs(model.PredictRaw(u, s) - truth) /
                           truth);
    }
    const double mre = common::Median(rel_errors);
    const double npre = common::Percentile(rel_errors, 90.0);
    table.AddRow({std::to_string(t), std::to_string(observed.size()),
                  std::to_string(epochs),
                  std::to_string(trainer.store().size()),
                  common::FormatFixed(mre, 3),
                  common::FormatFixed(npre, 3)});
  }
  table.Print(std::cout);
  std::cout << "total online updates: " << model.updates() << "\n";
  return 0;
}

// Random initialization of latent-factor matrices.
//
// PMF and AMF both start latent vectors from small random values; keeping
// the initializer here makes the two models share identical initial
// conditions under the same seed (important for the ablation benches).
#pragma once

#include <span>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace amf::linalg {

/// Fills `v` with uniform draws in [0, scale).
void FillUniform(std::span<double> v, common::Rng& rng, double scale = 1.0);

/// Fills `v` with Normal(0, stddev) draws.
void FillGaussian(std::span<double> v, common::Rng& rng, double stddev = 0.1);

/// Fills a matrix with uniform draws in [0, scale).
void FillUniform(Matrix& m, common::Rng& rng, double scale = 1.0);

/// Fills a matrix with Normal(0, stddev) draws.
void FillGaussian(Matrix& m, common::Rng& rng, double stddev = 0.1);

}  // namespace amf::linalg

// Dense row-major matrix of doubles.
//
// Deliberately minimal: the library needs storage, element access, row
// views, fills, and a handful of products (for SVD and the PMF baseline),
// not a full BLAS. Values may be NaN to denote "missing" in QoS slices.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace amf::linalg {

class Matrix {
 public:
  Matrix() = default;
  /// rows x cols matrix, zero-initialized (or `fill`).
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Mutable / immutable view of row r (contiguous).
  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  /// Raw storage (row-major).
  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  /// Sets every element to `v`.
  void Fill(double v);

  /// Resizes, discarding contents; new elements are `fill`.
  void Resize(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Returns the transpose.
  Matrix Transposed() const;

  /// Matrix product this * other. Dimensions must agree.
  Matrix Multiply(const Matrix& other) const;

  /// Gram matrix AᵀA (cols x cols). Used by the SVD of tall matrices.
  Matrix Gram() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Count / mean over non-NaN entries (QoS slices store NaN = missing).
  std::size_t CountFinite() const;
  double MeanFinite() const;

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace amf::linalg

#include "linalg/kernels.h"

#include "common/bf16.h"
#include "common/check.h"
#include "linalg/vector_ops.h"

// GemvRowMajor is defined in gemv.cpp, which is compiled with relaxed
// FP-reduction flags; this TU keeps strict IEEE evaluation order because
// SgdPairStep must replay bit-identically for a fixed seed.

namespace amf::linalg {

void SgdPairStep(std::span<double> u, std::span<double> s, double coef,
                 double cu, double cs, double lambda_u, double lambda_s) {
  AMF_DCHECK(u.size() == s.size());
  double* __restrict up = u.data();
  double* __restrict sp = s.data();
  const std::size_t d = u.size();
  for (std::size_t k = 0; k < d; ++k) {
    const double uk = up[k];
    const double sk = sp[k];
    up[k] = uk - cu * (coef * sk + lambda_u * uk);
    sp[k] = sk - cs * (coef * uk + lambda_s * sk);
  }
}

namespace reference {

void GemvRowMajor(std::span<const double> x, std::span<const double> block,
                  std::span<double> out) {
  const std::size_t d = x.size();
  AMF_DCHECK(block.size() >= out.size() * d);
  for (std::size_t i = 0; i < out.size(); ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < d; ++k) acc += x[k] * block[i * d + k];
    out[i] = acc;
  }
}

void SgdPairStep(std::span<double> u, std::span<double> s, double coef,
                 double cu, double cs, double lambda_u, double lambda_s) {
  AMF_DCHECK(u.size() == s.size());
  for (std::size_t k = 0; k < u.size(); ++k) {
    const double uk = u[k];
    const double sk = s[k];
    u[k] = uk - cu * (coef * sk + lambda_u * uk);
    s[k] = sk - cs * (coef * uk + lambda_s * sk);
  }
}

void GemvRowMajorStridedFp32(std::span<const double> x, const float* block,
                             std::size_t stride, std::span<double> out) {
  const std::size_t d = x.size();
  AMF_DCHECK(stride >= d);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const float* row = block + i * stride;
    double acc = 0.0;
    for (std::size_t k = 0; k < d; ++k) {
      acc += x[k] * static_cast<double>(row[k]);
    }
    out[i] = acc;
  }
}

void GemvRowMajorStridedBf16(std::span<const double> x,
                             const std::uint16_t* block, std::size_t stride,
                             std::span<double> out) {
  const std::size_t d = x.size();
  AMF_DCHECK(stride >= d);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::uint16_t* row = block + i * stride;
    double acc = 0.0;
    for (std::size_t k = 0; k < d; ++k) {
      acc += x[k] * common::Bf16ToDouble(row[k]);
    }
    out[i] = acc;
  }
}

}  // namespace reference

}  // namespace amf::linalg

#include "linalg/matrix.h"

#include <cmath>

#include "common/check.h"

namespace amf::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  AMF_DCHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  AMF_DCHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  AMF_DCHECK(r < rows_);
  return std::span<double>(data_.data() + r * cols_, cols_);
}

std::span<const double> Matrix::row(std::size_t r) const {
  AMF_DCHECK(r < rows_);
  return std::span<const double>(data_.data() + r * cols_, cols_);
}

void Matrix::Fill(double v) {
  for (double& x : data_) x = v;
}

void Matrix::Resize(std::size_t rows, std::size_t cols, double fill) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, fill);
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  AMF_CHECK_MSG(cols_ == other.rows_, "dimension mismatch in Multiply: "
                                          << cols_ << " vs " << other.rows_);
  Matrix out(rows_, other.cols_);
  // i-k-j loop order keeps the inner loop contiguous for both operands.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const std::span<const double> brow = other.row(k);
      const std::span<double> orow = out.row(i);
      for (std::size_t j = 0; j < other.cols_; ++j) {
        orow[j] += aik * brow[j];
      }
    }
  }
  return out;
}

Matrix Matrix::Gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::span<const double> a = row(r);
    for (std::size_t i = 0; i < cols_; ++i) {
      const double ai = a[i];
      if (ai == 0.0) continue;
      double* grow = &g(i, 0);
      for (std::size_t j = i; j < cols_; ++j) {
        grow[j] += ai * a[j];
      }
    }
  }
  // Mirror the upper triangle.
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      g(i, j) = g(j, i);
    }
  }
  return g;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

std::size_t Matrix::CountFinite() const {
  std::size_t n = 0;
  for (double x : data_) {
    if (std::isfinite(x)) ++n;
  }
  return n;
}

double Matrix::MeanFinite() const {
  std::size_t n = 0;
  double s = 0.0;
  for (double x : data_) {
    if (std::isfinite(x)) {
      s += x;
      ++n;
    }
  }
  return n ? s / static_cast<double>(n) : 0.0;
}

}  // namespace amf::linalg

// GemvRowMajor lives in its own TU: this file is compiled with
// -fassociative-math (see CMakeLists.txt) so the per-row dot-product
// reductions can be reordered into SIMD lanes. That freedom is safe here
// because GEMV feeds the *prediction* readout, which only promises
// ~1e-12 agreement with the scalar path; the strict-IEEE training kernels
// and the reference oracles stay in kernels.cpp under default FP rules.
#include "common/check.h"
#include "common/multiversion.h"
#include "linalg/kernels.h"

namespace amf::linalg {

AMF_MULTIVERSION
void GemvRowMajor(std::span<const double> x, std::span<const double> block,
                  std::span<double> out) {
  const std::size_t d = x.size();
  const std::size_t rows = out.size();
  AMF_DCHECK(block.size() >= rows * d);
  const double* __restrict xp = x.data();
  const double* __restrict bp = block.data();
  double* __restrict op = out.data();

  // Four rows at a time: the four dot products share x and use
  // independent accumulators, so each inner reduction vectorizes (with
  // reassociation) and the four chains pipeline.
  std::size_t i = 0;
  for (; i + 4 <= rows; i += 4) {
    const double* __restrict r0 = bp + (i + 0) * d;
    const double* __restrict r1 = bp + (i + 1) * d;
    const double* __restrict r2 = bp + (i + 2) * d;
    const double* __restrict r3 = bp + (i + 3) * d;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (std::size_t k = 0; k < d; ++k) {
      const double xk = xp[k];
      a0 += xk * r0[k];
      a1 += xk * r1[k];
      a2 += xk * r2[k];
      a3 += xk * r3[k];
    }
    op[i + 0] = a0;
    op[i + 1] = a1;
    op[i + 2] = a2;
    op[i + 3] = a3;
  }
  for (; i < rows; ++i) {
    const double* __restrict r0 = bp + i * d;
    double acc = 0.0;
    for (std::size_t k = 0; k < d; ++k) acc += xp[k] * r0[k];
    op[i] = acc;
  }
}

AMF_MULTIVERSION
void GemvRowMajorStrided(std::span<const double> x, const double* block,
                         std::size_t stride, std::span<double> out) {
  const std::size_t d = x.size();
  const std::size_t rows = out.size();
  AMF_DCHECK(stride >= d);
  const double* __restrict xp = x.data();
  const double* __restrict bp = block;
#if defined(AMF_NATIVE_BUILD)
  // Arena contract: 64-byte base, stride a multiple of 8 doubles — every
  // row start is cache-line aligned, so the compiler may use aligned
  // vector loads for the row streams.
  bp = static_cast<const double*>(__builtin_assume_aligned(bp, 64));
#endif
  double* __restrict op = out.data();

  // Same four-row / independent-accumulator shape (and the same k order)
  // as GemvRowMajor above, so the reduction is bit-identical to it.
  std::size_t i = 0;
  for (; i + 4 <= rows; i += 4) {
    const double* __restrict r0 = bp + (i + 0) * stride;
    const double* __restrict r1 = bp + (i + 1) * stride;
    const double* __restrict r2 = bp + (i + 2) * stride;
    const double* __restrict r3 = bp + (i + 3) * stride;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (std::size_t k = 0; k < d; ++k) {
      const double xk = xp[k];
      a0 += xk * r0[k];
      a1 += xk * r1[k];
      a2 += xk * r2[k];
      a3 += xk * r3[k];
    }
    op[i + 0] = a0;
    op[i + 1] = a1;
    op[i + 2] = a2;
    op[i + 3] = a3;
  }
  for (; i < rows; ++i) {
    const double* __restrict r0 = bp + i * stride;
    double acc = 0.0;
    for (std::size_t k = 0; k < d; ++k) acc += xp[k] * r0[k];
    op[i] = acc;
  }
}

}  // namespace amf::linalg

// GemvRowMajor lives in its own TU: this file is compiled with
// -fassociative-math (see CMakeLists.txt) so the per-row dot-product
// reductions can be reordered into SIMD lanes. That freedom is safe here
// because GEMV feeds the *prediction* readout, which only promises
// ~1e-12 agreement with the scalar path; the strict-IEEE training kernels
// and the reference oracles stay in kernels.cpp under default FP rules.
#include <bit>
#include <cstdint>

#include "common/check.h"
#include "common/multiversion.h"
#include "linalg/kernels.h"

namespace amf::linalg {

namespace {

/// Exact bf16 -> double widening (shift the 16 raw bits into a binary32's
/// high half; every bf16 value is a float). Kept local so this TU stays
/// self-contained for the vectorizer; matches common::Bf16ToDouble bit
/// for bit (the conversion is exact, so no FP-flag sensitivity).
inline double WidenBf16(std::uint16_t b) {
  return static_cast<double>(
      std::bit_cast<float>(static_cast<std::uint32_t>(b) << 16));
}

}  // namespace

AMF_MULTIVERSION
void GemvRowMajor(std::span<const double> x, std::span<const double> block,
                  std::span<double> out) {
  const std::size_t d = x.size();
  const std::size_t rows = out.size();
  AMF_DCHECK(block.size() >= rows * d);
  const double* __restrict xp = x.data();
  const double* __restrict bp = block.data();
  double* __restrict op = out.data();

  // Four rows at a time: the four dot products share x and use
  // independent accumulators, so each inner reduction vectorizes (with
  // reassociation) and the four chains pipeline.
  std::size_t i = 0;
  for (; i + 4 <= rows; i += 4) {
    const double* __restrict r0 = bp + (i + 0) * d;
    const double* __restrict r1 = bp + (i + 1) * d;
    const double* __restrict r2 = bp + (i + 2) * d;
    const double* __restrict r3 = bp + (i + 3) * d;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (std::size_t k = 0; k < d; ++k) {
      const double xk = xp[k];
      a0 += xk * r0[k];
      a1 += xk * r1[k];
      a2 += xk * r2[k];
      a3 += xk * r3[k];
    }
    op[i + 0] = a0;
    op[i + 1] = a1;
    op[i + 2] = a2;
    op[i + 3] = a3;
  }
  for (; i < rows; ++i) {
    const double* __restrict r0 = bp + i * d;
    double acc = 0.0;
    for (std::size_t k = 0; k < d; ++k) acc += xp[k] * r0[k];
    op[i] = acc;
  }
}

AMF_MULTIVERSION
void GemvRowMajorStrided(std::span<const double> x, const double* block,
                         std::size_t stride, std::span<double> out) {
  const std::size_t d = x.size();
  const std::size_t rows = out.size();
  AMF_DCHECK(stride >= d);
  const double* __restrict xp = x.data();
  const double* __restrict bp = block;
#if defined(AMF_NATIVE_BUILD)
  // Arena contract: 64-byte base, stride a multiple of 8 doubles — every
  // row start is cache-line aligned, so the compiler may use aligned
  // vector loads for the row streams.
  bp = static_cast<const double*>(__builtin_assume_aligned(bp, 64));
#endif
  double* __restrict op = out.data();

  // Same four-row / independent-accumulator shape (and the same k order)
  // as GemvRowMajor above, so the reduction is bit-identical to it.
  std::size_t i = 0;
  for (; i + 4 <= rows; i += 4) {
    const double* __restrict r0 = bp + (i + 0) * stride;
    const double* __restrict r1 = bp + (i + 1) * stride;
    const double* __restrict r2 = bp + (i + 2) * stride;
    const double* __restrict r3 = bp + (i + 3) * stride;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (std::size_t k = 0; k < d; ++k) {
      const double xk = xp[k];
      a0 += xk * r0[k];
      a1 += xk * r1[k];
      a2 += xk * r2[k];
      a3 += xk * r3[k];
    }
    op[i + 0] = a0;
    op[i + 1] = a1;
    op[i + 2] = a2;
    op[i + 3] = a3;
  }
  for (; i < rows; ++i) {
    const double* __restrict r0 = bp + i * stride;
    double acc = 0.0;
    for (std::size_t k = 0; k < d; ++k) acc += xp[k] * r0[k];
    op[i] = acc;
  }
}

// Mixed-precision strided GEMVs for the compressed read replicas. The
// shape is deliberately the same four-row / independent-accumulator loop
// as the fp64 kernel with the widening folded into the accumulate: a
// separate widen-to-scratch pass measured SLOWER (the whole point of the
// replicas is to stay bandwidth-bound, and a scratch pass doubles the
// traffic through L1), while the fused form lets the vectorizer emit
// convert+FMA per lane and keeps the replica's smaller rows the only
// memory stream.

AMF_MULTIVERSION
void GemvRowMajorStridedFp32(std::span<const double> x, const float* block,
                             std::size_t stride, std::span<double> out) {
  const std::size_t d = x.size();
  const std::size_t rows = out.size();
  AMF_DCHECK(stride >= d);
  const double* __restrict xp = x.data();
  const float* __restrict bp = block;
#if defined(AMF_NATIVE_BUILD)
  // ReplicaArena contract: 64-byte base, stride a whole cache line of
  // floats — every row start is line-aligned.
  bp = static_cast<const float*>(__builtin_assume_aligned(bp, 64));
#endif
  double* __restrict op = out.data();

  std::size_t i = 0;
  for (; i + 4 <= rows; i += 4) {
    const float* __restrict r0 = bp + (i + 0) * stride;
    const float* __restrict r1 = bp + (i + 1) * stride;
    const float* __restrict r2 = bp + (i + 2) * stride;
    const float* __restrict r3 = bp + (i + 3) * stride;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (std::size_t k = 0; k < d; ++k) {
      const double xk = xp[k];
      a0 += xk * static_cast<double>(r0[k]);
      a1 += xk * static_cast<double>(r1[k]);
      a2 += xk * static_cast<double>(r2[k]);
      a3 += xk * static_cast<double>(r3[k]);
    }
    op[i + 0] = a0;
    op[i + 1] = a1;
    op[i + 2] = a2;
    op[i + 3] = a3;
  }
  for (; i < rows; ++i) {
    const float* __restrict r0 = bp + i * stride;
    double acc = 0.0;
    for (std::size_t k = 0; k < d; ++k) {
      acc += xp[k] * static_cast<double>(r0[k]);
    }
    op[i] = acc;
  }
}

AMF_MULTIVERSION
void GemvRowMajorStridedBf16(std::span<const double> x,
                             const std::uint16_t* block, std::size_t stride,
                             std::span<double> out) {
  const std::size_t d = x.size();
  const std::size_t rows = out.size();
  AMF_DCHECK(stride >= d);
  const double* __restrict xp = x.data();
  const std::uint16_t* __restrict bp = block;
#if defined(AMF_NATIVE_BUILD)
  bp = static_cast<const std::uint16_t*>(__builtin_assume_aligned(bp, 64));
#endif
  double* __restrict op = out.data();

  std::size_t i = 0;
  for (; i + 4 <= rows; i += 4) {
    const std::uint16_t* __restrict r0 = bp + (i + 0) * stride;
    const std::uint16_t* __restrict r1 = bp + (i + 1) * stride;
    const std::uint16_t* __restrict r2 = bp + (i + 2) * stride;
    const std::uint16_t* __restrict r3 = bp + (i + 3) * stride;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (std::size_t k = 0; k < d; ++k) {
      const double xk = xp[k];
      a0 += xk * WidenBf16(r0[k]);
      a1 += xk * WidenBf16(r1[k]);
      a2 += xk * WidenBf16(r2[k]);
      a3 += xk * WidenBf16(r3[k]);
    }
    op[i + 0] = a0;
    op[i + 1] = a1;
    op[i + 2] = a2;
    op[i + 3] = a3;
  }
  for (; i < rows; ++i) {
    const std::uint16_t* __restrict r0 = bp + i * stride;
    double acc = 0.0;
    for (std::size_t k = 0; k < d; ++k) acc += xp[k] * WidenBf16(r0[k]);
    op[i] = acc;
  }
}

}  // namespace amf::linalg

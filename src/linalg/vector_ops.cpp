#include "linalg/vector_ops.h"

#include <cmath>

#include "common/check.h"

namespace amf::linalg {

double Dot(std::span<const double> a, std::span<const double> b) {
  AMF_DCHECK(a.size() == b.size());
  const double* __restrict ap = a.data();
  const double* __restrict bp = b.data();
  const std::size_t n = a.size();
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += ap[i + 0] * bp[i + 0];
    s1 += ap[i + 1] * bp[i + 1];
    s2 += ap[i + 2] * bp[i + 2];
    s3 += ap[i + 3] * bp[i + 3];
  }
  double s = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) s += ap[i] * bp[i];
  return s;
}

void Axpy(double alpha, std::span<const double> x, std::span<double> y) {
  AMF_DCHECK(x.size() == y.size());
  const double* __restrict xp = x.data();
  double* __restrict yp = y.data();
  const std::size_t n = x.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    yp[i + 0] += alpha * xp[i + 0];
    yp[i + 1] += alpha * xp[i + 1];
    yp[i + 2] += alpha * xp[i + 2];
    yp[i + 3] += alpha * xp[i + 3];
  }
  for (; i < n; ++i) yp[i] += alpha * xp[i];
}

void Scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

double Norm2(std::span<const double> x) { return std::sqrt(NormSquared(x)); }

double NormSquared(std::span<const double> x) {
  double s = 0.0;
  for (double v : x) s += v * v;
  return s;
}

void Subtract(std::span<const double> a, std::span<const double> b,
              std::span<double> out) {
  AMF_DCHECK(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
}

double NormalizeInPlace(std::span<double> x) {
  const double n = Norm2(x);
  if (n > 0.0) Scale(1.0 / n, x);
  return n;
}

namespace reference {

double Dot(std::span<const double> a, std::span<const double> b) {
  AMF_DCHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void Axpy(double alpha, std::span<const double> x, std::span<double> y) {
  AMF_DCHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace reference

}  // namespace amf::linalg

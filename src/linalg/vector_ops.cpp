#include "linalg/vector_ops.h"

#include <cmath>

#include "common/check.h"

namespace amf::linalg {

double Dot(std::span<const double> a, std::span<const double> b) {
  AMF_DCHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void Axpy(double alpha, std::span<const double> x, std::span<double> y) {
  AMF_DCHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void Scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

double Norm2(std::span<const double> x) { return std::sqrt(NormSquared(x)); }

double NormSquared(std::span<const double> x) {
  double s = 0.0;
  for (double v : x) s += v * v;
  return s;
}

void Subtract(std::span<const double> a, std::span<const double> b,
              std::span<double> out) {
  AMF_DCHECK(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
}

double NormalizeInPlace(std::span<double> x) {
  const double n = Norm2(x);
  if (n > 0.0) Scale(1.0 / n, x);
  return n;
}

}  // namespace amf::linalg

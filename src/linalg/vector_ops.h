// Vector kernels on std::span<double>.
//
// These are the hot inner operations of the SGD updates (dot products and
// axpy on d-dimensional latent vectors, d = 10 in the paper). Dot and Axpy
// are 4-way unrolled (independent accumulators / independent lanes) so
// they pipeline and vectorize; the plain scalar formulations live in
// `reference::` and serve as the correctness oracle in tests.
#pragma once

#include <span>
#include <vector>

namespace amf::linalg {

/// Dot product. Spans must be the same length.
double Dot(std::span<const double> a, std::span<const double> b);

/// y += alpha * x.
void Axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void Scale(double alpha, std::span<double> x);

/// Euclidean (L2) norm.
double Norm2(std::span<const double> x);

/// Squared L2 norm.
double NormSquared(std::span<const double> x);

/// out = a - b (element-wise); spans must be the same length.
void Subtract(std::span<const double> a, std::span<const double> b,
              std::span<double> out);

/// Normalizes x to unit L2 norm; no-op on the zero vector. Returns the
/// original norm.
double NormalizeInPlace(std::span<double> x);

namespace reference {

/// Single-accumulator scalar dot product (oracle for the unrolled Dot;
/// the two differ only by floating-point summation order).
double Dot(std::span<const double> a, std::span<const double> b);

/// Plain-loop axpy oracle.
void Axpy(double alpha, std::span<const double> x, std::span<double> y);

}  // namespace reference

}  // namespace amf::linalg

// Batched prediction kernels.
//
// These are the hot inner loops of the batched scoring path: one user's
// latent vector against a contiguous row-major block of service factors
// (a rank-d GEMV), and the fused simultaneous SGD pair update of one
// online step. Both are written branch-free with independent accumulators
// so the compiler can unroll/vectorize them; `reference::` holds the
// plain scalar formulations that serve as the correctness oracle in
// tests (tests/batch_predict_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace amf::linalg {

/// Row-major GEMV: out[i] = dot(x, block[i*d .. i*d+d)) where d = x.size().
/// `block` must hold at least out.size() * d values. Rows are processed in
/// blocks of four with independent accumulators (SIMD/ILP friendly).
void GemvRowMajor(std::span<const double> x, std::span<const double> block,
                  std::span<double> out);

/// Strided variant for the arena-backed factor layout: row i starts at
/// block + i * stride with only the first x.size() lanes meaningful
/// (stride >= x.size(); the pad lanes are not read). The inner reduction
/// visits lanes in the same order as GemvRowMajor, so for stride ==
/// x.size() the two produce bit-identical results.
///
/// Alignment contract: `block` points at a 64-byte-aligned base and
/// `stride` is a multiple of 8 doubles (both guaranteed by
/// core::FactorArena), so every row start is 64-byte aligned. Under
/// AMF_NATIVE builds the kernel asserts that to the compiler
/// (assume_aligned) and may issue aligned vector loads — passing an
/// unaligned base from a non-arena caller is undefined there.
void GemvRowMajorStrided(std::span<const double> x, const double* block,
                         std::size_t stride, std::span<double> out);

/// Mixed-precision variants of GemvRowMajorStrided for the compressed
/// read replicas (core/replica_arena.h): the service block holds fp32 or
/// bf16 (raw-bits uint16) lanes, each widened to double at load and
/// accumulated in fp64 — identical loop shape and k order to the fp64
/// kernel, so the only deviation from it is the per-lane quantization of
/// the stored block. `stride` is in elements of the block's type; the
/// 64-byte base/row alignment contract carries over (ReplicaArena rounds
/// strides to a whole cache line of elements).
void GemvRowMajorStridedFp32(std::span<const double> x, const float* block,
                             std::size_t stride, std::span<double> out);
void GemvRowMajorStridedBf16(std::span<const double> x,
                             const std::uint16_t* block, std::size_t stride,
                             std::span<double> out);

/// Fused simultaneous SGD pair step (paper Eqs. 16-17):
///   u[k] <- u[k] - cu * (coef * s[k] + lambda_u * u[k])
///   s[k] <- s[k] - cs * (coef * u[k] + lambda_s * s[k])
/// with both updates computed from the *old* values (the hand-rolled loop
/// this replaces lived in AmfModel::OnlineUpdate). The arithmetic order is
/// kept bit-identical to that loop so fixed-seed traces are unchanged.
void SgdPairStep(std::span<double> u, std::span<double> s, double coef,
                 double cu, double cs, double lambda_u, double lambda_s);

namespace reference {

/// Scalar one-row-at-a-time GEMV oracle.
void GemvRowMajor(std::span<const double> x, std::span<const double> block,
                  std::span<double> out);

/// Scalar strict-IEEE oracles for the mixed-precision strided kernels
/// (single ascending-k accumulator per row, widening at load).
void GemvRowMajorStridedFp32(std::span<const double> x, const float* block,
                             std::size_t stride, std::span<double> out);
void GemvRowMajorStridedBf16(std::span<const double> x,
                             const std::uint16_t* block, std::size_t stride,
                             std::span<double> out);

/// Scalar SGD pair-step oracle (the pre-refactor OnlineUpdate loop).
void SgdPairStep(std::span<double> u, std::span<double> s, double coef,
                 double cu, double cs, double lambda_u, double lambda_s);

}  // namespace reference

}  // namespace amf::linalg

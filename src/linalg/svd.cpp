#include "linalg/svd.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace amf::linalg {

namespace {

/// Sum of squares of strictly off-diagonal elements.
double OffDiagonalNormSquared(const Matrix& m) {
  double s = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (i != j) s += m(i, j) * m(i, j);
    }
  }
  return s;
}

}  // namespace

std::vector<double> SymmetricEigenvalues(const Matrix& sym,
                                         const JacobiOptions& opts) {
  AMF_CHECK_MSG(sym.rows() == sym.cols(), "matrix must be square");
  const std::size_t n = sym.rows();
  if (n == 0) return {};
  // Verify symmetry (contract) up to rounding.
  const double scale = std::max(1.0, sym.FrobeniusNorm());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      AMF_CHECK_MSG(std::abs(sym(i, j) - sym(j, i)) <= 1e-8 * scale,
                    "matrix is not symmetric at (" << i << "," << j << ")");
    }
  }

  Matrix a = sym;
  const double total = a.FrobeniusNorm();
  const double threshold = opts.tolerance * std::max(total, 1e-300);

  for (std::size_t sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    if (std::sqrt(OffDiagonalNormSquared(a)) <= threshold) break;
    // Cyclic-by-row Jacobi sweep.
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        // Compute the rotation that annihilates a(p, q).
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Apply the rotation: A <- JᵀAJ on rows/cols p and q.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
      }
    }
  }

  std::vector<double> eigs(n);
  for (std::size_t i = 0; i < n; ++i) eigs[i] = a(i, i);
  std::sort(eigs.begin(), eigs.end(), std::greater<>());
  return eigs;
}

std::vector<double> SingularValues(const Matrix& a,
                                   const JacobiOptions& opts) {
  if (a.rows() == 0 || a.cols() == 0) return {};
  // Work with the smaller Gram matrix: A Aᵀ (rows x rows) or AᵀA.
  const bool tall = a.rows() > a.cols();
  const Matrix gram = tall ? a.Gram() : a.Transposed().Gram();
  std::vector<double> eigs = SymmetricEigenvalues(gram, opts);
  std::vector<double> svals(eigs.size());
  for (std::size_t i = 0; i < eigs.size(); ++i) {
    // Gram eigenvalues are >= 0 in exact arithmetic; clamp rounding noise.
    svals[i] = std::sqrt(std::max(0.0, eigs[i]));
  }
  return svals;
}

std::vector<double> NormalizedSingularValues(const Matrix& a,
                                             const JacobiOptions& opts) {
  std::vector<double> svals = SingularValues(a, opts);
  if (svals.empty() || svals.front() <= 0.0) return {};
  const double top = svals.front();
  for (double& v : svals) v /= top;
  return svals;
}

std::size_t EffectiveRank(const Matrix& a, double threshold,
                          const JacobiOptions& opts) {
  const std::vector<double> svals = NormalizedSingularValues(a, opts);
  std::size_t rank = 0;
  for (double v : svals) {
    if (v >= threshold) ++rank;
  }
  return rank;
}

}  // namespace amf::linalg

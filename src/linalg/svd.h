// Singular values via the symmetric Jacobi eigenvalue algorithm.
//
// Fig. 9 of the paper plots the sorted, normalized singular values of the
// user x service QoS matrices to justify the low-rank assumption. For an
// n x m matrix A we form the Gram matrix of the smaller side (A Aᵀ if
// n <= m), diagonalize it with cyclic Jacobi rotations (robust, O(k n³)
// with tiny constants for n = 142), and take square roots.
#pragma once

#include <vector>

#include "linalg/matrix.h"

namespace amf::linalg {

struct JacobiOptions {
  /// Convergence threshold on the off-diagonal Frobenius norm, relative to
  /// the matrix norm.
  double tolerance = 1e-12;
  /// Hard cap on full sweeps.
  std::size_t max_sweeps = 64;
};

/// Eigenvalues (descending) of a symmetric matrix. The input must be square
/// and symmetric; asymmetry beyond a small tolerance is a contract error.
std::vector<double> SymmetricEigenvalues(const Matrix& sym,
                                         const JacobiOptions& opts = {});

/// All singular values of `a` (descending, length min(rows, cols)).
std::vector<double> SingularValues(const Matrix& a,
                                   const JacobiOptions& opts = {});

/// Singular values scaled so the largest equals 1 (as plotted in Fig. 9).
/// Returns an empty vector for a zero matrix.
std::vector<double> NormalizedSingularValues(const Matrix& a,
                                             const JacobiOptions& opts = {});

/// Effective rank: number of normalized singular values >= threshold.
std::size_t EffectiveRank(const Matrix& a, double threshold = 0.1,
                          const JacobiOptions& opts = {});

}  // namespace amf::linalg

#include "linalg/random_init.h"

namespace amf::linalg {

void FillUniform(std::span<double> v, common::Rng& rng, double scale) {
  for (double& x : v) x = rng.Uniform() * scale;
}

void FillGaussian(std::span<double> v, common::Rng& rng, double stddev) {
  for (double& x : v) x = rng.Normal(0.0, stddev);
}

void FillUniform(Matrix& m, common::Rng& rng, double scale) {
  FillUniform(m.data(), rng, scale);
}

void FillGaussian(Matrix& m, common::Rng& rng, double stddev) {
  FillGaussian(m.data(), rng, stddev);
}

}  // namespace amf::linalg

#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace amf::obs {

namespace {

/// Relaxed atomic add for doubles via CAS (fetch_add on atomic<double> is
/// C++20 but not universally lock-free-lowered; the CAS loop is portable
/// and the histogram sum is not contended enough for it to matter).
void RelaxedAdd(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

LatencyHistogram::LatencyHistogram(const LatencyHistogramOptions& options)
    : min_(options.min_value),
      max_(options.max_value),
      inv_log_width_(static_cast<double>(options.buckets) /
                     std::log(options.max_value / options.min_value)),
      counts_(options.buckets) {
  AMF_CHECK_MSG(options.min_value > 0.0,
                "LatencyHistogram requires min_value > 0 (log-spaced)");
  AMF_CHECK_MSG(options.max_value > options.min_value,
                "LatencyHistogram requires max_value > min_value");
  AMF_CHECK_MSG(options.buckets > 0,
                "LatencyHistogram requires at least one bucket");
}

void LatencyHistogram::Record(double value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  if (std::isfinite(value)) RelaxedAdd(sum_, value);
  if (!(value >= min_)) {  // also catches NaN
    underflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (value >= max_) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const double pos = std::log(value / min_) * inv_log_width_;
  std::size_t bucket = pos <= 0.0 ? 0 : static_cast<std::size_t>(pos);
  bucket = std::min(bucket, counts_.size() - 1);
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
}

double LatencyHistogram::UpperBound(std::size_t bucket) const {
  const double frac =
      static_cast<double>(bucket + 1) / static_cast<double>(counts_.size());
  return min_ * std::pow(max_ / min_, frac);
}

double HistogramSnapshot::Percentile(double p) const {
  AMF_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile out of range");
  // Empty histogram: there is no latency to report. NaN is the documented
  // sentinel — a cold connection's histogram must not masquerade as "0s
  // p99" on a dashboard (JSON export maps non-finite to 0; Prometheus
  // carries the NaN through).
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  // p=0 / p=100 are edge queries, not ranks: report the occupied range's
  // bounds instead of interpolating inside a bucket. Underflow/overflow
  // populations saturate at the histogram bounds (the honest answer: the
  // true value lies at or beyond the edge).
  if (p == 0.0) {
    if (underflow > 0) return min_value;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] > 0) return i == 0 ? min_value : upper_bounds[i - 1];
    }
    return max_value;  // all samples were overflow
  }
  if (p == 100.0) {
    if (overflow > 0) return max_value;
    for (std::size_t i = counts.size(); i > 0; --i) {
      if (counts[i - 1] > 0) return upper_bounds[i - 1];
    }
    return min_value;  // all samples were underflow
  }
  const double rank = p / 100.0 * static_cast<double>(total);
  double cum = static_cast<double>(underflow);
  if (rank <= cum) return min_value;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double in_bucket = static_cast<double>(counts[i]);
    if (in_bucket > 0.0 && rank <= cum + in_bucket) {
      const double lower = i == 0 ? min_value : upper_bounds[i - 1];
      // A single sample gives the rank interpolation nothing to work
      // with (any point in the bucket is equally plausible); report the
      // bucket's inclusive upper edge — the conservative answer for a
      // latency SLO. Multi-sample buckets interpolate linearly.
      if (in_bucket < 2.0) return upper_bounds[i];
      const double frac = (rank - cum) / in_bucket;
      return lower + frac * (upper_bounds[i] - lower);
    }
    cum += in_bucket;
  }
  return max_value;  // rank lands in overflow (or on the last edge)
}

std::uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

bool MetricsSnapshot::HasCounter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return true;
  }
  return false;
}

double MetricsSnapshot::GaugeValue(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0.0;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

template <typename T, typename MakeFn>
T* MetricsRegistry::GetOrCreate(OwnedSlots<T>& kind, std::string_view name,
                                MakeFn make) {
  std::lock_guard<std::mutex> lock(register_mu_);
  const std::size_t n = kind.size.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    if (kind.slots[i].name == name) return kind.slots[i].metric.get();
  }
  AMF_CHECK_MSG(n < kMaxPerKind, "metrics registry full for '" << name << "'");
  kind.slots[n].name = std::string(name);
  kind.slots[n].metric = make();
  // Publish the fully constructed slot; Snapshot()'s acquire load of the
  // size pairs with this release store.
  kind.size.store(n + 1, std::memory_order_release);
  return kind.slots[n].metric.get();
}

template <typename Fn>
void MetricsRegistry::RegisterCallback(CallbackSlots<Fn>& kind,
                                       std::string_view name, Fn fn) {
  std::lock_guard<std::mutex> lock(register_mu_);
  const std::size_t n = kind.size.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    if (kind.slots[i].name == name) {
      // Replacement races with a concurrent Snapshot() call in principle;
      // in practice callbacks are (re)registered at component setup, not
      // while monitors poll. Keep the common path allocation-free.
      kind.slots[i].fn = std::move(fn);
      return;
    }
  }
  AMF_CHECK_MSG(n < kMaxPerKind, "metrics registry full for '" << name << "'");
  kind.slots[n].name = std::string(name);
  kind.slots[n].fn = std::move(fn);
  kind.size.store(n + 1, std::memory_order_release);
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  return GetOrCreate(counters_, name,
                     [] { return std::make_unique<Counter>(); });
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  return GetOrCreate(gauges_, name, [] { return std::make_unique<Gauge>(); });
}

LatencyHistogram* MetricsRegistry::GetLatencyHistogram(
    std::string_view name, const LatencyHistogramOptions& options) {
  return GetOrCreate(histograms_, name, [&options] {
    return std::make_unique<LatencyHistogram>(options);
  });
}

void MetricsRegistry::RegisterCallbackCounter(
    std::string_view name, std::function<std::uint64_t()> fn) {
  RegisterCallback(callback_counters_, name, std::move(fn));
}

void MetricsRegistry::RegisterCallbackGauge(std::string_view name,
                                            std::function<double()> fn) {
  RegisterCallback(callback_gauges_, name, std::move(fn));
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;

  const std::size_t nc = counters_.size.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < nc; ++i) {
    snap.counters.emplace_back(counters_.slots[i].name,
                               counters_.slots[i].metric->value());
  }
  const std::size_t ncc =
      callback_counters_.size.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < ncc; ++i) {
    snap.counters.emplace_back(callback_counters_.slots[i].name,
                               callback_counters_.slots[i].fn());
  }

  const std::size_t ng = gauges_.size.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < ng; ++i) {
    snap.gauges.emplace_back(gauges_.slots[i].name,
                             gauges_.slots[i].metric->value());
  }
  const std::size_t ncg = callback_gauges_.size.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < ncg; ++i) {
    snap.gauges.emplace_back(callback_gauges_.slots[i].name,
                             callback_gauges_.slots[i].fn());
  }

  const std::size_t nh = histograms_.size.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < nh; ++i) {
    const LatencyHistogram& h = *histograms_.slots[i].metric;
    HistogramSnapshot hs;
    hs.name = histograms_.slots[i].name;
    hs.min_value = h.min_value();
    hs.max_value = h.max_value();
    hs.upper_bounds.reserve(h.buckets());
    hs.counts.reserve(h.buckets());
    for (std::size_t b = 0; b < h.buckets(); ++b) {
      hs.upper_bounds.push_back(h.UpperBound(b));
      hs.counts.push_back(h.bucket_count(b));
    }
    hs.underflow = h.underflow();
    hs.overflow = h.overflow();
    hs.total = h.count();
    hs.sum = h.sum();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

}  // namespace amf::obs

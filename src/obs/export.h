// Exporters for MetricsSnapshot: machine-readable JSON and Prometheus
// text exposition format (version 0.0.4).
//
// Both exporters operate on an immutable snapshot, so they impose zero
// cost on the pipeline being observed; take the snapshot first, format
// at leisure. Doubles are emitted with %.9g and non-finite values are
// written as 0 in JSON (JSON has no NaN/Inf literal) and verbatim in
// Prometheus (which accepts NaN/+Inf/-Inf).
#pragma once

#include <string>

#include "obs/metrics.h"

namespace amf::obs {

/// One JSON object:
///   {
///     "counters":   {"ingest.reported": 123, ...},
///     "gauges":     {"ingest.ring_occupancy": 4, ...},
///     "histograms": {"predict.seconds": {"count": ..., "sum": ...,
///                    "mean": ..., "underflow": ..., "overflow": ...,
///                    "p50": ..., "p95": ..., "p99": ...,
///                    "buckets": [{"le": ..., "count": ...}, ...]}, ...}
///   }
/// Zero-count buckets are omitted from "buckets" to keep dumps compact;
/// the percentile fields are computed over the full bucket set.
std::string ToJson(const MetricsSnapshot& snapshot);

/// Prometheus text format. Metric names are sanitized ('.' and any other
/// non-[a-zA-Z0-9_] byte become '_') and prefixed with "amf_". Histograms
/// emit cumulative `_bucket{le="..."}` series: underflow samples are <=
/// every finite edge and so count into each cumulative bucket, overflow
/// only into `le="+Inf"`; `_sum` and `_count` follow.
std::string ToPrometheus(const MetricsSnapshot& snapshot);

}  // namespace amf::obs

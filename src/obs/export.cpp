#include "obs/export.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace amf::obs {

namespace {

/// Shortest-ish round-trippable double; JSON-safe when finite_only.
std::string FormatDouble(double v, bool finite_only) {
  if (!std::isfinite(v)) {
    if (!finite_only) return std::isnan(v) ? "NaN" : (v > 0 ? "+Inf" : "-Inf");
    return "0";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Metric names here are dotted identifiers; escape defensively anyway.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string PromName(const std::string& name) {
  std::string out = "amf_";
  for (char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return out;
}

}  // namespace

std::string ToJson(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    os << (i ? ",\n    " : "\n    ") << '"'
       << JsonEscape(snapshot.counters[i].first)
       << "\": " << snapshot.counters[i].second;
  }
  os << (snapshot.counters.empty() ? "},\n" : "\n  },\n");

  os << "  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    os << (i ? ",\n    " : "\n    ") << '"'
       << JsonEscape(snapshot.gauges[i].first)
       << "\": " << FormatDouble(snapshot.gauges[i].second, true);
  }
  os << (snapshot.gauges.empty() ? "},\n" : "\n  },\n");

  os << "  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& h = snapshot.histograms[i];
    os << (i ? ",\n    " : "\n    ") << '"' << JsonEscape(h.name) << "\": {"
       << "\"count\": " << h.total << ", \"sum\": "
       << FormatDouble(h.sum, true)
       << ", \"mean\": " << FormatDouble(h.mean(), true)
       << ", \"underflow\": " << h.underflow
       << ", \"overflow\": " << h.overflow
       << ", \"p50\": " << FormatDouble(h.p50(), true)
       << ", \"p95\": " << FormatDouble(h.p95(), true)
       << ", \"p99\": " << FormatDouble(h.p99(), true) << ", \"buckets\": [";
    bool first = true;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (h.counts[b] == 0) continue;  // compact dumps: skip empty buckets
      os << (first ? "" : ", ") << "{\"le\": "
         << FormatDouble(h.upper_bounds[b], true)
         << ", \"count\": " << h.counts[b] << '}';
      first = false;
    }
    os << "]}";
  }
  os << (snapshot.histograms.empty() ? "}\n" : "\n  }\n");
  os << "}\n";
  return os.str();
}

std::string ToPrometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string n = PromName(name);
    os << "# TYPE " << n << " counter\n" << n << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string n = PromName(name);
    os << "# TYPE " << n << " gauge\n"
       << n << ' ' << FormatDouble(value, false) << '\n';
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    const std::string n = PromName(h.name);
    os << "# TYPE " << n << " histogram\n";
    // Cumulative buckets: underflow samples are <= every finite edge.
    std::uint64_t cum = h.underflow;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      cum += h.counts[b];
      os << n << "_bucket{le=\"" << FormatDouble(h.upper_bounds[b], false)
         << "\"} " << cum << '\n';
    }
    os << n << "_bucket{le=\"+Inf\"} " << h.total << '\n';
    os << n << "_sum " << FormatDouble(h.sum, false) << '\n';
    os << n << "_count " << h.total << '\n';
  }
  return os.str();
}

}  // namespace amf::obs

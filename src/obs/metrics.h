// Runtime observability: a wait-free metrics layer for the online pipeline.
//
// Algorithm 1 runs forever, so the system's health can only be judged by
// instruments that work *while* it runs: a monitoring read must never
// queue behind a training epoch, and a hot path must never slow down to
// be counted. This registry provides three metric kinds under stable
// string names:
//
//   Counter          -- monotonically increasing uint64 (events)
//   Gauge            -- last-written double (levels: occupancy, ratios)
//   LatencyHistogram -- fixed log-spaced buckets with percentile readout
//
// plus callback variants that sample an existing atomic (or other
// wait-free source) at snapshot time, so components can expose counters
// they already maintain without moving ownership.
//
// Concurrency contract:
//   - Hot-path updates go through pointers resolved once at setup
//     (GetCounter/GetGauge/GetLatencyHistogram) and are single relaxed
//     atomic RMWs — no locks, no allocation, no fences.
//   - Snapshot() is wait-free with respect to every updater: it performs
//     relaxed loads only. A snapshot is a *consistent-enough* monitoring
//     view (counters read at slightly different instants), never a
//     blocking one.
//   - Registration is the only mutually-excluded operation (a mutex
//     against other registrations). Each new metric slot is fully
//     constructed, then published with one release store of the slot
//     count; Snapshot's acquire load of the count therefore only ever
//     walks completed, immutable-after-publish slots. Registering is
//     rare (setup time) and never contends with updates or snapshots.
//
// Memory-order rationale: metric values carry no inter-thread ordering
// obligations — they are statistics, not synchronization. A reader that
// observes a slightly stale counter is correct by definition, so every
// value access is std::memory_order_relaxed; the only acquire/release
// pair in the subsystem publishes slot construction (see above).
//
// Lifetime: callbacks registered on a registry may capture components
// (rings, trainers); the registry must not be snapshotted after such a
// component is destroyed. In this codebase registries and the components
// feeding them share one owner (e.g. ConcurrentPredictionService), which
// makes that ordering structural.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace amf::obs {

/// Monotonic event counter. Relaxed increments, wait-free reads.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written level. Relaxed stores, wait-free reads.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct LatencyHistogramOptions {
  /// Lower edge of the first bucket. Values below it (and NaN) count as
  /// underflow, not into any bucket.
  double min_value = 1e-6;  // 1 microsecond, in seconds
  /// Upper edge of the last bucket. Values >= it count as overflow.
  double max_value = 60.0;
  /// Number of log-spaced buckets between min_value and max_value.
  std::size_t buckets = 64;
};

/// Fixed-bucket latency histogram with log-spaced bucket edges.
///
// Record() is one relaxed fetch_add on the target bucket plus a log to
// locate it; there is no lock and no allocation, so any number of
// threads may record concurrently. Out-of-range samples are tracked as
// explicit underflow/overflow counts — they are never folded into the
// edge buckets (the same skew bug fixed in common::Histogram), so
// percentile extraction can saturate honestly at the histogram bounds.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(const LatencyHistogramOptions& options = {});

  /// Records one sample (seconds). Wait-free; callable from any thread.
  void Record(double value);

  std::size_t buckets() const { return counts_.size(); }
  double min_value() const { return min_; }
  double max_value() const { return max_; }
  /// Inclusive upper edge of bucket i (log-spaced).
  double UpperBound(std::size_t bucket) const;

  // Wait-free reads (relaxed; monitoring only).
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t underflow() const {
    return underflow_.load(std::memory_order_relaxed);
  }
  std::uint64_t overflow() const {
    return overflow_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket_count(std::size_t bucket) const {
    return counts_[bucket].load(std::memory_order_relaxed);
  }

 private:
  double min_;
  double max_;
  double inv_log_width_;  // buckets / log(max/min)
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> underflow_{0};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<double> sum_{0.0};
  std::vector<std::atomic<std::uint64_t>> counts_;
};

/// Point-in-time copy of one histogram, with percentile extraction.
struct HistogramSnapshot {
  std::string name;
  double min_value = 0.0;
  double max_value = 0.0;
  std::vector<double> upper_bounds;     ///< per-bucket inclusive upper edge
  std::vector<std::uint64_t> counts;    ///< per-bucket sample counts
  std::uint64_t underflow = 0;
  std::uint64_t overflow = 0;
  std::uint64_t total = 0;  ///< all recorded samples incl. under/overflow
  double sum = 0.0;

  double mean() const {
    return total > 0 ? sum / static_cast<double>(total) : 0.0;
  }

  /// p in [0, 100]. Linear interpolation inside the hit bucket; saturates
  /// at min_value / max_value for ranks landing in underflow / overflow.
  /// Edge semantics (the serving front-end exports these on cold
  /// connections, so they are contractual):
  ///   - empty histogram        -> NaN (documented sentinel; never a fake
  ///                               0-latency reading)
  ///   - p == 0 / p == 100      -> lower/upper edge of the occupied bucket
  ///                               range (bounds for under/overflow)
  ///   - single-sample bucket   -> that bucket's inclusive upper edge
  ///                               (interpolating one sample is
  ///                               meaningless; the edge is conservative)
  ///   - all-overflow population-> max_value for every p (a lower bound,
  ///                               not an estimate; all-underflow
  ///                               mirrors with min_value)
  double Percentile(double p) const;
  double p50() const { return Percentile(50.0); }
  double p95() const { return Percentile(95.0); }
  double p99() const { return Percentile(99.0); }
};

/// Point-in-time copy of a whole registry.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Counter value by name; 0 when absent.
  std::uint64_t CounterValue(std::string_view name) const;
  /// Gauge value by name; 0 when absent.
  double GaugeValue(std::string_view name) const;
  /// Histogram by name; nullptr when absent.
  const HistogramSnapshot* FindHistogram(std::string_view name) const;
  bool HasCounter(std::string_view name) const;
};

/// Named metrics for one pipeline instance. See the file comment for the
/// concurrency contract. Capacity is fixed (kMaxPerKind per metric kind)
/// so publication is a single release store into a pre-sized slot array.
class MetricsRegistry {
 public:
  static constexpr std::size_t kMaxPerKind = 256;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under `name`, creating it on first
  /// use. The pointer is stable for the registry's lifetime.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// `options` apply only on first creation; later calls with the same
  /// name return the existing histogram unchanged.
  LatencyHistogram* GetLatencyHistogram(
      std::string_view name, const LatencyHistogramOptions& options = {});

  /// Exposes an externally-owned wait-free source as a counter/gauge,
  /// sampled at Snapshot() time. `fn` must itself be safe to call
  /// concurrently with the source's writers (e.g. a relaxed atomic load)
  /// and must outlive the registry's last Snapshot(). Re-registering a
  /// name replaces the callback.
  void RegisterCallbackCounter(std::string_view name,
                               std::function<std::uint64_t()> fn);
  void RegisterCallbackGauge(std::string_view name,
                             std::function<double()> fn);

  /// Wait-free monitoring view: relaxed loads of every published metric
  /// plus one call per registered callback. Never blocks an updater and
  /// is never blocked by one.
  MetricsSnapshot Snapshot() const;

 private:
  template <typename T>
  struct OwnedSlots {
    struct Slot {
      std::string name;
      std::unique_ptr<T> metric;
    };
    std::array<Slot, kMaxPerKind> slots;
    std::atomic<std::size_t> size{0};
  };
  template <typename Fn>
  struct CallbackSlots {
    struct Slot {
      std::string name;
      Fn fn;
    };
    std::array<Slot, kMaxPerKind> slots;
    std::atomic<std::size_t> size{0};
  };

  template <typename T, typename MakeFn>
  T* GetOrCreate(OwnedSlots<T>& kind, std::string_view name, MakeFn make);
  template <typename Fn>
  void RegisterCallback(CallbackSlots<Fn>& kind, std::string_view name,
                        Fn fn);

  mutable std::mutex register_mu_;  // registration vs registration only
  OwnedSlots<Counter> counters_;
  OwnedSlots<Gauge> gauges_;
  OwnedSlots<LatencyHistogram> histograms_;
  CallbackSlots<std::function<std::uint64_t()>> callback_counters_;
  CallbackSlots<std::function<double()>> callback_gauges_;
};

}  // namespace amf::obs

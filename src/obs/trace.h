// Lightweight scoped-trace timers: bracket a hot-path section and record
// its wall time into a LatencyHistogram on scope exit.
//
// Null-safe by design — call sites are instrumented unconditionally and
// pass whatever histogram pointer their component resolved at setup
// (nullptr when metrics are disabled), so the uninstrumented cost is one
// branch.
#pragma once

#include "common/timer.h"
#include "obs/metrics.h"

namespace amf::obs {

/// Records the scope's elapsed seconds into `histogram` on destruction.
/// No-op when `histogram` is nullptr.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(LatencyHistogram* histogram)
      : histogram_(histogram) {}

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

  ~ScopedLatencyTimer() {
    if (histogram_ != nullptr) histogram_->Record(watch_.ElapsedSeconds());
  }

 private:
  LatencyHistogram* histogram_;
  common::Stopwatch watch_;
};

/// Counts the call on entry and records the scope's elapsed seconds on
/// exit — the usual pair for an instrumented hot path. Either pointer
/// may be nullptr independently.
class ScopedCounterTimer {
 public:
  ScopedCounterTimer(Counter* calls, LatencyHistogram* histogram)
      : calls_(calls), timer_(histogram) {
    if (calls_ != nullptr) calls_->Increment();
  }

 private:
  Counter* calls_;
  ScopedLatencyTimer timer_;
};

}  // namespace amf::obs

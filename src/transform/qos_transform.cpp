#include "transform/qos_transform.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace amf::transform {

double Sigmoid(double x) {
  // Split on sign to avoid overflow in exp().
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

double SigmoidDerivative(double x) {
  const double g = Sigmoid(x);
  return g * (1.0 - g);
}

double Logit(double y, double eps) {
  const double c = std::clamp(y, eps, 1.0 - eps);
  return std::log(c / (1.0 - c));
}

namespace {

QoSTransformConfig Validate(QoSTransformConfig c) {
  AMF_CHECK_MSG(c.r_max > c.r_min, "QoSTransform requires r_max > r_min");
  AMF_CHECK_MSG(c.value_floor > 0.0, "value_floor must be positive");
  AMF_CHECK_MSG(c.value_floor < c.r_max, "value_floor must be < r_max");
  return c;
}

}  // namespace

QoSTransform::QoSTransform(const QoSTransformConfig& config)
    : config_(Validate(config)),
      boxcox_min_(BoxCox(std::max(config_.r_min, config_.value_floor),
                         config_.alpha)),
      boxcox_max_(BoxCox(config_.r_max, config_.alpha)),
      normalizer_(boxcox_min_, boxcox_max_) {}

double QoSTransform::Forward(double raw) const {
  const double clamped =
      std::clamp(raw, std::max(config_.r_min, config_.value_floor),
                 config_.r_max);
  const double r = normalizer_.Normalize(BoxCox(clamped, config_.alpha));
  // Floor r away from 0 so the relative-error loss (r in the denominator)
  // stays finite; the ceiling keeps Inverse within BoxCox's domain.
  return std::clamp(r, config_.value_floor, 1.0);
}

double QoSTransform::Inverse(double normalized) const {
  const double r = std::clamp(normalized, 0.0, 1.0);
  return BoxCoxInverse(normalizer_.Denormalize(r), config_.alpha);
}

double QoSTransform::PredictRaw(double latent_inner_product) const {
  return Inverse(Sigmoid(latent_inner_product));
}

}  // namespace amf::transform

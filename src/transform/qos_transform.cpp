#include "transform/qos_transform.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "common/check.h"
#include "common/multiversion.h"

namespace amf::transform {

double Sigmoid(double x) {
  // Split on sign to avoid overflow in exp().
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

double SigmoidDerivative(double x) {
  const double g = Sigmoid(x);
  return g * (1.0 - g);
}

double Logit(double y, double eps) {
  const double c = std::clamp(y, eps, 1.0 - eps);
  return std::log(c / (1.0 - c));
}

AMF_MULTIVERSION
void ExpRow(std::span<const double> x, std::span<double> out) {
  AMF_DCHECK(out.size() == x.size());
  // exp(v) = 2^k * exp(r),  k = round(v * log2(e)),  r = v - k ln2.
  // The rounding uses the 1.5*2^52 magic-shift trick (round-to-nearest
  // lands the integer in the low mantissa bits), the reduction is
  // Cody-Waite two-term so k*ln2_hi is exact, and 2^k is assembled by
  // writing k into the exponent field. Everything is straight-line
  // min/max/mul/add/integer ops, so the loop auto-vectorizes.
  constexpr double kLog2E = 1.44269504088896340736;
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  constexpr double kShift = 6755399441055744.0;  // 1.5 * 2^52
  const std::int64_t shift_bits = std::bit_cast<std::int64_t>(kShift);
  const double* __restrict xp = x.data();
  double* __restrict op = out.data();
  for (std::size_t i = 0; i < x.size(); ++i) {
    double v = xp[i];
    v = v < -708.0 ? -708.0 : v;
    v = v > 708.0 ? 708.0 : v;
    const double kd = v * kLog2E + kShift;
    const std::int64_t k = std::bit_cast<std::int64_t>(kd) - shift_bits;
    const double kf = kd - kShift;
    const double r = (v - kf * kLn2Hi) - kf * kLn2Lo;
    // Degree-13 Taylor polynomial of exp on |r| <= ln2/2 (max error ~4e-18
    // before rounding, a few ulp after).
    double p = 1.6059043836821614599e-10;   // 1/13!
    p = p * r + 2.0876756987868098979e-09;  // 1/12!
    p = p * r + 2.5052108385441718775e-08;  // 1/11!
    p = p * r + 2.7557319223985890653e-07;  // 1/10!
    p = p * r + 2.7557319223985892511e-06;  // 1/9!
    p = p * r + 2.4801587301587301566e-05;  // 1/8!
    p = p * r + 1.9841269841269841253e-04;  // 1/7!
    p = p * r + 1.3888888888888889419e-03;  // 1/6!
    p = p * r + 8.3333333333333332177e-03;  // 1/5!
    p = p * r + 4.1666666666666664354e-02;  // 1/4!
    p = p * r + 1.6666666666666665741e-01;  // 1/3!
    p = p * r + 5.0000000000000000000e-01;  // 1/2!
    p = p * r + 1.0;
    p = p * r + 1.0;
    const double scale = std::bit_cast<double>((k + 1023) << 52);
    op[i] = p * scale;
  }
}

AMF_MULTIVERSION
void SigmoidRow(std::span<const double> x, std::span<double> out) {
  AMF_DCHECK(out.size() == x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = -x[i];
  ExpRow(out, out);
  double* __restrict op = out.data();
  for (std::size_t i = 0; i < out.size(); ++i) op[i] = 1.0 / (1.0 + op[i]);
}

AMF_MULTIVERSION
void LogRow(std::span<const double> x, std::span<double> out) {
  AMF_DCHECK(out.size() == x.size());
  // log(x) = k ln2 + log(m) with m = x * 2^-k reduced into
  // [sqrt(1/2), sqrt(2)). The reduction subtracts the exponent bits
  // relative to sqrt(1/2) so the split point lands at sqrt(2); log(m) is
  // then 2 atanh(s) with s = (m-1)/(m+1), an odd series in s that
  // converges fast because |s| <= 0.1716. Straight-line arithmetic only —
  // the loop vectorizes like ExpRow.
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  // Bit pattern of sqrt(1/2); subtracting it aligns the exponent split.
  constexpr std::int64_t kSqrtHalfBits = 0x3fe6a09e667f3bcd;
  constexpr double kShift = 6755399441055744.0;  // 1.5 * 2^52
  const std::int64_t shift_bits = std::bit_cast<std::int64_t>(kShift);
  const double* __restrict xp = x.data();
  double* __restrict op = out.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t bits = std::bit_cast<std::int64_t>(xp[i]);
    // k = signed exponent offset. The +2^62 bias keeps the shifted value
    // nonnegative so a logical shift suffices (SSE2/AVX2 have no 64-bit
    // arithmetic right shift), and double(k) is recovered with the same
    // 1.5*2^52 magic-shift used in ExpRow (no int64->double conversion
    // instruction below AVX-512 either).
    constexpr std::int64_t kBias = std::int64_t{1} << 62;
    const std::int64_t k =
        static_cast<std::int64_t>(
            static_cast<std::uint64_t>(bits - kSqrtHalfBits + kBias) >> 52) -
        (kBias >> 52);
    const double m = std::bit_cast<double>(bits - (k << 52));
    const double kf = std::bit_cast<double>(k + shift_bits) - kShift;
    const double s = (m - 1.0) / (m + 1.0);
    const double z = s * s;
    // atanh series: log(m) = 2s (1 + z/3 + z^2/5 + ... + z^8/17); the
    // truncated tail is < 1e-16 over |s| <= 0.1716.
    double p = 1.0 / 17.0;
    p = p * z + 1.0 / 15.0;
    p = p * z + 1.0 / 13.0;
    p = p * z + 1.0 / 11.0;
    p = p * z + 1.0 / 9.0;
    p = p * z + 1.0 / 7.0;
    p = p * z + 1.0 / 5.0;
    p = p * z + 1.0 / 3.0;
    p = p * z + 1.0;
    op[i] = kf * kLn2Hi + ((2.0 * s) * p + kf * kLn2Lo);
  }
}

namespace {

QoSTransformConfig Validate(QoSTransformConfig c) {
  AMF_CHECK_MSG(c.r_max > c.r_min, "QoSTransform requires r_max > r_min");
  AMF_CHECK_MSG(c.value_floor > 0.0, "value_floor must be positive");
  AMF_CHECK_MSG(c.value_floor < c.r_max, "value_floor must be < r_max");
  return c;
}

}  // namespace

QoSTransform::QoSTransform(const QoSTransformConfig& config)
    : config_(Validate(config)),
      boxcox_min_(BoxCox(std::max(config_.r_min, config_.value_floor),
                         config_.alpha)),
      boxcox_max_(BoxCox(config_.r_max, config_.alpha)),
      normalizer_(boxcox_min_, boxcox_max_) {}

double QoSTransform::Forward(double raw) const {
  // BoxCoxClamped (rather than clamp + BoxCox) also absorbs NaN input:
  // a domain error here would unwind through trainer worker threads, so
  // Forward is total — garbage raw values map to the floor. The
  // ingestion validator is the layer that rejects them loudly.
  const double clamped =
      std::min(BoxCoxClamped(raw, config_.alpha,
                             std::max(config_.r_min, config_.value_floor)),
               boxcox_max_);
  const double r = normalizer_.Normalize(clamped);
  // Floor r away from 0 so the relative-error loss (r in the denominator)
  // stays finite; the ceiling keeps Inverse within BoxCox's domain.
  return std::clamp(r, config_.value_floor, 1.0);
}

double QoSTransform::Inverse(double normalized) const {
  const double r = std::clamp(normalized, 0.0, 1.0);
  return BoxCoxInverse(normalizer_.Denormalize(r), config_.alpha);
}

AMF_MULTIVERSION
void QoSTransform::InverseRow(std::span<double> inout) const {
  // Vectorized Inverse: the per-entry std::pow of BoxCoxInverse becomes
  // exp(log(base) / alpha) over the whole row. base = alpha * R~ + 1 =
  // x^alpha > 0 always holds because the input is clamped into [0, 1]
  // (the normalizer bounds come from BoxCox of positive raw bounds).
  const double lo = normalizer_.lo();
  const double span = normalizer_.hi() - lo;
  const double alpha = config_.alpha;
  double* __restrict p = inout.data();
  const std::size_t n = inout.size();
  if (alpha == 0.0) {
    // BoxCoxInverse degenerates to exp(R~).
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = std::clamp(p[i], 0.0, 1.0) * span + lo;
    }
    ExpRow(inout, inout);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double r = std::clamp(p[i], 0.0, 1.0);
    p[i] = alpha * (r * span + lo) + 1.0;
  }
  LogRow(inout, inout);
  const double inv_alpha = 1.0 / alpha;
  for (std::size_t i = 0; i < n; ++i) p[i] *= inv_alpha;
  ExpRow(inout, inout);
}

double QoSTransform::PredictRaw(double latent_inner_product) const {
  return Inverse(Sigmoid(latent_inner_product));
}

}  // namespace amf::transform

// The full AMF data-transformation pipeline (paper §IV-C-1):
//
//   raw QoS R  --clamp-->  [value_floor, r_max]
//              --BoxCox(alpha)-->  R~
//              --linear [0,1]-->   r
//
// plus the exact inverse used for prediction readout, and the sigmoid link
// g(x) = 1 / (1 + e^-x) that maps latent inner products into [0, 1].
//
// The paper states Rmin = 0, but BoxCox with alpha <= 0 is undefined at 0,
// so any faithful implementation must clamp raw values to a small positive
// floor first; `value_floor` (default 1e-3) plays that role and also floors
// the normalized value r away from 0 in the relative-error loss.
#pragma once

#include <span>

#include "transform/boxcox.h"
#include "transform/normalizer.h"

namespace amf::transform {

/// Numerically safe sigmoid.
double Sigmoid(double x);

/// Sigmoid derivative g'(x) = g(x) (1 - g(x)).
double SigmoidDerivative(double x);

/// Element-wise exp over a row, branch-free (Cody-Waite range reduction +
/// degree-13 polynomial + exponent-bit scaling) so the loop vectorizes and
/// pipelines; accurate to a few ulp of std::exp. Inputs are clamped to
/// [-708, 708] (results saturate instead of over/underflowing). `out` may
/// alias `x`; sizes must match.
void ExpRow(std::span<const double> x, std::span<double> out);

/// Element-wise sigmoid over a row via ExpRow: out[i] = 1/(1 + exp(-x[i])),
/// within a few ulp of the scalar Sigmoid. `out` may alias `x`.
void SigmoidRow(std::span<const double> x, std::span<double> out);

/// Element-wise natural log over a row, branch-free (exponent extraction +
/// atanh-series polynomial on the reduced mantissa), accurate to a few ulp
/// of std::log. Requires every x[i] > 0 (finite, non-denormal). `out` may
/// alias `x`.
void LogRow(std::span<const double> x, std::span<double> out);

/// Logit (inverse sigmoid); input is clamped into (eps, 1-eps).
double Logit(double y, double eps = 1e-12);

struct QoSTransformConfig {
  /// Box-Cox exponent (paper: -0.007 for RT, -0.05 for TP; 1 disables).
  double alpha = 1.0;
  /// Maximal raw QoS value (paper: 20 s for RT, 7000 kbps for TP).
  double r_max = 20.0;
  /// Minimal raw QoS value (paper: 0; must be < r_max).
  double r_min = 0.0;
  /// Positive floor applied before Box-Cox, and to normalized values.
  double value_floor = 1e-3;
};

/// Bidirectional raw-QoS <-> normalized-[0,1] mapping.
class QoSTransform {
 public:
  explicit QoSTransform(const QoSTransformConfig& config);

  const QoSTransformConfig& config() const { return config_; }

  /// raw -> normalized r in [0, 1] (floored at `value_floor`).
  double Forward(double raw) const;

  /// normalized -> raw (exact inverse of Forward up to the clamps).
  double Inverse(double normalized) const;

  /// In-place Inverse over a whole row of normalized predictions (the
  /// batch readout of PredictRowRaw). Vectorized: the Box-Cox inverse
  /// power is computed as ExpRow(LogRow(base) / alpha) instead of a
  /// std::pow per entry, so results agree with the scalar Inverse to
  /// ~1e-14 relative rather than bit-for-bit.
  void InverseRow(std::span<double> inout) const;

  /// Convenience: predicted raw QoS from a latent inner product,
  /// Inverse(Sigmoid(inner)).
  double PredictRaw(double latent_inner_product) const;

 private:
  QoSTransformConfig config_;
  double boxcox_min_;  // BoxCox(clamped r_min)
  double boxcox_max_;  // BoxCox(r_max)
  LinearNormalizer normalizer_;
};

}  // namespace amf::transform

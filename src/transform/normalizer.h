// Linear [0,1] normalization between fixed bounds (paper Eq. 4).
#pragma once

namespace amf::transform {

/// Maps [lo, hi] linearly onto [0, 1]. lo < hi is required.
class LinearNormalizer {
 public:
  LinearNormalizer(double lo, double hi);

  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// (x - lo) / (hi - lo). Inputs outside [lo, hi] extrapolate linearly.
  double Normalize(double x) const;

  /// Inverse map: y * (hi - lo) + lo.
  double Denormalize(double y) const;

 private:
  double lo_;
  double hi_;
  double inv_span_;
};

}  // namespace amf::transform

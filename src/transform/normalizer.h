// Linear [0,1] normalization between fixed bounds (paper Eq. 4).
#pragma once

namespace amf::transform {

/// Maps [lo, hi] linearly onto [0, 1].
class LinearNormalizer {
 public:
  /// Throws common::CheckError when the fit range is unusable: lo or hi
  /// non-finite, or hi <= lo (an empty or degenerate range would make
  /// Normalize divide by zero and poison everything downstream with
  /// NaN/Inf, so it is refused at construction instead).
  LinearNormalizer(double lo, double hi);

  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// (x - lo) / (hi - lo). Inputs outside [lo, hi] extrapolate linearly.
  double Normalize(double x) const;

  /// Inverse map: y * (hi - lo) + lo.
  double Denormalize(double y) const;

 private:
  double lo_;
  double hi_;
  double inv_span_;
};

}  // namespace amf::transform

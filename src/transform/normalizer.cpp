#include "transform/normalizer.h"

#include <cmath>

#include "common/check.h"

namespace amf::transform {

LinearNormalizer::LinearNormalizer(double lo, double hi)
    : lo_(lo), hi_(hi), inv_span_(1.0 / (hi - lo)) {
  AMF_CHECK_MSG(std::isfinite(lo) && std::isfinite(hi),
                "LinearNormalizer requires finite bounds, got [" << lo << ", "
                                                                 << hi << "]");
  AMF_CHECK_MSG(hi > lo, "LinearNormalizer fit range is empty or degenerate: "
                         "requires hi > lo, got ["
                             << lo << ", " << hi << "]");
}

double LinearNormalizer::Normalize(double x) const {
  return (x - lo_) * inv_span_;
}

double LinearNormalizer::Denormalize(double y) const {
  return y * (hi_ - lo_) + lo_;
}

}  // namespace amf::transform

#include "transform/normalizer.h"

#include "common/check.h"

namespace amf::transform {

LinearNormalizer::LinearNormalizer(double lo, double hi)
    : lo_(lo), hi_(hi), inv_span_(1.0 / (hi - lo)) {
  AMF_CHECK_MSG(hi > lo, "LinearNormalizer requires hi > lo");
}

double LinearNormalizer::Normalize(double x) const {
  return (x - lo_) * inv_span_;
}

double LinearNormalizer::Denormalize(double y) const {
  return y * (hi_ - lo_) + lo_;
}

}  // namespace amf::transform

// Box-Cox power transformation (paper Eq. 3).
//
//   boxcox(x) = (x^a - 1) / a   if a != 0
//             = log(x)          if a == 0
//
// Monotonically nondecreasing in x for every a, which is what makes the
// normalization bounds R~min/R~max simply the transforms of Rmin/Rmax.
// Only defined for x > 0; the QoSTransform pipeline clamps inputs first.
#pragma once

namespace amf::transform {

/// Forward Box-Cox transform. Requires x > 0.
double BoxCox(double x, double alpha);

/// Domain-safe forward transform: x is clamped to at least `epsilon`
/// before the transform, so non-positive and NaN inputs map to
/// BoxCox(epsilon) instead of throwing. Requires epsilon > 0. This is the
/// entry point ingestion-adjacent code should use; a thrown domain error
/// deep inside a trainer thread would otherwise take the worker down.
double BoxCoxClamped(double x, double alpha, double epsilon);

/// Inverse Box-Cox transform: returns x such that BoxCox(x, alpha) == y.
/// For alpha != 0 requires (alpha * y + 1) > 0.
double BoxCoxInverse(double y, double alpha);

/// Derivative d/dx boxcox(x) = x^(a-1). Requires x > 0.
double BoxCoxDerivative(double x, double alpha);

}  // namespace amf::transform

// Box-Cox power transformation (paper Eq. 3).
//
//   boxcox(x) = (x^a - 1) / a   if a != 0
//             = log(x)          if a == 0
//
// Monotonically nondecreasing in x for every a, which is what makes the
// normalization bounds R~min/R~max simply the transforms of Rmin/Rmax.
// Only defined for x > 0; the QoSTransform pipeline clamps inputs first.
#pragma once

namespace amf::transform {

/// Forward Box-Cox transform. Requires x > 0.
double BoxCox(double x, double alpha);

/// Inverse Box-Cox transform: returns x such that BoxCox(x, alpha) == y.
/// For alpha != 0 requires (alpha * y + 1) > 0.
double BoxCoxInverse(double y, double alpha);

/// Derivative d/dx boxcox(x) = x^(a-1). Requires x > 0.
double BoxCoxDerivative(double x, double alpha);

}  // namespace amf::transform

#include "transform/boxcox.h"

#include <cmath>

#include "common/check.h"

namespace amf::transform {

double BoxCox(double x, double alpha) {
  AMF_CHECK_MSG(x > 0.0, "BoxCox requires x > 0, got " << x);
  if (alpha == 0.0) return std::log(x);
  return (std::pow(x, alpha) - 1.0) / alpha;
}

double BoxCoxClamped(double x, double alpha, double epsilon) {
  AMF_CHECK_MSG(epsilon > 0.0, "BoxCoxClamped requires epsilon > 0");
  // NaN fails the comparison and falls through to epsilon as well.
  const double safe = x > epsilon ? x : epsilon;
  return BoxCox(safe, alpha);
}

double BoxCoxInverse(double y, double alpha) {
  if (alpha == 0.0) return std::exp(y);
  const double base = alpha * y + 1.0;
  AMF_CHECK_MSG(base > 0.0,
                "BoxCoxInverse out of range: alpha*y+1 = " << base);
  return std::pow(base, 1.0 / alpha);
}

double BoxCoxDerivative(double x, double alpha) {
  AMF_CHECK_MSG(x > 0.0, "BoxCoxDerivative requires x > 0");
  return std::pow(x, alpha - 1.0);
}

}  // namespace amf::transform

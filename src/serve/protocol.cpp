#include "serve/protocol.h"

#include <cstring>

namespace amf::serve {

namespace {

template <typename T>
void PutRaw(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

template <typename T>
T GetRaw(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

/// Reserves the length field, writes the fixed header, and returns the
/// offset where frame_len must be patched once the payload is appended.
std::size_t BeginFrame(std::string& out, Opcode opcode, bool response,
                       Status status, std::uint64_t request_id) {
  const std::size_t len_at = out.size();
  PutRaw<std::uint32_t>(out, 0);  // patched by EndFrame
  out.push_back(static_cast<char>(static_cast<std::uint8_t>(opcode) |
                                  (response ? kResponseBit : 0)));
  out.push_back(static_cast<char>(status));
  PutRaw<std::uint64_t>(out, request_id);
  return len_at;
}

void EndFrame(std::string& out, std::size_t len_at) {
  const std::uint32_t len =
      static_cast<std::uint32_t>(out.size() - len_at - sizeof(std::uint32_t));
  std::memcpy(out.data() + len_at, &len, sizeof(len));
}

/// Structural payload-size contract per opcode; SIZE_MAX = variable
/// (validated by the dedicated parser).
constexpr std::size_t kVariable = static_cast<std::size_t>(-1);

std::size_t ExpectedPayloadBytes(Opcode opcode, bool is_response) {
  switch (opcode) {
    case Opcode::kPing:
      return is_response ? sizeof(std::uint8_t) : 0;  // wire marker byte
    case Opcode::kPredict:
      return is_response ? sizeof(double) : 2 * sizeof(std::uint32_t);
    case Opcode::kPredictMany:
      return kVariable;
    case Opcode::kReportObs:
      return is_response ? 0 : 3 * sizeof(std::uint32_t) + 2 * sizeof(double);
    case Opcode::kMetrics:
      return is_response ? kVariable : 0;
  }
  return kVariable;  // unreachable; opcode validated before the call
}

bool KnownOpcode(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(Opcode::kPing) &&
         raw <= static_cast<std::uint8_t>(Opcode::kMetrics);
}

}  // namespace

DecodeResult DecodeFrame(std::string_view buffer, Frame* frame,
                         std::size_t* consumed, std::string* error) {
  if (buffer.size() < sizeof(std::uint32_t)) return DecodeResult::kNeedMore;
  const std::uint32_t frame_len = GetRaw<std::uint32_t>(buffer.data());
  if (frame_len < kFrameFixedBytes) {
    if (error != nullptr) {
      *error = "frame_len " + std::to_string(frame_len) +
               " below fixed header size";
    }
    return DecodeResult::kProtocolError;
  }
  if (frame_len > kMaxFrameLen) {
    // Reject BEFORE waiting for the bytes: a flipped length bit must not
    // make the server buffer a gigabyte while "needing more".
    if (error != nullptr) {
      *error = "frame_len " + std::to_string(frame_len) + " exceeds limit " +
               std::to_string(kMaxFrameLen);
    }
    return DecodeResult::kProtocolError;
  }
  if (buffer.size() < sizeof(std::uint32_t) + frame_len) {
    return DecodeResult::kNeedMore;
  }
  const char* p = buffer.data() + sizeof(std::uint32_t);
  const std::uint8_t raw_op = static_cast<std::uint8_t>(p[0]);
  const bool is_response = (raw_op & kResponseBit) != 0;
  const std::uint8_t base_op = raw_op & ~kResponseBit;
  if (!KnownOpcode(base_op)) {
    if (error != nullptr) {
      *error = "unknown opcode " + std::to_string(raw_op);
    }
    return DecodeResult::kProtocolError;
  }
  const std::uint8_t raw_status = static_cast<std::uint8_t>(p[1]);
  if (raw_status > static_cast<std::uint8_t>(Status::kError)) {
    if (error != nullptr) {
      *error = "unknown status " + std::to_string(raw_status);
    }
    return DecodeResult::kProtocolError;
  }
  const std::size_t payload_bytes = frame_len - kFrameFixedBytes;
  const Opcode opcode = static_cast<Opcode>(base_op);
  // A kError response is the terminal frame of a protocol rejection and
  // always carries an empty payload, whatever its opcode's normal shape.
  const bool is_error_response =
      is_response && raw_status == static_cast<std::uint8_t>(Status::kError);
  const std::size_t expected =
      is_error_response ? 0 : ExpectedPayloadBytes(opcode, is_response);
  if (expected != kVariable && payload_bytes != expected) {
    if (error != nullptr) {
      *error = "opcode " + std::to_string(base_op) + " expects " +
               std::to_string(expected) + " payload bytes, got " +
               std::to_string(payload_bytes);
    }
    return DecodeResult::kProtocolError;
  }
  frame->header.opcode = opcode;
  frame->header.is_response = is_response;
  frame->header.status = static_cast<Status>(raw_status);
  frame->header.request_id = GetRaw<std::uint64_t>(p + 2);
  frame->payload =
      buffer.substr(sizeof(std::uint32_t) + kFrameFixedBytes, payload_bytes);
  *consumed = sizeof(std::uint32_t) + frame_len;
  return DecodeResult::kFrame;
}

bool PeekRequestHeader(std::string_view buffer, FrameHeader* header) {
  if (buffer.size() < kFrameOverheadBytes) return false;
  const char* p = buffer.data() + sizeof(std::uint32_t);
  const std::uint8_t raw_op = static_cast<std::uint8_t>(p[0]);
  if ((raw_op & kResponseBit) != 0) return false;
  if (!KnownOpcode(raw_op)) return false;
  header->opcode = static_cast<Opcode>(raw_op);
  header->is_response = false;
  header->request_id = GetRaw<std::uint64_t>(p + 2);
  return true;
}

bool ParsePredict(std::string_view payload, PredictPayload* out) {
  if (payload.size() != 2 * sizeof(std::uint32_t)) return false;
  out->user = GetRaw<std::uint32_t>(payload.data());
  out->service = GetRaw<std::uint32_t>(payload.data() + 4);
  return true;
}

bool ParsePredictMany(std::string_view payload, PredictManyPayload* out) {
  if (payload.size() < 2 * sizeof(std::uint32_t)) return false;
  out->user = GetRaw<std::uint32_t>(payload.data());
  const std::uint32_t count = GetRaw<std::uint32_t>(payload.data() + 4);
  if (count > kMaxPredictManyCandidates) return false;
  if (payload.size() != 2 * sizeof(std::uint32_t) +
                            static_cast<std::size_t>(count) *
                                sizeof(std::uint32_t)) {
    return false;
  }
  out->services.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    out->services[i] = GetRaw<std::uint32_t>(payload.data() + 8 + 4 * i);
  }
  return true;
}

bool ParseReportObs(std::string_view payload, data::QoSSample* out) {
  if (payload.size() != 3 * sizeof(std::uint32_t) + 2 * sizeof(double)) {
    return false;
  }
  const char* p = payload.data();
  out->slice = GetRaw<std::uint32_t>(p);
  out->user = GetRaw<std::uint32_t>(p + 4);
  out->service = GetRaw<std::uint32_t>(p + 8);
  out->value = GetRaw<double>(p + 12);
  out->timestamp = GetRaw<double>(p + 20);
  return true;
}

bool ParsePredictResponse(std::string_view payload, double* value) {
  if (payload.size() != sizeof(double)) return false;
  *value = GetRaw<double>(payload.data());
  return true;
}

bool ParsePredictManyResponse(std::string_view payload,
                              std::vector<double>* values) {
  if (payload.size() < sizeof(std::uint32_t)) return false;
  const std::uint32_t count = GetRaw<std::uint32_t>(payload.data());
  if (count > kMaxPredictManyCandidates) return false;
  if (payload.size() !=
      sizeof(std::uint32_t) + static_cast<std::size_t>(count) *
                                  sizeof(double)) {
    return false;
  }
  values->resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    (*values)[i] = GetRaw<double>(payload.data() + 4 + 8 * i);
  }
  return true;
}

void AppendPingRequest(std::string& out, std::uint64_t request_id) {
  EndFrame(out, BeginFrame(out, Opcode::kPing, false, Status::kOk,
                           request_id));
}

void AppendPredictRequest(std::string& out, std::uint64_t request_id,
                          data::UserId user, data::ServiceId service) {
  const std::size_t at =
      BeginFrame(out, Opcode::kPredict, false, Status::kOk, request_id);
  PutRaw<std::uint32_t>(out, user);
  PutRaw<std::uint32_t>(out, service);
  EndFrame(out, at);
}

void AppendPredictManyRequest(std::string& out, std::uint64_t request_id,
                              data::UserId user,
                              std::span<const data::ServiceId> services) {
  const std::size_t at =
      BeginFrame(out, Opcode::kPredictMany, false, Status::kOk, request_id);
  PutRaw<std::uint32_t>(out, user);
  PutRaw<std::uint32_t>(out, static_cast<std::uint32_t>(services.size()));
  for (const data::ServiceId s : services) PutRaw<std::uint32_t>(out, s);
  EndFrame(out, at);
}

void AppendReportObsRequest(std::string& out, std::uint64_t request_id,
                            const data::QoSSample& sample) {
  const std::size_t at =
      BeginFrame(out, Opcode::kReportObs, false, Status::kOk, request_id);
  PutRaw<std::uint32_t>(out, sample.slice);
  PutRaw<std::uint32_t>(out, sample.user);
  PutRaw<std::uint32_t>(out, sample.service);
  PutRaw<double>(out, sample.value);
  PutRaw<double>(out, sample.timestamp);
  EndFrame(out, at);
}

void AppendMetricsRequest(std::string& out, std::uint64_t request_id) {
  EndFrame(out, BeginFrame(out, Opcode::kMetrics, false, Status::kOk,
                           request_id));
}

void AppendPingResponse(std::string& out, std::uint64_t request_id,
                        std::uint8_t marker) {
  const std::size_t at =
      BeginFrame(out, Opcode::kPing, true, Status::kOk, request_id);
  out.push_back(static_cast<char>(marker));
  EndFrame(out, at);
}

void AppendPredictResponse(std::string& out, std::uint64_t request_id,
                           Status status, double value) {
  const std::size_t at =
      BeginFrame(out, Opcode::kPredict, true, status, request_id);
  PutRaw<double>(out, value);
  EndFrame(out, at);
}

void AppendPredictManyResponse(std::string& out, std::uint64_t request_id,
                               Status status,
                               std::span<const double> values) {
  const std::size_t at =
      BeginFrame(out, Opcode::kPredictMany, true, status, request_id);
  PutRaw<std::uint32_t>(out, static_cast<std::uint32_t>(values.size()));
  for (const double v : values) PutRaw<double>(out, v);
  EndFrame(out, at);
}

void AppendReportObsResponse(std::string& out, std::uint64_t request_id,
                             Status status) {
  EndFrame(out,
           BeginFrame(out, Opcode::kReportObs, true, status, request_id));
}

void AppendMetricsResponse(std::string& out, std::uint64_t request_id,
                           std::string_view json) {
  const std::size_t at =
      BeginFrame(out, Opcode::kMetrics, true, Status::kOk, request_id);
  out.append(json);
  EndFrame(out, at);
}

void AppendErrorResponse(std::string& out, Opcode opcode,
                         std::uint64_t request_id) {
  EndFrame(out, BeginFrame(out, opcode, true, Status::kError, request_id));
}

bool ParsePingResponse(std::string_view payload, std::uint8_t* marker) {
  if (payload.size() != sizeof(std::uint8_t)) return false;
  *marker = static_cast<std::uint8_t>(payload[0]);
  return true;
}

}  // namespace amf::serve

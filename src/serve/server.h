// Networked serving front-end (DESIGN.md §14).
//
// A single-threaded epoll event loop that exposes a serving Backend —
// one ConcurrentPredictionService, or N user-sharded instances behind a
// ShardedPredictionService (serve/backend.h) — over the length-prefixed
// binary protocol in serve/protocol.h. The loop owns every connection;
// the prediction hot path stays wait-free end to end:
//
//   PREDICT       -> routed to its user's home shard, then that shard's
//                    request coalescer (serve/coalescer.h): concurrent
//                    singles within a window/batch-cap are scored by ONE
//                    shard-local PredictQoSPairs call (seqlock reads, one
//                    shared lock), bit-identical to per-request
//                    PredictQoS.
//   PREDICT_MANY  -> PredictQoSMany immediately (already a batch).
//   REPORT_OBS    -> lock-free ring push; kShed when the ring is full
//                    (journal-before-ack durability happens at the
//                    trainer's drain, as everywhere else).
//   METRICS       -> obs::ToJson of the service registry, which includes
//                    the serve.* series this server registers.
//   PING          -> liveness echo.
//
// Slow readers are paused then dropped per the ladder in connection.h;
// malformed frames close the connection (serve.protocol_errors).
//
// An optional built-in trainer thread runs Tick + SyncJournalIfDue on an
// absolute-deadline schedule so a standalone `amf_server` process keeps
// learning and keeps acked observations inside the WAL's fsync window
// without any external driver.
//
// Graceful shutdown (Shutdown() or destructor) drains, in order:
//   1. stop accepting (close the listen socket),
//   2. flush the coalescer — every request already read gets an answer,
//   3. drain connection write buffers under drain_deadline_ms,
//   4. close all connections and exit the loop thread,
//   5. stop the trainer thread: its final Tick drains the ingest ring
//      (journal-before-ack for everything accepted), then FlushJournal
//      fsyncs the WAL tail. Only then does Shutdown return — observations
//      the server acked are on disk when the process exits.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include <memory>
#include <vector>

#include "adapt/concurrent_service.h"
#include "serve/backend.h"
#include "serve/coalescer.h"
#include "serve/connection.h"
#include "serve/protocol.h"

namespace amf::serve {

struct ServerConfig {
  /// Listen address. Port 0 binds an ephemeral port (read it back from
  /// port() after Start) — tests and single-host drills never race over
  /// a fixed number.
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  /// Backpressure ladder thresholds (see connection.h).
  std::size_t write_pause_bytes = 256 * 1024;
  std::size_t write_drop_bytes = 4 * 1024 * 1024;

  /// PREDICT coalescing window / batch cap (see coalescer.h).
  double coalesce_window_us = 200.0;
  std::size_t coalesce_max_batch = 64;

  /// Event-loop housekeeping cadence (journal SyncIfDue, queue-depth
  /// gauge refresh) when the loop is otherwise idle, and the built-in
  /// trainer thread's Tick period.
  int tick_interval_ms = 5;
  int train_interval_ms = 20;
  /// Run the built-in trainer thread. Off for tests that drive Tick
  /// themselves.
  bool run_trainer = true;

  /// Graceful-shutdown budget for draining connection write buffers.
  int drain_deadline_ms = 2000;

  /// Max connections accepted concurrently; beyond it, accepts are
  /// closed immediately (serve.accept_overflow).
  std::size_t max_connections = 1024;
};

/// One serving endpoint over a Backend (single-instance or user-sharded;
/// see serve/backend.h). The backend/service must outlive the server.
/// PREDICT requests route to a per-shard coalescer by the backend's
/// ShardOfUser BEFORE batching, so every coalesced batch flushes into
/// exactly one shard's PredictQoSPairs. Start() spawns the loop (and
/// optionally trainer) thread; Shutdown() — idempotent, also run by the
/// destructor — performs the ordered drain documented above.
class Server {
 public:
  /// Single-instance convenience: wraps the service in an owned
  /// ConcurrentBackend (PR 9 behaviour, one coalescer).
  Server(adapt::ConcurrentPredictionService* service,
         const ServerConfig& config);
  Server(Backend* backend, const ServerConfig& config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the loop thread. False on bind/listen
  /// failure (errno-style message in last_error()).
  bool Start();

  /// Bound port (valid after Start; resolves config.port == 0).
  std::uint16_t port() const { return port_; }
  const std::string& last_error() const { return last_error_; }

  /// Ordered graceful drain; see the file comment. Safe to call twice.
  void Shutdown();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Native handle of the event-loop thread (valid between Start and
  /// Shutdown). The EINTR signal-storm test pthread_kills it to land
  /// signals mid-recv/mid-send on exactly the thread doing socket IO.
  std::thread::native_handle_type loop_native_handle() {
    return loop_thread_.native_handle();
  }

 private:
  void LoopThread();
  void TrainerThread();

  void HandleAccept();
  /// Reads until EAGAIN, peels frames, dispatches. Returns false when the
  /// connection must be closed (EOF, error, protocol error, drop ladder).
  bool HandleReadable(Connection& c);
  /// Parses/dispatches frames already sitting in c.rbuf (no recv). A
  /// backpressure break re-queues the connection on pending_parse_ so the
  /// housekeeping pass resumes it — epoll never re-announces bytes we
  /// already recv'd.
  bool ProcessBuffered(Connection& c);
  bool HandleFrame(Connection& c, const struct Frame& frame);
  /// Writes wbuf until EAGAIN; returns false on a dead socket.
  bool FlushWrites(Connection& c);
  /// Applies the pause/drop/resume ladder after wbuf changed. Returns
  /// false when the connection was dropped.
  bool ApplyBackpressure(Connection& c);
  /// Flushes one shard's coalescer batch into its home shard.
  void FlushCoalescer(std::size_t shard);
  /// Flushes every coalescer whose oldest request is past the window
  /// (all of them when `force`).
  void FlushDueCoalescers(double now_s, bool force);
  /// Appends a kError frame for a rejected request and pushes it out
  /// best-effort (the connection closes right after).
  void SendErrorAndNote(Connection& c, Opcode opcode,
                        std::uint64_t request_id);
  void CloseConnection(std::uint64_t id);
  void UpdateEpoll(Connection& c);
  /// Epoll timeout: min(tick interval, earliest coalescer due time).
  int NextTimeoutMs(double now_s) const;
  void RegisterMetrics();
  std::size_t TotalQueueDepth() const;

  std::unique_ptr<ConcurrentBackend> owned_backend_;  // single-service ctor
  Backend* backend_;
  ServerConfig config_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: Shutdown() pokes the blocked loop
  std::uint16_t port_ = 0;
  std::string last_error_;

  std::thread loop_thread_;
  std::thread trainer_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  // Trainer pacing: condition_variable wait_until on absolute deadlines
  // (next += interval) so Tick cadence does not drift with Tick cost.
  std::mutex trainer_mu_;
  std::condition_variable trainer_cv_;

  std::unordered_map<std::uint64_t, Connection> conns_;
  std::uint64_t next_conn_id_ = 1;
  /// One coalescer per backend shard — PREDICTs route by user id before
  /// batching, so each flush is one shard-local PredictQoSPairs.
  std::vector<Coalescer> coalescers_;
  std::string scratch_;  ///< response-encode scratch for METRICS
  /// Connections with complete-but-unparsed frames in rbuf (mid-parse
  /// backpressure break or a resume from pause). Drained each
  /// housekeeping pass; ids may repeat, a stale id just misses in conns_.
  std::vector<std::uint64_t> pending_parse_;
  std::vector<std::uint64_t> pending_scratch_;

  // serve.* instrumentation (registry-owned handles; wait-free).
  obs::Counter* accepted_ = nullptr;
  obs::Counter* closed_ = nullptr;
  obs::Counter* accept_overflow_ = nullptr;
  obs::Counter* protocol_errors_ = nullptr;
  obs::Counter* slow_reader_drops_ = nullptr;
  obs::Counter* requests_ = nullptr;
  obs::Counter* coalesce_requests_ = nullptr;
  obs::Counter* coalesce_flushes_ = nullptr;
  obs::Gauge* connections_gauge_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
  obs::Gauge* paused_gauge_ = nullptr;
  obs::LatencyHistogram* request_hist_ = nullptr;
  obs::LatencyHistogram* batch_size_hist_ = nullptr;
  std::size_t paused_count_ = 0;  // loop-thread only; mirrored to gauge
};

}  // namespace amf::serve

// Blocking client for the serving protocol (tests, CLI drills, load
// generator warm-up). One connection, synchronous request/response; the
// load generator's open-loop mode drives sockets directly instead.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "data/qos_types.h"
#include "serve/protocol.h"

namespace amf::serve {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects, retrying (connection refused counts as "server not up
  /// yet") until `deadline_s` seconds have elapsed.
  bool ConnectWithRetry(const std::string& host, std::uint16_t port,
                        double deadline_s = 5.0);
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Synchronous round-trips. std::nullopt on transport error, protocol
  /// error, or `timeout_s` expiring. Predict additionally returns
  /// nullopt when the server answered kUnknownEntity.
  bool Ping(double timeout_s = 5.0);
  std::optional<double> Predict(data::UserId user, data::ServiceId service,
                                double timeout_s = 5.0);
  std::optional<std::vector<double>> PredictMany(
      data::UserId user, std::span<const data::ServiceId> services,
      double timeout_s = 5.0);
  /// Returns the server's Status (kOk accepted, kShed ring-full), or
  /// nullopt on transport failure.
  std::optional<Status> ReportObservation(const data::QoSSample& sample,
                                          double timeout_s = 5.0);
  std::optional<std::string> Metrics(double timeout_s = 5.0);

  /// Writes arbitrary bytes to the socket — the malformed-frame tests
  /// use this to poke the server's decoder directly.
  bool SendRaw(std::string_view bytes);
  /// True when the peer has closed (a read returns EOF) within
  /// `timeout_s`. Protocol-error handling is a silent close, so this is
  /// how tests observe "the server hung up on me".
  bool WaitForClose(double timeout_s = 5.0);

  int fd() const { return fd_; }

 private:
  /// Sends `request` then reads frames until one matching `request_id`
  /// arrives (responses come back in order today, but matching by id
  /// keeps the client honest about the pipelining contract).
  bool RoundTrip(std::string_view request, std::uint64_t request_id,
                 Frame* response, std::string* payload_copy,
                 double timeout_s);
  bool ReadSome(double deadline_s);

  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  std::string rbuf_;
};

}  // namespace amf::serve

// Wire protocol for the networked serving front-end (DESIGN.md §14).
//
// A small length-prefixed binary protocol: every message is one frame
//
//   [u32 frame_len][u8 opcode][u8 status][u64 request_id][payload]
//
// where frame_len counts everything AFTER the length field (so
// frame_len = 10 + payload bytes, and a frame occupies 4 + frame_len
// bytes on the wire). Integers and doubles are fixed-layout
// native-endian, like the WAL: the serving tier and its clients are
// co-located machines of one deployment, not an interchange boundary.
// That assumption is ENFORCED, not just documented: the PING response
// carries a one-byte wire marker (protocol version in the high nibble,
// endianness bit in the low bit — see kWireMarker) and `Client::Ping`
// refuses a connection whose marker differs from its own, so a
// cross-endian or cross-version pairing fails loudly at handshake time
// instead of silently mis-decoding every integer after it.
//
// Request opcodes (client -> server):
//   PING         (0x01)  payload: empty
//   PREDICT      (0x02)  payload: u32 user, u32 service
//   PREDICT_MANY (0x03)  payload: u32 user, u32 count, count * u32 service
//   REPORT_OBS   (0x04)  payload: u32 slice, u32 user, u32 service,
//                                 f64 value, f64 timestamp
//   METRICS      (0x05)  payload: empty
//
// A response echoes the request's opcode with the high bit set
// (opcode | 0x80) and the same request_id, so clients may pipeline any
// number of requests per connection. Response payloads:
//   PING         u8 wire marker (kWireMarker of the serving process)
//   PREDICT      f64 value            (NaN when status != kOk)
//   PREDICT_MANY u32 count, count * f64 (unknown services are NaN)
//   REPORT_OBS   empty                (status kOk = accepted into the
//                                      ingest ring, kShed = ring full)
//   METRICS      the metrics registry's JSON export, verbatim
//
// The `status` byte is 0 in requests. Malformed input — an unknown
// opcode, a frame_len below the fixed header or above the decoder's
// limit, or a payload whose size contradicts its opcode — is a PROTOCOL
// ERROR: the decoder reports it and the server closes the connection
// (counted in serve.protocol_errors). Before closing, the server sends
// one final frame with status kError (empty payload, request_id echoed
// when recoverable) IF the fixed header itself was parseable — a
// well-framed peer mid-pipeline can then distinguish "my request was
// rejected" from "the server crashed". Unframeable garbage (a length
// field beyond the limit, an unknown opcode, a response opcode sent to
// the server) still gets a silent close: a peer that cannot frame bytes
// correctly cannot be trusted to parse one.
#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "data/qos_types.h"

namespace amf::serve {

enum class Opcode : std::uint8_t {
  kPing = 0x01,
  kPredict = 0x02,
  kPredictMany = 0x03,
  kReportObs = 0x04,
  kMetrics = 0x05,
};

/// Set on the opcode byte of every response frame.
inline constexpr std::uint8_t kResponseBit = 0x80;

/// Application-level result carried by the response header.
enum class Status : std::uint8_t {
  kOk = 0,
  kUnknownEntity = 1,  ///< PREDICT for an id the model has never seen
  kShed = 2,           ///< REPORT_OBS dropped: ingest ring full
  kError = 3,          ///< protocol rejection; the connection closes after
                       ///< this frame (payload always empty)
};

/// One-byte wire marker returned in the PING response: protocol version
/// in the high nibble, endianness bit (1 = little) in the low bit. Both
/// sides compute it at compile time from their own ABI; a mismatch means
/// the peers cannot exchange fixed-layout integers and the client must
/// refuse the connection.
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::uint8_t kWireMarker =
    static_cast<std::uint8_t>(kProtocolVersion << 4) |
    (std::endian::native == std::endian::little ? 0x01 : 0x00);

/// Bytes of [opcode][status][request_id] — the part frame_len counts
/// beyond the payload.
inline constexpr std::size_t kFrameFixedBytes = 1 + 1 + 8;
/// Wire overhead of an empty frame (length field + fixed header).
inline constexpr std::size_t kFrameOverheadBytes = 4 + kFrameFixedBytes;
/// Hard ceiling a decoder enforces on frame_len; a longer frame is
/// corruption or abuse, not a big request (bounds per-connection buffer
/// growth the same way the WAL bounds a flipped length bit).
inline constexpr std::uint32_t kMaxFrameLen = 1u << 20;
/// PREDICT_MANY candidate-count ceiling (keeps one request's response
/// under kMaxFrameLen).
inline constexpr std::uint32_t kMaxPredictManyCandidates = 65536;

struct FrameHeader {
  Opcode opcode = Opcode::kPing;  ///< with kResponseBit stripped
  bool is_response = false;
  Status status = Status::kOk;
  std::uint64_t request_id = 0;
};

/// One decoded frame; `payload` views into the decode buffer and is only
/// valid until the buffer is mutated.
struct Frame {
  FrameHeader header;
  std::string_view payload;
};

enum class DecodeResult {
  kNeedMore,       ///< buffer holds a frame prefix; read more bytes
  kFrame,          ///< *frame and *consumed are set
  kProtocolError,  ///< close the connection; *error says why
};

/// Decodes the frame at the start of `buffer`. On kFrame, *consumed is
/// the total wire bytes to discard and frame->payload views into
/// `buffer`. Structural validation only (length bounds, known opcode,
/// opcode-specific payload size); field semantics are the parsers'.
DecodeResult DecodeFrame(std::string_view buffer, Frame* frame,
                         std::size_t* consumed, std::string* error);

/// Best-effort header recovery for the error-frame-before-close path:
/// returns true when `buffer` starts with a complete fixed header whose
/// base opcode is known and which is NOT a response, filling *header
/// (status is left untouched — the raw byte may be the corrupt part).
/// Used by the server to decide whether the peer deserves a kError frame
/// or a silent close after DecodeFrame reports kProtocolError.
bool PeekRequestHeader(std::string_view buffer, FrameHeader* header);

// --- Typed payload views -------------------------------------------------

struct PredictPayload {
  data::UserId user = 0;
  data::ServiceId service = 0;
};

struct PredictManyPayload {
  data::UserId user = 0;
  std::vector<data::ServiceId> services;
};

/// Parsers return false on a size/shape mismatch (treat as protocol
/// error). DecodeFrame has already size-checked fixed-layout opcodes, so
/// a false here is defensive depth, not the primary gate.
bool ParsePredict(std::string_view payload, PredictPayload* out);
bool ParsePredictMany(std::string_view payload, PredictManyPayload* out);
bool ParseReportObs(std::string_view payload, data::QoSSample* out);
bool ParsePredictResponse(std::string_view payload, double* value);
bool ParsePredictManyResponse(std::string_view payload,
                              std::vector<double>* values);

// --- Encoders (append one complete frame to `out`) -----------------------

void AppendPingRequest(std::string& out, std::uint64_t request_id);
void AppendPredictRequest(std::string& out, std::uint64_t request_id,
                          data::UserId user, data::ServiceId service);
void AppendPredictManyRequest(std::string& out, std::uint64_t request_id,
                              data::UserId user,
                              std::span<const data::ServiceId> services);
void AppendReportObsRequest(std::string& out, std::uint64_t request_id,
                            const data::QoSSample& sample);
void AppendMetricsRequest(std::string& out, std::uint64_t request_id);

/// PING response carries the responder's one-byte wire marker (defaults
/// to this build's kWireMarker; overridable so tests can forge a
/// mismatched peer).
void AppendPingResponse(std::string& out, std::uint64_t request_id,
                        std::uint8_t marker = kWireMarker);
void AppendPredictResponse(std::string& out, std::uint64_t request_id,
                           Status status, double value);
void AppendPredictManyResponse(std::string& out, std::uint64_t request_id,
                               Status status,
                               std::span<const double> values);
void AppendReportObsResponse(std::string& out, std::uint64_t request_id,
                             Status status);
void AppendMetricsResponse(std::string& out, std::uint64_t request_id,
                           std::string_view json);

/// The terminal frame of a protocol rejection: response bit set on the
/// rejected request's base opcode, status kError, empty payload. Sent
/// once, immediately before the server closes the connection.
void AppendErrorResponse(std::string& out, Opcode opcode,
                         std::uint64_t request_id);

/// Parses a PING response payload into its wire marker byte.
bool ParsePingResponse(std::string_view payload, std::uint8_t* marker);

}  // namespace amf::serve

#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <utility>

namespace amf::serve {

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int ConnectOnce(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_request_id_(other.next_request_id_),
      rbuf_(std::move(other.rbuf_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    next_request_id_ = other.next_request_id_;
    rbuf_ = std::move(other.rbuf_);
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
}

bool Client::ConnectWithRetry(const std::string& host, std::uint16_t port,
                              double deadline_s) {
  const double deadline = MonotonicSeconds() + deadline_s;
  for (;;) {
    fd_ = ConnectOnce(host, port);
    if (fd_ >= 0) return true;
    if (MonotonicSeconds() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

bool Client::SendRaw(std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool Client::ReadSome(double deadline_s) {
  const double wait = deadline_s - MonotonicSeconds();
  pollfd pfd{fd_, POLLIN, 0};
  const int timeout_ms =
      wait <= 0.0 ? 0 : static_cast<int>(std::ceil(wait * 1e3));
  const int r = ::poll(&pfd, 1, timeout_ms);
  if (r <= 0) return false;  // timeout or poll error
  char buf[64 * 1024];
  const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
  if (n <= 0) return false;  // EOF or error
  rbuf_.append(buf, static_cast<std::size_t>(n));
  return true;
}

bool Client::WaitForClose(double timeout_s) {
  const double deadline = MonotonicSeconds() + timeout_s;
  for (;;) {
    const double wait = deadline - MonotonicSeconds();
    if (wait <= 0.0) return false;
    pollfd pfd{fd_, POLLIN, 0};
    if (::poll(&pfd, 1, static_cast<int>(std::ceil(wait * 1e3))) <= 0) {
      return false;
    }
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) return true;                     // orderly close
    if (n < 0 && errno != EINTR) return true;    // reset counts as closed
    // n > 0: stray response bytes before the close; keep draining.
  }
}

bool Client::RoundTrip(std::string_view request, std::uint64_t request_id,
                       Frame* response, std::string* payload_copy,
                       double timeout_s) {
  if (fd_ < 0) return false;
  if (!SendRaw(request)) return false;
  const double deadline = MonotonicSeconds() + timeout_s;
  for (;;) {
    Frame frame;
    std::size_t consumed = 0;
    std::string error;
    const DecodeResult r = DecodeFrame(rbuf_, &frame, &consumed, &error);
    if (r == DecodeResult::kProtocolError) return false;
    if (r == DecodeResult::kFrame) {
      if (frame.header.is_response && frame.header.request_id == request_id) {
        *payload_copy = std::string(frame.payload);
        *response = frame;
        response->payload = *payload_copy;
        rbuf_.erase(0, consumed);
        return true;
      }
      rbuf_.erase(0, consumed);  // stale response (earlier timeout); skip
      continue;
    }
    if (!ReadSome(deadline)) return false;
  }
}

bool Client::Ping(double timeout_s) {
  std::string req;
  const std::uint64_t id = next_request_id_++;
  AppendPingRequest(req, id);
  Frame resp;
  std::string payload;
  if (!RoundTrip(req, id, &resp, &payload, timeout_s) ||
      resp.header.opcode != Opcode::kPing ||
      resp.header.status != Status::kOk) {
    return false;
  }
  // Refuse a server whose wire marker (protocol version + endianness)
  // differs from ours: every fixed-layout integer after this point would
  // silently mis-decode.
  std::uint8_t marker = 0;
  return ParsePingResponse(resp.payload, &marker) && marker == kWireMarker;
}

std::optional<double> Client::Predict(data::UserId user,
                                      data::ServiceId service,
                                      double timeout_s) {
  std::string req;
  const std::uint64_t id = next_request_id_++;
  AppendPredictRequest(req, id, user, service);
  Frame resp;
  std::string payload;
  if (!RoundTrip(req, id, &resp, &payload, timeout_s)) return std::nullopt;
  if (resp.header.opcode != Opcode::kPredict ||
      resp.header.status != Status::kOk) {
    return std::nullopt;
  }
  double value = 0.0;
  if (!ParsePredictResponse(resp.payload, &value)) return std::nullopt;
  return value;
}

std::optional<std::vector<double>> Client::PredictMany(
    data::UserId user, std::span<const data::ServiceId> services,
    double timeout_s) {
  std::string req;
  const std::uint64_t id = next_request_id_++;
  AppendPredictManyRequest(req, id, user, services);
  Frame resp;
  std::string payload;
  if (!RoundTrip(req, id, &resp, &payload, timeout_s)) return std::nullopt;
  if (resp.header.opcode != Opcode::kPredictMany) return std::nullopt;
  std::vector<double> values;
  if (!ParsePredictManyResponse(resp.payload, &values)) return std::nullopt;
  return values;
}

std::optional<Status> Client::ReportObservation(const data::QoSSample& sample,
                                                double timeout_s) {
  std::string req;
  const std::uint64_t id = next_request_id_++;
  AppendReportObsRequest(req, id, sample);
  Frame resp;
  std::string payload;
  if (!RoundTrip(req, id, &resp, &payload, timeout_s)) return std::nullopt;
  if (resp.header.opcode != Opcode::kReportObs) return std::nullopt;
  return resp.header.status;
}

std::optional<std::string> Client::Metrics(double timeout_s) {
  std::string req;
  const std::uint64_t id = next_request_id_++;
  AppendMetricsRequest(req, id);
  Frame resp;
  std::string payload;
  if (!RoundTrip(req, id, &resp, &payload, timeout_s)) return std::nullopt;
  if (resp.header.opcode != Opcode::kMetrics) return std::nullopt;
  return std::string(resp.payload);
}

}  // namespace amf::serve

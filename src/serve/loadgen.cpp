#include "serve/loadgen.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <unordered_map>

#include "data/qos_types.h"
#include "serve/client.h"
#include "serve/protocol.h"

namespace amf::serve {

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct PhaseCounters {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> responses{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> deferred{0};
};

/// Deterministic per-thread request stream: ids advance round-robin with
/// a per-thread stride so concurrent connections hit distinct rows.
struct RequestStream {
  std::uint32_t num_users;
  std::uint32_t num_services;
  double report_fraction;
  std::uint64_t i = 0;

  data::UserId user() const {
    return static_cast<data::UserId>(i % num_users);
  }
  data::ServiceId service() const {
    return static_cast<data::ServiceId>((i * 7 + 3) % num_services);
  }
  bool is_report() const {
    if (report_fraction <= 0.0) return false;
    const std::uint64_t period =
        static_cast<std::uint64_t>(std::llround(1.0 / report_fraction));
    return period > 0 && (i % period) == period - 1;
  }
  void advance() { ++i; }
};

void ClosedLoopWorker(const LoadGenConfig& config, const LoadPhase& phase,
                      std::size_t worker, double end_s,
                      obs::LatencyHistogram* hist, PhaseCounters* counters) {
  Client client;
  if (!client.ConnectWithRetry(config.host, config.port,
                               config.connect_deadline_s)) {
    counters->errors.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  RequestStream stream{phase.num_users, phase.num_services,
                       phase.report_fraction, worker * 13};
  while (MonotonicSeconds() < end_s) {
    const double t0 = MonotonicSeconds();
    counters->requests.fetch_add(1, std::memory_order_relaxed);
    bool ok;
    if (stream.is_report()) {
      data::QoSSample s{};
      s.slice = 0;
      s.user = stream.user();
      s.service = stream.service();
      s.value = 0.5;
      s.timestamp = t0;
      const auto status = client.ReportObservation(s);
      ok = status.has_value();
      if (ok && *status == Status::kShed) {
        counters->shed.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      // kUnknownEntity (nullopt with a live transport) still counts as a
      // served response; only transport failures are errors, and those
      // kill the connection loop below anyway.
      ok = client.Predict(stream.user(), stream.service()).has_value() ||
           client.connected();
    }
    if (!ok) {
      counters->errors.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    counters->responses.fetch_add(1, std::memory_order_relaxed);
    hist->Record(MonotonicSeconds() - t0);
    stream.advance();
  }
}

void OpenLoopWorker(const LoadGenConfig& config, const LoadPhase& phase,
                    std::size_t worker, double end_s,
                    obs::LatencyHistogram* hist, PhaseCounters* counters) {
  Client client;
  if (!client.ConnectWithRetry(config.host, config.port,
                               config.connect_deadline_s)) {
    counters->errors.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const int fd = client.fd();
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);

  const double per_conn_rps =
      phase.target_rps / static_cast<double>(phase.connections);
  const double interval_s = per_conn_rps > 0.0 ? 1.0 / per_conn_rps : 1.0;
  RequestStream stream{phase.num_users, phase.num_services,
                       phase.report_fraction, worker * 13};

  std::string wbuf;   // encoded-but-unsent bytes
  std::string rbuf;
  std::unordered_map<std::uint64_t, double> in_flight;  // id -> sent_at
  std::uint64_t next_id = 1;
  double next_send = MonotonicSeconds();

  const double drain_deadline = end_s + 2.0;
  for (;;) {
    const double now = MonotonicSeconds();
    const bool sending = now < end_s;
    if (!sending && in_flight.empty() && wbuf.empty()) break;
    if (now >= drain_deadline) {
      counters->errors.fetch_add(in_flight.size(),
                                 std::memory_order_relaxed);
      break;
    }

    // Absolute-deadline pacing: encode every request whose send time has
    // passed (a flash crowd may owe several per wake-up), bounded by the
    // pipelining cap.
    while (sending && now >= next_send) {
      if (in_flight.size() >= phase.max_outstanding) {
        // Cap reached: the send is deferred, not queued — offered load
        // honesty requires counting this instead of silently lagging.
        counters->deferred.fetch_add(1, std::memory_order_relaxed);
        next_send = now + interval_s;
        break;
      }
      const std::uint64_t id = next_id++;
      AppendPredictRequest(wbuf, id, stream.user(), stream.service());
      in_flight.emplace(id, now);
      counters->requests.fetch_add(1, std::memory_order_relaxed);
      stream.advance();
      next_send += interval_s;
    }

    // Push pending bytes.
    while (!wbuf.empty()) {
      const ssize_t n = ::send(fd, wbuf.data(), wbuf.size(), MSG_NOSIGNAL);
      if (n > 0) {
        wbuf.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;  // signal mid-send: retry
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      counters->errors.fetch_add(1, std::memory_order_relaxed);
      return;
    }

    // Wait for readability or the next send deadline, whichever first.
    double wait_s = sending ? next_send - MonotonicSeconds() : 0.05;
    if (wait_s < 0.0) wait_s = 0.0;
    if (wait_s > 0.05) wait_s = 0.05;
    pollfd pfd{fd, static_cast<short>(POLLIN | (wbuf.empty() ? 0 : POLLOUT)),
               0};
    const int pr =
        ::poll(&pfd, 1, static_cast<int>(std::ceil(wait_s * 1e3)));
    if (pr < 0 && errno != EINTR) {
      counters->errors.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (pr > 0 && (pfd.revents & POLLIN) != 0) {
      char buf[64 * 1024];
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        if (n < 0 && (errno == EAGAIN || errno == EINTR)) continue;
        counters->errors.fetch_add(in_flight.size() + 1,
                                   std::memory_order_relaxed);
        return;  // server hung up with requests outstanding
      }
      rbuf.append(buf, static_cast<std::size_t>(n));
      std::size_t off = 0;
      for (;;) {
        Frame frame;
        std::size_t consumed = 0;
        std::string error;
        const DecodeResult r = DecodeFrame(
            std::string_view(rbuf).substr(off), &frame, &consumed, &error);
        if (r == DecodeResult::kNeedMore) break;
        if (r == DecodeResult::kProtocolError) {
          counters->errors.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        off += consumed;
        // Correlate by request id: per-shard coalescing on the server
        // may answer pipelined requests out of send order (the id in
        // every response frame exists exactly for this).
        const auto it = in_flight.find(frame.header.request_id);
        if (it != in_flight.end()) {
          hist->Record(MonotonicSeconds() - it->second);
          counters->responses.fetch_add(1, std::memory_order_relaxed);
          in_flight.erase(it);
        }
      }
      rbuf.erase(0, off);
    }
  }
}

}  // namespace

std::optional<PhaseResult> RunLoadPhase(const LoadGenConfig& config,
                                        const LoadPhase& phase) {
  obs::LatencyHistogramOptions opts;
  opts.min_value = 1e-7;
  opts.max_value = 10.0;
  opts.buckets = 96;
  obs::LatencyHistogram hist(opts);
  PhaseCounters counters;

  const double start = MonotonicSeconds();
  const double end_s = start + phase.duration_s;
  std::vector<std::thread> workers;
  workers.reserve(phase.connections);
  for (std::size_t w = 0; w < phase.connections; ++w) {
    workers.emplace_back([&, w] {
      if (phase.mode == LoadMode::kClosed) {
        ClosedLoopWorker(config, phase, w, end_s, &hist, &counters);
      } else {
        OpenLoopWorker(config, phase, w, end_s, &hist, &counters);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const double elapsed = MonotonicSeconds() - start;

  PhaseResult result;
  result.name = phase.name;
  result.mode = phase.mode;
  result.connections = phase.connections;
  result.target_rps = phase.mode == LoadMode::kOpen ? phase.target_rps : 0.0;
  result.duration_s = elapsed;
  result.requests = counters.requests.load();
  result.responses = counters.responses.load();
  result.errors = counters.errors.load();
  result.shed = counters.shed.load();
  result.deferred_sends = counters.deferred.load();
  result.achieved_rps =
      elapsed > 0.0 ? static_cast<double>(result.responses) / elapsed : 0.0;

  // Snapshot the shared histogram for the percentile readout.
  obs::HistogramSnapshot snap;
  snap.min_value = hist.min_value();
  snap.max_value = hist.max_value();
  for (std::size_t b = 0; b < hist.buckets(); ++b) {
    snap.upper_bounds.push_back(hist.UpperBound(b));
    snap.counts.push_back(hist.bucket_count(b));
  }
  snap.underflow = hist.underflow();
  snap.overflow = hist.overflow();
  snap.total = hist.count();
  snap.sum = hist.sum();
  if (snap.total > 0) {
    result.p50_s = snap.p50();
    result.p95_s = snap.p95();
    result.p99_s = snap.p99();
    result.mean_s = snap.mean();
  }
  if (result.responses == 0 && result.errors > 0) return std::nullopt;
  return result;
}

void AppendPhaseJson(std::string& out, const PhaseResult& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"name\": \"%s\", \"mode\": \"%s\", \"connections\": %zu, "
      "\"target_rps\": %.9g, \"duration_s\": %.9g, \"requests\": %llu, "
      "\"responses\": %llu, \"errors\": %llu, \"shed\": %llu, "
      "\"deferred_sends\": %llu, \"achieved_rps\": %.9g, "
      "\"p50_ms\": %.9g, \"p95_ms\": %.9g, \"p99_ms\": %.9g, "
      "\"mean_ms\": %.9g}",
      r.name.c_str(), r.mode == LoadMode::kOpen ? "open" : "closed",
      r.connections, r.target_rps, r.duration_s,
      static_cast<unsigned long long>(r.requests),
      static_cast<unsigned long long>(r.responses),
      static_cast<unsigned long long>(r.errors),
      static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(r.deferred_sends), r.achieved_rps,
      r.p50_s * 1e3, r.p95_s * 1e3, r.p99_s * 1e3, r.mean_s * 1e3);
  out += buf;
}

std::vector<LoadPhase> StandardPhasePlan(bool quick, std::size_t connections,
                                         std::uint32_t num_users,
                                         std::uint32_t num_services) {
  const double dur = quick ? 0.5 : 2.0;
  const double scale = quick ? 0.25 : 1.0;
  std::vector<LoadPhase> plan;
  LoadPhase p;
  p.num_users = num_users;
  p.num_services = num_services;
  p.connections = connections;

  p.name = "warmup";
  p.mode = LoadMode::kClosed;
  p.duration_s = quick ? 0.25 : 1.0;
  plan.push_back(p);

  p.mode = LoadMode::kOpen;
  p.duration_s = dur;
  p.name = "load-low";
  p.target_rps = 2000.0 * scale;
  plan.push_back(p);
  p.name = "load-mid";
  p.target_rps = 8000.0 * scale;
  plan.push_back(p);
  p.name = "load-high";
  p.target_rps = 20000.0 * scale;
  plan.push_back(p);

  // Flash crowd: well above load-high for a short burst — the paper's
  // adaptation trigger scenario (sudden demand shift), here probing that
  // tail latency degrades gracefully instead of the server falling over.
  p.name = "flash-crowd";
  p.target_rps = 40000.0 * scale;
  p.duration_s = quick ? 0.3 : 1.0;
  plan.push_back(p);

  p.name = "mixed";
  p.mode = LoadMode::kClosed;
  p.duration_s = dur;
  p.report_fraction = 0.2;
  plan.push_back(p);
  return plan;
}

ServingDeltas ComputeServingDeltas(std::string_view before,
                                   std::string_view after) {
  const auto delta = [&](std::string_view name) {
    return ExtractMetricNumber(after, name).value_or(0.0) -
           ExtractMetricNumber(before, name).value_or(0.0);
  };
  ServingDeltas d;
  d.coalesce_requests = delta("serve.coalesce.requests");
  d.coalesce_flushes = delta("serve.coalesce.flushes");
  d.protocol_errors = delta("serve.protocol_errors");
  d.slow_reader_drops = delta("serve.slow_reader_drops");
  return d;
}

std::string RenderServingReport(bool quick, std::size_t connections,
                                const std::vector<PhaseResult>& results,
                                const ServingDeltas& deltas) {
  std::string json = "{\n  \"bench\": \"serving\",\n  \"quick\": ";
  json += quick ? "true" : "false";
  json += ",\n  \"connections\": " + std::to_string(connections);
  json += ",\n  \"phases\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    json += "    ";
    AppendPhaseJson(json, results[i]);
    if (i + 1 < results.size()) json += ",";
    json += "\n";
  }
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "  ],\n  \"coalescing\": {\"requests\": %lld, \"flushes\": "
                "%lld, \"ratio\": %.3f},\n  \"protocol_errors\": %lld,\n  "
                "\"slow_reader_drops\": %lld\n}\n",
                static_cast<long long>(deltas.coalesce_requests),
                static_cast<long long>(deltas.coalesce_flushes),
                deltas.ratio(),
                static_cast<long long>(deltas.protocol_errors),
                static_cast<long long>(deltas.slow_reader_drops));
  json += buf;
  return json;
}

std::optional<double> ExtractMetricNumber(std::string_view json,
                                          std::string_view name) {
  std::string needle;
  needle.reserve(name.size() + 3);
  needle.push_back('"');
  needle.append(name);
  needle.append("\":");
  const std::size_t at = json.find(needle);
  if (at == std::string_view::npos) return std::nullopt;
  std::size_t p = at + needle.size();
  while (p < json.size() && json[p] == ' ') ++p;
  char* end = nullptr;
  const double v = std::strtod(json.data() + p, &end);
  if (end == json.data() + p) return std::nullopt;
  return v;
}

}  // namespace amf::serve

// Request coalescer for the serving event loop (DESIGN.md §14).
//
// Single PREDICT requests arriving from many connections within a short
// window are gathered into one batch and scored through
// ConcurrentPredictionService::PredictQoSPairs — one shared-lock
// acquisition and one gather pass per batch instead of one per request.
// Under concurrency this turns N lock acquisitions + N row walks into 1,
// which is where the serving tier's throughput headroom comes from; the
// coalescer test proves every batched result is bit-identical (at fp64)
// to the per-request PredictQoS it replaces, so batching is purely a
// scheduling decision, never an accuracy one.
//
// Threading: owned and driven by the event-loop thread only. Nothing
// here is locked; do not share an instance across threads.
//
// Flush policy (whichever comes first):
//   - the batch reaches `max_batch` entries (Add() returns true and the
//     loop flushes immediately), or
//   - the oldest pending request has waited `window_us` (the loop's
//     epoll timeout is clamped to the due time, so a lone request waits
//     at most ~window + one timer granularity, never a full tick).
// An empty coalescer imposes no latency and no epoll-timeout clamp.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "data/qos_types.h"

namespace amf::serve {

struct CoalescerConfig {
  /// Max time a pending request may wait for batch-mates, microseconds.
  /// 0 degenerates to per-request dispatch (flush after every Add).
  double window_us = 200.0;
  /// Flush as soon as this many requests are pending.
  std::size_t max_batch = 64;
};

/// One queued single-prediction request, tagged with enough identity to
/// route its answer back to the issuing connection.
struct PendingPredict {
  std::uint64_t conn_id = 0;
  std::uint64_t request_id = 0;
  data::UserId user = 0;
  data::ServiceId service = 0;
  double enqueued_monotonic_s = 0.0;
};

class Coalescer {
 public:
  explicit Coalescer(const CoalescerConfig& config) : config_(config) {
    pending_.reserve(config.max_batch);
  }

  /// Queues one request. Returns true when the batch hit max_batch (or
  /// window_us == 0) and must be flushed now.
  bool Add(const PendingPredict& req) {
    pending_.push_back(req);
    return pending_.size() >= config_.max_batch || config_.window_us <= 0.0;
  }

  bool empty() const { return pending_.empty(); }
  std::size_t size() const { return pending_.size(); }

  /// Monotonic enqueue time of the oldest pending request (call only when
  /// non-empty). Requests are appended in arrival order, so this is
  /// pending_.front().
  double oldest_enqueue_s() const { return pending_.front().enqueued_monotonic_s; }

  /// True when the oldest pending request has aged past the window.
  bool Due(double now_s) const {
    return !pending_.empty() &&
           (now_s - oldest_enqueue_s()) * 1e6 >= config_.window_us;
  }

  /// Seconds until the oldest request comes due; call only when
  /// non-empty. <= 0 means due now.
  double SecondsUntilDue(double now_s) const {
    return config_.window_us * 1e-6 - (now_s - oldest_enqueue_s());
  }

  /// Scores every pending request in ONE PredictQoSPairs call and hands
  /// each (request, value) to `emit` in arrival order; NaN marks an
  /// unknown user or service (the server maps it to kUnknownEntity).
  /// Clears the pending set. Returns the batch size that was flushed.
  /// `service` is anything with the PredictQoSPairs(users, services,
  /// values) span contract — a ConcurrentPredictionService or a serving
  /// Backend (the server keeps one coalescer per shard, so a Backend
  /// flush is still one shard-local batch).
  template <typename ServiceT>
  std::size_t Flush(
      const ServiceT& service,
      const std::function<void(const PendingPredict&, double)>& emit) {
    const std::size_t n = pending_.size();
    if (n == 0) return 0;
    users_.resize(n);
    services_.resize(n);
    values_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      users_[i] = pending_[i].user;
      services_[i] = pending_[i].service;
    }
    service.PredictQoSPairs(users_, services_, values_);
    for (std::size_t i = 0; i < n; ++i) emit(pending_[i], values_[i]);
    pending_.clear();
    return n;
  }

  const CoalescerConfig& config() const { return config_; }

 private:
  CoalescerConfig config_;
  std::vector<PendingPredict> pending_;
  // Flush scratch, reused across batches (no per-flush allocation in
  // steady state).
  std::vector<data::UserId> users_;
  std::vector<data::ServiceId> services_;
  std::vector<double> values_;
};

}  // namespace amf::serve

#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/timer.h"
#include "obs/export.h"
#include "serve/protocol.h"

namespace amf::serve {

namespace {

// epoll user-data tags for the two non-connection fds. Connection ids
// start at 1 and count up; these live at the top of the space.
constexpr std::uint64_t kListenTag = ~std::uint64_t{0};
constexpr std::uint64_t kWakeTag = ~std::uint64_t{0} - 1;

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Server::Server(adapt::ConcurrentPredictionService* service,
               const ServerConfig& config)
    : owned_backend_(std::make_unique<ConcurrentBackend>(service)),
      backend_(owned_backend_.get()),
      config_(config) {
  coalescers_.assign(backend_->shard_count(),
                     Coalescer(CoalescerConfig{config.coalesce_window_us,
                                               config.coalesce_max_batch}));
  RegisterMetrics();
}

Server::Server(Backend* backend, const ServerConfig& config)
    : backend_(backend), config_(config) {
  coalescers_.assign(backend_->shard_count(),
                     Coalescer(CoalescerConfig{config.coalesce_window_us,
                                               config.coalesce_max_batch}));
  RegisterMetrics();
}

Server::~Server() { Shutdown(); }

void Server::RegisterMetrics() {
  obs::MetricsRegistry& reg = backend_->metrics();
  accepted_ = reg.GetCounter("serve.accepted");
  closed_ = reg.GetCounter("serve.closed");
  accept_overflow_ = reg.GetCounter("serve.accept_overflow");
  protocol_errors_ = reg.GetCounter("serve.protocol_errors");
  slow_reader_drops_ = reg.GetCounter("serve.slow_reader_drops");
  requests_ = reg.GetCounter("serve.requests");
  coalesce_requests_ = reg.GetCounter("serve.coalesce.requests");
  coalesce_flushes_ = reg.GetCounter("serve.coalesce.flushes");
  connections_gauge_ = reg.GetGauge("serve.connections");
  queue_depth_ = reg.GetGauge("serve.queue_depth");
  paused_gauge_ = reg.GetGauge("serve.paused_connections");
  // Request latency from frame arrival (enqueue, for coalesced PREDICTs)
  // to response bytes encoded. Sub-millisecond territory: widen the low
  // end well below the default 1us floor is unnecessary, but cap at 1s —
  // anything slower is a pathology the overflow bucket should flag.
  obs::LatencyHistogramOptions lat;
  lat.min_value = 1e-7;
  lat.max_value = 1.0;
  lat.buckets = 64;
  request_hist_ = reg.GetLatencyHistogram("serve.request.seconds", lat);
  // Batch sizes are small integers; log-spaced 1..4096 gives exact low
  // buckets where the interesting resolution is.
  obs::LatencyHistogramOptions bs;
  bs.min_value = 1.0;
  bs.max_value = 4096.0;
  bs.buckets = 24;
  batch_size_hist_ = reg.GetLatencyHistogram("serve.coalesce.batch_size", bs);
}

bool Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    last_error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    last_error_ = "bad host: " + config_.host;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    last_error_ = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 128) != 0) {
    last_error_ = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    last_error_ = std::string("epoll/eventfd: ") + std::strerror(errno);
    Shutdown();
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  running_.store(true, std::memory_order_release);
  stop_requested_.store(false, std::memory_order_release);
  loop_thread_ = std::thread(&Server::LoopThread, this);
  if (config_.run_trainer) {
    trainer_thread_ = std::thread(&Server::TrainerThread, this);
  }
  return true;
}

void Server::Shutdown() {
  // Idempotent: a second call (destructor after explicit Shutdown) finds
  // the threads already joined and the fds already closed.
  if (loop_thread_.joinable()) {
    stop_requested_.store(true, std::memory_order_release);
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
    loop_thread_.join();  // the loop thread runs the ordered drain
  }
  if (trainer_thread_.joinable()) {
    stop_requested_.store(true, std::memory_order_release);
    trainer_cv_.notify_all();
    trainer_thread_.join();  // final Tick (ring drain) + FlushJournal
  } else if (running_.load(std::memory_order_acquire)) {
    // No built-in trainer: the shutdown durability point is still ours.
    backend_->FlushJournal();
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void Server::TrainerThread() {
  common::Stopwatch clock;
  auto next = std::chrono::steady_clock::now();
  const auto interval = std::chrono::milliseconds(config_.train_interval_ms);
  std::unique_lock<std::mutex> lk(trainer_mu_);
  while (!stop_requested_.load(std::memory_order_acquire)) {
    next += interval;
    const auto now = std::chrono::steady_clock::now();
    if (next < now) next = now;  // fell behind: skip forward, don't burst
    trainer_cv_.wait_until(lk, next, [this] {
      return stop_requested_.load(std::memory_order_acquire);
    });
    if (stop_requested_.load(std::memory_order_acquire)) break;
    lk.unlock();
    backend_->Tick(clock.ElapsedSeconds());
    backend_->SyncJournalIfDue();
    lk.lock();
  }
  lk.unlock();
  // Shutdown durability point: drain whatever the ring still holds (the
  // drain journals it), then push the WAL tail to disk.
  backend_->Tick(clock.ElapsedSeconds());
  backend_->FlushJournal();
}

int Server::NextTimeoutMs(double now_s) const {
  int timeout = config_.tick_interval_ms;
  for (const Coalescer& co : coalescers_) {
    if (co.empty()) continue;
    const double due_s = co.SecondsUntilDue(now_s);
    // epoll timeouts are milliseconds; a sub-ms window rounds up to 1ms
    // (documented granularity) rather than busy-spinning at timeout 0.
    const int due_ms = due_s <= 0.0
                           ? 0
                           : static_cast<int>(std::ceil(due_s * 1e3));
    if (due_ms < timeout) timeout = due_ms;
  }
  return timeout;
}

std::size_t Server::TotalQueueDepth() const {
  std::size_t total = 0;
  for (const Coalescer& co : coalescers_) total += co.size();
  return total;
}

void Server::LoopThread() {
  std::vector<epoll_event> events(128);
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const int timeout = NextTimeoutMs(MonotonicSeconds());
    const int n =
        ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()),
                     timeout);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        HandleAccept();
        continue;
      }
      if (tag == kWakeTag) {
        std::uint64_t buf;
        [[maybe_unused]] ssize_t r = ::read(wake_fd_, &buf, sizeof(buf));
        continue;
      }
      auto it = conns_.find(tag);
      if (it == conns_.end()) continue;  // closed earlier this wake-up
      Connection& c = it->second;
      bool alive = true;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        alive = false;
      }
      if (alive && (events[i].events & EPOLLOUT) != 0) {
        alive = FlushWrites(c) && ApplyBackpressure(c);
      }
      if (alive && (events[i].events & EPOLLIN) != 0) {
        alive = HandleReadable(c);
      }
      if (!alive) CloseConnection(tag);
    }
    // Housekeeping: flush a due batch, keep acked observations inside the
    // WAL fsync window even when the trainer is idle, refresh gauges.
    FlushDueCoalescers(MonotonicSeconds(), /*force=*/false);
    // Revisit connections whose read buffers still hold complete frames.
    // A mid-parse backpressure break leaves them there, and level-
    // triggered EPOLLIN only fires for NEW socket bytes — without this
    // pass a pipelining peer that stopped sending would stall with
    // requests parked in rbuf forever (and the drop rung could never
    // engage on its growing backlog).
    if (!pending_parse_.empty()) {
      pending_scratch_.clear();
      pending_scratch_.swap(pending_parse_);
      for (const std::uint64_t id : pending_scratch_) {
        auto it = conns_.find(id);
        if (it == conns_.end()) continue;
        if (it->second.paused) continue;  // resume path re-queues below
        if (!ProcessBuffered(it->second)) CloseConnection(id);
      }
    }
    backend_->SyncJournalIfDue();
    queue_depth_->Set(static_cast<double>(TotalQueueDepth()));
  }

  // --- Ordered graceful drain (runs on the loop thread) ---
  // 1. Stop accepting.
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // 2. Every request already read gets its answer.
  FlushDueCoalescers(MonotonicSeconds(), /*force=*/true);
  // 3. Drain write buffers under the deadline.
  const double deadline =
      MonotonicSeconds() + config_.drain_deadline_ms * 1e-3;
  for (;;) {
    bool backlog = false;
    std::vector<std::uint64_t> dead;
    for (auto& [id, c] : conns_) {
      if (!FlushWrites(c)) {
        dead.push_back(id);
      } else if (c.backlog_bytes() > 0) {
        backlog = true;
      }
    }
    for (std::uint64_t id : dead) CloseConnection(id);
    if (!backlog || MonotonicSeconds() >= deadline) break;
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), 10);
    (void)n;  // next pass retries every connection; events only pace us
  }
  // 4. Close everything.
  while (!conns_.empty()) CloseConnection(conns_.begin()->first);
}

void Server::HandleAccept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error; epoll will re-arm
    if (conns_.size() >= config_.max_connections) {
      accept_overflow_->Increment();
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::uint64_t id = next_conn_id_++;
    Connection& c = conns_[id];
    c.fd = fd;
    c.id = id;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    accepted_->Increment();
    connections_gauge_->Set(static_cast<double>(conns_.size()));
  }
}

void Server::CloseConnection(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  if (it->second.paused && paused_count_ > 0) {
    --paused_count_;
    paused_gauge_->Set(static_cast<double>(paused_count_));
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  ::close(it->second.fd);
  conns_.erase(it);
  closed_->Increment();
  connections_gauge_->Set(static_cast<double>(conns_.size()));
}

void Server::UpdateEpoll(Connection& c) {
  const bool want_write = c.backlog_bytes() > 0;
  const bool want_read = !c.paused;
  // Skip the syscall when the interest set is unchanged (the common case
  // on a fast reader: always EPOLLIN, never EPOLLOUT).
  if (want_write == c.want_write && want_read == !c.paused_registered) {
    return;
  }
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = c.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
  c.want_write = want_write;
  c.paused_registered = c.paused;
}

bool Server::FlushWrites(Connection& c) {
  while (c.woff < c.wbuf.size()) {
    const ssize_t n = ::send(c.fd, c.wbuf.data() + c.woff,
                             c.wbuf.size() - c.woff, MSG_NOSIGNAL);
    if (n > 0) {
      c.woff += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;  // signal mid-send: retry
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    return false;  // peer reset / dead socket
  }
  if (c.woff == c.wbuf.size()) {
    c.wbuf.clear();
    c.woff = 0;
  } else if (c.woff > (1u << 16) && c.woff * 2 > c.wbuf.size()) {
    // Compact once the written prefix dominates, so the buffer does not
    // hold drained bytes forever under sustained pipelining.
    c.wbuf.erase(0, c.woff);
    c.woff = 0;
  }
  UpdateEpoll(c);
  return true;
}

bool Server::ApplyBackpressure(Connection& c) {
  const std::size_t backlog = c.backlog_bytes();
  if (backlog > config_.write_drop_bytes) {
    // Rung 2: not draining even while paused. Drop the connection —
    // bounded memory beats an unbounded queue for one slow reader.
    slow_reader_drops_->Increment();
    return false;
  }
  if (!c.paused && backlog > config_.write_pause_bytes) {
    c.paused = true;  // rung 1: stop parsing new requests from this peer
    ++paused_count_;
    paused_gauge_->Set(static_cast<double>(paused_count_));
    UpdateEpoll(c);
  } else if (c.paused && backlog < config_.write_pause_bytes / 2) {
    c.paused = false;  // rung 3: hysteresis resume
    --paused_count_;
    paused_gauge_->Set(static_cast<double>(paused_count_));
    UpdateEpoll(c);
    if (!c.rbuf.empty()) {
      // Frames parked during the pause won't retrigger EPOLLIN; let the
      // housekeeping pass pick them back up.
      pending_parse_.push_back(c.id);
    }
  }
  return true;
}

bool Server::HandleReadable(Connection& c) {
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      c.rbuf.append(buf, static_cast<std::size_t>(n));
      if (static_cast<ssize_t>(sizeof(buf)) == n) continue;
      break;
    }
    if (n == 0) return false;  // orderly EOF
    if (errno == EINTR) continue;  // signal mid-recv: retry, not a reset
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }
  return ProcessBuffered(c);
}

bool Server::ProcessBuffered(Connection& c) {
  std::size_t off = 0;
  bool deferred = false;
  while (off < c.rbuf.size()) {
    Frame frame;
    std::size_t consumed = 0;
    std::string error;
    const DecodeResult r = DecodeFrame(
        std::string_view(c.rbuf).substr(off), &frame, &consumed, &error);
    if (r == DecodeResult::kNeedMore) break;
    if (r == DecodeResult::kProtocolError) {
      protocol_errors_->Increment();
      // A peer whose fixed header still parses (known request opcode,
      // recoverable request_id) gets one kError frame before the close so
      // it can tell rejection from a crash; unframeable garbage cannot be
      // trusted to parse a frame and is closed silently.
      FrameHeader rejected;
      if (PeekRequestHeader(std::string_view(c.rbuf).substr(off), &rejected)) {
        SendErrorAndNote(c, rejected.opcode, rejected.request_id);
      }
      return false;
    }
    off += consumed;
    if (!HandleFrame(c, frame)) {
      protocol_errors_->Increment();
      if (!frame.header.is_response) {
        // The frame decoded — the peer framed correctly and the payload
        // semantics were wrong (count lie, short parse). Tell it.
        SendErrorAndNote(c, frame.header.opcode, frame.header.request_id);
      }
      return false;
    }
    if (c.backlog_bytes() > config_.write_pause_bytes) {
      deferred = true;
      break;  // backpressure rung 1: stop parsing, keep the unread bytes
    }
  }
  c.rbuf.erase(0, off);
  if (deferred && !c.rbuf.empty()) {
    // Complete frames may remain; epoll won't re-announce already-recv'd
    // bytes, so the housekeeping pass must come back for them.
    pending_parse_.push_back(c.id);
  }
  return FlushWrites(c) && ApplyBackpressure(c);
}

bool Server::HandleFrame(Connection& c, const Frame& frame) {
  if (frame.header.is_response) return false;  // clients send requests only
  requests_->Increment();
  const double t0 = MonotonicSeconds();
  switch (frame.header.opcode) {
    case Opcode::kPing:
      AppendPingResponse(c.wbuf, frame.header.request_id);
      break;
    case Opcode::kPredict: {
      PredictPayload p;
      if (!ParsePredict(frame.payload, &p)) return false;
      PendingPredict req;
      req.conn_id = c.id;
      req.request_id = frame.header.request_id;
      req.user = p.user;
      req.service = p.service;
      req.enqueued_monotonic_s = t0;
      // Route to the user's home shard BEFORE batching: every coalesced
      // batch then flushes into exactly one shard-local PredictQoSPairs.
      const std::size_t shard = backend_->ShardOfUser(p.user);
      if (coalescers_[shard].Add(req)) FlushCoalescer(shard);
      return true;  // latency recorded at emit time, not here
    }
    case Opcode::kPredictMany: {
      PredictManyPayload p;
      if (!ParsePredictMany(frame.payload, &p)) return false;
      std::vector<double> values(p.services.size());
      const bool known = backend_->PredictQoSMany(p.user, p.services, values);
      AppendPredictManyResponse(c.wbuf, frame.header.request_id,
                                known ? Status::kOk : Status::kUnknownEntity,
                                values);
      break;
    }
    case Opcode::kReportObs: {
      data::QoSSample sample;
      if (!ParseReportObs(frame.payload, &sample)) return false;
      const bool accepted = backend_->ReportObservation(sample);
      AppendReportObsResponse(c.wbuf, frame.header.request_id,
                              accepted ? Status::kOk : Status::kShed);
      break;
    }
    case Opcode::kMetrics: {
      scratch_ = obs::ToJson(backend_->metrics().Snapshot());
      AppendMetricsResponse(c.wbuf, frame.header.request_id, scratch_);
      break;
    }
  }
  request_hist_->Record(MonotonicSeconds() - t0);
  return true;
}

void Server::FlushDueCoalescers(double now_s, bool force) {
  for (std::size_t s = 0; s < coalescers_.size(); ++s) {
    if (force ? !coalescers_[s].empty() : coalescers_[s].Due(now_s)) {
      FlushCoalescer(s);
    }
  }
}

void Server::SendErrorAndNote(Connection& c, Opcode opcode,
                              std::uint64_t request_id) {
  AppendErrorResponse(c.wbuf, opcode, request_id);
  (void)FlushWrites(c);  // best effort — the connection closes right after
}

void Server::FlushCoalescer(std::size_t shard) {
  Coalescer& coalescer = coalescers_[shard];
  if (coalescer.empty()) return;
  // Touched connections get one FlushWrites pass after the whole batch is
  // encoded (one send syscall for many responses on a shared conn).
  std::vector<std::uint64_t> touched;
  const std::size_t n = coalescer.Flush(
      *backend_, [this, &touched](const PendingPredict& req, double value) {
        auto it = conns_.find(req.conn_id);
        if (it == conns_.end()) return;  // conn died while queued
        const Status status =
            std::isnan(value) ? Status::kUnknownEntity : Status::kOk;
        AppendPredictResponse(it->second.wbuf, req.request_id, status, value);
        request_hist_->Record(MonotonicSeconds() - req.enqueued_monotonic_s);
        if (touched.empty() || touched.back() != req.conn_id)
          touched.push_back(req.conn_id);
      });
  coalesce_flushes_->Increment();
  coalesce_requests_->Increment(n);
  batch_size_hist_->Record(static_cast<double>(n));
  for (const std::uint64_t id : touched) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    if (!FlushWrites(it->second) || !ApplyBackpressure(it->second)) {
      CloseConnection(id);
    }
  }
}

}  // namespace amf::serve

// Closed/open-loop load generator for the serving front-end.
//
// Two driving modes per phase, because they answer different questions:
//
//   kClosed -- N connections, each a synchronous request/response loop.
//     Offered load is whatever the server sustains (throughput probe);
//     latency hides queueing because a slow server slows the clients.
//   kOpen   -- N connections, each sending at a fixed rate on absolute
//     deadlines (next += 1/rate, never "sleep then send"), pipelined up
//     to max_outstanding without waiting for responses. Offered load is
//     independent of the server (latency probe / flash-crowd phases);
//     coordinated omission is avoided by construction because send
//     times do not depend on response times.
//
// All threads of a phase record into one shared wait-free
// obs::LatencyHistogram; the PhaseResult carries p50/p95/p99 from its
// snapshot. Requests are PREDICT with ids drawn round-robin from the
// configured ranges (round-robin, not random: the generator must be
// deterministic run-to-run), with an optional REPORT_OBS mix.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace amf::serve {

enum class LoadMode { kClosed, kOpen };

struct LoadPhase {
  std::string name = "phase";
  LoadMode mode = LoadMode::kClosed;
  std::size_t connections = 4;
  /// Total offered request rate across all connections (kOpen only).
  double target_rps = 1000.0;
  double duration_s = 1.0;
  /// Pipelining cap per connection (kOpen only): sends stall — and are
  /// counted as `deferred_sends` — rather than queue unboundedly when
  /// the server lags the offered rate.
  std::size_t max_outstanding = 64;
  /// Fraction of requests that are REPORT_OBS instead of PREDICT.
  double report_fraction = 0.0;
  std::uint32_t num_users = 32;
  std::uint32_t num_services = 64;
};

struct PhaseResult {
  std::string name;
  LoadMode mode = LoadMode::kClosed;
  std::size_t connections = 0;
  double target_rps = 0.0;   ///< 0 for closed loop
  double duration_s = 0.0;   ///< measured wall time
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::uint64_t errors = 0;  ///< transport/protocol failures
  std::uint64_t shed = 0;    ///< REPORT_OBS answered kShed
  std::uint64_t deferred_sends = 0;  ///< kOpen sends delayed by the cap
  double achieved_rps = 0.0;
  double p50_s = 0.0, p95_s = 0.0, p99_s = 0.0, mean_s = 0.0;
};

struct LoadGenConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  double connect_deadline_s = 5.0;
};

/// Runs one phase to completion (spawns phase.connections threads; joins
/// them). std::nullopt when any connection failed to connect.
std::optional<PhaseResult> RunLoadPhase(const LoadGenConfig& config,
                                        const LoadPhase& phase);

/// Appends `result` as one JSON object to `out` (the BENCH_serving.json
/// "phases" entries).
void AppendPhaseJson(std::string& out, const PhaseResult& result);

/// The canonical serving drill: warmup (closed) -> three open-loop
/// offered-load levels -> flash-crowd burst -> mixed read/report closed
/// loop. `quick` shrinks rates and durations for CI smoke runs.
std::vector<LoadPhase> StandardPhasePlan(bool quick, std::size_t connections,
                                         std::uint32_t num_users,
                                         std::uint32_t num_services);

/// Server-side deltas read over METRICS before/after a run.
struct ServingDeltas {
  double coalesce_requests = 0.0;
  double coalesce_flushes = 0.0;
  double protocol_errors = 0.0;
  double slow_reader_drops = 0.0;
  double ratio() const {
    return coalesce_flushes > 0.0 ? coalesce_requests / coalesce_flushes
                                  : 0.0;
  }
};
ServingDeltas ComputeServingDeltas(std::string_view metrics_before,
                                   std::string_view metrics_after);

/// Renders the full BENCH_serving.json document.
std::string RenderServingReport(bool quick, std::size_t connections,
                                const std::vector<PhaseResult>& results,
                                const ServingDeltas& deltas);

/// Pulls one numeric value ("name": <number>) out of a metrics JSON
/// export — enough JSON awareness to read counters from a live server's
/// METRICS response without a parser dependency.
std::optional<double> ExtractMetricNumber(std::string_view json,
                                          std::string_view name);

}  // namespace amf::serve

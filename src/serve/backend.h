// Serving backend seam (DESIGN.md §15).
//
// The event loop does not care whether predictions come from one
// ConcurrentPredictionService or from N user-sharded instances behind a
// ShardedPredictionService — it needs exactly the calls on this
// interface. The one sharding-aware decision the loop DOES make is
// routing: PREDICT requests are routed to a per-shard coalescer by
// ShardOfUser() BEFORE batching, so every coalesced batch stays
// shard-local and flushes into its home shard's PredictQoSPairs without
// a cross-shard scatter on the hot path. A single-instance backend
// reports one shard and the server degenerates to PR 9's behaviour
// (one coalescer, bit-identical batching).
#pragma once

#include <cstddef>
#include <span>

#include "adapt/concurrent_service.h"
#include "adapt/sharded_service.h"
#include "data/qos_types.h"
#include "obs/metrics.h"

namespace amf::serve {

class Backend {
 public:
  virtual ~Backend() = default;

  /// Number of independent model shards (>= 1). The server keeps one
  /// coalescer per shard.
  virtual std::size_t shard_count() const = 0;
  /// Home shard of a user id, in [0, shard_count()).
  virtual std::size_t ShardOfUser(data::UserId user) const = 0;

  virtual bool PredictQoSMany(data::UserId user,
                              std::span<const data::ServiceId> services,
                              std::span<double> out) const = 0;
  /// Element-wise batch scoring; NaN marks unknown entities. Callers
  /// (the coalescer) only ever pass batches whose users share one shard,
  /// but the contract does not require it.
  virtual void PredictQoSPairs(std::span<const data::UserId> users,
                               std::span<const data::ServiceId> services,
                               std::span<double> out) const = 0;
  virtual bool ReportObservation(const data::QoSSample& sample) = 0;

  virtual void Tick(double now_seconds) = 0;
  virtual bool SyncJournalIfDue() = 0;
  virtual bool FlushJournal() = 0;

  virtual obs::MetricsRegistry& metrics() const = 0;
};

/// PR 9 shape: one ConcurrentPredictionService, one shard.
class ConcurrentBackend final : public Backend {
 public:
  explicit ConcurrentBackend(adapt::ConcurrentPredictionService* service)
      : service_(service) {}

  std::size_t shard_count() const override { return 1; }
  std::size_t ShardOfUser(data::UserId) const override { return 0; }

  bool PredictQoSMany(data::UserId user,
                      std::span<const data::ServiceId> services,
                      std::span<double> out) const override {
    return service_->PredictQoSMany(user, services, out);
  }
  void PredictQoSPairs(std::span<const data::UserId> users,
                       std::span<const data::ServiceId> services,
                       std::span<double> out) const override {
    service_->PredictQoSPairs(users, services, out);
  }
  bool ReportObservation(const data::QoSSample& sample) override {
    return service_->ReportObservation(sample);
  }
  void Tick(double now_seconds) override { service_->Tick(now_seconds); }
  bool SyncJournalIfDue() override { return service_->SyncJournalIfDue(); }
  bool FlushJournal() override { return service_->FlushJournal(); }
  obs::MetricsRegistry& metrics() const override {
    return service_->metrics();
  }

 private:
  adapt::ConcurrentPredictionService* service_;
};

/// User-sharded multi-instance backend: routing comes from the facade's
/// frozen hash router, so the coalescer partition matches the shard that
/// will answer.
class ShardedBackend final : public Backend {
 public:
  explicit ShardedBackend(adapt::ShardedPredictionService* service)
      : service_(service) {}

  std::size_t shard_count() const override { return service_->num_shards(); }
  std::size_t ShardOfUser(data::UserId user) const override {
    return service_->router().ShardOf(user);
  }

  bool PredictQoSMany(data::UserId user,
                      std::span<const data::ServiceId> services,
                      std::span<double> out) const override {
    return service_->PredictQoSMany(user, services, out);
  }
  void PredictQoSPairs(std::span<const data::UserId> users,
                       std::span<const data::ServiceId> services,
                       std::span<double> out) const override {
    service_->PredictQoSPairs(users, services, out);
  }
  bool ReportObservation(const data::QoSSample& sample) override {
    return service_->ReportObservation(sample);
  }
  void Tick(double now_seconds) override { service_->Tick(now_seconds); }
  bool SyncJournalIfDue() override { return service_->SyncJournalIfDue(); }
  bool FlushJournal() override { return service_->FlushJournal(); }
  obs::MetricsRegistry& metrics() const override {
    return service_->metrics();
  }

 private:
  adapt::ShardedPredictionService* service_;
};

}  // namespace amf::serve

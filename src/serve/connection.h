// Per-connection state for the serving event loop (DESIGN.md §14).
//
// Each accepted socket owns two byte buffers:
//
//   rbuf  -- unconsumed inbound bytes; DecodeFrame peels complete frames
//            off the front, partial frames wait for the next EPOLLIN.
//   wbuf  -- encoded response bytes not yet written; woff marks how much
//            of it the kernel has taken, and the buffer is compacted once
//            fully drained (amortized O(1), no per-write erase).
//
// Backpressure ladder (a reader that stops reading must cost the server
// a bounded amount of memory, never an unbounded queue):
//
//   1. wbuf - woff > write_pause_bytes  -> stop reading the socket
//      (drop EPOLLIN): no new requests are parsed, so the peer's
//      pipelining stalls instead of our memory growing. `paused` set,
//      serve.paused_connections gauge up.
//   2. wbuf - woff > write_drop_bytes   -> the peer is not draining even
//      the paused backlog; close the connection and count it in
//      serve.slow_reader_drops. Losing one slow consumer is the designed
//      outcome — the alternative is the server OOMing for everyone.
//   3. backlog < write_pause_bytes / 2  -> resume reading (hysteresis so
//      a connection hovering at the threshold does not flap its epoll
//      registration every frame).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace amf::serve {

struct Connection {
  int fd = -1;
  std::uint64_t id = 0;  ///< stable tag used by the coalescer's routing
  std::string rbuf;
  std::string wbuf;
  std::size_t woff = 0;   ///< bytes of wbuf already written to the socket
  bool paused = false;    ///< EPOLLIN removed by the backpressure ladder
  bool want_write = false;  ///< EPOLLOUT currently registered
  bool paused_registered = false;  ///< pause state the epoll set reflects

  std::size_t backlog_bytes() const { return wbuf.size() - woff; }
};

}  // namespace amf::serve

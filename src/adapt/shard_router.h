// User -> shard hash router for the multi-instance AMF layer
// (DESIGN.md §15).
//
// The mapping is FROZEN: per-shard checkpoints and WALs are laid out by
// it, so changing the hash silently strands every user's durable history
// on the wrong shard. kHashVersion names the function; the shard-set
// manifest records it and Recover() refuses a mismatch, and the router
// unit test pins golden (user, shard) pairs so an accidental change
// fails in CI before it can corrupt a deployment.
//
// The hash is the SplitMix64 finalizer over the 32-bit user id — cheap
// (a handful of multiplies on the serving hot path, where every PREDICT
// routes before coalescing), and avalanching enough that consecutive
// user ids spread evenly across shards (dense registration order would
// make modulo-only routing correlate with registration time).
#pragma once

#include <cstdint>

#include "common/check.h"
#include "data/qos_types.h"

namespace amf::adapt {

class ShardRouter {
 public:
  /// Version of the hash function below. Persisted in the shard-set
  /// manifest; bump ONLY with a migration story for existing shard dirs.
  static constexpr std::uint32_t kHashVersion = 1;

  explicit ShardRouter(std::size_t num_shards) : num_shards_(num_shards) {
    AMF_CHECK_MSG(num_shards >= 1, "ShardRouter: need at least one shard");
  }

  std::size_t num_shards() const { return num_shards_; }

  /// Home shard of a user, in [0, num_shards()). Pure function of
  /// (user, num_shards) — every process in a deployment agrees.
  std::size_t ShardOf(data::UserId user) const {
    if (num_shards_ == 1) return 0;
    return static_cast<std::size_t>(Mix(user) % num_shards_);
  }

  /// SplitMix64 finalizer (Stafford variant 13) — the same mixer
  /// common::SplitMix64 steps with, applied as a pure function.
  static std::uint64_t Mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

 private:
  std::size_t num_shards_;
};

}  // namespace amf::adapt

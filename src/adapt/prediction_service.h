// QoSPredictionService: the service-side module of Fig. 3.
//
// Wires together the three pipeline stages the paper describes:
//   1. input handling  -- stream::Collector buffers observations
//   2. online updating -- core::OnlineTrainer / AmfModel
//   3. QoS prediction  -- PredictQoS() through a stable interface
// plus user/service managers for churn. Single-attribute (the adaptation
// scenario monitors response time); instantiate twice for RT + TP.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>

#include "adapt/registry.h"
#include "core/amf_predictor.h"
#include "stream/collector.h"

namespace amf::adapt {

struct PredictionServiceConfig {
  core::AmfConfig model;
  core::TrainerConfig trainer;
  /// Replay epochs run per Tick() after draining new samples; keeps the
  /// per-tick cost bounded (a real deployment trains continuously in the
  /// background; the simulation quantizes that into ticks).
  std::size_t replay_epochs_per_tick = 1;
};

class QoSPredictionService {
 public:
  explicit QoSPredictionService(const PredictionServiceConfig& config = {
                                    core::MakeResponseTimeConfig(),
                                    core::TrainerConfig{},
                                    1});

  // --- User / service managers -------------------------------------------
  data::UserId RegisterUser(const std::string& name);
  data::ServiceId RegisterService(const std::string& name);
  bool UnregisterUser(const std::string& name);
  bool UnregisterService(const std::string& name);
  const UserRegistry& users() const { return users_; }
  const ServiceRegistry& services() const { return services_; }

  // --- Input handling ------------------------------------------------------
  /// Reports one observed QoS sample (ids must come from the registries).
  void ReportObservation(const data::QoSSample& sample);

  // --- Online updating -----------------------------------------------------
  /// Advances the service clock, drains buffered observations into the
  /// trainer, applies them, and runs a bounded amount of replay.
  void Tick(double now_seconds);

  /// Runs replay to convergence (used at cold start).
  void TrainToConvergence(double now_seconds);

  // --- QoS prediction ------------------------------------------------------
  /// Predicted QoS for (user, service); nullopt if either id is unknown
  /// to the model (never observed and never registered via Ensure*).
  std::optional<double> PredictQoS(data::UserId u, data::ServiceId s) const;

  /// A prediction together with its relative-error-scale uncertainty
  /// (see core::AmfModel::PredictionUncertainty).
  struct Prediction {
    double value = 0.0;
    double uncertainty = 0.0;
  };
  std::optional<Prediction> PredictQoSWithUncertainty(
      data::UserId u, data::ServiceId s) const;

  /// Batched candidate scoring for one user: fills values[i] (and, when
  /// `uncertainties` is non-empty, uncertainties[i]) for candidates[i].
  /// Registered candidates go through the model's single-pass gather
  /// kernel; unknown ones get NaN in both outputs. Returns false (outputs
  /// all NaN) if the user is unknown. Span sizes must match candidates
  /// (uncertainties may also be empty to skip them).
  bool PredictQoSRow(data::UserId u,
                     std::span<const data::ServiceId> candidates,
                     std::span<double> values,
                     std::span<double> uncertainties) const;

  const core::AmfModel& model() const { return model_; }
  core::OnlineTrainer& trainer() { return trainer_; }
  std::size_t observations() const { return collector_.total_collected(); }

 private:
  PredictionServiceConfig config_;
  core::AmfModel model_;
  core::OnlineTrainer trainer_;
  stream::Collector collector_;
  UserRegistry users_;
  ServiceRegistry services_;
};

}  // namespace amf::adapt

// QoSPredictionService: the service-side module of Fig. 3.
//
// Wires together the three pipeline stages the paper describes:
//   1. input handling  -- stream::Collector buffers observations
//   2. online updating -- core::OnlineTrainer / AmfModel
//   3. QoS prediction  -- PredictQoS() through a stable interface
// plus user/service managers for churn. Single-attribute (the adaptation
// scenario monitors response time); instantiate twice for RT + TP.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "adapt/registry.h"
#include "common/statistics.h"
#include "core/amf_predictor.h"
#include "core/checkpoint.h"
#include "stream/collector.h"
#include "stream/wal.h"

namespace amf::adapt {

/// Graceful-degradation thresholds for PredictResilient.
struct DegradationConfig {
  /// Entity-error EMA (e_u / e_s) above this counts as unconverged: the
  /// model has not seen enough of this entity for its factorization to be
  /// trusted, so the ladder steps down to the service mean.
  double max_entity_error = 0.8;
  /// A stored (user, service) sample older than this (seconds, against
  /// the trainer clock) no longer counts as last-known-good. <= 0: any
  /// stored sample qualifies.
  double last_known_good_max_age_seconds = 0.0;
};

struct PredictionServiceConfig {
  core::AmfConfig model;
  core::TrainerConfig trainer;
  /// Replay epochs run per Tick() after draining new samples; keeps the
  /// per-tick cost bounded (a real deployment trains continuously in the
  /// background; the simulation quantizes that into ticks).
  std::size_t replay_epochs_per_tick = 1;
  DegradationConfig degradation{};
  /// Observability sink for the whole pipeline (trainer counters, epoch
  /// timing, checkpoint counters). Overrides trainer.metrics when set; the
  /// registry must outlive the service and must not be snapshotted after
  /// the service is destroyed. nullptr = no metrics.
  obs::MetricsRegistry* metrics = nullptr;
};

class QoSPredictionService {
 public:
  explicit QoSPredictionService(const PredictionServiceConfig& config = {
                                    core::MakeResponseTimeConfig(),
                                    core::TrainerConfig{},
                                    1});

  // --- User / service managers -------------------------------------------
  data::UserId RegisterUser(const std::string& name);
  data::ServiceId RegisterService(const std::string& name);
  /// Registers raw ids with the model (no registry entry): grows factor
  /// storage up to and including each id. Used by the concurrent facade to
  /// pre-register every entity of a drained batch under its registration
  /// lock before samples reach the (growth-unsafe) guarded trainer path.
  void EnsureRegistered(data::UserId u, data::ServiceId s);
  /// Deactivates a name. The registry binding, latent factors, and stored
  /// samples survive — a rejoin resumes from the learned state — but new
  /// observations for the id are refused while it is departed.
  bool UnregisterUser(const std::string& name);
  bool UnregisterService(const std::string& name);
  /// Reclaims a departed (or active) entity end to end (DESIGN.md §10):
  /// the registry slot goes onto the free-list under a bumped generation,
  /// the model row is deterministically re-initialized with its error EMA
  /// reset to initial_error (the paper's cold-start state, Eq. 13), and
  /// every trace of the tenant is purged from the trainer (stored samples,
  /// queued observations, validator history — counted in
  /// pipeline_stats().purged_samples) and, for services, from the
  /// degradation ladder's running stats. Returns false if the name is
  /// unknown. Under churn, Retire is what bounds memory: slots recycle
  /// instead of growing forever.
  bool RetireUser(const std::string& name);
  bool RetireService(const std::string& name);
  const UserRegistry& users() const { return users_; }
  const ServiceRegistry& services() const { return services_; }

  // --- Input handling ------------------------------------------------------
  /// Reports one observed QoS sample. Ids must belong to registered
  /// entities (active or departed registry slots): observations for ids
  /// that never joined, or whose slot was retired, are refused and counted
  /// in pipeline_stats().rejected_unregistered — they would otherwise grow
  /// fallback statistics (and, through the trainer, factor storage) for
  /// entities that do not exist.
  void ReportObservation(const data::QoSSample& sample);

  /// The concurrent facade's ingest entry: it manages raw ids itself and
  /// pre-registers them with the model before draining, so this path only
  /// refuses ids whose registry slot is explicitly retired (stale ring
  /// residue from before a retirement must not resurrect the tenant).
  void ReportObservationTrusted(const data::QoSSample& sample);

  /// Batch form of ReportObservationTrusted with group-commit journaling:
  /// the whole batch is gated, appended to the journal as ONE write and at
  /// most one fsync, then collected. This is the concurrent facade's drain
  /// path — the per-sample fsync cost of `always` amortizes over the drain
  /// instead of taxing the wait-free producers.
  void ReportObservationsTrusted(const std::vector<data::QoSSample>& samples);

  // --- Online updating -----------------------------------------------------
  /// Advances the service clock, drains buffered observations into the
  /// trainer, applies them, and runs a bounded amount of replay.
  void Tick(double now_seconds);

  /// Runs replay to convergence (used at cold start).
  void TrainToConvergence(double now_seconds);

  // --- QoS prediction ------------------------------------------------------
  /// Predicted QoS for (user, service); nullopt if either id is unknown
  /// to the model (never observed and never registered via Ensure*).
  std::optional<double> PredictQoS(data::UserId u, data::ServiceId s) const;

  /// A prediction together with its relative-error-scale uncertainty
  /// (see core::AmfModel::PredictionUncertainty).
  struct Prediction {
    double value = 0.0;
    double uncertainty = 0.0;
  };
  std::optional<Prediction> PredictQoSWithUncertainty(
      data::UserId u, data::ServiceId s) const;

  /// Batched candidate scoring for one user: fills values[i] (and, when
  /// `uncertainties` is non-empty, uncertainties[i]) for candidates[i].
  /// Registered candidates go through the model's single-pass gather
  /// kernel; unknown ones get NaN in both outputs. Returns false (outputs
  /// all NaN) if the user is unknown. Span sizes must match candidates
  /// (uncertainties may also be empty to skip them).
  bool PredictQoSRow(data::UserId u,
                     std::span<const data::ServiceId> candidates,
                     std::span<double> values,
                     std::span<double> uncertainties) const;

  // --- Graceful degradation ------------------------------------------------
  /// Where a resilient prediction came from (the degradation ladder).
  enum class PredictionSource : std::uint8_t {
    kModel = 0,        ///< converged AMF prediction
    kServiceMean,      ///< running mean of the service's observations
    kLastKnownGood,    ///< most recent stored raw sample for the pair
    kUnavailable,      ///< nothing known; value is NaN
  };

  struct ResilientPrediction {
    double value = 0.0;
    PredictionSource source = PredictionSource::kUnavailable;
  };

  /// Never-fails prediction: walks the degradation ladder
  ///   AMF model (entities registered, error EMAs converged, finite value)
  ///   -> per-service running mean of observed samples
  ///   -> last-known-good stored sample for the pair
  ///   -> unavailable (NaN value).
  /// Sources are counted in degradation_stats(). Ids that are not
  /// registered (never joined, or retired) refuse every rung and return
  /// kUnavailable: the ladder must not serve another tenant's statistics
  /// for an entity that does not exist.
  ResilientPrediction PredictResilient(data::UserId u,
                                       data::ServiceId s) const;

  struct DegradationStats {
    std::uint64_t model = 0;
    std::uint64_t service_mean = 0;
    std::uint64_t last_known_good = 0;
    std::uint64_t unavailable = 0;
  };
  const DegradationStats& degradation_stats() const {
    return degradation_stats_;
  }

  // --- Checkpointing -------------------------------------------------------
  /// Arms interval-gated crash-safe checkpoints: every Tick() hands the
  /// model + sample store + trainer clock to a core::CheckpointManager.
  void EnableCheckpoints(const core::CheckpointManagerConfig& config);

  /// Restores model, sample store, clock, and — for v2 checkpoints — both
  /// entity registries (names, lifecycle states, free-list) from the
  /// newest valid checkpoint, so every name predicts from its own trained
  /// factors regardless of re-registration order. v1 checkpoints restore
  /// factors only (logged): callers must then re-register names in the
  /// original join order. Returns false when checkpoints are not enabled
  /// or none is loadable.
  bool RestoreFromLatestCheckpoint();

  core::CheckpointManager* checkpoints() { return checkpoints_.get(); }

  // --- Durable observation journal (DESIGN.md §12) -------------------------
  /// Arms the write-ahead observation journal: from now on every accepted
  /// observation is framed + CRC'd into a rotating segment file *before*
  /// it reaches the collector (an observation whose append fails is
  /// dropped and counted in pipeline_stats().journal_dropped — never
  /// acknowledged-but-undurable). Checkpoints taken afterwards carry the
  /// journal watermark (format v3) and segments fully covered by a saved
  /// watermark are garbage-collected. Call before Recover().
  void EnableJournal(const stream::JournalConfig& config);

  stream::ObservationJournal* journal() { return journal_.get(); }

  /// kInterval housekeeping passthrough (see ObservationJournal::
  /// SyncIfDue). No-op when journaling is off. Tick() already calls this;
  /// event loops that go long stretches without ticking (the serving
  /// front-end's drain timer) call it directly.
  bool SyncJournalIfDue() {
    return journal_ != nullptr && journal_->SyncIfDue();
  }

  /// Forces every journaled byte durable (shutdown path: the serving
  /// front-end flushes the WAL after draining in-flight requests, before
  /// exit). Returns false when journaling is off or the fsync failed.
  bool FlushJournal() { return journal_ != nullptr && journal_->SyncNow(); }

  /// What Recover() did (also returned by the dry-run CLI path).
  struct RecoveryReport {
    bool checkpoint_restored = false;
    /// Watermark the restored checkpoint carried; 0 when the checkpoint
    /// predates v3 (or none restored) — then the whole journal replays
    /// and idempotence (duplicate rejection) does the filtering.
    std::uint64_t watermark = 0;
    std::uint64_t scanned = 0;   ///< journal records with LSN > watermark
    std::uint64_t replayed = 0;  ///< handed to the validation pipeline
    std::uint64_t rejected_generation = 0;  ///< retired-and-recycled ids
    std::uint64_t rejected_retired = 0;     ///< retired, slot still free
    std::uint64_t quarantined_segments = 0;
  };

  /// Point-in-time recovery: newest valid checkpoint (if enabled) +
  /// replay of journal records with LSN > its watermark through the
  /// normal validation/gating pipeline. Replayed records whose registry
  /// generation no longer matches (the id was retired — and possibly
  /// recycled to a new tenant — after the append) are rejected, not
  /// misapplied. Application is ingest-only (collector -> validator ->
  /// trainer queue -> ProcessIncoming): no replay epochs run, so the
  /// post-recovery factors are bit-identical to feeding the same
  /// surviving records into a fresh restore of the same checkpoint.
  RecoveryReport Recover();

  const core::AmfModel& model() const { return model_; }

  /// Mutable model access for the sharding facade's service-factor merge
  /// (seqlock-publishing row overwrites at the epoch barrier — see
  /// AmfModel::OverwriteServiceRow). Not a general mutation hook: all
  /// other writes must go through the training pipeline.
  core::AmfModel& mutable_model() { return model_; }

  /// Switches the model's read precision (rebuilding the compressed
  /// replicas from the fp64 masters). NOT safe against concurrent readers
  /// or in-flight training — the concurrent facade wraps this under its
  /// exclusive locks; serial callers just must not be mid-Tick.
  void set_read_precision(core::ReadPrecision precision) {
    model_.SetReadPrecision(precision);
  }
  core::ReadPrecision read_precision() const {
    return model_.read_precision();
  }

  core::OnlineTrainer& trainer() { return trainer_; }
  const core::OnlineTrainer& trainer() const { return trainer_; }
  std::size_t observations() const { return collector_.total_collected(); }

  /// Ingestion/guard counters from the trainer's validator.
  core::PipelineStats pipeline_stats() const;

 private:
  /// Shared body of the two ReportObservation entries (gate already
  /// passed).
  void CollectObservation(const data::QoSSample& sample);

  /// Registry generations for a sample, +1-encoded for the journal
  /// (0 = id not registry-tracked at append time; see stream/wal.h).
  std::pair<std::uint32_t, std::uint32_t> JournalGenerations(
      const data::QoSSample& sample) const;

  /// Mirrors registry lifecycle totals into the relaxed-atomic counters
  /// metric callbacks read (callbacks must not walk registry vectors that
  /// another thread is mutating). Call after any registry mutation.
  void SyncLifecycleCounters();

  /// Registers lifecycle.* gauges/counters with config_.metrics.
  void RegisterLifecycleMetrics();

  PredictionServiceConfig config_;
  core::AmfModel model_;
  core::OnlineTrainer trainer_;
  stream::Collector collector_;
  UserRegistry users_;
  ServiceRegistry services_;
  std::unordered_map<data::ServiceId, common::RunningStats> service_stats_;
  std::unique_ptr<core::CheckpointManager> checkpoints_;
  std::unique_ptr<stream::ObservationJournal> journal_;
  std::vector<data::QoSSample> journal_batch_;  // drain-path scratch
  /// Watermark carried by the last restored checkpoint (nullopt: none, or
  /// a pre-v3 file — Recover then falls back to full-journal replay).
  std::optional<std::uint64_t> restored_watermark_;
  std::atomic<std::uint64_t> journal_dropped_{0};
  std::atomic<std::uint64_t> journal_replayed_{0};
  std::atomic<std::uint64_t> journal_replay_rejected_{0};
  // PredictResilient is conceptually const; the ladder accounting is
  // observability-only state (single-writer, like the model's counters).
  mutable DegradationStats degradation_stats_;
  // Single-writer relaxed atomics mirrored from the registries so metric
  // snapshots are wait-free and race-free against registry mutation.
  struct LifecycleCounters {
    std::atomic<std::uint64_t> users_active{0};
    std::atomic<std::uint64_t> users_slots{0};
    std::atomic<std::uint64_t> users_free{0};
    std::atomic<std::uint64_t> users_recycled{0};
    std::atomic<std::uint64_t> services_active{0};
    std::atomic<std::uint64_t> services_slots{0};
    std::atomic<std::uint64_t> services_free{0};
    std::atomic<std::uint64_t> services_recycled{0};
  };
  LifecycleCounters lifecycle_;
  std::atomic<std::uint64_t> rejected_unregistered_{0};
};

}  // namespace amf::adapt

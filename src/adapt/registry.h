// User / service managers (Fig. 3): track the entities known to the QoS
// prediction service and their join/leave/retire lifecycle under churn.
//
// Lifecycle state machine per slot (see DESIGN.md §10):
//
//   (unknown) --Join--> ACTIVE --Leave--> DEPARTED --Join--> ACTIVE
//                         |                  |
//                       Retire             Retire
//                         v                  v
//                        FREE --Join(new name, recycled id)--> ACTIVE
//
// Leave deactivates but keeps the name->id binding, so a returning entity
// gets its learned latent factors back. Retire reclaims the slot: the
// binding is erased, the id goes onto a free-list, and the slot's
// generation counter is bumped so any (id, generation) handle taken before
// the retirement can be told apart from the slot's next tenant. Under
// sustained churn the slot table is bounded by the peak number of
// live-or-departed entities, not by the total that ever joined.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/registry_image.h"
#include "data/qos_types.h"

namespace amf::adapt {

using core::SlotState;

/// Generic id registry: external string name <-> dense numeric id, with
/// per-slot lifecycle state, generation tags, and id recycling.
template <typename IdType>
class Registry {
 public:
  using Generation = std::uint32_t;

  /// A generation-tagged reference to a slot: stays valid across
  /// leave/rejoin but is invalidated by retirement (the generation bumps),
  /// so a stale handle can never be confused with the slot's next tenant.
  struct Handle {
    IdType id = 0;
    Generation generation = 0;
    bool operator==(const Handle&) const = default;
  };

  /// Registers (or re-activates) a name; returns its id. Unknown names
  /// take a recycled slot from the free-list when one is available (its
  /// generation was already bumped at retirement), else a fresh dense id.
  IdType Join(const std::string& name) {
    const auto it = ids_.find(name);
    if (it != ids_.end()) {
      if (states_[it->second] == SlotState::kDeparted) {
        states_[it->second] = SlotState::kActive;
        ++num_active_;
      }
      return it->second;
    }
    IdType id;
    if (!free_list_.empty()) {
      id = static_cast<IdType>(free_list_.back());
      free_list_.pop_back();
      names_[id] = name;
      recycled_total_.fetch_add(1, std::memory_order_relaxed);
    } else {
      id = static_cast<IdType>(names_.size());
      names_.push_back(name);
      states_.push_back(SlotState::kFree);  // overwritten below
      generations_.push_back(0);
    }
    states_[id] = SlotState::kActive;
    ++num_active_;
    ids_.emplace(name, id);
    return id;
  }

  /// Join returning the slot's generation-tagged handle.
  Handle JoinHandle(const std::string& name) {
    const IdType id = Join(name);
    return Handle{id, generations_[id]};
  }

  /// Deactivates a name (binding and slot retained for a rejoin); returns
  /// false if unknown.
  bool Leave(const std::string& name) {
    const auto it = ids_.find(name);
    if (it == ids_.end()) return false;
    if (states_[it->second] == SlotState::kActive) {
      states_[it->second] = SlotState::kDeparted;
      --num_active_;
    }
    return true;
  }

  /// Reclaims a name's slot (from active or departed): erases the binding,
  /// bumps the slot's generation (stale handles die immediately), and
  /// pushes the id onto the free-list for reuse by a future Join. Returns
  /// the reclaimed id, or nullopt if the name is unknown.
  std::optional<IdType> Retire(const std::string& name) {
    const auto it = ids_.find(name);
    if (it == ids_.end()) return std::nullopt;
    const IdType id = it->second;
    ids_.erase(it);
    names_[id].clear();
    if (states_[id] == SlotState::kActive) --num_active_;
    states_[id] = SlotState::kFree;
    ++generations_[id];
    free_list_.push_back(static_cast<std::uint32_t>(id));
    return id;
  }

  std::optional<IdType> Lookup(const std::string& name) const {
    const auto it = ids_.find(name);
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }

  std::optional<Handle> LookupHandle(const std::string& name) const {
    const auto it = ids_.find(name);
    if (it == ids_.end()) return std::nullopt;
    return Handle{it->second, generations_[it->second]};
  }

  bool IsActive(IdType id) const {
    return id < states_.size() && states_[id] == SlotState::kActive;
  }

  /// True when the slot has been retired and awaits reuse. Out-of-range
  /// ids (never issued by this registry) are not free.
  bool IsFree(IdType id) const {
    return id < states_.size() && states_[id] == SlotState::kFree;
  }

  /// True while the slot has a live name binding (active or departed):
  /// the id belongs to a real registered tenant. False for ids this
  /// registry never issued and for retired (free) slots.
  bool IsKnown(IdType id) const {
    return id < states_.size() && states_[id] != SlotState::kFree;
  }

  SlotState State(IdType id) const { return states_.at(id); }

  Generation GenerationOf(IdType id) const { return generations_.at(id); }

  /// True while `handle` still refers to its original tenant (the slot has
  /// not been retired since the handle was taken).
  bool IsCurrent(Handle handle) const {
    return handle.id < generations_.size() &&
           generations_[handle.id] == handle.generation &&
           states_[handle.id] != SlotState::kFree;
  }

  /// Name bound to a slot (empty for free slots).
  const std::string& Name(IdType id) const { return names_.at(id); }

  /// Total slots in the dense table (active + departed + free). Under
  /// churn with retirement this is bounded by peak concurrency, not by
  /// the total number of entities that ever joined.
  std::size_t size() const { return names_.size(); }

  /// Currently active slots. O(1): maintained incrementally by
  /// Join/Leave/Retire.
  std::size_t num_active() const { return num_active_; }

  /// Reclaimed slots currently awaiting reuse.
  std::size_t free_slots() const { return free_list_.size(); }

  /// Retired slots handed out again so far. Relaxed atomic so metric
  /// callbacks may read it while another thread mutates the registry
  /// under the owning service's lock.
  std::uint64_t recycled_total() const {
    return recycled_total_.load(std::memory_order_relaxed);
  }

  /// Currently active ids.
  std::vector<IdType> ActiveIds() const {
    std::vector<IdType> out;
    for (std::size_t i = 0; i < states_.size(); ++i) {
      if (states_[i] == SlotState::kActive) {
        out.push_back(static_cast<IdType>(i));
      }
    }
    return out;
  }

  /// Serializable snapshot (for checkpoints).
  core::RegistryImage ToImage() const {
    core::RegistryImage image;
    image.names = names_;
    image.states.reserve(states_.size());
    for (const SlotState s : states_) {
      image.states.push_back(static_cast<std::uint8_t>(s));
    }
    image.generations = generations_;
    image.free_list = free_list_;
    image.recycled_total = recycled_total();
    return image;
  }

  /// Rebuilds a registry from a snapshot (checkpoint restore).
  static Registry FromImage(const core::RegistryImage& image) {
    Registry reg;
    reg.names_ = image.names;
    reg.states_.reserve(image.states.size());
    for (const std::uint8_t s : image.states) {
      reg.states_.push_back(static_cast<SlotState>(s));
    }
    reg.generations_ = image.generations;
    reg.free_list_ = image.free_list;
    reg.recycled_total_.store(image.recycled_total,
                              std::memory_order_relaxed);
    for (std::size_t i = 0; i < reg.names_.size(); ++i) {
      if (reg.states_[i] != SlotState::kFree) {
        reg.ids_.emplace(reg.names_[i], static_cast<IdType>(i));
      }
      if (reg.states_[i] == SlotState::kActive) ++reg.num_active_;
    }
    return reg;
  }

  Registry() = default;
  Registry(const Registry& other)
      : ids_(other.ids_),
        names_(other.names_),
        states_(other.states_),
        generations_(other.generations_),
        free_list_(other.free_list_),
        num_active_(other.num_active_),
        recycled_total_(other.recycled_total()) {}
  Registry& operator=(const Registry& other) {
    if (this == &other) return *this;
    ids_ = other.ids_;
    names_ = other.names_;
    states_ = other.states_;
    generations_ = other.generations_;
    free_list_ = other.free_list_;
    num_active_ = other.num_active_;
    recycled_total_.store(other.recycled_total(),
                          std::memory_order_relaxed);
    return *this;
  }

 private:
  std::unordered_map<std::string, IdType> ids_;
  std::vector<std::string> names_;
  std::vector<SlotState> states_;
  std::vector<Generation> generations_;
  std::vector<std::uint32_t> free_list_;  // back = next handed out
  std::size_t num_active_ = 0;
  // Atomic (single writer) so metric callbacks can read concurrently.
  std::atomic<std::uint64_t> recycled_total_{0};
};

using UserRegistry = Registry<data::UserId>;
using ServiceRegistry = Registry<data::ServiceId>;

}  // namespace amf::adapt

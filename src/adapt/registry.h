// User / service managers (Fig. 3): track the entities known to the QoS
// prediction service and their join/leave lifecycle under churn.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/qos_types.h"

namespace amf::adapt {

/// Generic id registry: external string name <-> dense numeric id, with an
/// active flag ("leave" deactivates but never reuses ids, so a returning
/// entity keeps its learned latent factors).
template <typename IdType>
class Registry {
 public:
  /// Registers (or re-activates) a name; returns its id.
  IdType Join(const std::string& name) {
    auto [it, inserted] = ids_.try_emplace(
        name, static_cast<IdType>(names_.size()));
    if (inserted) {
      names_.push_back(name);
      active_.push_back(true);
    } else {
      active_[it->second] = true;
    }
    return it->second;
  }

  /// Deactivates a name; returns false if unknown.
  bool Leave(const std::string& name) {
    const auto it = ids_.find(name);
    if (it == ids_.end()) return false;
    active_[it->second] = false;
    return true;
  }

  std::optional<IdType> Lookup(const std::string& name) const {
    const auto it = ids_.find(name);
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }

  bool IsActive(IdType id) const {
    return id < active_.size() && active_[id];
  }

  const std::string& Name(IdType id) const { return names_.at(id); }

  /// Total ids ever issued (dense; inactive ids included).
  std::size_t size() const { return names_.size(); }

  /// Currently active ids.
  std::vector<IdType> ActiveIds() const {
    std::vector<IdType> out;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (active_[i]) out.push_back(static_cast<IdType>(i));
    }
    return out;
  }

 private:
  std::unordered_map<std::string, IdType> ids_;
  std::vector<std::string> names_;
  std::vector<bool> active_;
};

using UserRegistry = Registry<data::UserId>;
using ServiceRegistry = Registry<data::ServiceId>;

}  // namespace amf::adapt

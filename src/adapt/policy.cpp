#include "adapt/policy.h"

#include <limits>
#include <vector>

#include "common/check.h"

namespace amf::adapt {

namespace {

bool Violated(const TaskContext& ctx) {
  return ctx.failed || ctx.observed_rt > ctx.sla_threshold;
}

}  // namespace

std::optional<data::ServiceId> RandomPolicy::SelectBinding(
    const TaskContext& ctx) {
  AMF_CHECK(ctx.task != nullptr);
  if (!Violated(ctx)) return std::nullopt;
  const auto& cands = ctx.task->candidates;
  if (cands.size() < 2) return std::nullopt;
  // Pick a random candidate different from the current binding.
  for (;;) {
    const data::ServiceId pick = cands[rng_.Index(cands.size())];
    if (pick != ctx.current_binding) return pick;
  }
}

bool PredictedBestPolicy::IsTrained(data::ServiceId s) const {
  if (!service_->model().HasService(s)) return false;
  // A service whose running error still sits at its initial value has
  // never been touched by an online update -- its factors are random.
  return service_->model().ServiceError(s) <
         service_->model().config().initial_error;
}

std::optional<data::ServiceId> PredictedBestPolicy::SelectBinding(
    const TaskContext& ctx) {
  AMF_CHECK(ctx.task != nullptr);
  if (!Violated(ctx)) return std::nullopt;
  // Score the whole candidate set in one batched pass; unknown candidates
  // come back NaN and drop out of the comparisons below.
  const auto& cands = ctx.task->candidates;
  std::vector<double> values(cands.size());
  std::vector<double> uncertainties(cands.size());
  service_->PredictQoSRow(ctx.user, cands, values, uncertainties);
  auto pick_best = [&](bool require_trained) {
    double best_score = std::numeric_limits<double>::infinity();
    std::optional<data::ServiceId> best;
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (require_trained && !IsTrained(cands[i])) continue;
      const double score =
          values[i] * (1.0 + risk_aversion_ * uncertainties[i]);
      if (score < best_score) {
        best_score = score;
        best = cands[i];
      }
    }
    return best;
  };
  std::optional<data::ServiceId> best = pick_best(skip_untrained_);
  // If every alternative is untrained, or the best trained candidate is
  // the (violating) current binding, widen to untrained candidates --
  // exploring an unknown service beats staying on a known-violating one.
  if (!best || *best == ctx.current_binding) {
    const std::optional<data::ServiceId> widened = pick_best(false);
    if (widened && *widened != ctx.current_binding) best = widened;
  }
  if (best && *best != ctx.current_binding) return best;
  return std::nullopt;
}

std::optional<data::ServiceId> OraclePolicy::SelectBinding(
    const TaskContext& ctx) {
  AMF_CHECK(ctx.task != nullptr);
  if (!Violated(ctx)) return std::nullopt;
  double best_rt = std::numeric_limits<double>::infinity();
  std::optional<data::ServiceId> best;
  for (data::ServiceId cand : ctx.task->candidates) {
    if (env_->IsDown(cand, ctx.now_seconds)) continue;
    const double rt =
        env_->TrueResponseTime(ctx.user, cand, ctx.now_seconds);
    if (rt < best_rt) {
      best_rt = rt;
      best = cand;
    }
  }
  if (best && *best != ctx.current_binding) return best;
  return std::nullopt;
}

}  // namespace amf::adapt

// FaultInjector: a chaos layer between the Environment (ground truth) and
// the QoS collection path, for exercising the pipeline's fault tolerance
// end-to-end. From a seeded RNG it injects, per invocation / delivery:
//
//   * drops           -- the collector read fails (nullopt; callers retry
//                        with common::RetryWithBackoff or give up)
//   * latency spikes  -- the observed RT is multiplied by spike_multiplier
//   * corrupt values  -- the delivered sample value becomes NaN/Inf/zero/
//                        negative/garbage-huge (round-robin over modes)
//   * duplicate delivery -- the same sample is delivered twice
//   * entity churn    -- the sample is re-attributed to a phantom user/
//                        service id beyond the known population
//
// Deterministic in the config seed; every fault is counted in stats().
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "adapt/environment.h"
#include "common/rng.h"
#include "data/qos_types.h"

namespace amf::adapt {

struct FaultInjectorConfig {
  double drop_prob = 0.0;
  double spike_prob = 0.0;
  double spike_multiplier = 10.0;
  double corrupt_prob = 0.0;
  double duplicate_prob = 0.0;
  double churn_prob = 0.0;
  /// Phantom ids used by churn faults: original id + this offset.
  std::uint32_t churn_id_offset = 100000;
  std::uint64_t seed = 42;
};

struct FaultInjectionStats {
  std::uint64_t invocations = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t drops = 0;
  std::uint64_t spikes = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t churns = 0;
};

class FaultInjector {
 public:
  /// `env` must outlive the injector.
  FaultInjector(const Environment& env, const FaultInjectorConfig& config);

  const FaultInjectorConfig& config() const { return config_; }
  const FaultInjectionStats& stats() const { return stats_; }

  /// One invocation through the fault layer: nullopt = dropped (the
  /// collector read failed); otherwise the environment's result, possibly
  /// with a latency spike applied.
  std::optional<InvocationResult> Invoke(data::UserId u, data::ServiceId s,
                                         double now_seconds);

  /// Applies delivery faults to one observed sample: corruption, entity
  /// churn, duplicate delivery. Returns the sample(s) the collector
  /// actually receives (1 normally, 2 on duplication).
  std::vector<data::QoSSample> Deliver(const data::QoSSample& sample);

  /// Convenience for streaming loops: Invoke + wrap into a sample +
  /// Deliver. Empty when the invocation was dropped.
  std::vector<data::QoSSample> Observe(data::UserId u, data::ServiceId s,
                                       double now_seconds);

 private:
  double CorruptValue(double value);

  const Environment* env_;
  FaultInjectorConfig config_;
  common::Rng rng_;
  FaultInjectionStats stats_;
  std::uint32_t corrupt_mode_ = 0;
};

}  // namespace amf::adapt

#include "adapt/fault_injector.h"

#include <limits>

#include "common/check.h"

namespace amf::adapt {

FaultInjector::FaultInjector(const Environment& env,
                             const FaultInjectorConfig& config)
    : env_(&env), config_(config), rng_(config.seed) {
  const auto prob = [](double p) { return p >= 0.0 && p <= 1.0; };
  AMF_CHECK_MSG(prob(config_.drop_prob) && prob(config_.spike_prob) &&
                    prob(config_.corrupt_prob) &&
                    prob(config_.duplicate_prob) && prob(config_.churn_prob),
                "fault probabilities must be in [0, 1]");
  AMF_CHECK_MSG(config_.spike_multiplier > 0.0,
                "spike_multiplier must be positive");
}

std::optional<InvocationResult> FaultInjector::Invoke(data::UserId u,
                                                      data::ServiceId s,
                                                      double now_seconds) {
  ++stats_.invocations;
  if (config_.drop_prob > 0.0 && rng_.Bernoulli(config_.drop_prob)) {
    ++stats_.drops;
    return std::nullopt;
  }
  InvocationResult result = env_->Invoke(u, s, now_seconds);
  if (config_.spike_prob > 0.0 && rng_.Bernoulli(config_.spike_prob)) {
    ++stats_.spikes;
    result.response_time *= config_.spike_multiplier;
  }
  return result;
}

double FaultInjector::CorruptValue(double value) {
  // Round-robin over corruption modes so one scenario exercises every
  // guard (NaN, Inf, zero, negative, absurd magnitude).
  const std::uint32_t mode = corrupt_mode_++ % 5;
  switch (mode) {
    case 0: return std::numeric_limits<double>::quiet_NaN();
    case 1: return std::numeric_limits<double>::infinity();
    case 2: return 0.0;
    case 3: return -value - 1.0;
    default: return value * 1e12 + 1e15;
  }
}

std::vector<data::QoSSample> FaultInjector::Deliver(
    const data::QoSSample& sample) {
  ++stats_.deliveries;
  data::QoSSample out = sample;
  if (config_.corrupt_prob > 0.0 && rng_.Bernoulli(config_.corrupt_prob)) {
    ++stats_.corruptions;
    out.value = CorruptValue(out.value);
  }
  if (config_.churn_prob > 0.0 && rng_.Bernoulli(config_.churn_prob)) {
    ++stats_.churns;
    // Re-attribute to a phantom entity: the model sees a brand-new id and
    // must register it without disturbing anyone else.
    if (rng_.Bernoulli(0.5)) {
      out.user += config_.churn_id_offset;
    } else {
      out.service += config_.churn_id_offset;
    }
  }
  std::vector<data::QoSSample> delivered{out};
  if (config_.duplicate_prob > 0.0 &&
      rng_.Bernoulli(config_.duplicate_prob)) {
    ++stats_.duplicates;
    delivered.push_back(out);
  }
  return delivered;
}

std::vector<data::QoSSample> FaultInjector::Observe(data::UserId u,
                                                    data::ServiceId s,
                                                    double now_seconds) {
  const std::optional<InvocationResult> result = Invoke(u, s, now_seconds);
  if (!result) return {};
  return Deliver(data::QoSSample{env_->SliceAt(now_seconds), u, s,
                                 result->response_time, now_seconds});
}

}  // namespace amf::adapt

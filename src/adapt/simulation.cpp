#include "adapt/simulation.h"

#include "common/check.h"

namespace amf::adapt {

AdaptationSimulation::AdaptationSimulation(const Environment& env,
                                           QoSPredictionService* service,
                                           const SimulationConfig& config)
    : env_(&env), service_(service), config_(config) {
  AMF_CHECK_MSG(config_.ticks > 0, "simulation needs at least one tick");
  AMF_CHECK_MSG(config_.tick_seconds > 0.0, "tick must be positive");
}

void AdaptationSimulation::AddApplication(data::UserId user,
                                          Workflow workflow,
                                          AdaptationPolicy& policy,
                                          double sla_threshold) {
  apps_.emplace_back(user, std::move(workflow), *env_, service_, policy,
                     sla_threshold);
}

void AdaptationSimulation::StepOnce() {
  const double now = clock_.Now();
  for (ExecutionMiddleware& app : apps_) app.Step(now);
  if (service_ != nullptr && config_.tick_prediction_service) {
    service_->Tick(now);
  }
  clock_.Advance(config_.tick_seconds);
  ++ticks_run_;
}

void AdaptationSimulation::Run() {
  while (ticks_run_ < config_.ticks) StepOnce();
}

AppStats AdaptationSimulation::TotalStats() const {
  AppStats total;
  for (const ExecutionMiddleware& app : apps_) {
    const AppStats& s = app.stats();
    total.invocations += s.invocations;
    total.failures += s.failures;
    total.violations += s.violations;
    total.adaptations += s.adaptations;
    total.total_rt += s.total_rt;
  }
  return total;
}

}  // namespace amf::adapt

// Ground-truth invocation environment.
//
// Substitutes the paper's real testbed (PlanetLab nodes invoking public Web
// services): an invocation of service s by user u at simulated time T
// returns the dataset's QoS value for the enclosing time slice. Supports
// failure injection (a downed service times out at Rmax), which is what
// triggers the Fig. 1 "invocation to B1 fails" adaptation scenario.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "data/qos_types.h"

namespace amf::adapt {

struct Outage {
  data::ServiceId service;
  double from_seconds;
  double to_seconds;  // exclusive
};

struct InvocationResult {
  double response_time;  ///< observed RT (== timeout value when failed)
  bool failed;           ///< true if the service was down
};

class Environment {
 public:
  /// `dataset` must outlive the environment. `slice_interval` maps wall
  /// time to dataset slices; times beyond the horizon clamp to the last
  /// slice. `timeout` is the RT reported for failed invocations.
  Environment(const data::QoSDataset& dataset,
              double slice_interval_seconds = 900.0, double timeout = 20.0);

  /// Marks a service as down during [from, to).
  void AddOutage(const Outage& outage);

  /// Performs one invocation at simulated time `now_seconds`.
  InvocationResult Invoke(data::UserId u, data::ServiceId s,
                          double now_seconds) const;

  /// True ground-truth RT regardless of outages (for oracle policies).
  double TrueResponseTime(data::UserId u, data::ServiceId s,
                          double now_seconds) const;

  bool IsDown(data::ServiceId s, double now_seconds) const;

  const data::QoSDataset& dataset() const { return *dataset_; }
  double timeout() const { return timeout_; }
  double slice_interval_seconds() const { return slice_interval_; }

  /// Slice enclosing `now_seconds` (clamped to the dataset horizon).
  data::SliceId SliceAt(double now_seconds) const;

 private:
  const data::QoSDataset* dataset_;
  double slice_interval_;
  double timeout_;
  std::vector<Outage> outages_;
};

}  // namespace amf::adapt

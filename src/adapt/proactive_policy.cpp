#include "adapt/proactive_policy.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace amf::adapt {

ProactivePolicy::ProactivePolicy(AdaptationPolicy& inner,
                                 const forecast::Forecaster& forecaster_proto)
    : inner_(&inner), proto_(&forecaster_proto) {}

std::string ProactivePolicy::name() const {
  return "proactive[" + proto_->name() + "]+" + inner_->name();
}

std::optional<data::ServiceId> ProactivePolicy::SelectBinding(
    const TaskContext& ctx) {
  AMF_CHECK(ctx.task != nullptr);
  auto& forecaster = forecasters_[Key(ctx.user, ctx.current_binding)];
  if (!forecaster) forecaster = proto_->Clone();
  forecaster->Observe(ctx.observed_rt);
  const double predicted_next = forecaster->Forecast();

  // The inner policy triggers on Violated(ctx); present it with the worse
  // of (observed, forecast) so a predicted violation also triggers.
  TaskContext proactive_ctx = ctx;
  proactive_ctx.observed_rt = std::max(ctx.observed_rt, predicted_next);
  return inner_->SelectBinding(proactive_ctx);
}

std::optional<double> ProactivePolicy::ForecastFor(
    data::UserId u, data::ServiceId s) const {
  const auto it = forecasters_.find(Key(u, s));
  if (it == forecasters_.end() || it->second->count() == 0) {
    return std::nullopt;
  }
  return it->second->Forecast();
}

void ProactivePolicy::ForecastRow(data::UserId u,
                                  std::span<const data::ServiceId> candidates,
                                  std::span<double> out) const {
  AMF_CHECK_MSG(candidates.size() == out.size(),
                "candidates/out size mismatch");
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const std::optional<double> f = ForecastFor(u, candidates[i]);
    out[i] = f ? *f : std::numeric_limits<double>::quiet_NaN();
  }
}

}  // namespace amf::adapt

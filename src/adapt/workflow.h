// Service-composition workflow (Fig. 1): an ordered set of abstract tasks,
// each implemented by one bound component service chosen from a set of
// functionally-equivalent candidates.
#pragma once

#include <string>
#include <vector>

#include "data/qos_types.h"

namespace amf::adapt {

struct AbstractTask {
  std::string name;
  /// Functionally equivalent candidate services for this task.
  std::vector<data::ServiceId> candidates;
};

class Workflow {
 public:
  /// Each task must have at least one candidate; the initial binding is
  /// the first candidate.
  explicit Workflow(std::vector<AbstractTask> tasks);

  std::size_t num_tasks() const { return tasks_.size(); }
  const AbstractTask& task(std::size_t i) const;

  /// Currently bound service of task i.
  data::ServiceId binding(std::size_t i) const;

  /// Rebinds task i to `s`; `s` must be one of its candidates.
  void Rebind(std::size_t i, data::ServiceId s);

  /// Number of Rebind calls that changed the binding.
  std::size_t adaptations() const { return adaptations_; }

 private:
  std::vector<AbstractTask> tasks_;
  std::vector<data::ServiceId> bindings_;
  std::size_t adaptations_ = 0;
};

}  // namespace amf::adapt

#include "adapt/sharded_service.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/crc32.h"
#include "common/file_util.h"
#include "common/timer.h"

namespace amf::adapt {

namespace {

std::string ShardSubdir(const std::string& root, std::size_t i) {
  return root + "/shard-" + std::to_string(i);
}

}  // namespace

ShardedPredictionService::ShardedPredictionService(
    const ShardedServiceConfig& config)
    : config_(config),
      router_(config.num_shards),
      registry_(config.service.metrics != nullptr ? config.service.metrics
                                                  : &own_metrics_) {
  AMF_CHECK_MSG(config.num_shards >= 1, "ShardedPredictionService: need at "
                                        "least one shard");
  PredictionServiceConfig per_shard = config_.service;
  per_shard.metrics = registry_;
  shards_.reserve(config_.num_shards);
  for (std::size_t i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<ConcurrentPredictionService>(
        per_shard, config_.ring_capacity));
  }
  merge_baseline_.assign(shards_.size(), {});
  RegisterMetrics();
}

void ShardedPredictionService::RegisterMetrics() {
  // Every shard registered its own ingest.* callbacks into the shared
  // registry, and callback registration is last-wins — so right now the
  // series report only the LAST shard. Re-register facade-level sums so
  // one snapshot covers the whole instance set. (Handle-based counters
  // like predict.calls are shared instances and already aggregate.)
  registry_->RegisterCallbackCounter("ingest.reported", [this] {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s->observations();
    return total;
  });
  registry_->RegisterCallbackCounter("ingest.ring_dropped", [this] {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s->dropped_observations();
    return total;
  });
  registry_->RegisterCallbackGauge("ingest.ring_occupancy", [this] {
    std::size_t total = 0;
    for (const auto& s : shards_) total += s->ring_occupancy();
    return static_cast<double>(total);
  });
  registry_->GetGauge("shard.count")
      ->Set(static_cast<double>(shards_.size()));
  merge_counter_ = registry_->GetCounter("shard.merges");
  merge_rows_ = registry_->GetCounter("shard.merge_rows");
  merge_hist_ = registry_->GetLatencyHistogram("shard.merge_seconds");
}

data::UserId ShardedPredictionService::RegisterUser(const std::string& name) {
  std::lock_guard lk(reg_mu_);
  const data::UserId id = shards_[0]->RegisterUser(name);
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    const data::UserId other = shards_[i]->RegisterUser(name);
    AMF_CHECK_MSG(other == id, "shard " << i << " assigned user id " << other
                                        << " != " << id
                                        << " (registries diverged)");
  }
  return id;
}

data::ServiceId ShardedPredictionService::RegisterService(
    const std::string& name) {
  std::lock_guard lk(reg_mu_);
  const data::ServiceId id = shards_[0]->RegisterService(name);
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    const data::ServiceId other = shards_[i]->RegisterService(name);
    AMF_CHECK_MSG(other == id, "shard " << i << " assigned service id "
                                        << other << " != " << id
                                        << " (registries diverged)");
  }
  return id;
}

bool ShardedPredictionService::RetireUser(const std::string& name) {
  std::lock_guard lk(reg_mu_);
  bool ok = true;
  for (auto& s : shards_) ok = s->RetireUser(name) && ok;
  return ok;
}

bool ShardedPredictionService::RetireService(const std::string& name) {
  std::lock_guard lk(reg_mu_);
  bool ok = true;
  for (auto& s : shards_) ok = s->RetireService(name) && ok;
  return ok;
}

bool ShardedPredictionService::ReportObservation(
    const data::QoSSample& sample) {
  return shards_[router_.ShardOf(sample.user)]->ReportObservation(sample);
}

std::optional<double> ShardedPredictionService::PredictQoS(
    data::UserId u, data::ServiceId s) const {
  return shards_[router_.ShardOf(u)]->PredictQoS(u, s);
}

bool ShardedPredictionService::PredictQoSMany(
    data::UserId u, std::span<const data::ServiceId> candidates,
    std::span<double> values) const {
  return shards_[router_.ShardOf(u)]->PredictQoSMany(u, candidates, values);
}

void ShardedPredictionService::PredictQoSPairs(
    std::span<const data::UserId> users,
    std::span<const data::ServiceId> services,
    std::span<double> values) const {
  AMF_CHECK_MSG(
      users.size() == services.size() && users.size() == values.size(),
      "users/services/values size mismatch");
  if (shards_.size() == 1) {
    shards_[0]->PredictQoSPairs(users, services, values);
    return;
  }
  // Gather per home shard, score each group through that shard's own
  // pair kernel, scatter back in place. The serving tier routes before
  // coalescing so its batches arrive single-shard and skip this split.
  std::vector<std::vector<std::size_t>> by_shard(shards_.size());
  for (std::size_t i = 0; i < users.size(); ++i) {
    by_shard[router_.ShardOf(users[i])].push_back(i);
  }
  std::vector<data::UserId> u_sub;
  std::vector<data::ServiceId> s_sub;
  std::vector<double> v_sub;
  for (std::size_t sh = 0; sh < shards_.size(); ++sh) {
    const std::vector<std::size_t>& idx = by_shard[sh];
    if (idx.empty()) continue;
    u_sub.clear();
    s_sub.clear();
    v_sub.assign(idx.size(), 0.0);
    u_sub.reserve(idx.size());
    s_sub.reserve(idx.size());
    for (const std::size_t i : idx) {
      u_sub.push_back(users[i]);
      s_sub.push_back(services[i]);
    }
    shards_[sh]->PredictQoSPairs(u_sub, s_sub, v_sub);
    for (std::size_t j = 0; j < idx.size(); ++j) values[idx[j]] = v_sub[j];
  }
}

void ShardedPredictionService::Tick(double now_seconds) {
  std::lock_guard lk(facade_train_mu_);
  for (auto& s : shards_) s->Tick(now_seconds);
  if (config_.merge_every_ticks > 0 &&
      ++ticks_since_merge_ >= config_.merge_every_ticks) {
    ticks_since_merge_ = 0;
    MergeLocked();
  }
}

void ShardedPredictionService::TrainToConvergence(double now_seconds) {
  std::lock_guard lk(facade_train_mu_);
  for (auto& s : shards_) s->TrainToConvergence(now_seconds);
  ticks_since_merge_ = 0;
  MergeLocked();
}

std::size_t ShardedPredictionService::MergeServiceFactors() {
  std::lock_guard lk(facade_train_mu_);
  return MergeLocked();
}

std::size_t ShardedPredictionService::MergeLocked() {
  const std::size_t n = shards_.size();
  if (n <= 1) return 0;
  common::Stopwatch timer;
  // Barrier-time snapshots: each one waits out that shard's in-flight
  // Tick (train_mu_), so per-shard trainer threads may keep running —
  // the merge serializes against each shard one at a time, never all at
  // once.
  std::vector<ConcurrentPredictionService::ServiceFactorSnapshot> snaps(n);
  for (std::size_t i = 0; i < n; ++i) {
    snaps[i] = shards_[i]->SnapshotServiceFactors();
  }
  const std::size_t rank = snaps[0].rank;
  std::size_t num_services = 0;
  for (const auto& s : snaps) {
    num_services = std::max(num_services, s.num_services);
  }
  if (num_services == 0) return 0;

  std::vector<data::ServiceId> ids;
  std::vector<double> rows;
  std::vector<double> errors;
  std::vector<double> acc(rank);
  for (std::size_t s = 0; s < num_services; ++s) {
    double total_w = 0.0;
    double err_acc = 0.0;
    std::fill(acc.begin(), acc.end(), 0.0);
    // Fixed shard order keeps the fp reduction deterministic for a given
    // set of snapshots.
    for (std::size_t i = 0; i < n; ++i) {
      if (s >= snaps[i].num_services) continue;
      const std::uint32_t baseline = s < merge_baseline_[i].size()
                                         ? merge_baseline_[i][s]
                                         : 0;
      // Version words are even at the barrier and bump by 2 per publish;
      // uint32 subtraction keeps the delta correct across wraparound.
      const double w =
          static_cast<double>((snaps[i].versions[s] - baseline) / 2);
      if (w <= 0.0) continue;
      total_w += w;
      err_acc += w * snaps[i].errors[s];
      const double* row = snaps[i].factors.data() + s * rank;
      for (std::size_t k = 0; k < rank; ++k) acc[k] += w * row[k];
    }
    if (total_w <= 0.0) continue;  // no shard trained it since last merge
    ids.push_back(static_cast<data::ServiceId>(s));
    for (std::size_t k = 0; k < rank; ++k) rows.push_back(acc[k] / total_w);
    errors.push_back(err_acc / total_w);
  }

  if (!ids.empty()) {
    for (auto& shard : shards_) {
      shard->PublishServiceFactors(ids, rows, errors);
    }
  }
  // Re-baseline: the snapshot version plus our own publish bump (+2 per
  // published row) — training publishes that land between the snapshot
  // and now still count toward the NEXT merge's weights. A shard that
  // had not grown to a published id yet gets baseline 0 + 2 (fresh rows
  // start at version 0 and our overwrite bumped them once).
  std::unordered_set<data::ServiceId> published(ids.begin(), ids.end());
  for (std::size_t i = 0; i < n; ++i) {
    merge_baseline_[i].assign(num_services, 0);
    for (std::size_t s = 0; s < num_services; ++s) {
      std::uint32_t base =
          s < snaps[i].num_services ? snaps[i].versions[s] : 0;
      if (published.count(static_cast<data::ServiceId>(s)) != 0) base += 2;
      merge_baseline_[i][s] = base;
    }
  }

  merges_done_.fetch_add(1, std::memory_order_relaxed);
  if (merge_counter_ != nullptr) merge_counter_->Increment();
  if (merge_rows_ != nullptr) merge_rows_->Increment(ids.size());
  if (merge_hist_ != nullptr) merge_hist_->Record(timer.ElapsedSeconds());
  return ids.size();
}

void ShardedPredictionService::SetReadPrecision(
    core::ReadPrecision precision) {
  for (auto& s : shards_) s->SetReadPrecision(precision);
}

void ShardedPredictionService::EnableCheckpoints(
    const core::CheckpointManagerConfig& config) {
  common::CreateDirectoriesDurable(config.directory);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    core::CheckpointManagerConfig per_shard = config;
    per_shard.directory = ShardSubdir(config.directory, i);
    shards_[i]->EnableCheckpoints(per_shard);
  }
  checkpoint_root_ = config.directory;
  // Never clobber a mismatched (or torn) manifest: it is the evidence
  // Recover() refuses on. Only write ours when the directory is fresh or
  // the existing manifest already matches this facade's shape.
  const std::string manifest = config.directory + "/" + kManifestName;
  std::string err;
  if (!std::filesystem::exists(manifest) || ValidateManifest(manifest, &err)) {
    WriteManifest(config.directory);
  }
}

void ShardedPredictionService::EnableJournal(
    const stream::JournalConfig& config) {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    stream::JournalConfig per_shard = config;
    per_shard.directory = ShardSubdir(config.directory, i);
    shards_[i]->EnableJournal(per_shard);
  }
}

void ShardedPredictionService::WriteManifest(
    const std::string& directory) const {
  std::ostringstream body;
  body << "AMF_SHARDS 1\n"
       << "num_shards " << shards_.size() << '\n'
       << "router_version " << ShardRouter::kHashVersion << '\n'
       << "rank " << config_.service.model.rank << '\n';
  std::ostringstream full;
  full << body.str() << "crc32 " << std::hex
       << common::Crc32Of(body.str()) << '\n';

  // Atomic publish: tmp in the same directory, contents fsync, rename
  // over the final name, directory fsync — a crash mid-write leaves at
  // worst a stale tmp, never a torn manifest.
  const std::string final_path = directory + "/" + kManifestName;
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    AMF_CHECK_MSG(out.good(), "cannot write " << tmp_path);
    out << full.str();
    out.flush();
    AMF_CHECK_MSG(out.good(), "short write to " << tmp_path);
  }
  common::SyncFile(tmp_path);
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  AMF_CHECK_MSG(!ec, "rename " << tmp_path << " -> " << final_path << ": "
                               << ec.message());
  common::SyncDirectory(directory);
}

bool ShardedPredictionService::ValidateManifest(const std::string& path,
                                                std::string* error) const {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    *error = "manifest missing: " + path;
    return false;
  }
  std::ostringstream body;
  std::uint32_t stored_crc = 0;
  bool saw_crc = false;
  std::size_t num_shards = 0;
  std::uint32_t router_version = 0;
  std::size_t rank = 0;
  bool magic_ok = false;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "crc32") {
      fields >> std::hex >> stored_crc;
      saw_crc = true;
      break;  // crc covers everything before this line
    }
    body << line << '\n';
    if (key == "AMF_SHARDS") {
      std::uint32_t version = 0;
      fields >> version;
      magic_ok = version == 1;
    } else if (key == "num_shards") {
      fields >> num_shards;
    } else if (key == "router_version") {
      fields >> router_version;
    } else if (key == "rank") {
      fields >> rank;
    }
  }
  if (!magic_ok) {
    *error = "manifest has no AMF_SHARDS 1 header";
    return false;
  }
  if (!saw_crc || common::Crc32Of(body.str()) != stored_crc) {
    *error = "manifest CRC mismatch (torn or corrupt)";
    return false;
  }
  if (num_shards != shards_.size()) {
    *error = "manifest binds " + std::to_string(num_shards) +
             " shards, this facade has " + std::to_string(shards_.size()) +
             " — restoring would route users to the wrong model";
    return false;
  }
  if (router_version != ShardRouter::kHashVersion) {
    *error = "manifest router_version " + std::to_string(router_version) +
             " != " + std::to_string(ShardRouter::kHashVersion);
    return false;
  }
  if (rank != config_.service.model.rank) {
    *error = "manifest rank " + std::to_string(rank) + " != configured " +
             std::to_string(config_.service.model.rank);
    return false;
  }
  return true;
}

ShardedPredictionService::RecoveryReport ShardedPredictionService::Recover() {
  std::lock_guard lk(facade_train_mu_);
  RecoveryReport rep;
  if (!checkpoint_root_.empty()) {
    std::string err;
    if (!ValidateManifest(checkpoint_root_ + "/" + kManifestName, &err)) {
      rep.manifest_ok = false;
      rep.manifest_error = err;
      return rep;  // refuse: no shard is touched
    }
  }
  rep.manifest_ok = true;
  for (auto& shard : shards_) {
    const QoSPredictionService::RecoveryReport r = shard->Recover();
    if (r.checkpoint_restored) ++rep.shards_restored;
    rep.scanned += r.scanned;
    rep.replayed += r.replayed;
    rep.rejected_generation += r.rejected_generation;
    rep.rejected_retired += r.rejected_retired;
    rep.quarantined_segments += r.quarantined_segments;
    rep.shards.push_back(r);
  }
  // Deliberately NO merge here (see header): recovered state must stay
  // bit-identical per shard. Reset the baselines so the next merge
  // weighs only post-recovery training.
  merge_baseline_.assign(shards_.size(), {});
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const auto snap = shards_[i]->SnapshotServiceFactors();
    merge_baseline_[i] = snap.versions;
  }
  ticks_since_merge_ = 0;
  return rep;
}

bool ShardedPredictionService::SyncJournalIfDue() {
  bool any = false;
  for (auto& s : shards_) any = s->SyncJournalIfDue() || any;
  return any;
}

bool ShardedPredictionService::FlushJournal() {
  bool all = true;
  for (auto& s : shards_) all = s->FlushJournal() && all;
  return all;
}

}  // namespace amf::adapt

// Proactive adaptation: trigger on the *forecast* QoS of the working
// service, not only on the value just observed.
//
// Combines the two prediction problems the paper separates: a per
// (user, service) time-series forecaster (src/forecast) decides WHEN to
// adapt — catching degradation trends before they violate the SLA — and
// an inner policy (typically PredictedBestPolicy over AMF) decides WHERE
// to rebind.
#pragma once

#include <memory>
#include <unordered_map>

#include "adapt/policy.h"
#include "forecast/forecaster.h"

namespace amf::adapt {

class ProactivePolicy : public AdaptationPolicy {
 public:
  /// `inner` must outlive the policy; `forecaster_proto` is cloned per
  /// (user, working-service) series.
  ProactivePolicy(AdaptationPolicy& inner,
                  const forecast::Forecaster& forecaster_proto);

  std::string name() const override;

  /// Feeds the observation into the pair's forecaster, then evaluates the
  /// inner policy against max(observed, forecast): an invocation that is
  /// currently fine but forecast to violate still triggers reselection.
  std::optional<data::ServiceId> SelectBinding(
      const TaskContext& ctx) override;

  /// Current one-step forecast for a (user, service) pair, if any history.
  std::optional<double> ForecastFor(data::UserId u, data::ServiceId s) const;

  /// Batch variant over a candidate set: out[i] = forecast for
  /// (u, candidates[i]), NaN where the pair has no history. Sizes must
  /// match. Companion to QoSPredictionService::PredictQoSRow for ranking
  /// candidates by forecast QoS in one pass.
  void ForecastRow(data::UserId u,
                   std::span<const data::ServiceId> candidates,
                   std::span<double> out) const;

 private:
  static std::uint64_t Key(data::UserId u, data::ServiceId s) {
    return (static_cast<std::uint64_t>(u) << 32) | s;
  }

  AdaptationPolicy* inner_;
  const forecast::Forecaster* proto_;
  std::unordered_map<std::uint64_t, std::unique_ptr<forecast::Forecaster>>
      forecasters_;
};

}  // namespace amf::adapt

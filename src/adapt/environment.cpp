#include "adapt/environment.h"

#include <algorithm>

#include "common/check.h"

namespace amf::adapt {

Environment::Environment(const data::QoSDataset& dataset,
                         double slice_interval_seconds, double timeout)
    : dataset_(&dataset),
      slice_interval_(slice_interval_seconds),
      timeout_(timeout) {
  AMF_CHECK_MSG(slice_interval_ > 0.0, "slice interval must be positive");
  AMF_CHECK_MSG(timeout_ > 0.0, "timeout must be positive");
}

void Environment::AddOutage(const Outage& outage) {
  AMF_CHECK_MSG(outage.from_seconds < outage.to_seconds,
                "outage window must be non-empty");
  AMF_CHECK_MSG(outage.service < dataset_->num_services(),
                "outage for unknown service");
  outages_.push_back(outage);
}

data::SliceId Environment::SliceAt(double now_seconds) const {
  if (now_seconds <= 0.0) return 0;
  const auto slice = static_cast<std::size_t>(now_seconds / slice_interval_);
  return static_cast<data::SliceId>(
      std::min(slice, dataset_->num_slices() - 1));
}

bool Environment::IsDown(data::ServiceId s, double now_seconds) const {
  for (const Outage& o : outages_) {
    if (o.service == s && now_seconds >= o.from_seconds &&
        now_seconds < o.to_seconds) {
      return true;
    }
  }
  return false;
}

double Environment::TrueResponseTime(data::UserId u, data::ServiceId s,
                                     double now_seconds) const {
  return dataset_->Value(data::QoSAttribute::kResponseTime, u, s,
                         SliceAt(now_seconds));
}

InvocationResult Environment::Invoke(data::UserId u, data::ServiceId s,
                                     double now_seconds) const {
  if (IsDown(s, now_seconds)) {
    return InvocationResult{timeout_, true};
  }
  return InvocationResult{TrueResponseTime(u, s, now_seconds), false};
}

}  // namespace amf::adapt

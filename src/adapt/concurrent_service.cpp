#include "adapt/concurrent_service.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace amf::adapt {

namespace {

PredictionServiceConfig WithGuardedTrainer(PredictionServiceConfig config) {
  // Concurrent readers exist by construction in this facade, so every
  // model write must publish through the seqlock protocol.
  config.trainer.guarded_updates = true;
  return config;
}

}  // namespace

ConcurrentPredictionService::ConcurrentPredictionService(
    const PredictionServiceConfig& config, std::size_t ring_capacity)
    : ring_(ring_capacity), service_(WithGuardedTrainer(config)) {}

data::UserId ConcurrentPredictionService::RegisterUser(
    const std::string& name) {
  std::unique_lock lock(mu_);
  return service_.RegisterUser(name);
}

data::ServiceId ConcurrentPredictionService::RegisterService(
    const std::string& name) {
  std::unique_lock lock(mu_);
  return service_.RegisterService(name);
}

bool ConcurrentPredictionService::ReportObservation(
    const data::QoSSample& sample) {
  if (ring_.TryPush(sample)) {
    observations_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  dropped_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void ConcurrentPredictionService::DrainRing() {
  staged_.clear();
  data::QoSSample sample;
  while (ring_.TryPop(sample)) staged_.push_back(sample);
  if (staged_.empty()) return;

  // Pre-registration: the guarded trainer path must never grow the model
  // (reallocation under concurrent readers). Ensure up to the batch's max
  // ids — registration is dense, so this covers every staged entity.
  data::UserId max_u = 0;
  data::ServiceId max_s = 0;
  for (const data::QoSSample& s : staged_) {
    max_u = std::max(max_u, s.user);
    max_s = std::max(max_s, s.service);
  }
  bool grow;
  {
    std::shared_lock lock(mu_);
    const core::AmfModel& m = service_.model();
    grow = !m.HasUser(max_u) || !m.HasService(max_s);
  }
  if (grow) {
    std::unique_lock lock(mu_);
    service_.EnsureRegistered(max_u, max_s);
  }
}

void ConcurrentPredictionService::Tick(double now_seconds) {
  std::lock_guard train(train_mu_);
  DrainRing();
  std::shared_lock lock(mu_);
  for (const data::QoSSample& s : staged_) service_.ReportObservation(s);
  staged_.clear();
  service_.Tick(now_seconds);
}

void ConcurrentPredictionService::TrainToConvergence(double now_seconds) {
  std::lock_guard train(train_mu_);
  DrainRing();
  std::shared_lock lock(mu_);
  for (const data::QoSSample& s : staged_) service_.ReportObservation(s);
  staged_.clear();
  service_.TrainToConvergence(now_seconds);
}

std::optional<double> ConcurrentPredictionService::PredictQoS(
    data::UserId u, data::ServiceId s) const {
  std::shared_lock lock(mu_);
  const core::AmfModel& m = service_.model();
  if (!m.HasUser(u) || !m.HasService(s)) return std::nullopt;
  return m.PredictRawShared(u, s);
}

bool ConcurrentPredictionService::PredictQoSMany(
    data::UserId u, std::span<const data::ServiceId> candidates,
    std::span<double> values) const {
  AMF_CHECK_MSG(values.size() == candidates.size(),
                "candidates/values size mismatch");
  std::fill(values.begin(), values.end(),
            std::numeric_limits<double>::quiet_NaN());
  std::shared_lock lock(mu_);
  const core::AmfModel& m = service_.model();
  if (!m.HasUser(u)) return false;
  std::vector<data::ServiceId> known;
  std::vector<std::size_t> pos;
  known.reserve(candidates.size());
  pos.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (m.HasService(candidates[i])) {
      known.push_back(candidates[i]);
      pos.push_back(i);
    }
  }
  if (known.empty()) return true;
  std::vector<double> scores(known.size());
  m.PredictManyRawShared(u, known, scores);
  for (std::size_t j = 0; j < known.size(); ++j) values[pos[j]] = scores[j];
  return true;
}

void ConcurrentPredictionService::EnableCheckpoints(
    const core::CheckpointManagerConfig& config) {
  std::lock_guard train(train_mu_);
  std::unique_lock lock(mu_);
  service_.EnableCheckpoints(config);
}

bool ConcurrentPredictionService::RestoreFromLatestCheckpoint() {
  std::lock_guard train(train_mu_);
  std::unique_lock lock(mu_);
  return service_.RestoreFromLatestCheckpoint();
}

core::PipelineStats ConcurrentPredictionService::pipeline_stats() const {
  // The counters live in trainer-thread state; briefly join that role.
  std::lock_guard train(train_mu_);
  return service_.pipeline_stats();
}

}  // namespace amf::adapt

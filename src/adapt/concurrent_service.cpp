#include "adapt/concurrent_service.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/seqlock.h"
#include "linalg/matrix.h"
#include "obs/trace.h"

namespace amf::adapt {

namespace {

PredictionServiceConfig WithGuardedTrainer(PredictionServiceConfig config,
                                           obs::MetricsRegistry* registry) {
  // Concurrent readers exist by construction in this facade, so every
  // model write must publish through the seqlock protocol.
  config.trainer.guarded_updates = true;
  config.metrics = registry;
  return config;
}

}  // namespace

ConcurrentPredictionService::ConcurrentPredictionService(
    const PredictionServiceConfig& config, std::size_t ring_capacity)
    : registry_(config.metrics != nullptr ? config.metrics : &own_metrics_),
      ring_(ring_capacity),
      service_(WithGuardedTrainer(config, registry_)) {
  RegisterMetrics();
}

void ConcurrentPredictionService::RegisterMetrics() {
  registry_->RegisterCallbackCounter("ingest.reported", [this] {
    return static_cast<std::uint64_t>(
        observations_.load(std::memory_order_relaxed));
  });
  registry_->RegisterCallbackCounter("ingest.ring_dropped", [this] {
    return dropped_.load(std::memory_order_relaxed);
  });
  registry_->RegisterCallbackGauge("ingest.ring_occupancy", [this] {
    return static_cast<double>(ring_.SizeApprox());
  });
  registry_->GetGauge("ingest.ring_capacity")
      ->Set(static_cast<double>(ring_.capacity()));
  // Process-wide seqlock reader retries: spikes mean predictions keep
  // colliding with in-flight row publishes.
  registry_->RegisterCallbackCounter("predict.seqlock_retries", [] {
    return common::SeqlockRetryCounter().load(std::memory_order_relaxed);
  });

  predict_calls_ = registry_->GetCounter("predict.calls");
  predict_hist_ = registry_->GetLatencyHistogram("predict.seconds");
  batch_calls_ = registry_->GetCounter("predict.batch_calls");
  batch_candidates_ = registry_->GetCounter("predict.batch_candidates");
  batch_hist_ = registry_->GetLatencyHistogram("predict.batch_seconds");
  matrix_calls_ = registry_->GetCounter("predict.matrix_calls");
  matrix_hist_ = registry_->GetLatencyHistogram("predict.matrix_seconds");
  pair_calls_ = registry_->GetCounter("predict.pair_calls");
  pair_candidates_ = registry_->GetCounter("predict.pairs");
  pair_hist_ = registry_->GetLatencyHistogram("predict.pair_seconds");
}

data::UserId ConcurrentPredictionService::RegisterUser(
    const std::string& name) {
  std::unique_lock lock(mu_);
  return service_.RegisterUser(name);
}

data::ServiceId ConcurrentPredictionService::RegisterService(
    const std::string& name) {
  std::unique_lock lock(mu_);
  return service_.RegisterService(name);
}

bool ConcurrentPredictionService::UnregisterUser(const std::string& name) {
  std::unique_lock lock(mu_);
  return service_.UnregisterUser(name);
}

bool ConcurrentPredictionService::UnregisterService(const std::string& name) {
  std::unique_lock lock(mu_);
  return service_.UnregisterService(name);
}

bool ConcurrentPredictionService::RetireUser(const std::string& name) {
  std::unique_lock lock(mu_);
  if (!service_.users().Lookup(name)) return false;
  pending_retire_users_.push_back(name);
  return true;
}

bool ConcurrentPredictionService::RetireService(const std::string& name) {
  std::unique_lock lock(mu_);
  if (!service_.services().Lookup(name)) return false;
  pending_retire_services_.push_back(name);
  return true;
}

ConcurrentPredictionService::RegistryOccupancy
ConcurrentPredictionService::registry_occupancy() const {
  std::shared_lock lock(mu_);
  const UserRegistry& users = service_.users();
  const ServiceRegistry& services = service_.services();
  return RegistryOccupancy{users.size(),    users.num_active(),
                           users.free_slots(), services.size(),
                           services.num_active(), services.free_slots()};
}

void ConcurrentPredictionService::ApplyPendingRetirements() {
  // Caller holds train_mu_: no replay epoch is in flight, so this IS the
  // epoch barrier — no hogwild shard owns any row, and the store is not
  // being iterated. The exclusive lock fences off registration and the
  // registry readers; predictions in flight stay safe because the row
  // rewrite publishes through the per-row seqlocks.
  std::unique_lock lock(mu_);
  if (pending_retire_users_.empty() && pending_retire_services_.empty()) {
    return;
  }
  for (const std::string& name : pending_retire_users_) {
    service_.RetireUser(name);
  }
  for (const std::string& name : pending_retire_services_) {
    service_.RetireService(name);
  }
  pending_retire_users_.clear();
  pending_retire_services_.clear();
}

bool ConcurrentPredictionService::ReportObservation(
    const data::QoSSample& sample) {
  if (ring_.TryPush(sample)) {
    observations_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  dropped_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void ConcurrentPredictionService::DrainRing() {
  staged_.clear();
  data::QoSSample sample;
  while (ring_.TryPop(sample)) staged_.push_back(sample);
  if (staged_.empty()) return;

  // Pre-registration: the guarded trainer path must never grow the model
  // (reallocation under concurrent readers). Ensure up to the batch's max
  // ids — registration is dense, so this covers every staged entity.
  data::UserId max_u = 0;
  data::ServiceId max_s = 0;
  for (const data::QoSSample& s : staged_) {
    max_u = std::max(max_u, s.user);
    max_s = std::max(max_s, s.service);
  }
  bool grow;
  {
    std::shared_lock lock(mu_);
    const core::AmfModel& m = service_.model();
    grow = !m.HasUser(max_u) || !m.HasService(max_s);
  }
  if (grow) {
    std::unique_lock lock(mu_);
    service_.EnsureRegistered(max_u, max_s);
  }
}

void ConcurrentPredictionService::Tick(double now_seconds) {
  std::lock_guard train(train_mu_);
  DrainRing();
  ApplyPendingRetirements();
  std::shared_lock lock(mu_);
  // Group commit: the whole drained batch is journaled with one append
  // (and at most one fsync) before any of it reaches the collector.
  service_.ReportObservationsTrusted(staged_);
  staged_.clear();
  service_.Tick(now_seconds);
}

void ConcurrentPredictionService::TrainToConvergence(double now_seconds) {
  std::lock_guard train(train_mu_);
  DrainRing();
  ApplyPendingRetirements();
  std::shared_lock lock(mu_);
  service_.ReportObservationsTrusted(staged_);
  staged_.clear();
  service_.TrainToConvergence(now_seconds);
}

std::optional<double> ConcurrentPredictionService::PredictQoS(
    data::UserId u, data::ServiceId s) const {
  obs::ScopedCounterTimer trace(predict_calls_, predict_hist_);
  std::shared_lock lock(mu_);
  const core::AmfModel& m = service_.model();
  if (!m.HasUser(u) || !m.HasService(s)) return std::nullopt;
  return m.PredictRawShared(u, s);
}

bool ConcurrentPredictionService::PredictQoSMany(
    data::UserId u, std::span<const data::ServiceId> candidates,
    std::span<double> values) const {
  AMF_CHECK_MSG(values.size() == candidates.size(),
                "candidates/values size mismatch");
  obs::ScopedCounterTimer trace(batch_calls_, batch_hist_);
  if (batch_candidates_ != nullptr) {
    batch_candidates_->Increment(candidates.size());
  }
  std::fill(values.begin(), values.end(),
            std::numeric_limits<double>::quiet_NaN());
  std::shared_lock lock(mu_);
  const core::AmfModel& m = service_.model();
  if (!m.HasUser(u)) return false;
  std::vector<data::ServiceId> known;
  std::vector<std::size_t> pos;
  known.reserve(candidates.size());
  pos.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (m.HasService(candidates[i])) {
      known.push_back(candidates[i]);
      pos.push_back(i);
    }
  }
  if (known.empty()) return true;
  std::vector<double> scores(known.size());
  m.PredictManyRawShared(u, known, scores);
  for (std::size_t j = 0; j < known.size(); ++j) values[pos[j]] = scores[j];
  return true;
}

void ConcurrentPredictionService::PredictMatrix(linalg::Matrix* out) const {
  obs::ScopedCounterTimer trace(matrix_calls_, matrix_hist_);
  std::shared_lock lock(mu_);
  const core::AmfModel& m = service_.model();
  const std::size_t users = m.num_users();
  const std::size_t services = m.num_services();
  out->Resize(users, services);
  if (users == 0 || services == 0) return;
  // The model's PredictMatrixRaw reads rows without seqlock brackets, so
  // go row by row through the shared row readout instead: service rows are
  // validated once per block around a strided SIMD GEMV (not once per
  // row), so scoring stays near the unguarded batch path's speed while
  // every block is a consistent snapshot taken while training runs.
  for (std::size_t u = 0; u < users; ++u) {
    m.PredictRowRawShared(static_cast<data::UserId>(u), out->row(u));
  }
}

void ConcurrentPredictionService::PredictQoSPairs(
    std::span<const data::UserId> users,
    std::span<const data::ServiceId> services,
    std::span<double> values) const {
  AMF_CHECK_MSG(
      users.size() == services.size() && users.size() == values.size(),
      "users/services/values size mismatch");
  obs::ScopedCounterTimer trace(pair_calls_, pair_hist_);
  if (pair_candidates_ != nullptr) pair_candidates_->Increment(users.size());
  std::fill(values.begin(), values.end(),
            std::numeric_limits<double>::quiet_NaN());
  if (users.empty()) return;
  std::shared_lock lock(mu_);
  const core::AmfModel& m = service_.model();
  // Group the mixed-user batch by user, then score each group through the
  // same gather kernel PredictQoSMany uses: one shared-lock acquisition
  // and one SharedUserRow read per distinct user instead of one per
  // request. Reduction order is identical to the single-pair path (GEMV
  // row order on both sides), so coalesced results are bit-identical at
  // fp64.
  std::unordered_map<data::UserId, std::vector<std::size_t>> by_user;
  by_user.reserve(users.size());
  for (std::size_t i = 0; i < users.size(); ++i) {
    if (m.HasUser(users[i]) && m.HasService(services[i])) {
      by_user[users[i]].push_back(i);
    }
  }
  std::vector<data::ServiceId> known;
  std::vector<double> scores;
  for (const auto& [u, idx] : by_user) {
    known.clear();
    scores.clear();
    known.reserve(idx.size());
    scores.resize(idx.size());
    for (const std::size_t i : idx) known.push_back(services[i]);
    m.PredictManyRawShared(u, known, scores);
    for (std::size_t j = 0; j < idx.size(); ++j) values[idx[j]] = scores[j];
  }
}

void ConcurrentPredictionService::SetReadPrecision(
    core::ReadPrecision precision) {
  // train_mu_ first (no tick in flight = no replay epoch, no refresh),
  // then mu_ exclusive (no prediction in flight): the replica slabs can
  // be rebuilt with no reader or writer anywhere in the model.
  std::lock_guard train(train_mu_);
  std::unique_lock lock(mu_);
  service_.set_read_precision(precision);
}

core::ReadPrecision ConcurrentPredictionService::read_precision() const {
  std::shared_lock lock(mu_);
  return service_.read_precision();
}

void ConcurrentPredictionService::EnableCheckpoints(
    const core::CheckpointManagerConfig& config) {
  std::lock_guard train(train_mu_);
  std::unique_lock lock(mu_);
  service_.EnableCheckpoints(config);
}

bool ConcurrentPredictionService::RestoreFromLatestCheckpoint() {
  std::lock_guard train(train_mu_);
  std::unique_lock lock(mu_);
  return service_.RestoreFromLatestCheckpoint();
}

void ConcurrentPredictionService::EnableJournal(
    const stream::JournalConfig& config) {
  std::lock_guard train(train_mu_);
  std::unique_lock lock(mu_);
  service_.EnableJournal(config);
}

bool ConcurrentPredictionService::SyncJournalIfDue() {
  // Shared lock only: the journal pointer is installed under the
  // exclusive lock (EnableJournal) and the journal serializes its own
  // mutations, so this can run from the serving event loop concurrently
  // with drains and appends.
  std::shared_lock lock(mu_);
  return service_.SyncJournalIfDue();
}

bool ConcurrentPredictionService::FlushJournal() {
  std::shared_lock lock(mu_);
  return service_.FlushJournal();
}

QoSPredictionService::RecoveryReport ConcurrentPredictionService::Recover() {
  // Exclusive on both locks: recovery rebuilds the model and registries
  // (like a checkpoint restore) and then trains through the normal
  // pipeline (like a Tick).
  std::lock_guard train(train_mu_);
  std::unique_lock lock(mu_);
  return service_.Recover();
}

ConcurrentPredictionService::ServiceFactorSnapshot
ConcurrentPredictionService::SnapshotServiceFactors() const {
  // train_mu_ first (lock order), so no trainer holds any row: every
  // version word is even and plain reads of the rows cannot tear.
  std::lock_guard train(train_mu_);
  std::shared_lock lock(mu_);
  const core::AmfModel& m = service_.model();
  ServiceFactorSnapshot snap;
  snap.rank = m.config().rank;
  snap.num_services = m.num_services();
  snap.factors.resize(snap.num_services * snap.rank);
  snap.errors.resize(snap.num_services);
  snap.versions.resize(snap.num_services);
  for (std::size_t s = 0; s < snap.num_services; ++s) {
    const auto id = static_cast<data::ServiceId>(s);
    const std::span<const double> row = m.ServiceFactors(id);
    std::copy(row.begin(), row.end(), snap.factors.begin() + s * snap.rank);
    snap.errors[s] = m.ServiceError(id);
    snap.versions[s] = m.ServiceRowVersion(id);
  }
  return snap;
}

void ConcurrentPredictionService::PublishServiceFactors(
    std::span<const data::ServiceId> ids, std::span<const double> factors,
    std::span<const double> errors) {
  AMF_CHECK_MSG(ids.size() == errors.size(),
                "PublishServiceFactors: ids/errors size mismatch");
  if (ids.empty()) return;
  std::lock_guard train(train_mu_);  // epoch barrier: no writer in flight
  const std::size_t rank = factors.size() / ids.size();
  bool grow = false;
  {
    std::shared_lock lock(mu_);
    const core::AmfModel& m = service_.model();
    AMF_CHECK_MSG(rank == m.config().rank &&
                      factors.size() == ids.size() * rank,
                  "PublishServiceFactors: factors shape mismatch");
    for (const data::ServiceId id : ids) {
      if (!m.HasService(id)) {
        grow = true;
        break;
      }
    }
  }
  if (grow) {
    // A shard can merge in a service it has never observed (routing is
    // by user). Growth reallocates the arena, so it needs the exclusive
    // lock; the merged row overwrites the random init right after.
    data::ServiceId max_s = 0;
    for (const data::ServiceId id : ids) max_s = std::max(max_s, id);
    std::unique_lock lock(mu_);
    service_.mutable_model().EnsureService(max_s);
  }
  std::shared_lock lock(mu_);
  core::AmfModel& m = service_.mutable_model();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    m.OverwriteServiceRow(ids[i], factors.subspan(i * rank, rank),
                          errors[i]);
  }
}

core::PipelineStats ConcurrentPredictionService::pipeline_stats() const {
  // Deliberately lock-free: every source counter is a relaxed atomic
  // (AtomicIngestCounters, the trainer's single-writer atomics, the
  // checkpoint manager's counters, this facade's ring counters), so a
  // monitor never queues behind train_mu_ while an epoch runs.
  core::PipelineStats s = service_.pipeline_stats();
  s.ring_dropped = dropped_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace amf::adapt

#include "adapt/concurrent_service.h"

#include <mutex>

namespace amf::adapt {

ConcurrentPredictionService::ConcurrentPredictionService(
    const PredictionServiceConfig& config)
    : service_(config) {}

data::UserId ConcurrentPredictionService::RegisterUser(
    const std::string& name) {
  std::unique_lock lock(mu_);
  return service_.RegisterUser(name);
}

data::ServiceId ConcurrentPredictionService::RegisterService(
    const std::string& name) {
  std::unique_lock lock(mu_);
  return service_.RegisterService(name);
}

void ConcurrentPredictionService::ReportObservation(
    const data::QoSSample& sample) {
  std::unique_lock lock(mu_);
  service_.ReportObservation(sample);
}

void ConcurrentPredictionService::Tick(double now_seconds) {
  std::unique_lock lock(mu_);
  service_.Tick(now_seconds);
}

void ConcurrentPredictionService::TrainToConvergence(double now_seconds) {
  std::unique_lock lock(mu_);
  service_.TrainToConvergence(now_seconds);
}

std::optional<double> ConcurrentPredictionService::PredictQoS(
    data::UserId u, data::ServiceId s) const {
  std::shared_lock lock(mu_);
  return service_.PredictQoS(u, s);
}

std::size_t ConcurrentPredictionService::observations() const {
  std::shared_lock lock(mu_);
  return service_.observations();
}

}  // namespace amf::adapt

#include "adapt/middleware.h"

#include "common/check.h"

namespace amf::adapt {

ExecutionMiddleware::ExecutionMiddleware(data::UserId user,
                                         Workflow workflow,
                                         const Environment& env,
                                         QoSPredictionService* service,
                                         AdaptationPolicy& policy,
                                         double sla_threshold)
    : user_(user),
      workflow_(std::move(workflow)),
      env_(&env),
      service_(service),
      policy_(&policy),
      sla_threshold_(sla_threshold) {
  AMF_CHECK_MSG(sla_threshold_ > 0.0, "SLA threshold must be positive");
}

void ExecutionMiddleware::Step(double now_seconds) {
  for (std::size_t i = 0; i < workflow_.num_tasks(); ++i) {
    const data::ServiceId bound = workflow_.binding(i);
    const InvocationResult result = env_->Invoke(user_, bound, now_seconds);

    ++stats_.invocations;
    stats_.total_rt += result.response_time;
    if (result.failed) ++stats_.failures;
    const bool violated =
        result.failed || result.response_time > sla_threshold_;
    if (violated) ++stats_.violations;

    // QoS manager: upload the observation (working services only — this is
    // exactly the data the collaborative predictor learns from).
    if (service_ != nullptr) {
      service_->ReportObservation(data::QoSSample{
          env_->SliceAt(now_seconds), user_, bound, result.response_time,
          now_seconds});
    }

    TaskContext ctx;
    ctx.task = &workflow_.task(i);
    ctx.user = user_;
    ctx.current_binding = bound;
    ctx.observed_rt = result.response_time;
    ctx.failed = result.failed;
    ctx.sla_threshold = sla_threshold_;
    ctx.now_seconds = now_seconds;
    if (const auto next = policy_->SelectBinding(ctx)) {
      const std::size_t before = workflow_.adaptations();
      workflow_.Rebind(i, *next);
      if (workflow_.adaptations() > before) ++stats_.adaptations;
    }
  }
}

}  // namespace amf::adapt

// ExecutionMiddleware: the client-side box of Fig. 3 — the enriched BPEL
// engine of one service-based application (one user). Per step it invokes
// the bound service of every task, reports observations through the QoS
// manager to the prediction service, accounts SLA compliance, and lets the
// adaptation policy rebind tasks.
#pragma once

#include <memory>

#include "adapt/environment.h"
#include "adapt/policy.h"
#include "adapt/prediction_service.h"
#include "adapt/workflow.h"

namespace amf::adapt {

struct AppStats {
  std::size_t invocations = 0;
  std::size_t failures = 0;       ///< invocations of downed services
  std::size_t violations = 0;     ///< failures + RT over SLA
  std::size_t adaptations = 0;    ///< bindings actually changed
  double total_rt = 0.0;          ///< sum of observed RTs

  double MeanRt() const {
    return invocations ? total_rt / static_cast<double>(invocations) : 0.0;
  }
  double ViolationRate() const {
    return invocations
               ? static_cast<double>(violations) /
                     static_cast<double>(invocations)
               : 0.0;
  }
};

class ExecutionMiddleware {
 public:
  /// `env` and `policy` must outlive the middleware; `service` may be null
  /// for policies that do not report/consume predictions.
  ExecutionMiddleware(data::UserId user, Workflow workflow,
                      const Environment& env, QoSPredictionService* service,
                      AdaptationPolicy& policy, double sla_threshold);

  /// Executes the workflow once at simulated time `now_seconds`.
  void Step(double now_seconds);

  const Workflow& workflow() const { return workflow_; }
  const AppStats& stats() const { return stats_; }
  data::UserId user() const { return user_; }

 private:
  data::UserId user_;
  Workflow workflow_;
  const Environment* env_;
  QoSPredictionService* service_;
  AdaptationPolicy* policy_;
  double sla_threshold_;
  AppStats stats_;
};

}  // namespace amf::adapt

#include "adapt/prediction_service.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"

namespace amf::adapt {

namespace {

/// Propagates the service-level metrics registry into the trainer config
/// (service-level setting wins when both are set).
core::TrainerConfig WithMetrics(core::TrainerConfig trainer,
                                obs::MetricsRegistry* metrics) {
  if (metrics != nullptr) trainer.metrics = metrics;
  return trainer;
}

}  // namespace

QoSPredictionService::QoSPredictionService(
    const PredictionServiceConfig& config)
    : config_(config),
      model_(config.model),
      trainer_(model_, WithMetrics(config.trainer, config.metrics)),
      collector_(trainer_) {}

data::UserId QoSPredictionService::RegisterUser(const std::string& name) {
  const data::UserId id = users_.Join(name);
  model_.EnsureUser(id);
  return id;
}

data::ServiceId QoSPredictionService::RegisterService(
    const std::string& name) {
  const data::ServiceId id = services_.Join(name);
  model_.EnsureService(id);
  return id;
}

void QoSPredictionService::EnsureRegistered(data::UserId u,
                                            data::ServiceId s) {
  model_.EnsureUser(u);
  model_.EnsureService(s);
}

bool QoSPredictionService::UnregisterUser(const std::string& name) {
  return users_.Leave(name);
}

bool QoSPredictionService::UnregisterService(const std::string& name) {
  return services_.Leave(name);
}

void QoSPredictionService::ReportObservation(const data::QoSSample& sample) {
  collector_.Collect(sample);
  // Degradation-ladder state: per-service running mean over plausibly
  // clean observations (the trainer's validator is the authoritative
  // gate; this fallback statistic only needs to be robust, not exact).
  if (std::isfinite(sample.value) && sample.value > 0.0) {
    service_stats_[sample.service].Add(sample.value);
  }
}

void QoSPredictionService::Tick(double now_seconds) {
  if (now_seconds > trainer_.now()) trainer_.AdvanceTime(now_seconds);
  collector_.Flush();
  trainer_.ProcessIncoming();
  for (std::size_t i = 0; i < config_.replay_epochs_per_tick; ++i) {
    trainer_.ReplayEpoch();
  }
  if (checkpoints_ != nullptr) {
    checkpoints_->MaybeSave(model_, trainer_.store(), trainer_.now(),
                            trainer_.last_epoch_error());
  }
}

void QoSPredictionService::TrainToConvergence(double now_seconds) {
  if (now_seconds > trainer_.now()) trainer_.AdvanceTime(now_seconds);
  collector_.Flush();
  trainer_.RunUntilConverged();
}

std::optional<double> QoSPredictionService::PredictQoS(
    data::UserId u, data::ServiceId s) const {
  if (!model_.HasUser(u) || !model_.HasService(s)) return std::nullopt;
  return model_.PredictRaw(u, s);
}

std::optional<QoSPredictionService::Prediction>
QoSPredictionService::PredictQoSWithUncertainty(data::UserId u,
                                                data::ServiceId s) const {
  if (!model_.HasUser(u) || !model_.HasService(s)) return std::nullopt;
  return Prediction{model_.PredictRaw(u, s),
                    model_.PredictionUncertainty(u, s)};
}

bool QoSPredictionService::PredictQoSRow(
    data::UserId u, std::span<const data::ServiceId> candidates,
    std::span<double> values, std::span<double> uncertainties) const {
  AMF_CHECK_MSG(values.size() == candidates.size(),
                "candidates/values size mismatch");
  AMF_CHECK_MSG(
      uncertainties.empty() || uncertainties.size() == candidates.size(),
      "candidates/uncertainties size mismatch");
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::fill(values.begin(), values.end(), nan);
  std::fill(uncertainties.begin(), uncertainties.end(), nan);
  if (!model_.HasUser(u)) return false;

  // Gather the registered candidates and score them in one batched pass.
  std::vector<data::ServiceId> known;
  std::vector<std::size_t> pos;
  known.reserve(candidates.size());
  pos.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (model_.HasService(candidates[i])) {
      known.push_back(candidates[i]);
      pos.push_back(i);
    }
  }
  if (known.empty()) return true;
  std::vector<double> scores(known.size());
  model_.PredictManyRaw(u, known, scores);
  const double user_error = model_.UserError(u);
  for (std::size_t j = 0; j < known.size(); ++j) {
    values[pos[j]] = scores[j];
    if (!uncertainties.empty()) {
      uncertainties[pos[j]] =
          0.5 * (user_error + model_.ServiceError(known[j]));
    }
  }
  return true;
}

QoSPredictionService::ResilientPrediction
QoSPredictionService::PredictResilient(data::UserId u,
                                       data::ServiceId s) const {
  const DegradationConfig& deg = config_.degradation;

  // Rung 1: the AMF prediction, but only when both entity error EMAs have
  // converged below the trust threshold and the readout is finite.
  if (model_.HasUser(u) && model_.HasService(s) &&
      model_.UserError(u) <= deg.max_entity_error &&
      model_.ServiceError(s) <= deg.max_entity_error) {
    const double value = model_.PredictRaw(u, s);
    if (std::isfinite(value)) {
      ++degradation_stats_.model;
      return {value, PredictionSource::kModel};
    }
  }

  // Rung 2: per-service running mean of everything observed so far (the
  // UPCC-style population fallback for unconverged entities).
  const auto it = service_stats_.find(s);
  if (it != service_stats_.end() && it->second.count() > 0) {
    ++degradation_stats_.service_mean;
    return {it->second.mean(), PredictionSource::kServiceMean};
  }

  // Rung 3: the last-known-good stored sample for this exact pair.
  if (const auto sample = trainer_.store().Get(u, s)) {
    const double age = trainer_.now() - sample->timestamp;
    if (deg.last_known_good_max_age_seconds <= 0.0 ||
        age <= deg.last_known_good_max_age_seconds) {
      ++degradation_stats_.last_known_good;
      return {sample->value, PredictionSource::kLastKnownGood};
    }
  }

  ++degradation_stats_.unavailable;
  return {std::numeric_limits<double>::quiet_NaN(),
          PredictionSource::kUnavailable};
}

void QoSPredictionService::EnableCheckpoints(
    const core::CheckpointManagerConfig& config) {
  checkpoints_ = std::make_unique<core::CheckpointManager>(config);
  obs::MetricsRegistry* metrics =
      config_.metrics != nullptr ? config_.metrics : trainer_.config().metrics;
  checkpoints_->AttachMetrics(metrics);
}

bool QoSPredictionService::RestoreFromLatestCheckpoint() {
  if (checkpoints_ == nullptr) return false;
  std::optional<core::CheckpointData> data = checkpoints_->LoadLatestValid();
  if (!data) return false;
  model_ = std::move(data->model);
  core::SampleStore& store = trainer_.mutable_store();
  store.Clear();
  for (const data::QoSSample& s : data->store.samples()) store.Upsert(s);
  if (data->now > trainer_.now()) trainer_.AdvanceTime(data->now);
  return true;
}

core::PipelineStats QoSPredictionService::pipeline_stats() const {
  core::PipelineStats s = trainer_.Stats();
  if (checkpoints_ != nullptr) {
    s.checkpoints_written = checkpoints_->written();
    s.checkpoints_corrupt = checkpoints_->corrupt_skipped();
  }
  return s;
}

}  // namespace amf::adapt

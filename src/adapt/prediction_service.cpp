#include "adapt/prediction_service.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.h"

namespace amf::adapt {

QoSPredictionService::QoSPredictionService(
    const PredictionServiceConfig& config)
    : config_(config),
      model_(config.model),
      trainer_(model_, config.trainer),
      collector_(trainer_) {}

data::UserId QoSPredictionService::RegisterUser(const std::string& name) {
  const data::UserId id = users_.Join(name);
  model_.EnsureUser(id);
  return id;
}

data::ServiceId QoSPredictionService::RegisterService(
    const std::string& name) {
  const data::ServiceId id = services_.Join(name);
  model_.EnsureService(id);
  return id;
}

bool QoSPredictionService::UnregisterUser(const std::string& name) {
  return users_.Leave(name);
}

bool QoSPredictionService::UnregisterService(const std::string& name) {
  return services_.Leave(name);
}

void QoSPredictionService::ReportObservation(const data::QoSSample& sample) {
  collector_.Collect(sample);
}

void QoSPredictionService::Tick(double now_seconds) {
  if (now_seconds > trainer_.now()) trainer_.AdvanceTime(now_seconds);
  collector_.Flush();
  trainer_.ProcessIncoming();
  for (std::size_t i = 0; i < config_.replay_epochs_per_tick; ++i) {
    trainer_.ReplayEpoch();
  }
}

void QoSPredictionService::TrainToConvergence(double now_seconds) {
  if (now_seconds > trainer_.now()) trainer_.AdvanceTime(now_seconds);
  collector_.Flush();
  trainer_.RunUntilConverged();
}

std::optional<double> QoSPredictionService::PredictQoS(
    data::UserId u, data::ServiceId s) const {
  if (!model_.HasUser(u) || !model_.HasService(s)) return std::nullopt;
  return model_.PredictRaw(u, s);
}

std::optional<QoSPredictionService::Prediction>
QoSPredictionService::PredictQoSWithUncertainty(data::UserId u,
                                                data::ServiceId s) const {
  if (!model_.HasUser(u) || !model_.HasService(s)) return std::nullopt;
  return Prediction{model_.PredictRaw(u, s),
                    model_.PredictionUncertainty(u, s)};
}

bool QoSPredictionService::PredictQoSRow(
    data::UserId u, std::span<const data::ServiceId> candidates,
    std::span<double> values, std::span<double> uncertainties) const {
  AMF_CHECK_MSG(values.size() == candidates.size(),
                "candidates/values size mismatch");
  AMF_CHECK_MSG(
      uncertainties.empty() || uncertainties.size() == candidates.size(),
      "candidates/uncertainties size mismatch");
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::fill(values.begin(), values.end(), nan);
  std::fill(uncertainties.begin(), uncertainties.end(), nan);
  if (!model_.HasUser(u)) return false;

  // Gather the registered candidates and score them in one batched pass.
  std::vector<data::ServiceId> known;
  std::vector<std::size_t> pos;
  known.reserve(candidates.size());
  pos.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (model_.HasService(candidates[i])) {
      known.push_back(candidates[i]);
      pos.push_back(i);
    }
  }
  if (known.empty()) return true;
  std::vector<double> scores(known.size());
  model_.PredictManyRaw(u, known, scores);
  const double user_error = model_.UserError(u);
  for (std::size_t j = 0; j < known.size(); ++j) {
    values[pos[j]] = scores[j];
    if (!uncertainties.empty()) {
      uncertainties[pos[j]] =
          0.5 * (user_error + model_.ServiceError(known[j]));
    }
  }
  return true;
}

}  // namespace amf::adapt

#include "adapt/prediction_service.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace amf::adapt {

namespace {

/// Propagates the service-level metrics registry into the trainer config
/// (service-level setting wins when both are set).
core::TrainerConfig WithMetrics(core::TrainerConfig trainer,
                                obs::MetricsRegistry* metrics) {
  if (metrics != nullptr) trainer.metrics = metrics;
  return trainer;
}

}  // namespace

QoSPredictionService::QoSPredictionService(
    const PredictionServiceConfig& config)
    : config_(config),
      model_(config.model),
      trainer_(model_, WithMetrics(config.trainer, config.metrics)),
      collector_(trainer_) {
  RegisterLifecycleMetrics();
}

data::UserId QoSPredictionService::RegisterUser(const std::string& name) {
  const data::UserId id = users_.Join(name);
  model_.EnsureUser(id);
  SyncLifecycleCounters();
  return id;
}

data::ServiceId QoSPredictionService::RegisterService(
    const std::string& name) {
  const data::ServiceId id = services_.Join(name);
  model_.EnsureService(id);
  SyncLifecycleCounters();
  return id;
}

void QoSPredictionService::EnsureRegistered(data::UserId u,
                                            data::ServiceId s) {
  model_.EnsureUser(u);
  model_.EnsureService(s);
}

bool QoSPredictionService::UnregisterUser(const std::string& name) {
  const bool known = users_.Leave(name);
  if (known) SyncLifecycleCounters();
  return known;
}

bool QoSPredictionService::UnregisterService(const std::string& name) {
  const bool known = services_.Leave(name);
  if (known) SyncLifecycleCounters();
  return known;
}

bool QoSPredictionService::RetireUser(const std::string& name) {
  const std::optional<data::UserId> id = users_.Retire(name);
  if (!id) return false;
  model_.RetireUser(*id);
  // Purge the ingest buffer first: anything still queued there would be
  // flushed after the trainer purge and train the slot's next tenant.
  trainer_.CountPurgedSamples(collector_.RemoveUser(*id));
  trainer_.PurgeUser(*id);
  SyncLifecycleCounters();
  return true;
}

bool QoSPredictionService::RetireService(const std::string& name) {
  const std::optional<data::ServiceId> id = services_.Retire(name);
  if (!id) return false;
  model_.RetireService(*id);
  trainer_.CountPurgedSamples(collector_.RemoveService(*id));
  trainer_.PurgeService(*id);
  // The degradation ladder must never serve the departed tenant's running
  // mean for the slot's next tenant.
  service_stats_.erase(*id);
  SyncLifecycleCounters();
  return true;
}

void QoSPredictionService::ReportObservation(const data::QoSSample& sample) {
  if (!users_.IsKnown(sample.user) || !services_.IsKnown(sample.service)) {
    rejected_unregistered_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // WAL discipline: the record is framed + (policy-dependent) fsynced
  // before anything downstream sees it. A failed append means the
  // observation cannot be made durable, so it is shed — acknowledged
  // observations are exactly the journaled ones.
  if (journal_ != nullptr) {
    const auto gens = JournalGenerations(sample);
    if (!journal_->Append(sample, gens.first, gens.second)) {
      journal_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  CollectObservation(sample);
}

void QoSPredictionService::ReportObservationTrusted(
    const data::QoSSample& sample) {
  // The concurrent facade owns id management (raw ids, pre-registered
  // with the model before draining); only explicitly retired slots are
  // refused here, so ring residue from before a retirement cannot
  // resurrect the old tenant's state.
  if (users_.IsFree(sample.user) || services_.IsFree(sample.service)) {
    rejected_unregistered_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (journal_ != nullptr) {
    const auto gens = JournalGenerations(sample);
    if (!journal_->Append(sample, gens.first, gens.second)) {
      journal_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  CollectObservation(sample);
}

void QoSPredictionService::ReportObservationsTrusted(
    const std::vector<data::QoSSample>& samples) {
  if (journal_ == nullptr) {
    for (const data::QoSSample& s : samples) ReportObservationTrusted(s);
    return;
  }
  // Group commit: gate the whole drain, journal the survivors with one
  // write + at most one fsync, then collect exactly the appended prefix.
  journal_batch_.clear();
  for (const data::QoSSample& s : samples) {
    if (users_.IsFree(s.user) || services_.IsFree(s.service)) {
      rejected_unregistered_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    journal_batch_.push_back(s);
  }
  if (journal_batch_.empty()) return;
  const std::size_t appended = journal_->AppendBatch(
      journal_batch_,
      [this](const data::QoSSample& s) { return JournalGenerations(s); });
  if (appended < journal_batch_.size()) {
    journal_dropped_.fetch_add(journal_batch_.size() - appended,
                               std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < appended; ++i) {
    CollectObservation(journal_batch_[i]);
  }
}

std::pair<std::uint32_t, std::uint32_t>
QoSPredictionService::JournalGenerations(const data::QoSSample& sample) const {
  // +1-encoded: 0 marks an id the registries never issued (raw-id ingest
  // through the concurrent facade), which replays unconditionally.
  const std::uint32_t ugen =
      sample.user < users_.size() ? users_.GenerationOf(sample.user) + 1 : 0;
  const std::uint32_t sgen =
      sample.service < services_.size()
          ? services_.GenerationOf(sample.service) + 1
          : 0;
  return {ugen, sgen};
}

void QoSPredictionService::CollectObservation(const data::QoSSample& sample) {
  collector_.Collect(sample);
  // Degradation-ladder state: per-service running mean over plausibly
  // clean observations (the trainer's validator is the authoritative
  // gate; this fallback statistic only needs to be robust, not exact).
  if (std::isfinite(sample.value) && sample.value > 0.0) {
    service_stats_[sample.service].Add(sample.value);
  }
}

void QoSPredictionService::Tick(double now_seconds) {
  if (now_seconds > trainer_.now()) trainer_.AdvanceTime(now_seconds);
  collector_.Flush();
  trainer_.ProcessIncoming();
  for (std::size_t i = 0; i < config_.replay_epochs_per_tick; ++i) {
    trainer_.ReplayEpoch();
  }
  if (checkpoints_ != nullptr && checkpoints_->ShouldSave(trainer_.now())) {
    // Snapshot both registries only on ticks that will actually save:
    // the images copy every name.
    const core::CheckpointRegistries registries{users_.ToImage(),
                                                services_.ToImage()};
    // Watermark invariant: Flush + ProcessIncoming above applied every
    // record the journal holds, so the checkpoint covers exactly LSNs
    // <= last_lsn(). SyncNow makes those LSNs durable before a watermark
    // claiming them can hit disk (otherwise a crash could GC segments the
    // checkpoint supposedly covers while their tail was still in cache).
    std::uint64_t watermark = 0;
    const std::uint64_t* watermark_ptr = nullptr;
    if (journal_ != nullptr) {
      journal_->SyncNow();
      watermark = journal_->last_lsn();
      watermark_ptr = &watermark;
    }
    if (checkpoints_->MaybeSave(model_, trainer_.store(), trainer_.now(),
                                trainer_.last_epoch_error(), &registries,
                                watermark_ptr) &&
        journal_ != nullptr) {
      // The watermark is durable in the just-written checkpoint: segments
      // entirely at or below it can never be needed again.
      journal_->RemoveSegmentsCoveredBy(watermark);
    }
  }
  // Bound the kInterval durability window across idle ticks: without
  // this, a burst's unsynced tail would wait for the *next append* to
  // trigger the interval check (src/stream/wal.h).
  if (journal_ != nullptr) journal_->SyncIfDue();
}

void QoSPredictionService::TrainToConvergence(double now_seconds) {
  if (now_seconds > trainer_.now()) trainer_.AdvanceTime(now_seconds);
  collector_.Flush();
  trainer_.RunUntilConverged();
}

std::optional<double> QoSPredictionService::PredictQoS(
    data::UserId u, data::ServiceId s) const {
  if (!model_.HasUser(u) || !model_.HasService(s)) return std::nullopt;
  return model_.PredictRaw(u, s);
}

std::optional<QoSPredictionService::Prediction>
QoSPredictionService::PredictQoSWithUncertainty(data::UserId u,
                                                data::ServiceId s) const {
  if (!model_.HasUser(u) || !model_.HasService(s)) return std::nullopt;
  return Prediction{model_.PredictRaw(u, s),
                    model_.PredictionUncertainty(u, s)};
}

bool QoSPredictionService::PredictQoSRow(
    data::UserId u, std::span<const data::ServiceId> candidates,
    std::span<double> values, std::span<double> uncertainties) const {
  AMF_CHECK_MSG(values.size() == candidates.size(),
                "candidates/values size mismatch");
  AMF_CHECK_MSG(
      uncertainties.empty() || uncertainties.size() == candidates.size(),
      "candidates/uncertainties size mismatch");
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::fill(values.begin(), values.end(), nan);
  std::fill(uncertainties.begin(), uncertainties.end(), nan);
  if (!model_.HasUser(u)) return false;

  // Gather the registered candidates and score them in one batched pass.
  std::vector<data::ServiceId> known;
  std::vector<std::size_t> pos;
  known.reserve(candidates.size());
  pos.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (model_.HasService(candidates[i])) {
      known.push_back(candidates[i]);
      pos.push_back(i);
    }
  }
  if (known.empty()) return true;
  std::vector<double> scores(known.size());
  model_.PredictManyRaw(u, known, scores);
  const double user_error = model_.UserError(u);
  for (std::size_t j = 0; j < known.size(); ++j) {
    values[pos[j]] = scores[j];
    if (!uncertainties.empty()) {
      uncertainties[pos[j]] =
          0.5 * (user_error + model_.ServiceError(known[j]));
    }
  }
  return true;
}

QoSPredictionService::ResilientPrediction
QoSPredictionService::PredictResilient(data::UserId u,
                                       data::ServiceId s) const {
  const DegradationConfig& deg = config_.degradation;

  // Unregistered ids (never joined, or retired) refuse the whole ladder
  // up front: every statistic further down belongs to a different tenant
  // (or to nobody), and serving it would invent QoS for an entity that
  // does not exist.
  if (!users_.IsKnown(u) || !services_.IsKnown(s)) {
    ++degradation_stats_.unavailable;
    return {std::numeric_limits<double>::quiet_NaN(),
            PredictionSource::kUnavailable};
  }

  // Rung 1: the AMF prediction, but only when both entity error EMAs have
  // converged below the trust threshold and the readout is finite.
  if (model_.HasUser(u) && model_.HasService(s) &&
      model_.UserError(u) <= deg.max_entity_error &&
      model_.ServiceError(s) <= deg.max_entity_error) {
    const double value = model_.PredictRaw(u, s);
    if (std::isfinite(value)) {
      ++degradation_stats_.model;
      return {value, PredictionSource::kModel};
    }
  }

  // Rung 2: per-service running mean of everything observed so far (the
  // UPCC-style population fallback for unconverged entities).
  const auto it = service_stats_.find(s);
  if (it != service_stats_.end() && it->second.count() > 0) {
    ++degradation_stats_.service_mean;
    return {it->second.mean(), PredictionSource::kServiceMean};
  }

  // Rung 3: the last-known-good stored sample for this exact pair.
  if (const auto sample = trainer_.store().Get(u, s)) {
    const double age = trainer_.now() - sample->timestamp;
    if (deg.last_known_good_max_age_seconds <= 0.0 ||
        age <= deg.last_known_good_max_age_seconds) {
      ++degradation_stats_.last_known_good;
      return {sample->value, PredictionSource::kLastKnownGood};
    }
  }

  ++degradation_stats_.unavailable;
  return {std::numeric_limits<double>::quiet_NaN(),
          PredictionSource::kUnavailable};
}

void QoSPredictionService::EnableCheckpoints(
    const core::CheckpointManagerConfig& config) {
  checkpoints_ = std::make_unique<core::CheckpointManager>(config);
  obs::MetricsRegistry* metrics =
      config_.metrics != nullptr ? config_.metrics : trainer_.config().metrics;
  checkpoints_->AttachMetrics(metrics);
}

bool QoSPredictionService::RestoreFromLatestCheckpoint() {
  if (checkpoints_ == nullptr) return false;
  std::optional<core::CheckpointData> data = checkpoints_->LoadLatestValid();
  if (!data) return false;
  restored_watermark_ = data->wal_watermark;
  // The checkpoint format does not carry read_precision (a serving-side
  // knob, not model state): the loaded model arrives at fp64 with no
  // replicas. Re-apply the live precision after the swap — SetReadPrecision
  // rebuilds and fully republishes the replica slabs from the restored
  // masters, which is exactly the restore-time full refresh the replica
  // lifecycle requires (DESIGN.md §13).
  const core::ReadPrecision live_precision = model_.read_precision();
  model_ = std::move(data->model);
  if (live_precision != model_.read_precision()) {
    model_.SetReadPrecision(live_precision);
  }
  core::SampleStore& store = trainer_.mutable_store();
  store.Clear();
  for (const data::QoSSample& s : data->store.samples()) store.Upsert(s);
  if (data->now > trainer_.now()) trainer_.AdvanceTime(data->now);
  if (data->registries) {
    users_ = UserRegistry::FromImage(data->registries->users);
    services_ = ServiceRegistry::FromImage(data->registries->services);
    SyncLifecycleCounters();
  } else {
    // Pre-v2 checkpoint: the factors are anonymous. Registering names in
    // any order other than the original one silently rebinds every name
    // to someone else's latent rows — warn loudly.
    AMF_LOG(Warning)
        << "checkpoint carries no registry section (v1 format): "
           "name->id bindings were not restored; re-register entities "
           "in their original join order or predictions will be rebound";
  }
  return true;
}

void QoSPredictionService::EnableJournal(const stream::JournalConfig& config) {
  journal_ = std::make_unique<stream::ObservationJournal>(config);
  obs::MetricsRegistry* metrics =
      config_.metrics != nullptr ? config_.metrics : trainer_.config().metrics;
  journal_->AttachMetrics(metrics);
}

QoSPredictionService::RecoveryReport QoSPredictionService::Recover() {
  RecoveryReport report;
  report.checkpoint_restored = RestoreFromLatestCheckpoint();
  if (report.checkpoint_restored) {
    // The validator's duplicate map is in-memory state the checkpoint
    // does not carry. Rebuild it from the restored store so a replayed
    // record whose effect the checkpoint already contains is rejected as
    // a re-delivery instead of double-applied — this is what makes the
    // full-journal fallback below idempotent.
    trainer_.SeedValidatorFromStore();
  }
  if (report.checkpoint_restored && restored_watermark_) {
    report.watermark = *restored_watermark_;
  } else if (report.checkpoint_restored && journal_ != nullptr) {
    AMF_LOG(Warning)
        << "recover: checkpoint carries no journal watermark (pre-v3 "
           "format): replaying the FULL journal; duplicate rejection "
           "against the restored store makes this safe but slow";
  }
  if (journal_ == nullptr) return report;
  std::uint64_t max_id_user = 0;
  std::uint64_t max_id_service = 0;
  std::vector<stream::JournalRecord> survivors;
  const stream::JournalScanResult scan = stream::ScanJournal(
      journal_->config().directory, report.watermark,
      [&](const stream::JournalRecord& record) {
        ++report.scanned;
        // Generation gate: a non-zero recorded generation must still
        // match the restored registry (+1 encoding, JournalGenerations).
        // A mismatch means the id was retired — and possibly recycled to
        // a new tenant — after this record was appended; applying it
        // would train the wrong tenant's factors.
        const data::UserId u = record.sample.user;
        const data::ServiceId s = record.sample.service;
        if ((record.user_generation != 0 &&
             (u >= users_.size() ||
              users_.GenerationOf(u) + 1 != record.user_generation)) ||
            (record.service_generation != 0 &&
             (s >= services_.size() ||
              services_.GenerationOf(s) + 1 != record.service_generation))) {
          ++report.rejected_generation;
          return;
        }
        // Same gate as the trusted ingest path: a currently-free slot
        // accepts nothing, even at matching generation.
        if (users_.IsFree(u) || services_.IsFree(s)) {
          ++report.rejected_retired;
          return;
        }
        max_id_user = std::max<std::uint64_t>(max_id_user, u);
        max_id_service = std::max<std::uint64_t>(max_id_service, s);
        survivors.push_back(record);
      });
  report.quarantined_segments = scan.quarantined_segments;
  if (!survivors.empty()) {
    // Grow factor storage once, then run every survivor through the
    // normal ingest pipeline (collector -> validator -> trainer queue).
    // No replay epochs here: application is deterministic, so the result
    // is bit-identical to feeding the same records into a fresh restore.
    EnsureRegistered(static_cast<data::UserId>(max_id_user),
                     static_cast<data::ServiceId>(max_id_service));
    double latest = trainer_.now();
    for (const stream::JournalRecord& record : survivors) {
      CollectObservation(record.sample);
      latest = std::max(latest, record.sample.timestamp);
      ++report.replayed;
    }
    if (latest > trainer_.now()) trainer_.AdvanceTime(latest);
    collector_.Flush();
    trainer_.ProcessIncoming();
  }
  journal_replayed_.fetch_add(report.replayed, std::memory_order_relaxed);
  journal_replay_rejected_.fetch_add(
      report.rejected_generation + report.rejected_retired,
      std::memory_order_relaxed);
  AMF_LOG(Info) << "recover: checkpoint="
                << (report.checkpoint_restored ? "restored" : "none")
                << " watermark=" << report.watermark << " scanned="
                << report.scanned << " replayed=" << report.replayed
                << " rejected{generation=" << report.rejected_generation
                << " retired=" << report.rejected_retired
                << "} quarantined_segments=" << report.quarantined_segments;
  return report;
}

core::PipelineStats QoSPredictionService::pipeline_stats() const {
  core::PipelineStats s = trainer_.Stats();
  if (checkpoints_ != nullptr) {
    s.checkpoints_written = checkpoints_->written();
    s.checkpoints_corrupt = checkpoints_->corrupt_skipped();
  }
  s.rejected_unregistered =
      rejected_unregistered_.load(std::memory_order_relaxed);
  if (journal_ != nullptr) s.journal_appended = journal_->appends();
  s.journal_dropped = journal_dropped_.load(std::memory_order_relaxed);
  s.journal_replayed = journal_replayed_.load(std::memory_order_relaxed);
  s.journal_replay_rejected =
      journal_replay_rejected_.load(std::memory_order_relaxed);
  return s;
}

void QoSPredictionService::SyncLifecycleCounters() {
  const auto store = [](std::atomic<std::uint64_t>& dst, std::uint64_t v) {
    dst.store(v, std::memory_order_relaxed);
  };
  store(lifecycle_.users_active, users_.num_active());
  store(lifecycle_.users_slots, users_.size());
  store(lifecycle_.users_free, users_.free_slots());
  store(lifecycle_.users_recycled, users_.recycled_total());
  store(lifecycle_.services_active, services_.num_active());
  store(lifecycle_.services_slots, services_.size());
  store(lifecycle_.services_free, services_.free_slots());
  store(lifecycle_.services_recycled, services_.recycled_total());
}

void QoSPredictionService::RegisterLifecycleMetrics() {
  obs::MetricsRegistry* reg = config_.metrics;
  if (reg == nullptr) return;
  const auto gauge = [](const std::atomic<std::uint64_t>& src) {
    return [&src] {
      return static_cast<double>(src.load(std::memory_order_relaxed));
    };
  };
  const auto counter = [](const std::atomic<std::uint64_t>& src) {
    return [&src] { return src.load(std::memory_order_relaxed); };
  };
  reg->RegisterCallbackGauge("lifecycle.users_active",
                             gauge(lifecycle_.users_active));
  reg->RegisterCallbackGauge("lifecycle.users_slots",
                             gauge(lifecycle_.users_slots));
  reg->RegisterCallbackGauge("lifecycle.users_free",
                             gauge(lifecycle_.users_free));
  reg->RegisterCallbackCounter("lifecycle.users_recycled",
                               counter(lifecycle_.users_recycled));
  reg->RegisterCallbackGauge("lifecycle.services_active",
                             gauge(lifecycle_.services_active));
  reg->RegisterCallbackGauge("lifecycle.services_slots",
                             gauge(lifecycle_.services_slots));
  reg->RegisterCallbackGauge("lifecycle.services_free",
                             gauge(lifecycle_.services_free));
  reg->RegisterCallbackCounter("lifecycle.services_recycled",
                               counter(lifecycle_.services_recycled));
  reg->RegisterCallbackCounter("lifecycle.rejected_unregistered",
                               counter(rejected_unregistered_));
}

}  // namespace amf::adapt

#include "adapt/prediction_service.h"

namespace amf::adapt {

QoSPredictionService::QoSPredictionService(
    const PredictionServiceConfig& config)
    : config_(config),
      model_(config.model),
      trainer_(model_, config.trainer),
      collector_(trainer_) {}

data::UserId QoSPredictionService::RegisterUser(const std::string& name) {
  const data::UserId id = users_.Join(name);
  model_.EnsureUser(id);
  return id;
}

data::ServiceId QoSPredictionService::RegisterService(
    const std::string& name) {
  const data::ServiceId id = services_.Join(name);
  model_.EnsureService(id);
  return id;
}

bool QoSPredictionService::UnregisterUser(const std::string& name) {
  return users_.Leave(name);
}

bool QoSPredictionService::UnregisterService(const std::string& name) {
  return services_.Leave(name);
}

void QoSPredictionService::ReportObservation(const data::QoSSample& sample) {
  collector_.Collect(sample);
}

void QoSPredictionService::Tick(double now_seconds) {
  if (now_seconds > trainer_.now()) trainer_.AdvanceTime(now_seconds);
  collector_.Flush();
  trainer_.ProcessIncoming();
  for (std::size_t i = 0; i < config_.replay_epochs_per_tick; ++i) {
    trainer_.ReplayEpoch();
  }
}

void QoSPredictionService::TrainToConvergence(double now_seconds) {
  if (now_seconds > trainer_.now()) trainer_.AdvanceTime(now_seconds);
  collector_.Flush();
  trainer_.RunUntilConverged();
}

std::optional<double> QoSPredictionService::PredictQoS(
    data::UserId u, data::ServiceId s) const {
  if (!model_.HasUser(u) || !model_.HasService(s)) return std::nullopt;
  return model_.PredictRaw(u, s);
}

std::optional<QoSPredictionService::Prediction>
QoSPredictionService::PredictQoSWithUncertainty(data::UserId u,
                                                data::ServiceId s) const {
  if (!model_.HasUser(u) || !model_.HasService(s)) return std::nullopt;
  return Prediction{model_.PredictRaw(u, s),
                    model_.PredictionUncertainty(u, s)};
}

}  // namespace amf::adapt

// User-sharded multi-instance AMF (DESIGN.md §15).
//
// One AmfModel caps "scalable" at one cache-warm machine: every user's
// latent row lives in one arena, one trainer drains one ring, one WAL
// absorbs every observation. This facade partitions USERS across N
// independent ConcurrentPredictionService shards behind a frozen hash
// router (shard_router.h). Each shard owns a full vertical slice of the
// pipeline — its own arena-backed model, ingest ring, trainer, WAL
// directory, and checkpoint directory — so shards share no locks, no
// rings, and no files, and the whole stack scales by adding shards.
//
// Users are PARTITIONED: a user's factors, samples, and durable history
// live only on router.ShardOf(user). Services are REPLICATED: the
// service-factor matrix is small (the paper's deployments have orders of
// magnitude more users than services), so every shard trains its own
// copy against its local users, and MergeServiceFactors() reconciles the
// copies with a hogwild-style weighted average at the epoch barrier:
//
//   merged_row(s) = sum_i w_i * row_i(s) / sum_i w_i
//
// where w_i is the number of seqlock row publishes shard i performed on
// s since the last merge (the per-row version-word delta / 2 — the
// arena meta the guarded trainer already maintains). Weighting by
// publish count makes the average an approximation of the update stream
// interleaving a single instance would have applied: a shard that
// trained a service 100x since the last merge dominates one that
// touched it twice, and an untouched copy (w_i = 0) contributes
// nothing. Rows no shard touched are skipped entirely, so cold services
// keep their deterministic init. The merged rows are seqlock-published
// back to every shard (AmfModel::OverwriteServiceRow), so predictions
// keep running bit-safe through the merge.
//
// Consistency: a user's observation history lives wholly inside one
// shard's WAL + checkpoint lineage, so there is no cross-shard ordering
// to violate — per-user read-your-writes behaves exactly like the
// single-instance facade. Service factors are soft state: they are
// re-derived from user data by training and re-reconciled by the next
// merge, so a crash between merges loses only reconciliation freshness,
// never observations.
//
// Durability: EnableCheckpoints/EnableJournal give each shard its own
// subdirectory (shard-<i>/) under the configured root, and a manifest
// file (manifest.amfshards, CRC-protected, written atomically) binds
// the shard set together: shard count, router hash version, model rank.
// Recover() refuses a manifest mismatch — restoring 4 shard dirs into a
// 2-shard facade would route half of every shard's users to the wrong
// model — then restores every shard to its own point-in-time state and
// resets the merge baselines WITHOUT merging, so recovered predictions
// are bit-identical per shard to each shard's uncrashed control.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "adapt/concurrent_service.h"
#include "adapt/shard_router.h"
#include "core/checkpoint.h"
#include "obs/metrics.h"
#include "stream/wal.h"

namespace amf::adapt {

struct ShardedServiceConfig {
  /// Number of independent model shards (>= 1).
  std::size_t num_shards = 4;
  /// Service-factor reconciliation cadence: MergeServiceFactors() runs
  /// after every `merge_every_ticks` facade-level Tick()s (and after
  /// every TrainToConvergence). 0 disables periodic merges — callers
  /// then drive MergeServiceFactors() themselves.
  std::size_t merge_every_ticks = 1;
  /// Per-shard service configuration. `service.metrics` is overridden:
  /// every shard reports into the facade's registry (or the one set
  /// here, if any) so there is ONE snapshot for the whole instance set.
  PredictionServiceConfig service{core::MakeResponseTimeConfig(),
                                  core::TrainerConfig{}, 1};
  /// Ingest ring capacity PER SHARD.
  std::size_t ring_capacity = 4096;
};

class ShardedPredictionService {
 public:
  explicit ShardedPredictionService(const ShardedServiceConfig& config = {});

  // --- Registration (fans out to every shard) ------------------------------
  // Names are registered on ALL shards in lockstep, so ids are global:
  // the same name maps to the same id everywhere, and raw-id ingest
  // (serving tier, drains) needs no per-shard translation. Each shard
  // allocates factor rows up to the global max id but only its own user
  // partition ever trains — the service matrix (the replicated part) is
  // small, and cold user rows cost one stride of arena each. Calls are
  // serialized so concurrent registrations cannot interleave differently
  // across shards (which would diverge the id assignment).
  data::UserId RegisterUser(const std::string& name);
  data::ServiceId RegisterService(const std::string& name);
  bool RetireUser(const std::string& name);
  bool RetireService(const std::string& name);

  // --- Hot paths (routed; same contracts as the single-instance facade) ---
  /// Routes to the user's home shard's ingest ring.
  bool ReportObservation(const data::QoSSample& sample);
  std::optional<double> PredictQoS(data::UserId u, data::ServiceId s) const;
  bool PredictQoSMany(data::UserId u,
                      std::span<const data::ServiceId> candidates,
                      std::span<double> values) const;
  /// Mixed-user batch: grouped by home shard, fanned out, scattered back
  /// in place. Each element is bit-identical to PredictQoS on its home
  /// shard (the per-shard call is the same PredictQoSPairs kernel).
  void PredictQoSPairs(std::span<const data::UserId> users,
                       std::span<const data::ServiceId> services,
                       std::span<double> values) const;

  // --- Training ------------------------------------------------------------
  /// Ticks every shard (sequentially — drive shard(i).Tick from N
  /// threads for parallel training), then runs the periodic merge when
  /// the cadence says so. Serialized against itself.
  void Tick(double now_seconds);
  void TrainToConvergence(double now_seconds);

  /// Reconciles the replicated service-factor matrices now (see file
  /// comment). Safe to call while per-shard trainer threads run — the
  /// snapshot/publish steps serialize on each shard's own epoch barrier.
  /// Returns the number of service rows published back.
  std::size_t MergeServiceFactors();

  // --- Read precision / durability (fan out) -------------------------------
  void SetReadPrecision(core::ReadPrecision precision);

  /// Per-shard checkpoints under `config.directory`/shard-<i>/ plus the
  /// shard-set manifest at `config.directory`/manifest.amfshards.
  void EnableCheckpoints(const core::CheckpointManagerConfig& config);
  /// Per-shard WAL under `config.directory`/shard-<i>/.
  void EnableJournal(const stream::JournalConfig& config);

  struct RecoveryReport {
    /// Manifest present and matching (shard count, router hash version,
    /// rank). Always true when checkpoints were never enabled (nothing
    /// to validate). When false, NO shard was restored.
    bool manifest_ok = false;
    std::string manifest_error;
    std::size_t shards_restored = 0;  ///< shards whose checkpoint loaded
    std::uint64_t scanned = 0;        ///< summed over shards
    std::uint64_t replayed = 0;
    std::uint64_t rejected_generation = 0;
    std::uint64_t rejected_retired = 0;
    std::uint64_t quarantined_segments = 0;
    /// Per-shard detail, index-aligned with shard ids.
    std::vector<QoSPredictionService::RecoveryReport> shards;
  };

  /// Restores every shard to its own point-in-time state (newest valid
  /// checkpoint + WAL replay past its watermark) after validating the
  /// manifest. Deliberately does NOT merge afterwards: recovery must be
  /// bit-identical per shard to the uncrashed control, and a merge would
  /// fold post-crash weights in. Merge baselines are reset so the next
  /// periodic merge weighs only post-recovery training.
  RecoveryReport Recover();

  bool SyncJournalIfDue();
  bool FlushJournal();

  // --- Introspection -------------------------------------------------------
  const ShardRouter& router() const { return router_; }
  std::size_t num_shards() const { return shards_.size(); }
  ConcurrentPredictionService& shard(std::size_t i) { return *shards_[i]; }
  const ConcurrentPredictionService& shard(std::size_t i) const {
    return *shards_[i];
  }
  obs::MetricsRegistry& metrics() const { return *registry_; }
  std::uint64_t merges() const {
    return merges_done_.load(std::memory_order_relaxed);
  }

  static constexpr const char* kManifestName = "manifest.amfshards";

 private:
  void RegisterMetrics();
  /// Merge body; caller holds facade_train_mu_.
  std::size_t MergeLocked();
  /// Atomically (tmp + fsync + rename + dir fsync) writes the manifest.
  void WriteManifest(const std::string& directory) const;
  /// Validates an existing manifest against this facade's shape. Returns
  /// false with a reason when the shard set must not be restored.
  bool ValidateManifest(const std::string& path, std::string* error) const;

  ShardedServiceConfig config_;
  ShardRouter router_;
  mutable obs::MetricsRegistry own_metrics_;
  obs::MetricsRegistry* registry_;
  std::vector<std::unique_ptr<ConcurrentPredictionService>> shards_;

  /// Serializes registration fan-out (id assignment must not interleave).
  std::mutex reg_mu_;
  /// Serializes Tick/TrainToConvergence/Merge/Recover at the facade
  /// level (each shard additionally has its own train_mu_).
  std::mutex facade_train_mu_;
  std::size_t ticks_since_merge_ = 0;  ///< guarded by facade_train_mu_
  /// Per shard, per service: version word at the last merge (publishes
  /// included). Guarded by facade_train_mu_.
  std::vector<std::vector<std::uint32_t>> merge_baseline_;
  std::string checkpoint_root_;  ///< set by EnableCheckpoints

  std::atomic<std::uint64_t> merges_done_{0};
  obs::Counter* merge_counter_ = nullptr;
  obs::Counter* merge_rows_ = nullptr;
  obs::LatencyHistogram* merge_hist_ = nullptr;
};

}  // namespace amf::adapt

// End-to-end adaptation simulation harness: many user applications running
// workflows against a shared environment and (optionally) a shared QoS
// prediction service, stepped on a common clock. Used by the
// adaptation_quality bench (A4) and the runtime_adaptation example.
#pragma once

#include <memory>
#include <vector>

#include "adapt/middleware.h"
#include "stream/sim_clock.h"

namespace amf::adapt {

struct SimulationConfig {
  std::size_t ticks = 64;
  double tick_seconds = 900.0;
  /// Prediction-service ticks happen after every app step when present.
  bool tick_prediction_service = true;
};

class AdaptationSimulation {
 public:
  /// `env`, `service` must outlive the simulation. `service` may be null.
  AdaptationSimulation(const Environment& env,
                       QoSPredictionService* service,
                       const SimulationConfig& config);

  /// Adds one application (middleware takes ownership of the workflow).
  /// `policy` must outlive the simulation.
  void AddApplication(data::UserId user, Workflow workflow,
                      AdaptationPolicy& policy, double sla_threshold);

  /// Runs all remaining ticks.
  void Run();

  /// Runs a single tick (all apps step once, then the service ticks).
  void StepOnce();

  double Now() const { return clock_.Now(); }
  std::size_t ticks_run() const { return ticks_run_; }

  const std::vector<ExecutionMiddleware>& applications() const {
    return apps_;
  }

  /// Sum of all applications' stats.
  AppStats TotalStats() const;

 private:
  const Environment* env_;
  QoSPredictionService* service_;
  SimulationConfig config_;
  stream::SimClock clock_;
  std::vector<ExecutionMiddleware> apps_;
  std::size_t ticks_run_ = 0;
};

}  // namespace amf::adapt

// Adaptation policies (Fig. 3 "adaptation policies" plug-ins).
//
// A policy decides, after each invocation of a task's bound service,
// whether to rebind the task and to which candidate. The paper's central
// argument is that this decision needs QoS predictions for *candidate*
// services (never invoked by this user); PredictedBestPolicy consumes the
// QoSPredictionService exactly that way. Oracle/Random/None bracket it
// from above and below in the adaptation-quality bench (A4).
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "adapt/environment.h"
#include "adapt/prediction_service.h"
#include "adapt/workflow.h"
#include "common/rng.h"

namespace amf::adapt {

/// Everything a policy may look at when making a rebinding decision.
struct TaskContext {
  const AbstractTask* task = nullptr;
  data::UserId user = 0;
  data::ServiceId current_binding = 0;
  /// Result of the invocation that just happened.
  double observed_rt = 0.0;
  bool failed = false;
  /// SLA response-time threshold for this task.
  double sla_threshold = 0.0;
  /// Simulated time of the invocation.
  double now_seconds = 0.0;
};

class AdaptationPolicy {
 public:
  virtual ~AdaptationPolicy() = default;
  virtual std::string name() const = 0;
  /// Returns the service to rebind to, or nullopt to keep the binding.
  virtual std::optional<data::ServiceId> SelectBinding(
      const TaskContext& ctx) = 0;
};

/// Never adapts (the no-op lower bound).
class NoAdaptationPolicy : public AdaptationPolicy {
 public:
  std::string name() const override { return "none"; }
  std::optional<data::ServiceId> SelectBinding(const TaskContext&) override {
    return std::nullopt;
  }
};

/// On SLA violation/failure, switches to a uniformly random other
/// candidate (adaptation without QoS knowledge).
class RandomPolicy : public AdaptationPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed = 17) : rng_(seed) {}
  std::string name() const override { return "random"; }
  std::optional<data::ServiceId> SelectBinding(
      const TaskContext& ctx) override;

 private:
  common::Rng rng_;
};

/// On SLA violation/failure, switches to the candidate with the smallest
/// *predicted* response time (the paper's intended use of AMF).
///
/// Candidates the model has never been updated on (their running error is
/// still at its initial value) carry purely random predictions; by default
/// they are skipped unless no trained candidate exists.
class PredictedBestPolicy : public AdaptationPolicy {
 public:
  /// `service` must outlive the policy. `risk_aversion` (kappa >= 0)
  /// penalizes uncertain candidates: for smaller-is-better response time a
  /// candidate is scored as value * (1 + kappa * uncertainty), so between
  /// two similar predictions the better-understood service wins.
  explicit PredictedBestPolicy(const QoSPredictionService& service,
                               bool skip_untrained = true,
                               double risk_aversion = 0.0)
      : service_(&service),
        skip_untrained_(skip_untrained),
        risk_aversion_(risk_aversion) {}
  std::string name() const override { return "amf-predicted"; }
  std::optional<data::ServiceId> SelectBinding(
      const TaskContext& ctx) override;

 private:
  bool IsTrained(data::ServiceId s) const;

  const QoSPredictionService* service_;
  bool skip_untrained_;
  double risk_aversion_;
};

/// On SLA violation/failure, switches to the candidate with the smallest
/// *true* response time (upper bound; uses ground truth no real system has).
class OraclePolicy : public AdaptationPolicy {
 public:
  /// `env` must outlive the policy.
  explicit OraclePolicy(const Environment& env) : env_(&env) {}
  std::string name() const override { return "oracle"; }
  std::optional<data::ServiceId> SelectBinding(
      const TaskContext& ctx) override;

 private:
  const Environment* env_;
};

}  // namespace amf::adapt

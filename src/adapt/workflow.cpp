#include "adapt/workflow.h"

#include <algorithm>

#include "common/check.h"

namespace amf::adapt {

Workflow::Workflow(std::vector<AbstractTask> tasks)
    : tasks_(std::move(tasks)) {
  AMF_CHECK_MSG(!tasks_.empty(), "workflow needs at least one task");
  bindings_.reserve(tasks_.size());
  for (const AbstractTask& t : tasks_) {
    AMF_CHECK_MSG(!t.candidates.empty(),
                  "task '" << t.name << "' has no candidate services");
    bindings_.push_back(t.candidates.front());
  }
}

const AbstractTask& Workflow::task(std::size_t i) const {
  AMF_CHECK(i < tasks_.size());
  return tasks_[i];
}

data::ServiceId Workflow::binding(std::size_t i) const {
  AMF_CHECK(i < bindings_.size());
  return bindings_[i];
}

void Workflow::Rebind(std::size_t i, data::ServiceId s) {
  AMF_CHECK(i < bindings_.size());
  const auto& cands = tasks_[i].candidates;
  AMF_CHECK_MSG(std::find(cands.begin(), cands.end(), s) != cands.end(),
                "service " << s << " is not a candidate of task '"
                           << tasks_[i].name << "'");
  if (bindings_[i] != s) {
    bindings_[i] = s;
    ++adaptations_;
  }
}

}  // namespace amf::adapt

// Thread-safe facade over QoSPredictionService.
//
// The Fig.-3 deployment serves many BPEL engines at once: observation
// uploads and prediction queries arrive concurrently while a background
// loop keeps training. This wrapper provides that concurrency contract
// with a readers-writer lock: predictions (read-only on the model) run
// concurrently; observation reports, ticks, and registration serialize as
// writers. Per-sample updates are microseconds, so a single writer lock
// is the right simplicity/throughput tradeoff at the paper's scale.
#pragma once

#include <optional>
#include <shared_mutex>
#include <string>

#include "adapt/prediction_service.h"

namespace amf::adapt {

class ConcurrentPredictionService {
 public:
  explicit ConcurrentPredictionService(
      const PredictionServiceConfig& config = {
          core::MakeResponseTimeConfig(), core::TrainerConfig{}, 1});

  data::UserId RegisterUser(const std::string& name);
  data::ServiceId RegisterService(const std::string& name);

  /// Thread-safe observation upload.
  void ReportObservation(const data::QoSSample& sample);

  /// Thread-safe train step (call from a background loop).
  void Tick(double now_seconds);

  /// Thread-safe blocking train-to-convergence.
  void TrainToConvergence(double now_seconds);

  /// Concurrent with other predictions; serialized against writers.
  std::optional<double> PredictQoS(data::UserId u, data::ServiceId s) const;

  std::size_t observations() const;

 private:
  mutable std::shared_mutex mu_;
  QoSPredictionService service_;
};

}  // namespace amf::adapt

// Thread-safe facade over QoSPredictionService.
//
// The Fig.-3 deployment serves many BPEL engines at once: observation
// uploads and prediction queries arrive concurrently while a background
// loop keeps training. Earlier revisions serialized everything behind one
// readers-writer lock, which made a long TrainToConvergence block every
// prediction and capped training throughput at one core. The current
// contract keeps the three hot paths off that lock entirely:
//
//   - ReportObservation pushes into a bounded lock-free MPSC ring buffer
//     (common/mpsc_ring.h): producers never block on the trainer, never
//     allocate, and shed load explicitly (dropped_observations()) when
//     the trainer falls behind.
//   - PredictQoS / PredictQoSMany read latent rows through the model's
//     per-row seqlocks (AmfModel::*Shared): they run concurrently with
//     training — no mutual exclusion with Tick/TrainToConvergence at all,
//     and writers are never delayed by readers.
//   - Tick / TrainToConvergence drain the ring and train through the
//     seqlock-publishing guarded update path, optionally sharded across
//     a thread pool (TrainerConfig::replay_threads).
//
// The shared_mutex survives only for the registration/checkpoint paths:
// registering an entity reallocates factor storage, which no seqlock can
// protect, so Register*/EnsureRegistered/checkpoint-restore take it
// exclusive while predictions and training hold it shared. Those paths
// are rare (entity churn, restarts) — steady-state predictions only ever
// take an uncontended shared lock, and observation ingest takes no lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "adapt/prediction_service.h"
#include "common/mpsc_ring.h"
#include "obs/metrics.h"

namespace amf::linalg {
class Matrix;
}

namespace amf::adapt {

class ConcurrentPredictionService {
 public:
  /// `ring_capacity` bounds the observation ingest buffer (rounded up to a
  /// power of two); pushes beyond it are dropped and counted. The trainer
  /// is always switched to guarded (seqlock-publishing) updates,
  /// whatever the passed config says, because concurrent readers exist by
  /// construction here.
  explicit ConcurrentPredictionService(
      const PredictionServiceConfig& config = {core::MakeResponseTimeConfig(),
                                               core::TrainerConfig{}, 1},
      std::size_t ring_capacity = 4096);

  // --- Registration / lifecycle (exclusive lock; rare) ---------------------
  data::UserId RegisterUser(const std::string& name);
  data::ServiceId RegisterService(const std::string& name);

  /// Deactivates a name (binding and factors kept for a rejoin). Takes
  /// effect immediately; observations for the id are still accepted via
  /// the trusted drain path until the entity is retired.
  bool UnregisterUser(const std::string& name);
  bool UnregisterService(const std::string& name);

  /// Queues a name's slot for reclamation. Returns false if the name is
  /// not currently bound. The retirement itself — factor-row re-init,
  /// sample purge, free-list push — is DEFERRED to the next Tick /
  /// TrainToConvergence barrier (like PR 3's store removals): a hogwild
  /// replay epoch iterates a snapshot of the store and owns rows by
  /// shard, so reclaiming mid-epoch would rewrite rows under a live
  /// writer. At the barrier no epoch is in flight and the rewrite
  /// publishes through the per-row seqlocks, so concurrent predictions
  /// stay safe throughout. Re-registering the same name before the next
  /// barrier re-binds the name first; the queued retirement then reclaims
  /// whatever the name is bound to at barrier time.
  bool RetireUser(const std::string& name);
  bool RetireService(const std::string& name);

  /// Registry occupancy (shared lock): total slots / currently active /
  /// free-listed, for bounded-churn assertions and monitoring. The
  /// lifecycle.* gauges expose the same numbers wait-free.
  struct RegistryOccupancy {
    std::size_t user_slots = 0, users_active = 0, users_free = 0;
    std::size_t service_slots = 0, services_active = 0, services_free = 0;
  };
  RegistryOccupancy registry_occupancy() const;

  // --- Hot paths (no writer lock) ------------------------------------------
  /// Lock-free observation upload from any thread. Returns false (and
  /// counts the drop) when the ring is full.
  bool ReportObservation(const data::QoSSample& sample);

  /// Prediction concurrent with training and other predictions. Seqlock
  /// row snapshots; only a shared (reader-side) lock against the rare
  /// registration path.
  std::optional<double> PredictQoS(data::UserId u, data::ServiceId s) const;

  /// Batched variant: values[i] scores (u, candidates[i]); unknown ids get
  /// NaN. Returns false (all NaN) if the user is unknown.
  bool PredictQoSMany(data::UserId u,
                      std::span<const data::ServiceId> candidates,
                      std::span<double> values) const;

  /// Scores every registered (user, service) pair into `out` (resized to
  /// num_users x num_services), reading each row through the model's
  /// seqlocks so it runs concurrently with training. Row-by-row snapshot
  /// consistency (like the other Predict* paths), not a global one.
  void PredictMatrix(linalg::Matrix* out) const;

  /// Mixed-user pair scoring: values[i] scores (users[i], services[i]);
  /// unknown ids get NaN. This is the serving coalescer's entry point —
  /// concurrent PREDICT requests from many connections gather here, take
  /// the shared lock ONCE, and fan out per distinct user through the same
  /// block-validated gather kernel PredictQoSMany uses, so each result is
  /// bit-identical (at fp64) to the per-request PredictQoS it replaces.
  /// Spans must be the same length.
  void PredictQoSPairs(std::span<const data::UserId> users,
                       std::span<const data::ServiceId> services,
                       std::span<double> values) const;

  // --- Training (single background thread; serialized among themselves) ---
  /// Drains the ring, pre-registers unseen entities (briefly exclusive if
  /// growth is needed), then trains one bounded step. Safe to call while
  /// predictions and uploads are in flight.
  void Tick(double now_seconds);

  /// Like Tick but replays to convergence. Predictions proceed throughout.
  void TrainToConvergence(double now_seconds);

  // --- Read precision (exclusive lock; rare) -------------------------------
  /// Switches the element type the prediction readouts stream: fp64 reads
  /// the master factors directly (default, bit-identical results), fp32 /
  /// bf16 route every PredictQoS / PredictQoSMany / PredictMatrix through
  /// compressed replica slabs refreshed at each Tick's epoch barrier
  /// (DESIGN.md §13). Takes both locks exclusive — the switch rebuilds the
  /// replica slabs, which no seqlock protects — so treat it like a
  /// registration-path operation: rare, not per-request.
  void SetReadPrecision(core::ReadPrecision precision);
  core::ReadPrecision read_precision() const;

  // --- Checkpoints (exclusive lock; rare) ----------------------------------
  void EnableCheckpoints(const core::CheckpointManagerConfig& config);
  bool RestoreFromLatestCheckpoint();

  // --- Durable observation journal (exclusive lock; rare) ------------------
  /// Arms the write-ahead observation journal. The hot ReportObservation
  /// path is untouched (still a wait-free ring push); journaling happens
  /// at the Tick/TrainToConvergence drain as ONE group-commit batch append
  /// per drain, so even fsync=always costs one fsync per drain, not per
  /// observation. Note the durability point under this facade is the
  /// *drain*, not the ring push: an observation is durable once the Tick
  /// that drained it returns (the serial QoSPredictionService journals
  /// synchronously in ReportObservation instead).
  void EnableJournal(const stream::JournalConfig& config);

  /// Point-in-time recovery: newest valid checkpoint + replay of journal
  /// records past its watermark (see QoSPredictionService::Recover).
  QoSPredictionService::RecoveryReport Recover();

  /// kInterval journal housekeeping (no lock beyond the journal's own
  /// mutex): syncs iff the oldest unsynced append is older than the
  /// configured interval. Tick() runs this too; the serving event loop
  /// calls it on its timer so acked observations stay inside the
  /// durability window even when the trainer is idle.
  bool SyncJournalIfDue();

  /// Shutdown durability point: fsyncs the journal (no-op without one).
  /// The serving front-end calls this after its final drain Tick.
  bool FlushJournal();

  // --- Service-factor merge hooks (sharding facade; DESIGN.md §15) --------
  /// Barrier-time copy of the service-factor matrix: rows, error EMAs,
  /// and the per-row seqlock version words. Takes train_mu_ (so no
  /// trainer is in flight and every version word is even) plus the
  /// shared lock (so registration cannot reallocate the arena mid-copy).
  /// Version deltas between successive snapshots / 2 count the row
  /// publishes in between — the sharding facade's merge weights.
  struct ServiceFactorSnapshot {
    std::size_t rank = 0;
    std::size_t num_services = 0;
    std::vector<double> factors;           ///< num_services x rank, row-major
    std::vector<double> errors;            ///< num_services
    std::vector<std::uint32_t> versions;   ///< num_services seqlock words
  };
  ServiceFactorSnapshot SnapshotServiceFactors() const;

  /// Seqlock-publishes merged service rows and errors: row i of `factors`
  /// (rank-length) and errors[i] overwrite service ids[i], growing the
  /// model first if an id is unseen on this shard. Takes train_mu_ — the
  /// overwrite happens at the epoch barrier, never under a live trainer —
  /// and the shared lock for the writes themselves (exclusive only if
  /// growth is needed). Concurrent predictions stay safe throughout: each
  /// row flips atomically old -> merged through its seqlock.
  void PublishServiceFactors(std::span<const data::ServiceId> ids,
                             std::span<const double> factors,
                             std::span<const double> errors);

  // --- Monitoring ----------------------------------------------------------
  /// Observations accepted into the ring so far.
  std::size_t observations() const {
    return observations_.load(std::memory_order_relaxed);
  }
  /// Observations shed because the ring was full.
  std::uint64_t dropped_observations() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Approximate ingest-ring occupancy (relaxed reads; monitoring only).
  std::size_t ring_occupancy() const { return ring_.SizeApprox(); }

  /// Wait-free pipeline counters: trainer/validator stats plus this
  /// facade's ring counters (ring_dropped). Every source is a relaxed
  /// atomic — no lock is taken, so monitors may call this at any time,
  /// including while Tick/TrainToConvergence holds train_mu_.
  core::PipelineStats pipeline_stats() const;

  /// The metrics registry this service reports into: the config-supplied
  /// one, else an internally owned registry. Snapshot it for ingest.*,
  /// predict.*, trainer.*, pipeline.*, and checkpoint.* series.
  obs::MetricsRegistry& metrics() const { return *registry_; }

 private:
  /// Pops everything out of the ring into staged_, registering unseen
  /// entities under the exclusive lock first. Caller holds train_mu_.
  void DrainRing();

  /// Applies queued retirements. Caller holds train_mu_ (the epoch
  /// barrier: no replay in flight); takes mu_ exclusive for the registry
  /// and store mutations. Runs before staged samples are reported so ring
  /// residue addressed to a just-retired slot is refused, not replayed.
  void ApplyPendingRetirements();

  /// Registers ingest.* / predict.* series and resolves the owned
  /// counter/histogram handles. Runs once, from the constructor.
  void RegisterMetrics();

  // Declared before service_: the trainer registers metric callbacks into
  // the registry at construction, and service_ is destroyed first so no
  // callback can outlive its target within this object.
  mutable obs::MetricsRegistry own_metrics_;
  obs::MetricsRegistry* registry_;  // config.metrics or &own_metrics_

  // Lock order: train_mu_ before mu_. Readers take only mu_ (shared).
  mutable std::shared_mutex mu_;   // registration/checkpoint vs everything
  mutable std::mutex train_mu_;    // serializes Tick/TrainToConvergence
  common::MpscRingBuffer<data::QoSSample> ring_;
  std::vector<data::QoSSample> staged_;  // drain scratch (trainer thread)
  // Names queued by Retire*; drained at the next training barrier.
  // Guarded by mu_ (exclusive).
  std::vector<std::string> pending_retire_users_;
  std::vector<std::string> pending_retire_services_;
  std::atomic<std::size_t> observations_{0};
  std::atomic<std::uint64_t> dropped_{0};
  QoSPredictionService service_;

  // Prediction-path instrumentation handles (registry-owned, wait-free).
  obs::Counter* predict_calls_ = nullptr;
  obs::LatencyHistogram* predict_hist_ = nullptr;
  obs::Counter* batch_calls_ = nullptr;
  obs::Counter* batch_candidates_ = nullptr;
  obs::LatencyHistogram* batch_hist_ = nullptr;
  obs::Counter* matrix_calls_ = nullptr;
  obs::LatencyHistogram* matrix_hist_ = nullptr;
  obs::Counter* pair_calls_ = nullptr;
  obs::Counter* pair_candidates_ = nullptr;
  obs::LatencyHistogram* pair_hist_ = nullptr;
};

}  // namespace amf::adapt

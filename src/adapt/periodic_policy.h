// Periodic reselection: re-evaluate a task's binding every N invocations
// regardless of SLA state. The simplest "plug-in adaptation policy" of
// Fig. 3 besides threshold triggering — it exploits QoS improvements
// elsewhere (a better candidate appearing) that violation-triggered
// policies never notice, at the cost of more rebinding churn.
#pragma once

#include <unordered_map>

#include "adapt/policy.h"

namespace amf::adapt {

class PeriodicReselectionPolicy : public AdaptationPolicy {
 public:
  /// Every `period` invocations of a (user, task-binding) the `inner`
  /// policy is consulted as if the SLA had been violated; in between,
  /// normal (violation-triggered) behaviour applies. `inner` must outlive
  /// the policy.
  PeriodicReselectionPolicy(AdaptationPolicy& inner, std::size_t period);

  std::string name() const override;
  std::optional<data::ServiceId> SelectBinding(
      const TaskContext& ctx) override;

 private:
  static std::uint64_t Key(data::UserId u, const AbstractTask* task) {
    return (static_cast<std::uint64_t>(u) << 32) ^
           reinterpret_cast<std::uintptr_t>(task);
  }

  AdaptationPolicy* inner_;
  std::size_t period_;
  std::unordered_map<std::uint64_t, std::size_t> invocations_;
};

}  // namespace amf::adapt

#include "adapt/periodic_policy.h"

#include "common/check.h"

namespace amf::adapt {

PeriodicReselectionPolicy::PeriodicReselectionPolicy(AdaptationPolicy& inner,
                                                     std::size_t period)
    : inner_(&inner), period_(period) {
  AMF_CHECK_MSG(period_ > 0, "period must be positive");
}

std::string PeriodicReselectionPolicy::name() const {
  return "periodic(" + std::to_string(period_) + ")+" + inner_->name();
}

std::optional<data::ServiceId> PeriodicReselectionPolicy::SelectBinding(
    const TaskContext& ctx) {
  AMF_CHECK(ctx.task != nullptr);
  std::size_t& count = invocations_[Key(ctx.user, ctx.task)];
  ++count;
  if (count % period_ == 0) {
    // Force a reselection pass: present the inner policy with a context
    // that reads as violated (observed over threshold).
    TaskContext forced = ctx;
    forced.observed_rt =
        std::max(ctx.observed_rt, ctx.sla_threshold * (1.0 + 1e-9));
    return inner_->SelectBinding(forced);
  }
  return inner_->SelectBinding(ctx);
}

}  // namespace amf::adapt

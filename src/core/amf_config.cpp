#include "core/amf_config.h"

namespace amf::core {

AmfConfig MakeResponseTimeConfig(std::uint64_t seed) {
  AmfConfig c;
  c.seed = seed;
  return c;
}

AmfConfig MakeThroughputConfig(std::uint64_t seed) {
  AmfConfig c;
  c.seed = seed;
  c.transform.alpha = -0.05;
  c.transform.r_max = 7000.0;
  return c;
}

}  // namespace amf::core

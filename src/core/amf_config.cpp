#include "core/amf_config.h"

namespace amf::core {

const char* ToString(ReadPrecision p) {
  switch (p) {
    case ReadPrecision::kFp64:
      return "fp64";
    case ReadPrecision::kFp32:
      return "fp32";
    case ReadPrecision::kBf16:
      return "bf16";
  }
  return "fp64";
}

std::optional<ReadPrecision> ParseReadPrecision(std::string_view s) {
  if (s == "fp64") return ReadPrecision::kFp64;
  if (s == "fp32") return ReadPrecision::kFp32;
  if (s == "bf16") return ReadPrecision::kBf16;
  return std::nullopt;
}

AmfConfig MakeResponseTimeConfig(std::uint64_t seed) {
  AmfConfig c;
  c.seed = seed;
  return c;
}

AmfConfig MakeThroughputConfig(std::uint64_t seed) {
  AmfConfig c;
  c.seed = seed;
  c.transform.alpha = -0.05;
  c.transform.r_max = 7000.0;
  return c;
}

}  // namespace amf::core

#include "core/online_trainer.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"

namespace amf::core {

OnlineTrainer::OnlineTrainer(AmfModel& model, const TrainerConfig& config)
    : model_(model),
      config_(config),
      rng_(config.seed),
      validator_(config.validator) {
  AMF_CHECK_MSG(config_.convergence_tol > 0.0,
                "convergence_tol must be positive");
  AMF_CHECK_MSG(config_.max_epochs > 0, "max_epochs must be positive");
}

OnlineTrainer::~OnlineTrainer() = default;

void OnlineTrainer::Observe(const data::QoSSample& sample) {
  if (config_.max_incoming > 0 &&
      incoming_.size() >= config_.max_incoming) {
    // Backpressure: a trainer that cannot keep up sheds the newest sample
    // (the store already holds the freshest value per pair, so dropping
    // bursts degrades recency, not correctness) instead of letting the
    // queue grow without bound.
    ++dropped_on_overflow_;
    return;
  }
  incoming_.push_back(sample);
}

void OnlineTrainer::AdvanceTime(double now) {
  AMF_CHECK_MSG(now >= now_, "time must be monotonic");
  now_ = now;
}

std::size_t OnlineTrainer::ProcessIncoming() {
  std::size_t processed = 0;
  while (!incoming_.empty()) {
    const data::QoSSample sample = incoming_.front();
    incoming_.pop_front();
    // Ingestion guard: rejected/quarantined samples never reach the store
    // or the model (counted in Stats()).
    if (config_.validate_ingest && !validator_.Admit(sample, now_)) {
      continue;
    }
    // Algorithm 1 lines 4-9: I_ij <- 1, register new entities (done inside
    // OnlineUpdate), refresh (t_ij, R_ij), update online.
    store_.Upsert(sample);
    const double e = ApplyUpdate(sample);
    if (std::isnan(e)) {
      // The model refused the sample (degenerate transform); don't keep it
      // around for replay to refuse again.
      store_.Remove(sample.user, sample.service);
      ++skipped_updates_;
      continue;
    }
    now_ = std::max(now_, sample.timestamp);
    ++processed;
  }
  if (processed > 0) converged_ = false;
  return processed;
}

std::optional<double> OnlineTrainer::ReplayOne() {
  if (store_.empty()) return std::nullopt;
  const data::QoSSample sample = store_.PickRandom(rng_);
  if (config_.expiry_seconds > 0.0 &&
      now_ - sample.timestamp >= config_.expiry_seconds) {
    // Algorithm 1 line 15: the sample is obsolete, set I_ij <- 0.
    store_.Remove(sample.user, sample.service);
    return std::nullopt;
  }
  const double e = ApplyUpdate(sample);
  if (std::isnan(e)) {
    // Hard model-side guard tripped; drop the sample so the epoch loop
    // cannot spin on it.
    store_.Remove(sample.user, sample.service);
    ++skipped_updates_;
    return std::nullopt;
  }
  return e;
}

std::optional<double> OnlineTrainer::ReplayEpoch() {
  if (config_.replay_threads > 1) return ReplayEpochParallel();
  const std::size_t iters = store_.size();
  if (iters == 0) return std::nullopt;
  double err_sum = 0.0;
  std::size_t applied = 0;
  for (std::size_t i = 0; i < iters; ++i) {
    if (const auto e = ReplayOne()) {
      err_sum += *e;
      ++applied;
    }
    if (store_.empty()) break;
  }
  if (applied == 0) return std::nullopt;
  return err_sum / static_cast<double>(applied);
}

std::optional<double> OnlineTrainer::ReplayEpochParallel() {
  const std::vector<data::QoSSample>& samples = store_.samples();
  if (samples.empty()) return std::nullopt;

  const std::size_t shards = config_.replay_shards > 0
                                 ? config_.replay_shards
                                 : config_.replay_threads * 4;
  if (!pool_) {
    pool_ = std::make_unique<common::ThreadPool>(config_.replay_threads);
  }
  if (!service_locks_) {
    service_locks_ =
        std::make_unique<common::StripedSpinlocks>(config_.service_stripes);
  }
  // Persistent per-shard RNGs: shard k's replay order is a fixed function
  // of (seed, k, epoch index), so a given shard count replays identically
  // no matter how the OS schedules the worker threads.
  while (shard_rngs_.size() < shards) {
    shard_rngs_.push_back(rng_.Fork(0x5eed0000ULL + shard_rngs_.size()));
  }

  // Partition stored samples by owning user shard. Two samples of the
  // same user always land in the same shard, so every user row (and its
  // error EMA) has exactly one writer this epoch — hogwild needs locks
  // only on the service side, where shards collide.
  shard_partitions_.resize(shards);
  for (auto& p : shard_partitions_) p.clear();
  for (std::uint32_t i = 0; i < samples.size(); ++i) {
    shard_partitions_[samples[i].user % shards].push_back(i);
  }

  struct ShardOutcome {
    double err_sum = 0.0;
    std::size_t applied = 0;
    std::uint64_t refused = 0;
    // Store mutations are deferred to the epoch barrier: the store is not
    // thread-safe, and removals mid-epoch would invalidate `samples`.
    std::vector<std::pair<data::UserId, data::ServiceId>> remove;
  };
  std::vector<ShardOutcome> outcomes(shards);
  const double now = now_;
  const double expiry = config_.expiry_seconds;

  pool_->ParallelFor(0, shards, [&](std::size_t shard) {
    std::vector<std::uint32_t>& part = shard_partitions_[shard];
    if (part.empty()) return;
    shard_rngs_[shard].Shuffle(part);
    ShardOutcome& out = outcomes[shard];
    for (const std::uint32_t idx : part) {
      const data::QoSSample& s = samples[idx];
      if (expiry > 0.0 && now - s.timestamp >= expiry) {
        out.remove.emplace_back(s.user, s.service);  // Alg. 1: I_ij <- 0
        continue;
      }
      double e;
      {
        std::lock_guard<common::Spinlock> guard(
            service_locks_->ForIndex(s.service));
        e = model_.OnlineUpdateGuarded(s.user, s.service, s.value);
      }
      if (std::isnan(e)) {
        out.remove.emplace_back(s.user, s.service);
        ++out.refused;
      } else {
        out.err_sum += e;
        ++out.applied;
      }
    }
  });

  // Epoch barrier: merge per-shard partials and apply deferred removals.
  double err_sum = 0.0;
  std::size_t applied = 0;
  for (const ShardOutcome& out : outcomes) {
    for (const auto& [u, s] : out.remove) store_.Remove(u, s);
    skipped_updates_ += out.refused;
    err_sum += out.err_sum;
    applied += out.applied;
  }
  if (applied == 0) return std::nullopt;
  return err_sum / static_cast<double>(applied);
}

double OnlineTrainer::ApplyUpdate(const data::QoSSample& sample) {
  if (config_.guarded_updates) {
    // No-op for already-registered entities. Callers with concurrent
    // readers must pre-register (growth reallocates under the readers);
    // see ConcurrentPredictionService's drain path.
    model_.EnsureUser(sample.user);
    model_.EnsureService(sample.service);
    return model_.OnlineUpdateGuarded(sample.user, sample.service,
                                      sample.value);
  }
  return model_.OnlineUpdate(sample.user, sample.service, sample.value);
}

std::size_t OnlineTrainer::RunUntilConverged() {
  ProcessIncoming();
  converged_ = false;
  double prev = std::numeric_limits<double>::infinity();
  std::size_t stall = 0;
  std::size_t epochs = 0;
  while (epochs < config_.max_epochs) {
    const std::optional<double> mean_err = ReplayEpoch();
    if (!mean_err) break;  // store empty (all expired)
    ++epochs;
    last_epoch_error_ = *mean_err;
    if (std::isfinite(prev) && prev > 0.0) {
      const double improvement = (prev - *mean_err) / prev;
      if (improvement < config_.convergence_tol) {
        if (++stall >= config_.convergence_patience) {
          converged_ = true;
          break;
        }
      } else {
        stall = 0;
      }
    }
    prev = *mean_err;
  }
  return epochs;
}

PipelineStats OnlineTrainer::Stats() const {
  PipelineStats s = validator_.stats();
  s.skipped_updates = skipped_updates_;
  s.dropped_on_overflow = dropped_on_overflow_;
  s.nan_reinit_users = model_.nan_reinit_users();
  s.nan_reinit_services = model_.nan_reinit_services();
  return s;
}

}  // namespace amf::core

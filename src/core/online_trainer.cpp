#include "core/online_trainer.h"

#include <cmath>

#include "common/check.h"

namespace amf::core {

OnlineTrainer::OnlineTrainer(AmfModel& model, const TrainerConfig& config)
    : model_(model),
      config_(config),
      rng_(config.seed),
      validator_(config.validator) {
  AMF_CHECK_MSG(config_.convergence_tol > 0.0,
                "convergence_tol must be positive");
  AMF_CHECK_MSG(config_.max_epochs > 0, "max_epochs must be positive");
}

void OnlineTrainer::Observe(const data::QoSSample& sample) {
  incoming_.push_back(sample);
}

void OnlineTrainer::AdvanceTime(double now) {
  AMF_CHECK_MSG(now >= now_, "time must be monotonic");
  now_ = now;
}

std::size_t OnlineTrainer::ProcessIncoming() {
  std::size_t processed = 0;
  while (!incoming_.empty()) {
    const data::QoSSample sample = incoming_.front();
    incoming_.pop_front();
    // Ingestion guard: rejected/quarantined samples never reach the store
    // or the model (counted in Stats()).
    if (config_.validate_ingest && !validator_.Admit(sample, now_)) {
      continue;
    }
    // Algorithm 1 lines 4-9: I_ij <- 1, register new entities (done inside
    // OnlineUpdate), refresh (t_ij, R_ij), update online.
    store_.Upsert(sample);
    const double e =
        model_.OnlineUpdate(sample.user, sample.service, sample.value);
    if (std::isnan(e)) {
      // The model refused the sample (degenerate transform); don't keep it
      // around for replay to refuse again.
      store_.Remove(sample.user, sample.service);
      ++skipped_updates_;
      continue;
    }
    now_ = std::max(now_, sample.timestamp);
    ++processed;
  }
  if (processed > 0) converged_ = false;
  return processed;
}

std::optional<double> OnlineTrainer::ReplayOne() {
  if (store_.empty()) return std::nullopt;
  const data::QoSSample sample = store_.PickRandom(rng_);
  if (config_.expiry_seconds > 0.0 &&
      now_ - sample.timestamp >= config_.expiry_seconds) {
    // Algorithm 1 line 15: the sample is obsolete, set I_ij <- 0.
    store_.Remove(sample.user, sample.service);
    return std::nullopt;
  }
  const double e =
      model_.OnlineUpdate(sample.user, sample.service, sample.value);
  if (std::isnan(e)) {
    // Hard model-side guard tripped; drop the sample so the epoch loop
    // cannot spin on it.
    store_.Remove(sample.user, sample.service);
    ++skipped_updates_;
    return std::nullopt;
  }
  return e;
}

std::optional<double> OnlineTrainer::ReplayEpoch() {
  const std::size_t iters = store_.size();
  if (iters == 0) return std::nullopt;
  double err_sum = 0.0;
  std::size_t applied = 0;
  for (std::size_t i = 0; i < iters; ++i) {
    if (const auto e = ReplayOne()) {
      err_sum += *e;
      ++applied;
    }
    if (store_.empty()) break;
  }
  if (applied == 0) return std::nullopt;
  return err_sum / static_cast<double>(applied);
}

std::size_t OnlineTrainer::RunUntilConverged() {
  ProcessIncoming();
  converged_ = false;
  double prev = std::numeric_limits<double>::infinity();
  std::size_t stall = 0;
  std::size_t epochs = 0;
  while (epochs < config_.max_epochs) {
    const std::optional<double> mean_err = ReplayEpoch();
    if (!mean_err) break;  // store empty (all expired)
    ++epochs;
    last_epoch_error_ = *mean_err;
    if (std::isfinite(prev) && prev > 0.0) {
      const double improvement = (prev - *mean_err) / prev;
      if (improvement < config_.convergence_tol) {
        if (++stall >= config_.convergence_patience) {
          converged_ = true;
          break;
        }
      } else {
        stall = 0;
      }
    }
    prev = *mean_err;
  }
  return epochs;
}

PipelineStats OnlineTrainer::Stats() const {
  PipelineStats s = validator_.stats();
  s.skipped_updates = skipped_updates_;
  s.nan_reinit_users = model_.nan_reinit_users();
  s.nan_reinit_services = model_.nan_reinit_services();
  return s;
}

}  // namespace amf::core

#include "core/online_trainer.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace amf::core {

OnlineTrainer::OnlineTrainer(AmfModel& model, const TrainerConfig& config)
    : model_(model),
      config_(config),
      rng_(config.seed),
      validator_(config.validator) {
  AMF_CHECK_MSG(config_.convergence_tol > 0.0,
                "convergence_tol must be positive");
  AMF_CHECK_MSG(config_.max_epochs > 0, "max_epochs must be positive");
  if (config_.metrics != nullptr) RegisterMetrics();
}

OnlineTrainer::~OnlineTrainer() = default;

void OnlineTrainer::RegisterMetrics() {
  obs::MetricsRegistry& reg = *config_.metrics;
  // Callbacks sample the always-on relaxed atomics, so enabling metrics
  // adds no hot-path work here — only snapshot-time loads.
  const auto counter = [](const std::atomic<std::uint64_t>& src) {
    return [&src] { return src.load(std::memory_order_relaxed); };
  };
  reg.RegisterCallbackCounter("trainer.updates", counter(updates_applied_));
  reg.RegisterCallbackCounter("trainer.epochs", counter(epochs_run_));
  reg.RegisterCallbackCounter("trainer.expired", counter(expired_));
  reg.RegisterCallbackCounter("trainer.queue_dropped",
                              counter(dropped_on_overflow_));
  reg.RegisterCallbackCounter("trainer.clock_regressions",
                              counter(clock_regressions_));
  reg.RegisterCallbackCounter("trainer.skipped_updates",
                              counter(skipped_updates_));
  reg.RegisterCallbackCounter("trainer.purged_samples",
                              counter(purged_samples_));

  const AtomicIngestCounters& in = validator_.counters();
  reg.RegisterCallbackCounter("pipeline.accepted", counter(in.accepted));
  reg.RegisterCallbackCounter("pipeline.rejected_nonfinite",
                              counter(in.rejected_nonfinite));
  reg.RegisterCallbackCounter("pipeline.rejected_nonpositive",
                              counter(in.rejected_nonpositive));
  reg.RegisterCallbackCounter("pipeline.rejected_out_of_range",
                              counter(in.rejected_out_of_range));
  reg.RegisterCallbackCounter("pipeline.rejected_bad_timestamp",
                              counter(in.rejected_bad_timestamp));
  reg.RegisterCallbackCounter("pipeline.rejected_duplicate",
                              counter(in.rejected_duplicate));
  reg.RegisterCallbackCounter("pipeline.quarantined_outlier",
                              counter(in.quarantined_outlier));
  reg.RegisterCallbackCounter("pipeline.nan_reinit_users",
                              [this] { return model_.nan_reinit_users(); });
  reg.RegisterCallbackCounter("pipeline.nan_reinit_services",
                              [this] { return model_.nan_reinit_services(); });

  // Compressed read-replica health (all zero at read_precision fp64):
  // refresh work done, rows currently awaiting the next barrier, and the
  // staleness window in updates (how far replica readers lag the masters).
  reg.RegisterCallbackCounter("replica.rows_refreshed", [this] {
    return model_.replica_rows_refreshed();
  });
  reg.RegisterCallbackCounter("replica.refreshes",
                              [this] { return model_.replica_refreshes(); });
  reg.RegisterCallbackCounter("replica.full_refreshes", [this] {
    return model_.replica_full_refreshes();
  });
  reg.RegisterCallbackGauge("replica.dirty_rows", [this] {
    return static_cast<double>(model_.replica_dirty_rows());
  });
  reg.RegisterCallbackGauge("replica.staleness_updates", [this] {
    return static_cast<double>(model_.replica_staleness_updates());
  });

  // Epoch wall times span microseconds (tiny stores) to minutes (full
  // convergence passes over a large store).
  epoch_hist_ = reg.GetLatencyHistogram(
      "trainer.epoch_seconds", {.min_value = 1e-6, .max_value = 600.0});
  // Parallel replay only: max/mean shard partition size this epoch (1.0 =
  // perfectly balanced; N = one shard owns N times its fair share).
  shard_imbalance_gauge_ = reg.GetGauge("trainer.shard_imbalance");
}

void OnlineTrainer::Observe(const data::QoSSample& sample) {
  if (config_.max_incoming > 0 &&
      incoming_.size() >= config_.max_incoming) {
    // Backpressure: a trainer that cannot keep up sheds the newest sample
    // (the store already holds the freshest value per pair, so dropping
    // bursts degrades recency, not correctness) instead of letting the
    // queue grow without bound.
    dropped_on_overflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  incoming_.push_back(sample);
}

void OnlineTrainer::AdvanceTime(double now) {
  if (!(now >= now_)) {  // backwards step, or NaN
    // A wall clock stepping backwards (NTP, VM migration, restore onto a
    // different machine) must not abort an always-on trainer. Hold the
    // clock — expiry keeps working against the newest time we ever saw —
    // and surface the event to monitoring instead.
    clock_regressions_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  now_ = now;
}

std::size_t OnlineTrainer::ProcessIncoming() {
  std::size_t processed = 0;
  const bool saw_samples = !incoming_.empty();
  while (!incoming_.empty()) {
    const data::QoSSample sample = incoming_.front();
    incoming_.pop_front();
    // Ingestion guard: rejected/quarantined samples never reach the store
    // or the model (counted in Stats()).
    if (config_.validate_ingest && !validator_.Admit(sample, now_)) {
      continue;
    }
    // Algorithm 1 lines 4-9: I_ij <- 1, register new entities (done inside
    // OnlineUpdate), refresh (t_ij, R_ij), update online.
    store_.Upsert(sample);
    const double e = ApplyUpdate(sample);
    if (std::isnan(e)) {
      // The model refused the sample (degenerate transform); don't keep it
      // around for replay to refuse again.
      store_.Remove(sample.user, sample.service);
      skipped_updates_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    now_ = std::max(now_, sample.timestamp);
    updates_applied_.fetch_add(1, std::memory_order_relaxed);
    ++processed;
  }
  if (processed > 0) converged_ = false;
  // Ingest is a barrier point too (the caller's thread, no replay in
  // flight): publish the compressed replicas of every row this drain
  // touched — including repairs on samples that were then refused, which
  // is why the gate is "saw samples", not "applied updates".
  if (saw_samples && model_.replicas_enabled()) model_.RefreshReplicas();
  return processed;
}

std::optional<double> OnlineTrainer::ReplayOneCounted(std::uint64_t& applied,
                                                      std::uint64_t& expired,
                                                      std::uint64_t& skipped) {
  if (store_.empty()) return std::nullopt;
  const data::QoSSample sample = store_.PickRandom(rng_);
  if (config_.expiry_seconds > 0.0 &&
      now_ - sample.timestamp >= config_.expiry_seconds) {
    // Algorithm 1 line 15: the sample is obsolete, set I_ij <- 0.
    store_.Remove(sample.user, sample.service);
    ++expired;
    return std::nullopt;
  }
  const double e = ApplyUpdate(sample);
  if (std::isnan(e)) {
    // Hard model-side guard tripped; drop the sample so the epoch loop
    // cannot spin on it.
    store_.Remove(sample.user, sample.service);
    ++skipped;
    return std::nullopt;
  }
  ++applied;
  return e;
}

void OnlineTrainer::FlushReplayCounters(std::uint64_t applied,
                                        std::uint64_t expired,
                                        std::uint64_t skipped) {
  if (applied > 0) updates_applied_.fetch_add(applied, std::memory_order_relaxed);
  if (expired > 0) expired_.fetch_add(expired, std::memory_order_relaxed);
  if (skipped > 0) skipped_updates_.fetch_add(skipped, std::memory_order_relaxed);
}

std::optional<double> OnlineTrainer::ReplayOne() {
  std::uint64_t applied = 0, expired = 0, skipped = 0;
  const std::optional<double> e = ReplayOneCounted(applied, expired, skipped);
  FlushReplayCounters(applied, expired, skipped);
  return e;
}

std::optional<double> OnlineTrainer::ReplayEpoch() {
  if (store_.size() > 0) epochs_run_.fetch_add(1, std::memory_order_relaxed);
  obs::ScopedLatencyTimer epoch_timer(epoch_hist_);
  if (config_.replay_threads > 1) return ReplayEpochParallel();
  const std::size_t iters = store_.size();
  if (iters == 0) return std::nullopt;
  double err_sum = 0.0;
  std::size_t applied = 0;
  // Counters accumulate in locals and flush once at the epoch barrier, so
  // the per-sample hot loop carries no atomic RMW (same batching as the
  // parallel path; monitors lag by at most one epoch).
  std::uint64_t applied_n = 0, expired_n = 0, skipped_n = 0;
  for (std::size_t i = 0; i < iters; ++i) {
    if (const auto e = ReplayOneCounted(applied_n, expired_n, skipped_n)) {
      err_sum += *e;
      ++applied;
    }
    if (store_.empty()) break;
  }
  FlushReplayCounters(applied_n, expired_n, skipped_n);
  // Epoch barrier: fold this epoch's master mutations into the replicas.
  if (model_.replicas_enabled()) model_.RefreshReplicas();
  if (applied == 0) return std::nullopt;
  return err_sum / static_cast<double>(applied);
}

std::optional<double> OnlineTrainer::ReplayEpochParallel() {
  const std::vector<data::QoSSample>& samples = store_.samples();
  if (samples.empty()) return std::nullopt;

  const std::size_t shards = config_.replay_shards > 0
                                 ? config_.replay_shards
                                 : config_.replay_threads * 4;
  if (!pool_) {
    pool_ = std::make_unique<common::ThreadPool>(config_.replay_threads,
                                                 config_.pin_replay_threads);
  }
  if (!service_locks_) {
    service_locks_ =
        std::make_unique<common::StripedSpinlocks>(config_.service_stripes);
  }
  // Persistent per-shard RNGs: shard k's replay order is a fixed function
  // of (seed, k, epoch index), so a given shard count replays identically
  // no matter how the OS schedules the worker threads.
  while (shard_rngs_.size() < shards) {
    shard_rngs_.push_back(rng_.Fork(0x5eed0000ULL + shard_rngs_.size()));
  }

  // Partition stored samples by owning user shard. Two samples of the
  // same user always land in the same shard, so every user row (and its
  // error EMA) has exactly one writer this epoch — hogwild needs locks
  // only on the service side, where shards collide.
  shard_partitions_.resize(shards);
  for (auto& p : shard_partitions_) p.clear();
  for (std::uint32_t i = 0; i < samples.size(); ++i) {
    shard_partitions_[samples[i].user % shards].push_back(i);
  }
  if (shard_imbalance_gauge_ != nullptr) {
    // max/mean partition size: 1.0 is a perfect split, higher means one
    // shard serializes that multiple of its fair share of the epoch.
    std::size_t max_part = 0;
    for (const auto& p : shard_partitions_) max_part = std::max(max_part, p.size());
    const double mean_part =
        static_cast<double>(samples.size()) / static_cast<double>(shards);
    shard_imbalance_gauge_->Set(
        mean_part > 0.0 ? static_cast<double>(max_part) / mean_part : 0.0);
  }

  struct ShardOutcome {
    double err_sum = 0.0;
    std::size_t applied = 0;
    std::uint64_t refused = 0;
    std::uint64_t expired = 0;
    // Store mutations are deferred to the epoch barrier: the store is not
    // thread-safe, and removals mid-epoch would invalidate `samples`.
    std::vector<std::pair<data::UserId, data::ServiceId>> remove;
  };
  std::vector<ShardOutcome> outcomes(shards);
  const double now = now_;
  const double expiry = config_.expiry_seconds;

  pool_->ParallelFor(0, shards, [&](std::size_t shard) {
    std::vector<std::uint32_t>& part = shard_partitions_[shard];
    if (part.empty()) return;
    shard_rngs_[shard].Shuffle(part);
    ShardOutcome& out = outcomes[shard];
    for (const std::uint32_t idx : part) {
      const data::QoSSample& s = samples[idx];
      if (expiry > 0.0 && now - s.timestamp >= expiry) {
        out.remove.emplace_back(s.user, s.service);  // Alg. 1: I_ij <- 0
        ++out.expired;
        continue;
      }
      double e;
      {
        std::lock_guard<common::Spinlock> guard(
            service_locks_->ForIndex(s.service));
        e = model_.OnlineUpdateGuarded(s.user, s.service, s.value);
      }
      if (std::isnan(e)) {
        out.remove.emplace_back(s.user, s.service);
        ++out.refused;
      } else {
        out.err_sum += e;
        ++out.applied;
      }
    }
  });

  // Epoch barrier: merge per-shard partials and apply deferred removals.
  double err_sum = 0.0;
  std::size_t applied = 0;
  for (const ShardOutcome& out : outcomes) {
    for (const auto& [u, s] : out.remove) store_.Remove(u, s);
    skipped_updates_.fetch_add(out.refused, std::memory_order_relaxed);
    expired_.fetch_add(out.expired, std::memory_order_relaxed);
    err_sum += out.err_sum;
    applied += out.applied;
  }
  updates_applied_.fetch_add(applied, std::memory_order_relaxed);
  // Epoch barrier (the ParallelFor join ordered every shard's dirty marks
  // before this point): dirty-row replica refresh on the trainer thread,
  // while no hogwild writer is in flight.
  if (model_.replicas_enabled()) model_.RefreshReplicas();
  if (applied == 0) return std::nullopt;
  return err_sum / static_cast<double>(applied);
}

double OnlineTrainer::ApplyUpdate(const data::QoSSample& sample) {
  if (config_.guarded_updates) {
    // No-op for already-registered entities. Callers with concurrent
    // readers must pre-register (growth reallocates under the readers);
    // see ConcurrentPredictionService's drain path.
    model_.EnsureUser(sample.user);
    model_.EnsureService(sample.service);
    return model_.OnlineUpdateGuarded(sample.user, sample.service,
                                      sample.value);
  }
  return model_.OnlineUpdate(sample.user, sample.service, sample.value);
}

std::size_t OnlineTrainer::RunUntilConverged() {
  ProcessIncoming();
  converged_ = false;
  double prev = std::numeric_limits<double>::infinity();
  std::size_t stall = 0;
  std::size_t epochs = 0;
  while (epochs < config_.max_epochs) {
    const std::optional<double> mean_err = ReplayEpoch();
    if (!mean_err) break;  // store empty (all expired)
    ++epochs;
    last_epoch_error_ = *mean_err;
    if (std::isfinite(prev) && prev > 0.0) {
      const double improvement = (prev - *mean_err) / prev;
      if (improvement < config_.convergence_tol) {
        if (++stall >= config_.convergence_patience) {
          converged_ = true;
          break;
        }
      } else {
        stall = 0;
      }
    }
    prev = *mean_err;
  }
  return epochs;
}

PipelineStats OnlineTrainer::Stats() const {
  // Wait-free: every source is a relaxed atomic with the trainer thread
  // as its only writer, so monitors may call this mid-epoch.
  PipelineStats s = validator_.stats();
  s.skipped_updates = skipped_updates_.load(std::memory_order_relaxed);
  s.dropped_on_overflow =
      dropped_on_overflow_.load(std::memory_order_relaxed);
  s.clock_regressions = clock_regressions_.load(std::memory_order_relaxed);
  s.nan_reinit_users = model_.nan_reinit_users();
  s.nan_reinit_services = model_.nan_reinit_services();
  s.purged_samples = purged_samples_.load(std::memory_order_relaxed);
  return s;
}

void OnlineTrainer::SeedValidatorFromStore() {
  for (const data::QoSSample& s : store_.samples()) {
    validator_.SeedDuplicateHistory(s);
  }
}

std::size_t OnlineTrainer::PurgeUser(data::UserId u) {
  std::size_t purged = store_.RemoveUser(u);
  for (auto it = incoming_.begin(); it != incoming_.end();) {
    if (it->user == u) {
      it = incoming_.erase(it);
      ++purged;
    } else {
      ++it;
    }
  }
  validator_.ForgetUser(u);
  purged_samples_.fetch_add(purged, std::memory_order_relaxed);
  return purged;
}

std::size_t OnlineTrainer::PurgeService(data::ServiceId s) {
  std::size_t purged = store_.RemoveService(s);
  for (auto it = incoming_.begin(); it != incoming_.end();) {
    if (it->service == s) {
      it = incoming_.erase(it);
      ++purged;
    } else {
      ++it;
    }
  }
  validator_.ForgetService(s);
  purged_samples_.fetch_add(purged, std::memory_order_relaxed);
  return purged;
}

}  // namespace amf::core

// Per-reason counters for the fault-tolerant online pipeline: every sample
// that enters the ingestion path is either accepted, rejected (with a
// reason), or quarantined; every NaN-poisoned latent vector the model
// repairs and every checkpoint written/skipped is accounted here. The
// counters are the observable surface of the ingestion -> quarantine ->
// train -> checkpoint flow (DESIGN.md §7) and what the fault-injection
// tests assert against.
#pragma once

#include <cstdint>
#include <string>

namespace amf::core {

struct PipelineStats {
  // --- Ingestion (SampleValidator verdicts) --------------------------------
  std::uint64_t accepted = 0;
  std::uint64_t rejected_nonfinite = 0;    ///< NaN/Inf values
  std::uint64_t rejected_nonpositive = 0;  ///< value <= 0 (RT/TP are positive)
  std::uint64_t rejected_out_of_range = 0; ///< value beyond max_value
  std::uint64_t rejected_bad_timestamp = 0;///< non-finite / far-future stamps
  std::uint64_t rejected_duplicate = 0;    ///< duplicate or stale (u,s,t) key
  std::uint64_t quarantined_outlier = 0;   ///< failed the median+MAD gate
  std::uint64_t dropped_on_overflow = 0;   ///< backpressure: queue at cap

  // --- Training-side guards ------------------------------------------------
  std::uint64_t skipped_updates = 0;   ///< OnlineUpdate refused the sample
  std::uint64_t nan_reinit_users = 0;  ///< user vectors re-randomized
  std::uint64_t nan_reinit_services = 0;

  // --- Checkpointing -------------------------------------------------------
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoints_corrupt = 0;  ///< detected bad at load time

  std::uint64_t rejected() const {
    return rejected_nonfinite + rejected_nonpositive + rejected_out_of_range +
           rejected_bad_timestamp + rejected_duplicate;
  }
  std::uint64_t seen() const {
    return accepted + rejected() + quarantined_outlier;
  }

  /// One-line "accepted=... rejected{...} quarantined=..." summary.
  std::string ToString() const;
};

}  // namespace amf::core

// Per-reason counters for the fault-tolerant online pipeline: every sample
// that enters the ingestion path is either accepted, rejected (with a
// reason), or quarantined; every NaN-poisoned latent vector the model
// repairs and every checkpoint written/skipped is accounted here. The
// counters are the observable surface of the ingestion -> quarantine ->
// train -> checkpoint flow (DESIGN.md §7) and what the fault-injection
// tests assert against.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace amf::core {

struct PipelineStats {
  // --- Ingestion (SampleValidator verdicts) --------------------------------
  std::uint64_t accepted = 0;
  std::uint64_t rejected_nonfinite = 0;    ///< NaN/Inf values
  std::uint64_t rejected_nonpositive = 0;  ///< value <= 0 (RT/TP are positive)
  std::uint64_t rejected_out_of_range = 0; ///< value beyond max_value
  std::uint64_t rejected_bad_timestamp = 0;///< non-finite / far-future stamps
  std::uint64_t rejected_duplicate = 0;    ///< duplicate or stale (u,s,t) key
  std::uint64_t quarantined_outlier = 0;   ///< failed the median+MAD gate

  // --- Shed load (both stages of the ingest funnel) ------------------------
  /// Backpressure at the concurrent facade: observation ring was full
  /// (ConcurrentPredictionService::ReportObservation returned false).
  std::uint64_t ring_dropped = 0;
  /// Backpressure at the trainer: incoming queue at max_incoming.
  std::uint64_t dropped_on_overflow = 0;

  // --- Entity lifecycle (registry churn, DESIGN.md §10) --------------------
  /// Samples scrubbed from the store/queue when an entity was retired.
  std::uint64_t purged_samples = 0;
  /// Observations refused because the user or service id was not
  /// registered (never joined, or its slot was retired).
  std::uint64_t rejected_unregistered = 0;

  // --- Observation journal (DESIGN.md §12) ---------------------------------
  /// Records appended to the write-ahead observation journal.
  std::uint64_t journal_appended = 0;
  /// Observations dropped because their journal append failed (IO error or
  /// injected fault): un-journaled means un-durable, so the sample never
  /// reaches the collector. Third leg of the shed-load identity.
  std::uint64_t journal_dropped = 0;
  /// Journal records re-ingested by point-in-time recovery.
  std::uint64_t journal_replayed = 0;
  /// Journal records refused at recovery: the id's registry slot was
  /// retired (or retired-and-recycled, detected by generation mismatch)
  /// after the record was appended.
  std::uint64_t journal_replay_rejected = 0;

  // --- Training-side guards ------------------------------------------------
  std::uint64_t skipped_updates = 0;   ///< OnlineUpdate refused the sample
  std::uint64_t nan_reinit_users = 0;  ///< user vectors re-randomized
  std::uint64_t nan_reinit_services = 0;
  std::uint64_t clock_regressions = 0; ///< AdvanceTime clamped a backwards now

  // --- Checkpointing -------------------------------------------------------
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoints_corrupt = 0;  ///< detected bad at load time

  std::uint64_t rejected() const {
    return rejected_nonfinite + rejected_nonpositive + rejected_out_of_range +
           rejected_bad_timestamp + rejected_duplicate;
  }
  std::uint64_t seen() const {
    return accepted + rejected() + quarantined_outlier;
  }
  /// Unified shed-load total: every sample dropped for capacity or
  /// durability reasons, whichever stage shed it. A sample sheds at most
  /// once (ring -> journal -> trainer queue), so the three counters are
  /// disjoint.
  std::uint64_t dropped() const {
    return ring_dropped + dropped_on_overflow + journal_dropped;
  }

  /// One-line "accepted=... rejected{...} quarantined=..." summary.
  std::string ToString() const;
};

/// Live, concurrently-readable mirrors of the ingestion counters.
///
/// The pipeline has exactly one writer per counter (the trainer thread),
/// but monitoring threads read at any time, so the live cells are relaxed
/// atomics: a snapshot is a plain-struct PipelineStats assembled from
/// relaxed loads — wait-free for the reader, free for the writer (an
/// uncontended relaxed fetch_add), and well-defined under TSan. The
/// counters carry no ordering obligations (statistics, not
/// synchronization), hence relaxed everywhere.
struct AtomicIngestCounters {
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected_nonfinite{0};
  std::atomic<std::uint64_t> rejected_nonpositive{0};
  std::atomic<std::uint64_t> rejected_out_of_range{0};
  std::atomic<std::uint64_t> rejected_bad_timestamp{0};
  std::atomic<std::uint64_t> rejected_duplicate{0};
  std::atomic<std::uint64_t> quarantined_outlier{0};

  /// Copies the live values (relaxed) into the value-struct fields.
  void SnapshotInto(PipelineStats* out) const {
    out->accepted = accepted.load(std::memory_order_relaxed);
    out->rejected_nonfinite =
        rejected_nonfinite.load(std::memory_order_relaxed);
    out->rejected_nonpositive =
        rejected_nonpositive.load(std::memory_order_relaxed);
    out->rejected_out_of_range =
        rejected_out_of_range.load(std::memory_order_relaxed);
    out->rejected_bad_timestamp =
        rejected_bad_timestamp.load(std::memory_order_relaxed);
    out->rejected_duplicate =
        rejected_duplicate.load(std::memory_order_relaxed);
    out->quarantined_outlier =
        quarantined_outlier.load(std::memory_order_relaxed);
  }
};

}  // namespace amf::core

// OnlineTrainer: Algorithm 1 of the paper.
//
//   repeat forever:
//     if a new sample arrived:     register entities, store it, update
//     else:                        replay a random stored sample,
//                                  discarding it if expired
//     if converged: wait for new data
//
// This class is the deterministic, externally-clocked version of that loop:
// the caller pushes observations (Observe), advances simulated time
// (AdvanceTime), and asks for work to happen (ProcessIncoming / Replay /
// RunUntilConverged). Convergence is tracked as the relative improvement of
// the mean training error across replay epochs.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/spinlock.h"
#include "core/amf_model.h"
#include "core/pipeline_stats.h"
#include "core/sample_store.h"
#include "core/sample_validator.h"

namespace amf::common {
class ThreadPool;
}

namespace amf::obs {
class Gauge;
class LatencyHistogram;
class MetricsRegistry;
}  // namespace amf::obs

namespace amf::core {

struct TrainerConfig {
  /// Samples older than this (seconds) are expired on replay, matching the
  /// paper's 15-minute window. <= 0 disables expiration.
  double expiry_seconds = 900.0;
  /// Convergence: stop when the relative improvement of the mean epoch
  /// error is below this ...
  double convergence_tol = 5e-3;
  /// ... for this many consecutive epochs.
  std::size_t convergence_patience = 2;
  /// Hard cap on replay epochs per RunUntilConverged call.
  std::size_t max_epochs = 200;
  /// Replay order randomization seed.
  std::uint64_t seed = 7;
  /// Run every incoming sample through a SampleValidator before it may
  /// touch the store or the model (rejected/quarantined samples are
  /// counted in Stats() and dropped). Off = trust the caller.
  bool validate_ingest = true;
  /// Ingestion-guard thresholds (used when validate_ingest is true).
  SampleValidatorConfig validator;

  // --- Parallel sharded replay ---------------------------------------------
  /// Worker threads for replay epochs. <= 1 keeps the serial Algorithm-1
  /// loop (with-replacement random picks, bit-deterministic). > 1 runs
  /// each epoch as a user-sharded hogwild pass over the store across an
  /// internal ThreadPool: every shard owns its users' rows outright,
  /// same-service updates are serialized by striped spinlocks, and all
  /// writes publish through the model's per-row seqlocks.
  std::size_t replay_threads = 1;
  /// User shards for parallel replay; 0 = 4x replay_threads. Sample i is
  /// assigned to shard (user % shards), each shard replays its partition
  /// in an order drawn from its own persistent RNG — deterministic per
  /// shard count regardless of thread scheduling.
  std::size_t replay_shards = 0;
  /// Striped spinlocks serializing same-service updates across shards.
  std::size_t service_stripes = 64;
  /// Pin each replay worker to a core (Linux; silent no-op elsewhere or
  /// when refused by the container). Keeps a shard's user rows resident in
  /// one core's private cache across epochs instead of migrating with the
  /// thread. Off by default: pinning helps dedicated training hosts and
  /// hurts oversubscribed ones — an explicit deployment decision.
  bool pin_replay_threads = false;
  /// Backpressure cap on the incoming Observe queue (0 = unbounded).
  /// Overflowing samples are dropped newest-first and counted in
  /// Stats().dropped_on_overflow.
  std::size_t max_incoming = 65536;
  /// Route every model write through AmfModel::OnlineUpdateGuarded (the
  /// seqlock publish protocol) so external threads may read the model via
  /// the *Shared APIs while training runs. Parallel replay always uses the
  /// guarded path; this flag additionally covers the serial ingest/replay
  /// paths. Growth still happens on ingest: callers with live concurrent
  /// readers must pre-register entities (see ConcurrentPredictionService).
  bool guarded_updates = false;

  // --- Observability -------------------------------------------------------
  /// When set, the trainer registers its counters (trainer.*, pipeline.*)
  /// with this registry at construction and records epoch wall times into
  /// a trainer.epoch_seconds histogram. The registry must outlive the
  /// trainer's last use AND must not be snapshotted after the trainer is
  /// destroyed (the registrations are callbacks into trainer state).
  /// nullptr = no metrics, zero overhead beyond the always-on atomics.
  obs::MetricsRegistry* metrics = nullptr;
};

class OnlineTrainer {
 public:
  /// The trainer updates `model` in place; the model must outlive it.
  OnlineTrainer(AmfModel& model, const TrainerConfig& config = {});
  ~OnlineTrainer();  // out of line: unique_ptr<ThreadPool> member

  const TrainerConfig& config() const { return config_; }
  const SampleStore& store() const { return store_; }
  double now() const { return now_; }

  /// Enqueues a newly observed sample (thread-compatible, not thread-safe).
  /// When the queue is at config().max_incoming the sample is dropped and
  /// counted in Stats().dropped_on_overflow — a slow trainer sheds load
  /// instead of growing the queue without bound.
  void Observe(const data::QoSSample& sample);

  /// Advances the simulated clock (timestamps of later Observe calls are
  /// expected to be >= now). A non-monotonic `now` — reachable in real
  /// deployments when a checkpoint restore meets a wall clock that
  /// stepped backwards — is clamped (the clock holds) and counted in
  /// Stats().clock_regressions instead of aborting the process.
  void AdvanceTime(double now);

  /// Drains the incoming queue: each sample is stored (I_ij <- 1) and
  /// applied as one online update. Returns the number processed.
  std::size_t ProcessIncoming();

  /// One Algorithm-1 replay iteration: pick a random stored sample; if it
  /// is older than the expiry window, drop it (I_ij <- 0) and return
  /// nullopt, otherwise apply an online update and return its e_us.
  /// Returns nullopt as well when the store is empty.
  std::optional<double> ReplayOne();

  /// One epoch = store-size replay iterations. Returns the mean e_us over
  /// the updates actually applied (nullopt if nothing could be replayed).
  /// With config().replay_threads > 1 the epoch runs as one user-sharded
  /// parallel pass (each stored sample replayed exactly once, expiration
  /// applied at the epoch barrier).
  std::optional<double> ReplayEpoch();

  /// Drains incoming samples, then replays epochs until the convergence
  /// criterion or the epoch cap is hit. Returns the number of epochs run.
  std::size_t RunUntilConverged();

  /// True after RunUntilConverged stopped due to the tolerance (as opposed
  /// to the epoch cap or an empty store).
  bool converged() const { return converged_; }

  /// Mean training error of the last completed epoch (NaN before any).
  double last_epoch_error() const { return last_epoch_error_; }

  /// The ingestion guard (history, quarantine buffer). Valid regardless of
  /// validate_ingest; only consulted when it is on.
  const SampleValidator& validator() const { return validator_; }

  /// Pipeline counters: validator verdicts, updates the model refused
  /// (non-finite / degenerate-r samples), NaN-poisoning repairs, shed
  /// load, and clock regressions. Wait-free — every source is a relaxed
  /// atomic, so monitors may call this from any thread while training
  /// runs (no lock is taken and none is needed).
  PipelineStats Stats() const;

  /// Total online updates applied (ingest + replay), for throughput
  /// monitoring. Relaxed read; safe from any thread.
  std::uint64_t updates_applied() const {
    return updates_applied_.load(std::memory_order_relaxed);
  }

  /// Mutable store access for checkpoint restore (LoadSampleStore upserts
  /// records into it); not for use while training is in flight.
  SampleStore& mutable_store() { return store_; }

  /// Seeds the validator's per-pair duplicate history from every sample
  /// currently in the store. Called after a checkpoint restore, before
  /// journal replay: a replayed record whose effect the checkpoint
  /// already contains then classifies as a rejected re-delivery instead
  /// of double-applying (the validator's in-memory history is not
  /// checkpointed). Not for use while training is in flight.
  void SeedValidatorFromStore();

  /// Scrubs every trace of a retired entity from the training pipeline:
  /// stored samples (they would keep dragging paired factors via Eq. 8-9
  /// replay updates), queued-but-unprocessed observations, and the
  /// validator's per-pair / per-service state (so the recycled id's next
  /// tenant is not rejected as a duplicate or judged against the old
  /// tenant's outlier window). Returns the number of samples removed
  /// (store + queue), also accumulated into Stats().purged_samples. Not
  /// for use while a replay epoch is in flight — callers with concurrent
  /// training defer to the epoch barrier (see ConcurrentPredictionService).
  std::size_t PurgeUser(data::UserId u);
  std::size_t PurgeService(data::ServiceId s);

  /// Accounts samples purged upstream of the trainer (e.g. a service-level
  /// ingest buffer dropped at retirement) in Stats().purged_samples, so
  /// the pipeline-wide purge total stays in one counter.
  void CountPurgedSamples(std::size_t n) {
    purged_samples_.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  /// One parallel user-sharded epoch over the current store contents.
  std::optional<double> ReplayEpochParallel();

  /// ReplayOne body with plain-integer accounting: the serial epoch loop
  /// accumulates into locals and flushes once per epoch, keeping atomic
  /// RMWs out of the per-sample path.
  std::optional<double> ReplayOneCounted(std::uint64_t& applied,
                                         std::uint64_t& expired,
                                         std::uint64_t& skipped);
  void FlushReplayCounters(std::uint64_t applied, std::uint64_t expired,
                           std::uint64_t skipped);

  /// Applies one incoming/replayed sample through the configured update
  /// path (guarded or plain); registers entities first when growing.
  double ApplyUpdate(const data::QoSSample& sample);

  /// Registers trainer.* / pipeline.* metrics with config_.metrics.
  void RegisterMetrics();

  AmfModel& model_;
  TrainerConfig config_;
  common::Rng rng_;
  SampleStore store_;
  SampleValidator validator_;
  std::deque<data::QoSSample> incoming_;
  double now_ = 0.0;
  bool converged_ = false;
  // Single-writer (the trainer thread) relaxed atomics: monitoring
  // threads read them concurrently via Stats() / metric callbacks.
  std::atomic<std::uint64_t> skipped_updates_{0};
  std::atomic<std::uint64_t> dropped_on_overflow_{0};
  std::atomic<std::uint64_t> clock_regressions_{0};
  std::atomic<std::uint64_t> updates_applied_{0};
  std::atomic<std::uint64_t> epochs_run_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> purged_samples_{0};
  double last_epoch_error_ = std::numeric_limits<double>::quiet_NaN();

  // Metric handles (nullptr when config_.metrics is nullptr).
  obs::LatencyHistogram* epoch_hist_ = nullptr;
  obs::Gauge* shard_imbalance_gauge_ = nullptr;

  // Parallel-replay state, created lazily on the first parallel epoch.
  std::unique_ptr<common::ThreadPool> pool_;
  std::unique_ptr<common::StripedSpinlocks> service_locks_;
  std::vector<common::Rng> shard_rngs_;  // one persistent RNG per shard
  std::vector<std::vector<std::uint32_t>> shard_partitions_;  // scratch
};

}  // namespace amf::core

// FactorArena: cache-line-aligned blocked storage for latent factor rows.
//
// The pre-arena AmfModel kept three parallel std::vectors per entity kind
// (factors, error EMAs, seqlock versions), so one entity's state spanned
// scattered cache lines and adjacent rows shared lines: an SGD publish on
// row i dirtied the line holding row i+1's tail (factors) and up to 15
// neighboring version words. Under multi-threaded hogwild replay that
// false sharing turns neighboring shards' updates into cache-line
// ping-pong; the committed single-core bench could not show it, but it
// caps multi-core scaling exactly where the paper claims near-linearity
// (Fig. 14).
//
// This arena packs each row into a private, padded slab:
//
//   factors:  | row 0 ... pad | row 1 ... pad | ...   (64B stride multiple)
//   meta:     | v0 e0 ....pad | v1 e1 ....pad | ...   (one 64B line per row)
//
//   - Every factor row starts on a 64-byte boundary (base allocation via
//     AlignedAllocator, stride rounded up to 8 doubles), so the SIMD GEMV
//     over the service block may assume aligned loads, and a row write
//     never touches a line owned by a neighboring row.
//   - Each row's seqlock version word and error EMA are co-located in one
//     dedicated cache line (RowMeta, alignas(64)): the version bump +
//     error store of one row's publish invalidates exactly one meta line,
//     never a neighbor's.
//   - Pad lanes are kept at 0.0 forever (zero-filled on growth, never
//     written afterwards), so whole-stride vector loads are safe and a
//     dot over the padded width equals the dot over the logical rank.
//
// Growth preserves the pre-arena semantics exactly: geometric capacity
// doubling, one resize per Grow call, caller fills the new logical lanes
// (the model draws them from its RNG in registration order, keeping
// fixed-seed traces bit-identical to the vector layout). Growth is NOT
// safe against concurrent readers — same contract as before; the
// concurrent facade pre-registers entities under its exclusive lock.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/aligned.h"
#include "common/seqlock.h"

namespace amf::core {

class FactorArena {
 public:
  /// Doubles per cache line; row strides are multiples of this.
  static constexpr std::size_t kDoublesPerLine =
      common::kCacheLineBytes / sizeof(double);

  explicit FactorArena(std::size_t rank)
      : rank_(rank), stride_(common::RoundUp(rank, kDoublesPerLine)) {}

  std::size_t rank() const { return rank_; }
  /// Doubles between consecutive row starts (>= rank, 64B multiple).
  std::size_t stride() const { return stride_; }
  std::size_t size() const { return meta_.size(); }
  bool empty() const { return meta_.empty(); }

  /// Start of row i's factor lanes (64-byte aligned).
  double* row(std::size_t i) { return factors_.data() + i * stride_; }
  const double* row(std::size_t i) const {
    return factors_.data() + i * stride_;
  }

  /// Logical (rank-length) view of row i; excludes pad lanes.
  std::span<double> row_span(std::size_t i) {
    return std::span<double>(row(i), rank_);
  }
  std::span<const double> row_span(std::size_t i) const {
    return std::span<const double>(row(i), rank_);
  }

  common::SeqlockVersion& version(std::size_t i) { return meta_[i].version; }
  const common::SeqlockVersion& version(std::size_t i) const {
    return meta_[i].version;
  }
  double& error(std::size_t i) { return meta_[i].error; }
  const double& error(std::size_t i) const { return meta_[i].error; }

  /// Base of the blocked factor slab (row 0; 64-byte aligned). The block
  /// spans size() * stride() doubles — pass stride() to the strided GEMV.
  const double* data() const { return factors_.data(); }

  /// Grows to `need` rows (no-op when already that large): geometric
  /// capacity reserve, then one resize. New rows have zeroed factor lanes
  /// (including pads), error = `initial_error`, version = 0. The caller
  /// fills the logical lanes of rows [old_size, need) afterwards.
  /// Returns the pre-growth row count.
  std::size_t Grow(std::size_t need, double initial_error) {
    const std::size_t old = meta_.size();
    if (need <= old) return old;
    if (meta_.capacity() < need) {
      const std::size_t cap = std::max(need, 2 * meta_.capacity());
      meta_.reserve(cap);
      factors_.reserve(cap * stride_);
    }
    meta_.resize(need, RowMeta{0, initial_error});
    factors_.resize(need * stride_, 0.0);
    return old;
  }

 private:
  /// One row's publish metadata, padded to a private cache line: the
  /// seqlock version and the entity error EMA move together through every
  /// publish, and neither write may invalidate a neighboring row's line.
  struct alignas(common::kCacheLineBytes) RowMeta {
    common::SeqlockVersion version = 0;
    double error = 0.0;
  };
  static_assert(sizeof(RowMeta) == common::kCacheLineBytes,
                "RowMeta must occupy exactly one cache line");

  std::size_t rank_;
  std::size_t stride_;
  std::vector<double, common::AlignedAllocator<double>> factors_;
  std::vector<RowMeta, common::AlignedAllocator<RowMeta>> meta_;
};

}  // namespace amf::core

#include "core/trainer_watchdog.h"

#include <chrono>
#include <exception>

#include "common/check.h"

namespace amf::core {

namespace {
using Clock = std::chrono::steady_clock;
}

TrainerWatchdog::TrainerWatchdog(Step step, const WatchdogConfig& config)
    : step_(std::move(step)), config_(config) {
  AMF_CHECK_MSG(step_ != nullptr, "watchdog needs a step function");
  AMF_CHECK_MSG(config_.check_interval_seconds > 0.0,
                "check_interval_seconds must be positive");
  AMF_CHECK_MSG(config_.stall_timeout_seconds > 0.0,
                "stall_timeout_seconds must be positive");
}

TrainerWatchdog::~TrainerWatchdog() { Stop(); }

std::int64_t TrainerWatchdog::NowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

std::string TrainerWatchdog::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

void TrainerWatchdog::WorkerLoop() {
  while (!stop_.load(std::memory_order_acquire) &&
         !cancel_.load(std::memory_order_acquire)) {
    try {
      step_(cancel_);
    } catch (const std::exception& e) {
      exceptions_.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(mu_);
        last_error_ = e.what();
      }
      break;
    } catch (...) {
      exceptions_.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(mu_);
        last_error_ = "unknown exception";
      }
      break;
    }
    heartbeats_.fetch_add(1, std::memory_order_relaxed);
    last_beat_nanos_.store(NowNanos(), std::memory_order_release);
  }
  worker_exited_.store(true, std::memory_order_release);
  cv_.notify_all();
}

void TrainerWatchdog::LaunchWorker() {
  worker_exited_.store(false, std::memory_order_release);
  cancel_.store(false, std::memory_order_release);
  last_beat_nanos_.store(NowNanos(), std::memory_order_release);
  worker_ = std::thread([this] { WorkerLoop(); });
}

void TrainerWatchdog::MonitorLoop() {
  const auto interval = std::chrono::duration<double>(
      config_.check_interval_seconds);
  const std::int64_t stall_nanos = static_cast<std::int64_t>(
      config_.stall_timeout_seconds * 1e9);
  bool stall_flagged = false;
  while (!stop_.load(std::memory_order_acquire)) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, interval, [this] {
        return stop_.load(std::memory_order_acquire) ||
               worker_exited_.load(std::memory_order_acquire);
      });
    }
    if (stop_.load(std::memory_order_acquire)) break;

    if (worker_exited_.load(std::memory_order_acquire)) {
      // The worker died (exception) or returned after a cancel request:
      // restart it, up to the budget.
      if (worker_.joinable()) worker_.join();
      if (restarts_.load(std::memory_order_relaxed) >=
          config_.max_restarts) {
        gave_up_.store(true, std::memory_order_release);
        running_.store(false, std::memory_order_release);
        return;
      }
      restarts_.fetch_add(1, std::memory_order_relaxed);
      stall_flagged = false;
      LaunchWorker();
      continue;
    }

    // Stall detection: the worker is alive but hasn't heartbeat within
    // the timeout. Raise the cancel token; a cooperative step returns and
    // the restart happens on the next poll (the exited branch above).
    const std::int64_t age =
        NowNanos() - last_beat_nanos_.load(std::memory_order_acquire);
    if (age > stall_nanos) {
      if (!stall_flagged) {
        stalls_.fetch_add(1, std::memory_order_relaxed);
        stall_flagged = true;
      }
      cancel_.store(true, std::memory_order_release);
    } else {
      stall_flagged = false;
    }
  }
}

void TrainerWatchdog::Start() {
  if (running_.load(std::memory_order_acquire)) return;
  stop_.store(false, std::memory_order_release);
  gave_up_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  LaunchWorker();
  monitor_ = std::thread([this] { MonitorLoop(); });
}

void TrainerWatchdog::Stop() {
  if (!running_.load(std::memory_order_acquire) && !monitor_.joinable() &&
      !worker_.joinable()) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  cancel_.store(true, std::memory_order_release);
  cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
  if (worker_.joinable()) worker_.join();
  running_.store(false, std::memory_order_release);
}

}  // namespace amf::core

// Crash-safe checkpointing of the online pipeline (DESIGN.md §7).
//
// A checkpoint bundles everything Algorithm 1 needs to resume mid-stream
// after a process death: the model (config, latent factors, the
// adaptive-weight error EMAs e_u/e_s), the sample store ("existing data
// samples"), the trainer clock, and (format v2) both entity registries.
// The on-disk format is
//
//   AMF_CKPT 3
//   bytes <N> crc32 <hex>
//   <N payload bytes: AMF_MODEL section, AMF_SAMPLES section,
//    AMF_TRAINER section, optional AMF_REGISTRIES section,
//    optional AMF_WAL section>
//
// The AMF_REGISTRIES section (two RegistryImage blocks: users, then
// services) binds names to factor rows across a restore; without it
// (v1 files, or writers passing no registries) the factors restore
// anonymously and callers must re-register names in the original join
// order. The AMF_WAL section (format v3, DESIGN.md §12) records the
// observation-journal watermark: the highest journal LSN whose effects
// this checkpoint already contains, so recovery replays only records
// past it and older segments can be garbage-collected. Readers accept
// v1, v2, and v3.
//
// The header lets a reader detect truncation (fewer than N payload bytes) and
// corruption (CRC-32 mismatch) before any field is trusted. Writes are
// atomic: payload to a temp file in the same directory, fsync, rename over
// the final name, fsync the directory — a crash mid-write leaves at worst
// a stale temp file, never a torn checkpoint.
//
// CheckpointManager runs this from the trainer loop: interval-gated saves
// into a retention-managed directory (`<prefix>-<seq>.amfck`), and
// LoadLatestValid() walks checkpoints newest-first, skipping (and
// counting) corrupt ones, so recovery always lands on the newest valid
// state.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/amf_model.h"
#include "core/registry_image.h"
#include "core/sample_store.h"

namespace amf::obs {
class LatencyHistogram;
class MetricsRegistry;
}  // namespace amf::obs

namespace amf::core {

/// Both entity registries, snapshotted together (a checkpoint either
/// carries name<->id bindings for BOTH sides or for neither).
struct CheckpointRegistries {
  RegistryImage users;
  RegistryImage services;
};

/// Everything restored from one checkpoint.
struct CheckpointData {
  AmfModel model;
  SampleStore store;
  double now = 0.0;
  double last_epoch_error = std::numeric_limits<double>::quiet_NaN();
  /// Registry snapshots (format v2). nullopt for v1 checkpoints and v2
  /// checkpoints written without registries: factors restore fine, but
  /// name->row bindings must be recreated by the caller (and will be
  /// wrong if names re-register in a different order — hence v2).
  std::optional<CheckpointRegistries> registries;
  /// Observation-journal watermark (format v3): the highest journal LSN
  /// already applied to this state. nullopt for v1/v2 checkpoints and for
  /// writers running without a journal — recovery must then fall back to
  /// replaying the full journal (idempotence makes that safe, just slow).
  std::optional<std::uint64_t> wal_watermark;

  explicit CheckpointData(AmfModel m) : model(std::move(m)) {}
};

/// Serializes one checkpoint (length + CRC header, then payload). When
/// `registries` is non-null the payload carries a trailing AMF_REGISTRIES
/// section binding names to factor rows across the restore; when
/// `wal_watermark` is non-null an AMF_WAL section records the journal LSN
/// this state covers.
void WriteCheckpoint(std::ostream& os, const AmfModel& model,
                     const SampleStore& store, double now,
                     double last_epoch_error,
                     const CheckpointRegistries* registries = nullptr,
                     const std::uint64_t* wal_watermark = nullptr);

/// Parses and verifies a checkpoint (format v1, v2, or v3). Throws
/// common::CheckError on truncation, CRC mismatch, or malformed sections.
CheckpointData ReadCheckpoint(std::istream& is);

/// Atomic file write: temp file + fsync + rename + directory fsync.
void WriteCheckpointFile(const std::string& path, const AmfModel& model,
                         const SampleStore& store, double now,
                         double last_epoch_error,
                         const CheckpointRegistries* registries = nullptr,
                         const std::uint64_t* wal_watermark = nullptr);

/// Reads + verifies one checkpoint file (throws on IO error/corruption).
CheckpointData ReadCheckpointFile(const std::string& path);

struct CheckpointManagerConfig {
  /// Directory holding the checkpoints (created if missing).
  std::string directory;
  /// Newest checkpoints kept on disk; older ones are pruned after each
  /// successful save. Must be >= 1.
  std::size_t retention = 5;
  /// Minimum (trainer-clock) seconds between MaybeSave() saves; <= 0
  /// checkpoints on every call.
  double interval_seconds = 300.0;
  /// Filename prefix: files are "<prefix>-<seq>.amfck".
  std::string prefix = "ckpt";
};

class CheckpointManager {
 public:
  /// Creates the directory if needed and scans it for existing
  /// checkpoints (sequence numbering continues after a restart).
  explicit CheckpointManager(const CheckpointManagerConfig& config);

  const CheckpointManagerConfig& config() const { return config_; }

  /// Writes a new checkpoint unconditionally (atomic) and prunes beyond
  /// the retention limit. Returns the file path. `registries` (optional)
  /// is persisted as the v2 AMF_REGISTRIES section.
  std::string Save(const AmfModel& model, const SampleStore& store,
                   double now, double last_epoch_error,
                   const CheckpointRegistries* registries = nullptr,
                   const std::uint64_t* wal_watermark = nullptr);

  /// Interval-gated Save, for calling on every trainer tick: saves only
  /// when `now` is at least interval_seconds past the last save (or on the
  /// first call). Returns true if a checkpoint was written.
  bool MaybeSave(const AmfModel& model, const SampleStore& store, double now,
                 double last_epoch_error,
                 const CheckpointRegistries* registries = nullptr,
                 const std::uint64_t* wal_watermark = nullptr);

  /// True when a MaybeSave(..., now) call would write: callers use this
  /// to skip building registry snapshots on ticks that will not save.
  bool ShouldSave(double now) const {
    return !(saved_once_ && config_.interval_seconds > 0.0 &&
             now - last_save_time_ < config_.interval_seconds);
  }

  /// Loads the newest checkpoint that passes validation, skipping (and
  /// counting) corrupt/truncated ones. nullopt when none is loadable.
  std::optional<CheckpointData> LoadLatestValid();

  /// Checkpoint paths sorted oldest -> newest by sequence number.
  std::vector<std::string> List() const;

  /// Registers checkpoint.* counters and write/restore latency histograms
  /// with `registry`. Call before concurrent use; the registry must not
  /// be snapshotted after this manager is destroyed (the registrations
  /// are callbacks into manager-owned counters).
  void AttachMetrics(obs::MetricsRegistry* registry);

  // Save/MaybeSave run on the trainer thread; monitors read the counters
  // concurrently (pipeline_stats, metric snapshots), hence relaxed atomics.
  std::uint64_t written() const {
    return written_.load(std::memory_order_relaxed);
  }
  /// Corrupt checkpoints detected (and skipped) by LoadLatestValid.
  std::uint64_t corrupt_skipped() const {
    return corrupt_skipped_.load(std::memory_order_relaxed);
  }
  /// Save attempts that threw (IO failure mid-write).
  std::uint64_t write_failures() const {
    return write_failures_.load(std::memory_order_relaxed);
  }
  /// Total payload bytes of successfully written checkpoint files.
  std::uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }

 private:
  std::string PathFor(std::uint64_t seq) const;

  CheckpointManagerConfig config_;
  std::uint64_t next_seq_ = 1;
  double last_save_time_ = 0.0;
  bool saved_once_ = false;
  std::atomic<std::uint64_t> written_{0};
  std::atomic<std::uint64_t> corrupt_skipped_{0};
  std::atomic<std::uint64_t> write_failures_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  obs::LatencyHistogram* write_hist_ = nullptr;
  obs::LatencyHistogram* restore_hist_ = nullptr;
};

/// Recovery entry point: tries `preferred_path` first (a checkpoint file);
/// if it is missing, truncated, or corrupt, falls back to the manager's
/// newest valid checkpoint. nullopt when nothing valid exists anywhere.
std::optional<CheckpointData> LoadCheckpointOrFallback(
    const std::string& preferred_path, CheckpointManager& manager);

}  // namespace amf::core

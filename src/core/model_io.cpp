#include "core/model_io.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace amf::core {

namespace {

constexpr const char* kMagic = "AMF_MODEL";
constexpr int kVersion = 1;

void ExpectToken(std::istream& is, const std::string& expected) {
  std::string tok;
  is >> tok;
  AMF_CHECK_MSG(is.good() && tok == expected,
                "model file: expected '" << expected << "', got '" << tok
                                         << "'");
}

template <typename T>
T ReadValue(std::istream& is, const std::string& label) {
  ExpectToken(is, label);
  T v{};
  is >> v;
  AMF_CHECK_MSG(!is.fail(), "model file: bad value for " << label);
  return v;
}

}  // namespace

void SaveModel(std::ostream& os, const AmfModel& model) {
  const AmfConfig& c = model.config();
  os << kMagic << " " << kVersion << "\n";
  os << std::setprecision(17);
  os << "rank " << c.rank << "\n";
  os << "learn_rate " << c.learn_rate << "\n";
  os << "lambda_user " << c.lambda_user << "\n";
  os << "lambda_service " << c.lambda_service << "\n";
  os << "beta " << c.beta << "\n";
  os << "alpha " << c.transform.alpha << "\n";
  os << "r_max " << c.transform.r_max << "\n";
  os << "r_min " << c.transform.r_min << "\n";
  os << "value_floor " << c.transform.value_floor << "\n";
  os << "init_scale " << c.init_scale << "\n";
  os << "initial_error " << c.initial_error << "\n";
  os << "adaptive_weights " << (c.adaptive_weights ? 1 : 0) << "\n";
  os << "seed " << c.seed << "\n";
  os << "users " << model.num_users() << "\n";
  os << "services " << model.num_services() << "\n";
  for (std::size_t u = 0; u < model.num_users(); ++u) {
    os << "u " << model.UserError(static_cast<data::UserId>(u));
    for (double v : model.UserFactors(static_cast<data::UserId>(u))) {
      os << " " << v;
    }
    os << "\n";
  }
  for (std::size_t s = 0; s < model.num_services(); ++s) {
    os << "s " << model.ServiceError(static_cast<data::ServiceId>(s));
    for (double v : model.ServiceFactors(static_cast<data::ServiceId>(s))) {
      os << " " << v;
    }
    os << "\n";
  }
}

AmfModel LoadModel(std::istream& is) {
  ExpectToken(is, kMagic);
  int version = 0;
  is >> version;
  AMF_CHECK_MSG(version == kVersion,
                "model file: unsupported version " << version);

  AmfConfig c;
  c.rank = ReadValue<std::size_t>(is, "rank");
  c.learn_rate = ReadValue<double>(is, "learn_rate");
  c.lambda_user = ReadValue<double>(is, "lambda_user");
  c.lambda_service = ReadValue<double>(is, "lambda_service");
  c.beta = ReadValue<double>(is, "beta");
  c.transform.alpha = ReadValue<double>(is, "alpha");
  c.transform.r_max = ReadValue<double>(is, "r_max");
  c.transform.r_min = ReadValue<double>(is, "r_min");
  c.transform.value_floor = ReadValue<double>(is, "value_floor");
  c.init_scale = ReadValue<double>(is, "init_scale");
  c.initial_error = ReadValue<double>(is, "initial_error");
  c.adaptive_weights = ReadValue<int>(is, "adaptive_weights") != 0;
  c.seed = ReadValue<std::uint64_t>(is, "seed");
  const auto users = ReadValue<std::size_t>(is, "users");
  const auto services = ReadValue<std::size_t>(is, "services");

  AmfModel model(c);
  if (users > 0) model.EnsureUser(static_cast<data::UserId>(users - 1));
  if (services > 0) {
    model.EnsureService(static_cast<data::ServiceId>(services - 1));
  }
  for (std::size_t u = 0; u < users; ++u) {
    ExpectToken(is, "u");
    double err = 0.0;
    is >> err;
    AMF_CHECK_MSG(!is.fail() && std::isfinite(err) && err >= 0.0,
                  "model file: corrupt error for user " << u);
    model.SetUserError(static_cast<data::UserId>(u), err);
    for (double& v : model.MutableUserFactors(static_cast<data::UserId>(u))) {
      is >> v;
      AMF_CHECK_MSG(!is.fail() && std::isfinite(v),
                    "model file: corrupt factor in user block " << u);
    }
    AMF_CHECK_MSG(!is.fail(), "model file: truncated user block " << u);
  }
  for (std::size_t s = 0; s < services; ++s) {
    ExpectToken(is, "s");
    double err = 0.0;
    is >> err;
    AMF_CHECK_MSG(!is.fail() && std::isfinite(err) && err >= 0.0,
                  "model file: corrupt error for service " << s);
    model.SetServiceError(static_cast<data::ServiceId>(s), err);
    for (double& v :
         model.MutableServiceFactors(static_cast<data::ServiceId>(s))) {
      is >> v;
      AMF_CHECK_MSG(!is.fail() && std::isfinite(v),
                    "model file: corrupt factor in service block " << s);
    }
    AMF_CHECK_MSG(!is.fail(), "model file: truncated service block " << s);
  }
  return model;
}

void SaveSampleStore(std::ostream& os, const SampleStore& store) {
  os << "AMF_SAMPLES " << kVersion << " " << store.size() << "\n";
  os << std::setprecision(17);
  for (const data::QoSSample& s : store.samples()) {
    os << s.slice << " " << s.user << " " << s.service << " " << s.value
       << " " << s.timestamp << "\n";
  }
}

void LoadSampleStore(std::istream& is, SampleStore& store) {
  ExpectToken(is, "AMF_SAMPLES");
  int version = 0;
  std::size_t count = 0;
  is >> version >> count;
  AMF_CHECK_MSG(!is.fail() && version == kVersion,
                "sample store file: bad header");
  for (std::size_t i = 0; i < count; ++i) {
    data::QoSSample s;
    is >> s.slice >> s.user >> s.service >> s.value >> s.timestamp;
    AMF_CHECK_MSG(!is.fail(), "sample store file: truncated at record "
                                  << i << " of " << count);
    AMF_CHECK_MSG(std::isfinite(s.value) && std::isfinite(s.timestamp),
                  "sample store file: corrupt record " << i);
    store.Upsert(s);
  }
}

void SaveModelFile(const std::string& path, const AmfModel& model) {
  std::ofstream os(path);
  AMF_CHECK_MSG(os.good(), "cannot open for writing: " << path);
  SaveModel(os, model);
  AMF_CHECK_MSG(os.good(), "write failed: " << path);
}

AmfModel LoadModelFile(const std::string& path) {
  std::ifstream is(path);
  AMF_CHECK_MSG(is.good(), "cannot open for reading: " << path);
  return LoadModel(is);
}

}  // namespace amf::core

// The trainer's store of "existing data samples" (Algorithm 1): the most
// recent observed QoS value per (user, service) pair, with its observation
// timestamp. Supports O(1) random pick (for replay), O(1) upsert, and
// O(1) removal (expiration sets I_ij back to 0), via the classic
// vector + swap-remove + index-map layout.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "data/qos_types.h"

namespace amf::core {

class SampleStore {
 public:
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Inserts or refreshes the sample for (user, service). Returns true if
  /// the pair was new (I_ij flips 0 -> 1).
  bool Upsert(const data::QoSSample& sample);

  /// Removes the sample for (user, service); true if it existed.
  bool Remove(data::UserId u, data::ServiceId s);

  /// Current sample for (user, service), if observed.
  std::optional<data::QoSSample> Get(data::UserId u, data::ServiceId s) const;

  bool Contains(data::UserId u, data::ServiceId s) const;

  /// Uniformly random stored sample. Store must be non-empty.
  const data::QoSSample& PickRandom(common::Rng& rng) const;

  /// All stored samples (unspecified order).
  const std::vector<data::QoSSample>& samples() const { return samples_; }

  /// Removes every sample older than `cutoff` (timestamp < cutoff).
  /// Returns the number expired. O(n).
  std::size_t ExpireOlderThan(double cutoff);

  /// Removes every sample observed by `u` (entity retirement). Returns
  /// the number removed. O(n).
  std::size_t RemoveUser(data::UserId u);

  /// Removes every sample of service `s` (entity retirement). Returns
  /// the number removed. O(n).
  std::size_t RemoveService(data::ServiceId s);

  void Clear();

 private:
  static std::uint64_t Key(data::UserId u, data::ServiceId s) {
    return (static_cast<std::uint64_t>(u) << 32) | s;
  }

  std::vector<data::QoSSample> samples_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
};

}  // namespace amf::core

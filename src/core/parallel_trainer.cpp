#include "core/parallel_trainer.h"

#include <atomic>
#include <cmath>

#include "common/check.h"
#include "common/thread_pool.h"

namespace amf::core {

ParallelReplayTrainer::ParallelReplayTrainer(
    AmfModel& model, const ParallelReplayConfig& config)
    : model_(model),
      config_(config),
      rng_(config.seed),
      user_locks_(std::max<std::size_t>(1, config.stripes)),
      service_locks_(std::max<std::size_t>(1, config.stripes)),
      pool_(std::make_unique<common::ThreadPool>(config.threads)) {}

double ParallelReplayTrainer::ReplayEpoch(
    std::span<const data::QoSSample> samples) {
  AMF_CHECK_MSG(!samples.empty(), "ReplayEpoch over empty sample set");
  // Debug-mode enforcement of the documented precondition: every sample's
  // entities must be registered before workers start, because Ensure*
  // growth is not thread-safe. Compiled out in NDEBUG builds so the hot
  // path does not pay an O(n) scan per epoch.
  for ([[maybe_unused]] const data::QoSSample& s : samples) {
    AMF_DCHECK(model_.HasUser(s.user) && model_.HasService(s.service));
  }

  std::vector<std::size_t> order = rng_.Permutation(samples.size());

  std::atomic<double> err_sum{0.0};
  pool_->ParallelFor(0, order.size(), [&](std::size_t i) {
    const data::QoSSample& s = samples[order[i]];
    const std::size_t ulock = s.user % user_locks_.size();
    const std::size_t slock = s.service % service_locks_.size();
    double e;
    {
      // Fixed user-then-service order keeps the acquisition acyclic.
      std::scoped_lock lock(user_locks_[ulock], service_locks_[slock]);
      e = model_.OnlineUpdate(s.user, s.service, s.value);
    }
    // fetch_add(double) needs C++20 library support; CAS loop is portable.
    double cur = err_sum.load(std::memory_order_relaxed);
    while (!err_sum.compare_exchange_weak(cur, cur + e,
                                          std::memory_order_relaxed)) {
    }
  });
  last_epoch_error_ =
      err_sum.load() / static_cast<double>(samples.size());
  // Epoch barrier (ParallelFor joined): fold the epoch's master mutations
  // into the compressed read replicas, if any are configured.
  if (model_.replicas_enabled()) model_.RefreshReplicas();
  return last_epoch_error_;
}

std::size_t ParallelReplayTrainer::ReplayUntilConverged(
    std::span<const data::QoSSample> samples, double tol,
    std::size_t patience, std::size_t max_epochs) {
  AMF_CHECK_MSG(tol > 0.0, "tol must be positive");
  double prev = std::numeric_limits<double>::infinity();
  std::size_t stall = 0;
  std::size_t epochs = 0;
  while (epochs < max_epochs) {
    const double err = ReplayEpoch(samples);
    ++epochs;
    if (std::isfinite(prev) && prev > 0.0) {
      if ((prev - err) / prev < tol) {
        if (++stall >= patience) break;
      } else {
        stall = 0;
      }
    }
    prev = err;
  }
  return epochs;
}

}  // namespace amf::core

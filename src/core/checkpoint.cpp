#include "core/checkpoint.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.h"
#include "common/crc32.h"
#include "common/file_util.h"
#include "core/model_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace amf::core {

namespace {

namespace fs = std::filesystem;

constexpr const char* kMagic = "AMF_CKPT";
// v1: model + samples + trainer clock. v2 appends an optional
// AMF_REGISTRIES section (both entity registries) so a restore reproduces
// the exact name->factor-row binding. v3 appends an optional AMF_WAL
// section carrying the observation-journal watermark LSN the checkpoint
// covers (DESIGN.md §12). Readers accept all three.
constexpr int kVersion = 3;
constexpr int kMinVersion = 1;
constexpr int kTrainerVersion = 1;
constexpr const char* kExtension = ".amfck";

/// istream >> double does not portably accept "nan"; encode explicitly.
void WriteMaybeNan(std::ostream& os, const char* label, double v) {
  if (std::isfinite(v)) {
    os << label << " " << v << "\n";
  } else {
    os << label << " nan\n";
  }
}

double ReadMaybeNan(std::istream& is, const std::string& label) {
  std::string tok;
  is >> tok;
  AMF_CHECK_MSG(is.good() && tok == label,
                "checkpoint: expected '" << label << "', got '" << tok << "'");
  is >> tok;
  AMF_CHECK_MSG(!is.fail(), "checkpoint: missing value for " << label);
  if (tok == "nan") return std::numeric_limits<double>::quiet_NaN();
  std::istringstream iss(tok);
  double v = 0.0;
  iss >> v;
  AMF_CHECK_MSG(!iss.fail(), "checkpoint: bad value for " << label);
  return v;
}

std::string BuildPayload(const AmfModel& model, const SampleStore& store,
                         double now, double last_epoch_error,
                         const CheckpointRegistries* registries,
                         const std::uint64_t* wal_watermark) {
  std::ostringstream payload;
  payload << std::setprecision(17);
  SaveModel(payload, model);
  SaveSampleStore(payload, store);
  payload << "AMF_TRAINER " << kTrainerVersion << "\n";
  WriteMaybeNan(payload, "now", now);
  WriteMaybeNan(payload, "last_epoch_error", last_epoch_error);
  if (registries != nullptr) {
    payload << "AMF_REGISTRIES 1\n";
    SaveRegistryImage(payload, registries->users);
    SaveRegistryImage(payload, registries->services);
  }
  if (wal_watermark != nullptr) {
    payload << "AMF_WAL 1\n";
    payload << "watermark " << *wal_watermark << "\n";
  }
  return payload.str();
}

}  // namespace

void WriteCheckpoint(std::ostream& os, const AmfModel& model,
                     const SampleStore& store, double now,
                     double last_epoch_error,
                     const CheckpointRegistries* registries,
                     const std::uint64_t* wal_watermark) {
  const std::string payload = BuildPayload(model, store, now,
                                           last_epoch_error, registries,
                                           wal_watermark);
  os << kMagic << " " << kVersion << "\n";
  os << "bytes " << payload.size() << " crc32 " << std::hex
     << common::Crc32Of(payload) << std::dec << "\n";
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

CheckpointData ReadCheckpoint(std::istream& is) {
  std::string tok;
  is >> tok;
  AMF_CHECK_MSG(is.good() && tok == kMagic,
                "checkpoint: bad magic '" << tok << "'");
  int version = 0;
  is >> version;
  AMF_CHECK_MSG(!is.fail() && version >= kMinVersion && version <= kVersion,
                "checkpoint: unsupported version " << version);
  is >> tok;
  AMF_CHECK_MSG(is.good() && tok == "bytes", "checkpoint: missing size");
  std::size_t bytes = 0;
  is >> bytes;
  AMF_CHECK_MSG(!is.fail(), "checkpoint: bad payload size");
  is >> tok;
  AMF_CHECK_MSG(is.good() && tok == "crc32", "checkpoint: missing crc");
  std::uint32_t expected_crc = 0;
  is >> std::hex >> expected_crc >> std::dec;
  AMF_CHECK_MSG(!is.fail(), "checkpoint: bad crc field");
  is.ignore(1);  // the newline terminating the header

  std::string payload(bytes, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(bytes));
  AMF_CHECK_MSG(static_cast<std::size_t>(is.gcount()) == bytes,
                "checkpoint: truncated payload (" << is.gcount() << " of "
                                                  << bytes << " bytes)");
  AMF_CHECK_MSG(common::Crc32Of(payload) == expected_crc,
                "checkpoint: CRC mismatch (corrupt payload)");

  std::istringstream ps(payload);
  CheckpointData data(LoadModel(ps));
  LoadSampleStore(ps, data.store);
  ps >> tok;
  AMF_CHECK_MSG(ps.good() && tok == "AMF_TRAINER",
                "checkpoint: missing trainer section");
  int tversion = 0;
  ps >> tversion;
  AMF_CHECK_MSG(!ps.fail() && tversion == kTrainerVersion,
                "checkpoint: bad trainer section version");
  data.now = ReadMaybeNan(ps, "now");
  data.last_epoch_error = ReadMaybeNan(ps, "last_epoch_error");
  AMF_CHECK_MSG(std::isfinite(data.now), "checkpoint: corrupt clock");
  // Optional trailers, in fixed order: AMF_REGISTRIES (v2+), then AMF_WAL
  // (v3+). A v1 payload (or one written without the section) simply ends
  // early; the CRC already vouched for the bytes, so a malformed section
  // past a valid marker is corruption, not absence.
  ps >> tok;
  if (!ps.fail() && tok == "AMF_REGISTRIES") {
    int rversion = 0;
    ps >> rversion;
    AMF_CHECK_MSG(!ps.fail() && rversion == 1,
                  "checkpoint: bad registries section version");
    CheckpointRegistries regs;
    regs.users = LoadRegistryImage(ps);
    regs.services = LoadRegistryImage(ps);
    data.registries = std::move(regs);
    ps >> tok;
  }
  if (!ps.fail() && tok == "AMF_WAL") {
    int wversion = 0;
    ps >> wversion;
    AMF_CHECK_MSG(!ps.fail() && wversion == 1,
                  "checkpoint: bad wal section version");
    ps >> tok;
    AMF_CHECK_MSG(!ps.fail() && tok == "watermark",
                  "checkpoint: missing wal watermark");
    std::uint64_t watermark = 0;
    ps >> watermark;
    AMF_CHECK_MSG(!ps.fail(), "checkpoint: bad wal watermark");
    data.wal_watermark = watermark;
    ps >> tok;
  }
  AMF_CHECK_MSG(ps.eof() || ps.fail() || tok.empty(),
                "checkpoint: unexpected trailing section '" << tok << "'");
  return data;
}

void WriteCheckpointFile(const std::string& path, const AmfModel& model,
                         const SampleStore& store, double now,
                         double last_epoch_error,
                         const CheckpointRegistries* registries,
                         const std::uint64_t* wal_watermark) {
  const fs::path target(path);
  const fs::path tmp = target.string() + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    AMF_CHECK_MSG(os.good(), "cannot open for writing: " << tmp.string());
    WriteCheckpoint(os, model, store, now, last_epoch_error, registries,
                    wal_watermark);
    os.flush();
    AMF_CHECK_MSG(os.good(), "write failed: " << tmp.string());
  }
  common::SyncFile(tmp.string());
  std::error_code ec;
  fs::rename(tmp, target, ec);
  AMF_CHECK_MSG(!ec, "rename failed: " << tmp.string() << " -> " << path
                                       << " (" << ec.message() << ")");
  const fs::path dir = target.parent_path();
  if (!dir.empty()) common::SyncDirectory(dir.string());
}

CheckpointData ReadCheckpointFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  AMF_CHECK_MSG(is.good(), "cannot open for reading: " << path);
  return ReadCheckpoint(is);
}

CheckpointManager::CheckpointManager(const CheckpointManagerConfig& config)
    : config_(config) {
  AMF_CHECK_MSG(!config_.directory.empty(),
                "checkpoint directory must be set");
  AMF_CHECK_MSG(config_.retention >= 1, "retention must be >= 1");
  // Durable creation: a checkpoint written into a directory whose own
  // entry was never synced could vanish with the directory on power loss.
  common::CreateDirectoriesDurable(config_.directory);
  // Continue sequence numbering after the newest existing checkpoint.
  for (const std::string& path : List()) {
    const std::string stem = fs::path(path).stem().string();
    const std::size_t dash = stem.rfind('-');
    if (dash == std::string::npos) continue;
    const std::uint64_t seq =
        std::strtoull(stem.c_str() + dash + 1, nullptr, 10);
    next_seq_ = std::max(next_seq_, seq + 1);
  }
}

std::string CheckpointManager::PathFor(std::uint64_t seq) const {
  std::ostringstream name;
  name << config_.prefix << "-" << std::setw(8) << std::setfill('0') << seq
       << kExtension;
  return (fs::path(config_.directory) / name.str()).string();
}

std::vector<std::string> CheckpointManager::List() const {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(config_.directory, ec)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    if (p.extension() != kExtension) continue;
    if (p.filename().string().rfind(config_.prefix + "-", 0) != 0) continue;
    paths.push_back(p.string());
  }
  std::sort(paths.begin(), paths.end());  // zero-padded seq => lexicographic
  return paths;
}

void CheckpointManager::AttachMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  registry->RegisterCallbackCounter("checkpoint.writes", [this] {
    return written_.load(std::memory_order_relaxed);
  });
  registry->RegisterCallbackCounter("checkpoint.write_failures", [this] {
    return write_failures_.load(std::memory_order_relaxed);
  });
  registry->RegisterCallbackCounter("checkpoint.bytes_written", [this] {
    return bytes_written_.load(std::memory_order_relaxed);
  });
  registry->RegisterCallbackCounter("checkpoint.corrupt_skipped", [this] {
    return corrupt_skipped_.load(std::memory_order_relaxed);
  });
  // Checkpoints of large models can take whole seconds; widen the range.
  obs::LatencyHistogramOptions opts;
  opts.max_value = 600.0;
  write_hist_ = registry->GetLatencyHistogram("checkpoint.write_seconds", opts);
  restore_hist_ =
      registry->GetLatencyHistogram("checkpoint.restore_seconds", opts);
}

std::string CheckpointManager::Save(const AmfModel& model,
                                    const SampleStore& store, double now,
                                    double last_epoch_error,
                                    const CheckpointRegistries* registries,
                                    const std::uint64_t* wal_watermark) {
  const std::string path = PathFor(next_seq_++);
  {
    obs::ScopedLatencyTimer timer(write_hist_);
    try {
      WriteCheckpointFile(path, model, store, now, last_epoch_error,
                          registries, wal_watermark);
    } catch (...) {
      write_failures_.fetch_add(1, std::memory_order_relaxed);
      throw;
    }
  }
  written_.fetch_add(1, std::memory_order_relaxed);
  std::error_code size_ec;
  const auto file_bytes = fs::file_size(path, size_ec);
  if (!size_ec) {
    bytes_written_.fetch_add(static_cast<std::uint64_t>(file_bytes),
                             std::memory_order_relaxed);
  }
  last_save_time_ = now;
  saved_once_ = true;
  // Retention: prune oldest beyond the limit. The removals are made
  // durable with one directory fsync so a crash cannot resurrect a
  // pruned checkpoint ahead of the one that displaced it.
  std::vector<std::string> all = List();
  bool removed_any = false;
  while (all.size() > config_.retention) {
    std::error_code ec;
    fs::remove(all.front(), ec);
    removed_any = removed_any || !ec;
    all.erase(all.begin());
  }
  if (removed_any) common::SyncDirectory(config_.directory);
  return path;
}

bool CheckpointManager::MaybeSave(const AmfModel& model,
                                 const SampleStore& store, double now,
                                 double last_epoch_error,
                                 const CheckpointRegistries* registries,
                                 const std::uint64_t* wal_watermark) {
  if (!ShouldSave(now)) return false;
  Save(model, store, now, last_epoch_error, registries, wal_watermark);
  return true;
}

std::optional<CheckpointData> CheckpointManager::LoadLatestValid() {
  obs::ScopedLatencyTimer timer(restore_hist_);
  std::vector<std::string> all = List();
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    try {
      return ReadCheckpointFile(*it);
    } catch (const common::CheckError&) {
      corrupt_skipped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return std::nullopt;
}

std::optional<CheckpointData> LoadCheckpointOrFallback(
    const std::string& preferred_path, CheckpointManager& manager) {
  try {
    return ReadCheckpointFile(preferred_path);
  } catch (const common::CheckError&) {
    return manager.LoadLatestValid();
  }
}

}  // namespace amf::core

// SampleValidator: the ingestion guard in front of SampleStore /
// OnlineTrainer (DESIGN.md §7).
//
// Real collectors emit exactly the data the AMF loss cannot digest: NaN
// from timed-out probes, zero/negative response times, duplicated
// deliveries, stale retransmissions, and wild outliers from transient
// congestion. Every observation passes through Validate() before it may
// touch the model; the verdict is one of
//
//   kAccept         -- sample is clean, train on it
//   kNonFinite      -- NaN/Inf value
//   kNonPositive    -- value <= 0 (QoS metrics here are strictly positive)
//   kOutOfRange     -- value > max_value
//   kBadTimestamp   -- non-finite, negative, or far-future timestamp
//   kDuplicate      -- (user, service) already delivered this timestamp, or
//                      an older one than the last accepted (stale replay)
//   kOutlier        -- outside median +- k * MAD of the service's recent
//                      accepted values (quarantined, not dropped silently)
//
// Outlier detection keeps a bounded ring of recent accepted values per
// service and compares against the running median + MAD (median absolute
// deviation), which is robust to the very contamination it guards against.
// Quarantined samples are retained (bounded) for offline inspection.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "core/pipeline_stats.h"
#include "data/qos_types.h"

namespace amf::core {

enum class SampleVerdict : std::uint8_t {
  kAccept = 0,
  kNonFinite,
  kNonPositive,
  kOutOfRange,
  kBadTimestamp,
  kDuplicate,
  kOutlier,
};

/// Human-readable verdict name ("accept", "non_finite", ...).
const char* ToString(SampleVerdict v);

struct SampleValidatorConfig {
  /// Values above this are rejected as out-of-range (e.g. an RT far beyond
  /// any plausible timeout). <= 0 disables the ceiling.
  double max_value = 1e9;
  /// Reject values <= 0 (RT and TP are strictly positive; a zero RT is a
  /// collector artifact, not a measurement).
  bool reject_nonpositive = true;
  /// Timestamps more than this many seconds ahead of the validator clock
  /// are rejected (clock skew / garbage stamps). <= 0 disables. Off by
  /// default: simulations legitimately drive the trainer clock *from*
  /// sample stamps, so only real deployments with an authoritative clock
  /// should enable it. Non-finite / negative stamps are always rejected.
  double max_future_seconds = 0.0;
  /// Reject re-deliveries: a sample whose timestamp is <= the last
  /// accepted timestamp for the same (user, service) pair.
  bool reject_duplicates = true;
  /// Outlier gate: reject when |value - median| > k * max(MAD, mad_floor)
  /// over the service's recent accepted values. <= 0 disables.
  double outlier_mad_k = 8.0;
  /// Minimum accepted samples for a service before the outlier gate arms.
  std::size_t outlier_min_samples = 16;
  /// Ring-buffer capacity of recent accepted values kept per service.
  std::size_t history_capacity = 64;
  /// MAD floor so a constant-valued history does not reject everything.
  double mad_floor = 1e-3;
  /// Max quarantined samples retained for inspection (oldest evicted).
  std::size_t quarantine_capacity = 256;
};

class SampleValidator {
 public:
  explicit SampleValidator(const SampleValidatorConfig& config = {});

  const SampleValidatorConfig& config() const { return config_; }

  /// Classifies one sample against the validator clock `now`. Accepted
  /// samples update the per-service history and per-pair timestamp state;
  /// outliers land in the quarantine buffer. Counts into stats().
  SampleVerdict Validate(const data::QoSSample& sample, double now);

  /// Convenience: Validate == kAccept.
  bool Admit(const data::QoSSample& sample, double now) {
    return Validate(sample, now) == SampleVerdict::kAccept;
  }

  /// Per-reason counters accumulated by Validate, as a plain-struct
  /// snapshot. The live counters are relaxed atomics (single writer — the
  /// trainer thread — but monitoring threads snapshot concurrently), so
  /// this read is wait-free and safe from any thread at any time.
  PipelineStats stats() const {
    PipelineStats s;
    counters_.SnapshotInto(&s);
    return s;
  }

  /// Live ingestion counters (for registering metrics callbacks).
  const AtomicIngestCounters& counters() const { return counters_; }

  /// Quarantined outliers, oldest first (bounded by quarantine_capacity).
  const std::deque<data::QoSSample>& quarantine() const { return quarantine_; }

  /// Running median of a service's recent accepted values (NaN if none).
  double ServiceMedian(data::ServiceId s) const;
  /// Running MAD of a service's recent accepted values (NaN if none).
  double ServiceMad(data::ServiceId s) const;

  /// Marks `sample`'s (user, service, timestamp) as already accepted
  /// without counting into stats(): later deliveries with a timestamp <=
  /// it are rejected as duplicates. Recovery seeds this from the restored
  /// sample store so that replaying journal records whose effects the
  /// checkpoint already contains is a rejected re-delivery, not a double
  /// apply. Keeps the max timestamp if the pair is already tracked.
  void SeedDuplicateHistory(const data::QoSSample& sample);

  /// Drops all history/quarantine state (counters are preserved).
  void Reset();

  /// Forgets a retired user's per-pair duplicate-timestamp state so the
  /// recycled id's next tenant starts clean (its first observation would
  /// otherwise be rejected as a stale re-delivery). O(pairs).
  void ForgetUser(data::UserId u);

  /// Forgets a retired service's pair state, outlier history, and median/
  /// MAD window — the next tenant's value scale is unrelated.
  void ForgetService(data::ServiceId s);

 private:
  struct History {
    std::vector<double> ring;  // capacity-bounded, insertion order
    std::size_t next = 0;      // ring write cursor once full
  };

  static std::uint64_t PairKey(data::UserId u, data::ServiceId s) {
    return (static_cast<std::uint64_t>(u) << 32) | s;
  }

  /// median / MAD of the service history; both NaN when empty.
  void RobustStats(const History& h, double* median, double* mad) const;

  SampleValidatorConfig config_;
  AtomicIngestCounters counters_;
  std::unordered_map<data::ServiceId, History> history_;
  std::unordered_map<std::uint64_t, double> last_accepted_ts_;
  std::deque<data::QoSSample> quarantine_;
};

}  // namespace amf::core

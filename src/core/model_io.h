// Model serialization: save/restore a trained AmfModel as a versioned,
// self-describing text format. Lets the QoS prediction service persist its
// state across restarts and ship models between processes.
#pragma once

#include <iosfwd>
#include <string>

#include "core/amf_model.h"
#include "core/sample_store.h"

namespace amf::core {

/// Writes the full model state (config, factors, entity errors).
void SaveModel(std::ostream& os, const AmfModel& model);

/// Reads a model previously written by SaveModel. Throws common::CheckError
/// on format/version mismatch or corrupted payloads.
AmfModel LoadModel(std::istream& is);

/// File-path conveniences (throw on IO failure).
void SaveModelFile(const std::string& path, const AmfModel& model);
AmfModel LoadModelFile(const std::string& path);

/// Persists the trainer's sample store ("existing data samples" of
/// Algorithm 1) so an online service can resume mid-stream after a
/// restart: one "slice user service value timestamp" record per sample.
void SaveSampleStore(std::ostream& os, const SampleStore& store);

/// Restores records written by SaveSampleStore into `store` (upserting).
/// Throws common::CheckError on malformed input.
void LoadSampleStore(std::istream& is, SampleStore& store);

}  // namespace amf::core

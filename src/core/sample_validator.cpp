#include "core/sample_validator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/statistics.h"

namespace amf::core {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}

const char* ToString(SampleVerdict v) {
  switch (v) {
    case SampleVerdict::kAccept: return "accept";
    case SampleVerdict::kNonFinite: return "non_finite";
    case SampleVerdict::kNonPositive: return "non_positive";
    case SampleVerdict::kOutOfRange: return "out_of_range";
    case SampleVerdict::kBadTimestamp: return "bad_timestamp";
    case SampleVerdict::kDuplicate: return "duplicate";
    case SampleVerdict::kOutlier: return "outlier";
  }
  return "unknown";
}

SampleValidator::SampleValidator(const SampleValidatorConfig& config)
    : config_(config) {
  AMF_CHECK_MSG(config_.history_capacity > 0,
                "history_capacity must be positive");
  AMF_CHECK_MSG(config_.mad_floor > 0.0, "mad_floor must be positive");
}

void SampleValidator::RobustStats(const History& h, double* median,
                                  double* mad) const {
  if (h.ring.empty()) {
    *median = kNaN;
    *mad = kNaN;
    return;
  }
  std::vector<double> v = h.ring;
  *median = common::Median(v);
  for (double& x : v) x = std::abs(x - *median);
  *mad = common::Median(std::move(v));
}

double SampleValidator::ServiceMedian(data::ServiceId s) const {
  const auto it = history_.find(s);
  if (it == history_.end()) return kNaN;
  double median = kNaN, mad = kNaN;
  RobustStats(it->second, &median, &mad);
  return median;
}

double SampleValidator::ServiceMad(data::ServiceId s) const {
  const auto it = history_.find(s);
  if (it == history_.end()) return kNaN;
  double median = kNaN, mad = kNaN;
  RobustStats(it->second, &median, &mad);
  return mad;
}

SampleVerdict SampleValidator::Validate(const data::QoSSample& sample,
                                        double now) {
  // Value guards first: a non-finite value must never reach BoxCox or the
  // relative-error loss.
  if (!std::isfinite(sample.value)) {
    counters_.rejected_nonfinite.fetch_add(1, std::memory_order_relaxed);
    return SampleVerdict::kNonFinite;
  }
  if (config_.reject_nonpositive && sample.value <= 0.0) {
    counters_.rejected_nonpositive.fetch_add(1, std::memory_order_relaxed);
    return SampleVerdict::kNonPositive;
  }
  if (config_.max_value > 0.0 && sample.value > config_.max_value) {
    counters_.rejected_out_of_range.fetch_add(1, std::memory_order_relaxed);
    return SampleVerdict::kOutOfRange;
  }

  // Timestamp guards: expiry (Algorithm 1) subtracts timestamps from the
  // clock, so a garbage stamp would silently pin a sample forever (or expire
  // everything).
  if (!std::isfinite(sample.timestamp) || sample.timestamp < 0.0 ||
      (config_.max_future_seconds > 0.0 &&
       sample.timestamp > now + config_.max_future_seconds)) {
    counters_.rejected_bad_timestamp.fetch_add(1, std::memory_order_relaxed);
    return SampleVerdict::kBadTimestamp;
  }

  // Duplicate / stale delivery of the same (user, service) key.
  const std::uint64_t key = PairKey(sample.user, sample.service);
  if (config_.reject_duplicates) {
    const auto it = last_accepted_ts_.find(key);
    if (it != last_accepted_ts_.end() && sample.timestamp <= it->second) {
      counters_.rejected_duplicate.fetch_add(1, std::memory_order_relaxed);
      return SampleVerdict::kDuplicate;
    }
  }

  // Statistical outlier gate: running median +- k * MAD per service.
  History& h = history_[sample.service];
  if (config_.outlier_mad_k > 0.0 &&
      h.ring.size() >= config_.outlier_min_samples) {
    double median = kNaN, mad = kNaN;
    RobustStats(h, &median, &mad);
    const double scale = std::max(mad, config_.mad_floor);
    if (std::abs(sample.value - median) > config_.outlier_mad_k * scale) {
      counters_.quarantined_outlier.fetch_add(1, std::memory_order_relaxed);
      quarantine_.push_back(sample);
      while (quarantine_.size() > config_.quarantine_capacity) {
        quarantine_.pop_front();
      }
      return SampleVerdict::kOutlier;
    }
  }

  // Accepted: fold into history + duplicate state.
  if (h.ring.size() < config_.history_capacity) {
    h.ring.push_back(sample.value);
  } else {
    h.ring[h.next] = sample.value;
    h.next = (h.next + 1) % config_.history_capacity;
  }
  last_accepted_ts_[key] = sample.timestamp;
  counters_.accepted.fetch_add(1, std::memory_order_relaxed);
  return SampleVerdict::kAccept;
}

void SampleValidator::SeedDuplicateHistory(const data::QoSSample& sample) {
  double& last = last_accepted_ts_[PairKey(sample.user, sample.service)];
  if (sample.timestamp > last) last = sample.timestamp;
}

void SampleValidator::Reset() {
  history_.clear();
  last_accepted_ts_.clear();
  quarantine_.clear();
}

void SampleValidator::ForgetUser(data::UserId u) {
  for (auto it = last_accepted_ts_.begin(); it != last_accepted_ts_.end();) {
    if (static_cast<data::UserId>(it->first >> 32) == u) {
      it = last_accepted_ts_.erase(it);
    } else {
      ++it;
    }
  }
}

void SampleValidator::ForgetService(data::ServiceId s) {
  for (auto it = last_accepted_ts_.begin(); it != last_accepted_ts_.end();) {
    if (static_cast<data::ServiceId>(it->first & 0xffffffffULL) == s) {
      it = last_accepted_ts_.erase(it);
    } else {
      ++it;
    }
  }
  history_.erase(s);
}

}  // namespace amf::core

// ReplicaArena: compressed read-only copies of the fp64 factor masters
// for the predict path, plus the dirty-row bookkeeping that keeps their
// refresh cost proportional to training activity (DESIGN.md §13).
//
// Why replicas exist: the *Shared matrix readout is memory-bandwidth
// bound — PR 6's arena layout made the kernel stream exactly one padded
// fp64 row per service, so the next win is shrinking the row itself. SGD
// must keep fp64 (the update is a contraction of tiny deltas; quantizing
// the accumulator state would bias training), but a *prediction* only
// survives a sigmoid and an inverse Box-Cox: per-lane relative error of
// 1e-7 (fp32) or 4e-3 (bf16) moves the final MRE by far less than the
// model's own training noise. So training owns fp64 masters, and reads
// stream a compressed replica refreshed at the epoch barrier.
//
// Layout mirrors FactorArena: one 64-byte-aligned padded row per entity
// (stride rounded up to a full cache line of elements, pad lanes
// permanently zero) so the mixed-precision strided GEMV keeps the aligned
// whole-line streaming of the fp64 kernel. The seqlock versions differ
// deliberately: masters give each row a PRIVATE meta line because hogwild
// writers publish rows concurrently and must not ping-pong neighbors'
// lines; replica rows are only ever written by the single barrier thread
// (refresh / retire / growth), so their version words are PACKED 16 per
// line — a 64-row block validation sweep touches 4 version lines instead
// of 64, which matters precisely because the whole point here is bytes.
//
// Refresh protocol: every master mutation marks the row in a DirtyRowSet
// (one relaxed fetch_or; cheap enough to leave unconditional in the
// update path). At the epoch barrier — where no hogwild shard owns any
// row and the store is quiescent — the trainer drains the set and
// republishes only the dirty rows through the replica's per-row seqlock.
// Readers therefore never observe a torn replica row (same Boehm seqlock
// argument as the masters), and a replica row is stale by at most one
// epoch of updates, never inconsistent.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned.h"
#include "common/bf16.h"
#include "common/check.h"
#include "common/seqlock.h"
#include "core/amf_config.h"

namespace amf::core {

/// One bit per factor row, set (relaxed) by the update paths when a
/// master row mutates and drained at the epoch barrier to drive the
/// dirty-only replica refresh. Marking is thread-safe (atomic_ref
/// fetch_or — hogwild shards mark concurrently); Drain/Clear/EnsureRows
/// assume the barrier's quiescence (pool join / single trainer thread).
/// Plain vector storage keeps the set copyable alongside its model.
class DirtyRowSet {
 public:
  void EnsureRows(std::size_t rows) {
    const std::size_t words = (rows + 63) / 64;
    if (words_.size() < words) words_.resize(words, 0);
  }

  std::size_t capacity_rows() const { return words_.size() * 64; }

  /// Thread-safe (relaxed RMW). The row must be within capacity.
  void Mark(std::size_t row) {
    AMF_DCHECK(row < capacity_rows());
    std::atomic_ref<std::uint64_t>(words_[row / 64])
        .fetch_or(std::uint64_t{1} << (row % 64), std::memory_order_relaxed);
  }

  /// Barrier-only: invokes `fn(row)` for every marked row and clears the
  /// set. Returns the number of rows visited.
  template <typename Fn>
  std::size_t Drain(Fn&& fn) {
    std::size_t visited = 0;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = std::atomic_ref<std::uint64_t>(words_[w])
                               .exchange(0, std::memory_order_relaxed);
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        fn(w * 64 + static_cast<std::size_t>(b));
        ++visited;
      }
    }
    return visited;
  }

  /// Barrier-only: marked-row count without draining (staleness gauge).
  std::size_t CountApprox() const {
    std::size_t n = 0;
    for (const std::uint64_t& w : words_) {
      n += static_cast<std::size_t>(std::popcount(common::RelaxedLoad(w)));
    }
    return n;
  }

  void Clear() {
    for (std::uint64_t& w : words_) {
      std::atomic_ref<std::uint64_t>(w).store(0, std::memory_order_relaxed);
    }
  }

 private:
  std::vector<std::uint64_t> words_;
};

/// Compressed (fp32 or bf16) blocked copy of one FactorArena's rows.
/// Disabled (precision kFp64) it holds nothing and costs nothing.
class ReplicaArena {
 public:
  ReplicaArena() = default;

  /// (Re)configures precision and rank, dropping any existing rows. The
  /// caller re-grows and republishes afterwards (AmfModel::SetReadPrecision
  /// / checkpoint restore). Not safe against concurrent readers.
  void Configure(ReadPrecision precision, std::size_t rank) {
    precision_ = precision;
    rank_ = rank;
    stride_ = 0;
    f32_.clear();
    b16_.clear();
    versions_.clear();
    if (precision_ == ReadPrecision::kFp32) {
      stride_ = common::RoundUp(rank, kFloatsPerLine);
    } else if (precision_ == ReadPrecision::kBf16) {
      stride_ = common::RoundUp(rank, kBf16PerLine);
    }
  }

  bool enabled() const { return precision_ != ReadPrecision::kFp64; }
  ReadPrecision precision() const { return precision_; }
  std::size_t rank() const { return rank_; }
  /// Elements between consecutive row starts (64B multiple worth).
  std::size_t stride() const { return stride_; }
  std::size_t size() const { return versions_.size(); }

  /// Bytes one batched scan streams per row (pad lanes included — the
  /// kernel reads whole lines). The honest bench denominator.
  std::size_t row_bytes() const {
    switch (precision_) {
      case ReadPrecision::kFp32:
        return stride_ * sizeof(float);
      case ReadPrecision::kBf16:
        return stride_ * sizeof(common::Bf16);
      case ReadPrecision::kFp64:
        return 0;
    }
    return 0;
  }

  /// Grows to `need` rows (zero lanes, even version 0 = readable empty
  /// row). Same geometric reserve discipline as FactorArena; not safe
  /// against concurrent readers (callers grow under the registration
  /// exclusion that already guards master growth).
  void Grow(std::size_t need) {
    if (!enabled() || need <= versions_.size()) return;
    if (versions_.capacity() < need) {
      const std::size_t cap = std::max(need, 2 * versions_.capacity());
      versions_.reserve(cap);
      if (precision_ == ReadPrecision::kFp32) f32_.reserve(cap * stride_);
      if (precision_ == ReadPrecision::kBf16) b16_.reserve(cap * stride_);
    }
    versions_.resize(need, 0);
    if (precision_ == ReadPrecision::kFp32) f32_.resize(need * stride_, 0.0f);
    if (precision_ == ReadPrecision::kBf16) b16_.resize(need * stride_, 0);
  }

  const float* fp32_data() const { return f32_.data(); }
  const common::Bf16* bf16_data() const { return b16_.data(); }
  const float* fp32_row(std::size_t i) const {
    return f32_.data() + i * stride_;
  }
  const common::Bf16* bf16_row(std::size_t i) const {
    return b16_.data() + i * stride_;
  }

  const common::SeqlockVersion& version(std::size_t i) const {
    return versions_[i];
  }

  /// Encodes `master` (rank_ lanes) into row i under the row's seqlock
  /// bracket. Single-writer per row (the barrier thread); safe against
  /// any number of concurrent readers.
  void PublishRow(std::size_t i, std::span<const double> master) {
    AMF_DCHECK(enabled() && i < size() && master.size() == rank_);
    common::SeqlockBeginWrite(versions_[i]);
    if (precision_ == ReadPrecision::kFp32) {
      float* row = f32_.data() + i * stride_;
      for (std::size_t k = 0; k < rank_; ++k) {
        common::SeqlockStore(row[k], static_cast<float>(master[k]));
      }
    } else {
      common::Bf16* row = b16_.data() + i * stride_;
      for (std::size_t k = 0; k < rank_; ++k) {
        common::SeqlockStore(row[k], common::Bf16FromDouble(master[k]));
      }
    }
    common::SeqlockEndWrite(versions_[i]);
  }

  /// Consistent widened-to-fp64 snapshot of row i (per-row seqlock retry
  /// loop, relaxed element loads — the TSan-clean fallback path).
  void SnapshotRow(std::size_t i, std::span<double> dst) const {
    AMF_DCHECK(enabled() && i < size() && dst.size() == rank_);
    common::SeqlockRead(versions_[i], [&] {
      if (precision_ == ReadPrecision::kFp32) {
        const float* row = f32_.data() + i * stride_;
        for (std::size_t k = 0; k < rank_; ++k) {
          dst[k] = static_cast<double>(common::RelaxedLoad(row[k]));
        }
      } else {
        const common::Bf16* row = b16_.data() + i * stride_;
        for (std::size_t k = 0; k < rank_; ++k) {
          dst[k] = common::Bf16ToDouble(common::RelaxedLoad(row[k]));
        }
      }
    });
  }

 private:
  static constexpr std::size_t kFloatsPerLine =
      common::kCacheLineBytes / sizeof(float);
  static constexpr std::size_t kBf16PerLine =
      common::kCacheLineBytes / sizeof(common::Bf16);

  ReadPrecision precision_ = ReadPrecision::kFp64;
  std::size_t rank_ = 0;
  std::size_t stride_ = 0;
  std::vector<float, common::AlignedAllocator<float>> f32_;
  std::vector<common::Bf16, common::AlignedAllocator<common::Bf16>> b16_;
  // Packed version words (16 per line): replica rows have one writer (the
  // barrier thread), so the false-sharing argument that gives master rows
  // private meta lines does not apply, and packing divides the version
  // sweep's line footprint by 16.
  std::vector<common::SeqlockVersion,
              common::AlignedAllocator<common::SeqlockVersion>>
      versions_;
};

}  // namespace amf::core

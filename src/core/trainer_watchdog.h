// TrainerWatchdog: keeps a background training worker alive.
//
// A production deployment trains continuously from a worker thread; that
// worker can die (an exception escaping a training step) or stall (a bug
// or a pathological input wedging a step). The watchdog owns the worker
// thread, runs the user-supplied step function in a loop, and a monitor
// thread restarts the worker when it
//
//   * dies  -- the step threw; the exception is recorded and the worker is
//              relaunched (up to max_restarts), or
//   * stalls -- no heartbeat for stall_timeout_seconds; the watchdog
//              raises the cancel token (steps are expected to poll it in
//              long loops) and relaunches once the worker returns.
//
// The step function receives the cancel token; a cooperative step checks
// it between bounded units of work. A step that ignores the token and
// never returns cannot be forcibly killed (C++ threads are not
// cancellable); the stall is still detected and visible via stalls().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace amf::core {

struct WatchdogConfig {
  /// Monitor poll interval.
  double check_interval_seconds = 0.02;
  /// Heartbeat age after which the worker counts as stalled.
  double stall_timeout_seconds = 0.5;
  /// Worker relaunches before the watchdog gives up.
  std::size_t max_restarts = 5;
};

class TrainerWatchdog {
 public:
  /// One bounded unit of training work (e.g. drain + one replay epoch).
  /// Called in a loop from the worker thread; long steps should poll
  /// `cancel` and return early when it is set.
  using Step = std::function<void(const std::atomic<bool>& cancel)>;

  TrainerWatchdog(Step step, const WatchdogConfig& config = {});
  ~TrainerWatchdog();

  TrainerWatchdog(const TrainerWatchdog&) = delete;
  TrainerWatchdog& operator=(const TrainerWatchdog&) = delete;

  /// Launches the worker + monitor threads. No-op if already running.
  void Start();

  /// Stops both threads and joins them. Idempotent.
  void Stop();

  /// True between Start() and Stop() while the watchdog has not given up.
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// True once max_restarts was exhausted (the worker keeps failing).
  bool gave_up() const { return gave_up_.load(std::memory_order_acquire); }

  /// Worker relaunches performed so far.
  std::size_t restarts() const {
    return restarts_.load(std::memory_order_relaxed);
  }
  /// Steps that ended in an exception.
  std::size_t exceptions() const {
    return exceptions_.load(std::memory_order_relaxed);
  }
  /// Stall detections (heartbeat older than stall_timeout_seconds).
  std::size_t stalls() const { return stalls_.load(std::memory_order_relaxed); }
  /// Steps completed across all worker incarnations.
  std::uint64_t heartbeats() const {
    return heartbeats_.load(std::memory_order_relaxed);
  }
  /// what() of the most recent worker exception ("" if none).
  std::string last_error() const;

 private:
  void WorkerLoop();
  void MonitorLoop();
  void LaunchWorker();
  std::int64_t NowNanos() const;

  Step step_;
  WatchdogConfig config_;

  std::thread worker_;
  std::thread monitor_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> cancel_{false};
  std::atomic<bool> worker_exited_{false};
  std::atomic<bool> gave_up_{false};
  std::atomic<std::int64_t> last_beat_nanos_{0};
  std::atomic<std::size_t> restarts_{0};
  std::atomic<std::size_t> exceptions_{0};
  std::atomic<std::size_t> stalls_{0};
  std::atomic<std::uint64_t> heartbeats_{0};

  mutable std::mutex mu_;  // guards last_error_ and monitor wakeups
  std::condition_variable cv_;
  std::string last_error_;
};

}  // namespace amf::core

// Configuration of the adaptive matrix factorization model.
//
// Defaults reproduce the paper's Table-I setup: d = 10, lambda = 0.001,
// beta = 0.3, eta = 0.8, alpha = -0.007 (RT; use MakeThroughputConfig for
// the TP setting alpha = -0.05, Rmax = 7000).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "transform/qos_transform.h"

namespace amf::core {

/// Element type of the predict-side read path (DESIGN.md §13). Training
/// always runs against the fp64 master factors; kFp32/kBf16 additionally
/// maintain compressed replica slabs (core/replica_arena.h) that the
/// *Shared batch readouts stream instead of the masters, trading a
/// bounded accuracy delta for 2x/4x fewer bytes per service-block scan.
enum class ReadPrecision : std::uint8_t {
  kFp64 = 0,  ///< read the masters directly (default; bit-identical)
  kFp32 = 1,  ///< float replicas (~1e-7 relative per lane)
  kBf16 = 2,  ///< bfloat16 replicas (~4e-3 relative per lane)
};

/// "fp64" / "fp32" / "bf16" (stable CLI/bench vocabulary).
const char* ToString(ReadPrecision p);
std::optional<ReadPrecision> ParseReadPrecision(std::string_view s);

struct AmfConfig {
  /// Latent dimensionality d (paper: 10).
  std::size_t rank = 10;
  /// SGD learning rate eta (paper: 0.8).
  double learn_rate = 0.8;
  /// Regularization for user factors, lambda_u (paper: 0.001).
  double lambda_user = 0.001;
  /// Regularization for service factors, lambda_s (paper: 0.001).
  double lambda_service = 0.001;
  /// EMA rate beta of the per-entity error averages (paper: 0.3).
  double beta = 0.3;
  /// Data transformation (Box-Cox alpha, value range). Paper RT defaults.
  transform::QoSTransformConfig transform{.alpha = -0.007,
                                          .r_max = 20.0,
                                          .r_min = 0.0,
                                          .value_floor = 1e-3};
  /// Latent factors are initialized Uniform[0, init_scale). Positive
  /// uniform init keeps initial inner products near sigmoid mid-range.
  double init_scale = 0.6;
  /// Clip on |(g - r) g' / r^2| (the shared gradient coefficient of
  /// Eqs. 16-17). The relative-error loss divides by r^2, which explodes
  /// when the data transformation leaves normalized values near 0 (e.g.
  /// alpha = 1 on skewed data); unclipped, overprediction gradients are
  /// huge while underprediction gradients vanish in the sigmoid tail, and
  /// the model spirals into g ~ 0 saturation. Rarely binds (and measurably
  /// changes nothing) with a well-tuned alpha. <= 0 disables.
  double gradient_clip = 0.25;
  /// Initial per-entity average error for new users/services (paper: 1).
  double initial_error = 1.0;
  /// The relative-error loss divides by r; samples whose transformed value
  /// satisfies |r| < loss_epsilon are skipped outright (OnlineUpdate
  /// returns NaN and leaves the model untouched) instead of dividing.
  /// The transform already floors r at value_floor, so this guard only
  /// binds on misconfigured transforms or corrupted state. <= 0 disables.
  double loss_epsilon = 1e-8;
  /// Technique 3 switch: false fixes w_u = w_s = 1/2 (ablation A2).
  bool adaptive_weights = true;
  /// Element type served to the *Shared batch prediction readouts. kFp64
  /// reads the master factors (default, bit-identical to every earlier
  /// revision); kFp32/kBf16 maintain compressed replicas refreshed at the
  /// trainer's epoch barrier. Runtime-switchable under exclusion via
  /// AmfModel::SetReadPrecision. Not serialized with the model: a restored
  /// checkpoint comes back at kFp64 and the owning service re-applies its
  /// configured precision (which full-refreshes the replicas).
  ReadPrecision read_precision = ReadPrecision::kFp64;
  std::uint64_t seed = 1;
};

/// Paper Table-I configuration for response time (this is the default).
AmfConfig MakeResponseTimeConfig(std::uint64_t seed = 1);

/// Paper Table-I configuration for throughput
/// (alpha = -0.05, Rmax = 7000 kbps).
AmfConfig MakeThroughputConfig(std::uint64_t seed = 1);

}  // namespace amf::core

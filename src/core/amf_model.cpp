#include "core/amf_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/bf16.h"
#include "common/check.h"
#include "common/multiversion.h"  // AMF_TSAN_BUILD
#include "common/thread_pool.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "linalg/vector_ops.h"

namespace amf::core {

namespace {

AmfConfig Validate(AmfConfig c) {
  AMF_CHECK_MSG(c.rank > 0, "rank must be positive");
  AMF_CHECK_MSG(c.learn_rate > 0.0, "learn_rate must be positive");
  AMF_CHECK_MSG(c.lambda_user >= 0.0 && c.lambda_service >= 0.0,
                "regularization must be non-negative");
  AMF_CHECK_MSG(c.beta > 0.0 && c.beta <= 1.0, "beta must be in (0, 1]");
  AMF_CHECK_MSG(c.initial_error > 0.0, "initial_error must be positive");
  return c;
}

/// Single-accumulator dot in ascending-k order — the per-row reduction
/// order of GemvRowMajor/GemvRowMajorStrided. The per-row fallbacks of the
/// blocked shared row readout use this so a degraded block still returns
/// the exact bits the GEMV bulk pass would have.
double RowOrderDot(std::span<const double> a, const double* b,
                   std::size_t n) {
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) acc += a[k] * b[k];
  return acc;
}

/// Blocks that keep failing validation (a writer storm on these rows)
/// degrade to the per-row protocol after this many whole-block retries.
[[maybe_unused]] constexpr int kMaxBlockTries = 3;

}  // namespace

AmfModel::AmfModel(const AmfConfig& config)
    : config_(Validate(config)),
      transform_(config_.transform),
      rng_(config_.seed),
      user_(config_.rank),
      service_(config_.rank) {
  user_replica_.Configure(config_.read_precision, config_.rank);
  service_replica_.Configure(config_.read_precision, config_.rank);
}

AmfModel::AmfModel(const AmfModel& other)
    : config_(other.config_),
      transform_(other.transform_),
      rng_(other.rng_),
      user_(other.user_),
      service_(other.service_),
      user_replica_(other.user_replica_),
      service_replica_(other.service_replica_),
      user_dirty_(other.user_dirty_),
      service_dirty_(other.service_dirty_),
      updates_(other.updates()),
      nan_reinit_users_(other.nan_reinit_users()),
      nan_reinit_services_(other.nan_reinit_services()),
      replica_rows_refreshed_(other.replica_rows_refreshed()),
      replica_refreshes_(other.replica_refreshes()),
      replica_full_refreshes_(other.replica_full_refreshes()),
      replica_synced_updates_(
          other.replica_synced_updates_.load(std::memory_order_relaxed)) {}

AmfModel& AmfModel::operator=(const AmfModel& other) {
  if (this == &other) return *this;
  config_ = other.config_;
  transform_ = other.transform_;
  rng_ = other.rng_;
  user_ = other.user_;
  service_ = other.service_;
  user_replica_ = other.user_replica_;
  service_replica_ = other.service_replica_;
  user_dirty_ = other.user_dirty_;
  service_dirty_ = other.service_dirty_;
  updates_.store(other.updates(), std::memory_order_relaxed);
  nan_reinit_users_.store(other.nan_reinit_users(),
                          std::memory_order_relaxed);
  nan_reinit_services_.store(other.nan_reinit_services(),
                             std::memory_order_relaxed);
  replica_rows_refreshed_.store(other.replica_rows_refreshed(),
                                std::memory_order_relaxed);
  replica_refreshes_.store(other.replica_refreshes(),
                           std::memory_order_relaxed);
  replica_full_refreshes_.store(other.replica_full_refreshes(),
                                std::memory_order_relaxed);
  replica_synced_updates_.store(
      other.replica_synced_updates_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  return *this;
}

AmfModel::AmfModel(AmfModel&& other) noexcept
    : config_(std::move(other.config_)),
      transform_(std::move(other.transform_)),
      rng_(std::move(other.rng_)),
      user_(std::move(other.user_)),
      service_(std::move(other.service_)),
      user_replica_(std::move(other.user_replica_)),
      service_replica_(std::move(other.service_replica_)),
      user_dirty_(std::move(other.user_dirty_)),
      service_dirty_(std::move(other.service_dirty_)),
      updates_(other.updates()),
      nan_reinit_users_(other.nan_reinit_users()),
      nan_reinit_services_(other.nan_reinit_services()),
      replica_rows_refreshed_(other.replica_rows_refreshed()),
      replica_refreshes_(other.replica_refreshes()),
      replica_full_refreshes_(other.replica_full_refreshes()),
      replica_synced_updates_(
          other.replica_synced_updates_.load(std::memory_order_relaxed)) {}

AmfModel& AmfModel::operator=(AmfModel&& other) noexcept {
  if (this == &other) return *this;
  config_ = std::move(other.config_);
  transform_ = std::move(other.transform_);
  rng_ = std::move(other.rng_);
  user_ = std::move(other.user_);
  service_ = std::move(other.service_);
  user_replica_ = std::move(other.user_replica_);
  service_replica_ = std::move(other.service_replica_);
  user_dirty_ = std::move(other.user_dirty_);
  service_dirty_ = std::move(other.service_dirty_);
  updates_.store(other.updates(), std::memory_order_relaxed);
  nan_reinit_users_.store(other.nan_reinit_users(),
                          std::memory_order_relaxed);
  nan_reinit_services_.store(other.nan_reinit_services(),
                             std::memory_order_relaxed);
  replica_rows_refreshed_.store(other.replica_rows_refreshed(),
                                std::memory_order_relaxed);
  replica_refreshes_.store(other.replica_refreshes(),
                           std::memory_order_relaxed);
  replica_full_refreshes_.store(other.replica_full_refreshes(),
                                std::memory_order_relaxed);
  replica_synced_updates_.store(
      other.replica_synced_updates_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  return *this;
}

void AmfModel::Grow(FactorArena& arena, ReplicaArena& replica,
                    DirtyRowSet& dirty, std::size_t need) {
  const std::size_t old = arena.Grow(need, config_.initial_error);
  // Same rng_ draw order as per-entity registration (and as the pre-arena
  // vector layout): rank draws per entity, registration order. Pad lanes
  // stay at the arena's zero fill.
  for (std::size_t i = old; i < need; ++i) {
    for (double& x : arena.row_span(i)) {
      x = rng_.Uniform() * config_.init_scale;
    }
  }
  if (replica.enabled()) {
    // Replica growth rides the same registration exclusion that makes
    // master growth safe; publishing here (not at the next barrier) keeps
    // the invariant that every registered row is replica-readable.
    replica.Grow(need);
    dirty.EnsureRows(need);
    for (std::size_t i = old; i < need; ++i) {
      replica.PublishRow(i, arena.row_span(i));
    }
  }
}

void AmfModel::EnsureUser(data::UserId u) {
  const std::size_t need = static_cast<std::size_t>(u) + 1;
  if (user_.size() < need) Grow(user_, user_replica_, user_dirty_, need);
}

void AmfModel::EnsureService(data::ServiceId s) {
  const std::size_t need = static_cast<std::size_t>(s) + 1;
  if (service_.size() < need) {
    Grow(service_, service_replica_, service_dirty_, need);
  }
}

void AmfModel::RetireUser(data::UserId u) {
  AMF_CHECK_MSG(HasUser(u), "RetireUser: unknown user " << u);
  const std::size_t d = config_.rank;
  const std::span<double> row = user_.row_span(u);
  // Stage the cold-start row outside the seqlock bracket, then publish:
  // readers either see the old tenant's row or the fresh one, never a mix.
  std::vector<double> fresh(d);
  FillDeterministicRow(u, fresh);
  common::SeqlockBeginWrite(user_.version(u));
  for (std::size_t k = 0; k < d; ++k) {
    common::SeqlockStore(row[k], fresh[k]);
  }
  common::RelaxedStore(user_.error(u), config_.initial_error);
  common::SeqlockEndWrite(user_.version(u));
  // The replica is re-initialized in the same publish step, not left for
  // the next barrier: a recycled slot must never serve the old tenant's
  // compressed row to replica readers while the master already holds the
  // cold-start row.
  if (user_replica_.enabled()) user_replica_.PublishRow(u, fresh);
}

void AmfModel::RetireService(data::ServiceId s) {
  AMF_CHECK_MSG(HasService(s), "RetireService: unknown service " << s);
  const std::size_t d = config_.rank;
  const std::span<double> row = service_.row_span(s);
  std::vector<double> fresh(d);
  FillDeterministicRow(s, fresh);
  common::SeqlockBeginWrite(service_.version(s));
  for (std::size_t k = 0; k < d; ++k) {
    common::SeqlockStore(row[k], fresh[k]);
  }
  common::RelaxedStore(service_.error(s), config_.initial_error);
  common::SeqlockEndWrite(service_.version(s));
  if (service_replica_.enabled()) service_replica_.PublishRow(s, fresh);
}

std::uint32_t AmfModel::ServiceRowVersion(data::ServiceId s) const {
  AMF_CHECK_MSG(HasService(s), "ServiceRowVersion: unknown service " << s);
  return common::RelaxedLoad(service_.version(s));
}

void AmfModel::OverwriteServiceRow(data::ServiceId s,
                                   std::span<const double> row,
                                   double error) {
  AMF_CHECK_MSG(HasService(s), "OverwriteServiceRow: unknown service " << s);
  AMF_CHECK_MSG(row.size() == config_.rank,
                "OverwriteServiceRow: row size " << row.size() << " != rank "
                                                 << config_.rank);
  const std::span<double> dst = service_.row_span(s);
  common::SeqlockBeginWrite(service_.version(s));
  for (std::size_t k = 0; k < row.size(); ++k) {
    common::SeqlockStore(dst[k], row[k]);
  }
  common::RelaxedStore(service_.error(s), error);
  common::SeqlockEndWrite(service_.version(s));
  if (service_replica_.enabled()) service_replica_.PublishRow(s, row);
}

bool AmfModel::RepairNonFinite(std::span<double> v, double& error,
                               std::uint64_t entity_id) {
  bool poisoned = false;
  for (const double x : v) {
    if (!std::isfinite(x)) {
      poisoned = true;
      break;
    }
  }
  if (!poisoned) return false;
  FillDeterministicRow(entity_id, v);
  error = config_.initial_error;
  return true;
}

void AmfModel::FillDeterministicRow(std::uint64_t entity_id,
                                    std::span<double> out) const {
  // Deterministic refill without touching the shared rng_ (concurrent
  // striped-lock updates may repair different entities at once).
  std::uint64_t state =
      common::DeriveSeed(config_.seed ^ 0x9e3779b97f4a7c15ULL, entity_id);
  for (double& x : out) {
    const std::uint64_t bits = common::SplitMix64(state);
    x = static_cast<double>(bits >> 11) * 0x1.0p-53 * config_.init_scale;
  }
}

double AmfModel::OnlineUpdate(data::UserId u, data::ServiceId s,
                              double raw_value) {
  // Hard ingestion guard: a non-finite observation must never reach the
  // transform (BoxCox domain) or the loss. Leave the model untouched.
  if (!std::isfinite(raw_value)) {
    return std::numeric_limits<double>::quiet_NaN();
  }

  EnsureUser(u);
  EnsureService(s);

  const std::span<double> ui = user_.row_span(u);
  const std::span<double> sj = service_.row_span(s);

  // NaN-poisoning detector: a corrupted latent vector (from a bad
  // checkpoint, a torn write, or any earlier bug) would otherwise turn
  // every future update on this entity into NaN and spread through the
  // shared factors during replay. Drop and re-initialize it instead.
  if (RepairNonFinite(ui, user_.error(u), u)) {
    nan_reinit_users_.fetch_add(1, std::memory_order_relaxed);
    MarkUserDirty(u);
  }
  if (RepairNonFinite(sj, service_.error(s), s)) {
    nan_reinit_services_.fetch_add(1, std::memory_order_relaxed);
    MarkServiceDirty(s);
  }

  // Data transformation (Eqs. 3-4); r is floored away from 0.
  const double r = transform_.Forward(raw_value);
  // Loss guard: e_us and the gradient divide by r; skip the sample rather
  // than divide when the transform left it at (or below) zero.
  if (!std::isfinite(r) ||
      (config_.loss_epsilon > 0.0 && std::abs(r) < config_.loss_epsilon)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  updates_.fetch_add(1, std::memory_order_relaxed);

  const double x = linalg::Dot(ui, sj);
  const double g = transform::Sigmoid(x);
  const double gp = g * (1.0 - g);

  // Relative error of this sample (Eq. 15).
  const double e_us = std::abs(r - g) / r;

  // Adaptive weights (Eq. 12) from the *current* entity errors.
  double wu = 0.5;
  double ws = 0.5;
  if (config_.adaptive_weights) {
    const double eu = user_.error(u);
    const double es = service_.error(s);
    const double sum = eu + es;
    if (sum > 0.0) {
      wu = eu / sum;
      ws = es / sum;
    }
  }

  // EMA updates of the entity errors (Eqs. 13-14).
  user_.error(u) += config_.beta * wu * (e_us - user_.error(u));
  service_.error(s) += config_.beta * ws * (e_us - service_.error(s));

  // Weighted SGD step (Eqs. 16-17), simultaneous in U_u and S_s.
  double common_coef = (g - r) * gp / (r * r);
  if (config_.gradient_clip > 0.0) {
    common_coef = std::clamp(common_coef, -config_.gradient_clip,
                             config_.gradient_clip);
  }
  const double eta = config_.learn_rate;
  const double cu = eta * wu;
  const double cs = eta * ws;
  linalg::SgdPairStep(ui, sj, common_coef, cu, cs, config_.lambda_user,
                      config_.lambda_service);
  // Replica bookkeeping: both masters mutated; their compressed copies go
  // stale until the next epoch-barrier refresh.
  MarkUserDirty(u);
  MarkServiceDirty(s);
  return e_us;
}

double AmfModel::OnlineUpdateGuarded(data::UserId u, data::ServiceId s,
                                     double raw_value) {
  // Same guards and math as OnlineUpdate; only the publication differs.
  if (!std::isfinite(raw_value)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  // Growth would reallocate storage under concurrent readers; entities
  // must be registered up front (the concurrent service pre-registers
  // under its exclusive lock before any sample reaches the trainer).
  AMF_DCHECK(HasUser(u) && HasService(s));

  const std::size_t d = config_.rank;
  const std::span<double> ui = user_.row_span(u);
  const std::span<double> sj = service_.row_span(s);

  // Thread-local so concurrent shard workers never share scratch; the
  // resize is a no-op after the first call per thread.
  thread_local std::vector<double> new_u, new_s;
  new_u.resize(d);
  new_s.resize(d);

  // NaN-poisoning repair, published through the seqlock (the serial
  // in-place repair would hand readers a torn row).
  const auto repair_guarded =
      [&](std::span<double> row, double& err, common::SeqlockVersion& ver,
          std::uint64_t id, std::vector<double>& scratch,
          std::atomic<std::uint64_t>& counter, DirtyRowSet& dirty) {
        bool poisoned = false;
        for (const double x : row) {
          if (!std::isfinite(x)) {
            poisoned = true;
            break;
          }
        }
        if (!poisoned) return;
        FillDeterministicRow(id, scratch);
        common::SeqlockBeginWrite(ver);
        for (std::size_t k = 0; k < d; ++k) {
          common::SeqlockStore(row[k], scratch[k]);
        }
        common::RelaxedStore(err, config_.initial_error);
        common::SeqlockEndWrite(ver);
        counter.fetch_add(1, std::memory_order_relaxed);
        // The repair may be the only mutation this call performs (the
        // sample can still be refused below), so mark here, not just at
        // the final publish.
        if (replicas_enabled()) dirty.Mark(id);
      };
  repair_guarded(ui, user_.error(u), user_.version(u), u, new_u,
                 nan_reinit_users_, user_dirty_);
  repair_guarded(sj, service_.error(s), service_.version(s), s, new_s,
                 nan_reinit_services_, service_dirty_);

  const double r = transform_.Forward(raw_value);
  if (!std::isfinite(r) ||
      (config_.loss_epsilon > 0.0 && std::abs(r) < config_.loss_epsilon)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  updates_.fetch_add(1, std::memory_order_relaxed);

  // Plain reads are sound here: the caller holds writer exclusion for both
  // rows, and concurrent readers only load.
  const double x = linalg::Dot(ui, sj);
  const double g = transform::Sigmoid(x);
  const double gp = g * (1.0 - g);
  const double e_us = std::abs(r - g) / r;

  double wu = 0.5;
  double ws = 0.5;
  const double eu = user_.error(u);
  const double es = service_.error(s);
  if (config_.adaptive_weights) {
    const double sum = eu + es;
    if (sum > 0.0) {
      wu = eu / sum;
      ws = es / sum;
    }
  }
  const double new_eu = eu + config_.beta * wu * (e_us - eu);
  const double new_es = es + config_.beta * ws * (e_us - es);

  double common_coef = (g - r) * gp / (r * r);
  if (config_.gradient_clip > 0.0) {
    common_coef = std::clamp(common_coef, -config_.gradient_clip,
                             config_.gradient_clip);
  }
  const double cu = config_.learn_rate * wu;
  const double cs = config_.learn_rate * ws;
  for (std::size_t k = 0; k < d; ++k) {
    const double uk = ui[k];
    const double sk = sj[k];
    new_u[k] = uk - cu * (common_coef * sk + config_.lambda_user * uk);
    new_s[k] = sk - cs * (common_coef * uk + config_.lambda_service * sk);
  }

  // The publish dirties exactly three lines per row family at rank <= 8
  // (row line(s) + its private meta line) — never a neighboring row's.
  common::SeqlockBeginWrite(user_.version(u));
  for (std::size_t k = 0; k < d; ++k) common::SeqlockStore(ui[k], new_u[k]);
  common::RelaxedStore(user_.error(u), new_eu);
  common::SeqlockEndWrite(user_.version(u));

  common::SeqlockBeginWrite(service_.version(s));
  for (std::size_t k = 0; k < d; ++k) common::SeqlockStore(sj[k], new_s[k]);
  common::RelaxedStore(service_.error(s), new_es);
  common::SeqlockEndWrite(service_.version(s));

  MarkUserDirty(u);
  MarkServiceDirty(s);
  return e_us;
}

double AmfModel::SharedDotWithService(std::span<const double> urow,
                                      data::ServiceId s) const {
  const std::size_t d = config_.rank;
  const double* row = service_.row(s);
  double acc = 0.0;
  common::SeqlockRead(service_.version(s), [&] {
    // Mirror linalg::Dot's 4-way split reduction exactly: the serving
    // coalescer batches concurrent single predictions through
    // PredictManyRawShared (whose gather pass reduces via linalg::Dot),
    // and its contract is that a coalesced answer is bit-identical at
    // fp64 to the per-request PredictQoS it replaced. A plain ascending
    // accumulator here would round differently in the last bits.
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    std::size_t k = 0;
    for (; k + 4 <= d; k += 4) {
      s0 += urow[k + 0] * common::RelaxedLoad(row[k + 0]);
      s1 += urow[k + 1] * common::RelaxedLoad(row[k + 1]);
      s2 += urow[k + 2] * common::RelaxedLoad(row[k + 2]);
      s3 += urow[k + 3] * common::RelaxedLoad(row[k + 3]);
    }
    double a = (s0 + s1) + (s2 + s3);
    for (; k < d; ++k) a += urow[k] * common::RelaxedLoad(row[k]);
    acc = a;
  });
  return acc;
}

void AmfModel::SharedDotBlock(std::span<const double> urow, std::size_t begin,
                              std::size_t end, std::span<double> out) const {
  const std::size_t d = config_.rank;
  [[maybe_unused]] const std::size_t stride = service_.stride();
  thread_local std::vector<double> srow;
  // Per-row fallback: a consistent snapshot through the row's own seqlock,
  // reduced in GEMV row order so the bits match the bulk pass.
  const auto row_fallback = [&](std::size_t s) {
    srow.resize(d);
    common::SeqlockReadRow(service_.version(s), service_.row_span(s), srow);
    return RowOrderDot(urow, srow.data(), d);
  };
  [[maybe_unused]] common::SeqlockVersion snap[kSharedPredictBlock];
  for (std::size_t b = begin; b < end; b += kSharedPredictBlock) {
    const std::size_t n = std::min(kSharedPredictBlock, end - b);
    const std::span<double> chunk = out.subspan(b - begin, n);
#if defined(AMF_TSAN_BUILD)
    // TSan cannot model the discarded-torn-read bulk pass (its data loads
    // are deliberately non-atomic); use the per-row atomic protocol.
    for (std::size_t i = 0; i < n; ++i) chunk[i] = row_fallback(b + i);
#else
    // Block protocol: one version sweep brackets a strided SIMD GEMV over
    // the whole chunk. A failed re-sweep discards the (possibly torn)
    // chunk and retries; a writer storm degrades to per-row snapshots.
    int tries = 0;
    while (!common::SeqlockTryReadBlock(
        n, [&](std::size_t i) -> const common::SeqlockVersion& {
          return service_.version(b + i);
        },
        snap,
        [&] {
          linalg::GemvRowMajorStrided(urow, service_.row(b), stride, chunk);
        })) {
      common::SeqlockRetryCounter().fetch_add(1, std::memory_order_relaxed);
      if (++tries >= kMaxBlockTries) {
        for (std::size_t i = 0; i < n; ++i) chunk[i] = row_fallback(b + i);
        break;
      }
    }
#endif
  }
}

void AmfModel::SharedDotBlockReplica(std::span<const double> urow,
                                     std::size_t begin, std::size_t end,
                                     std::span<double> out) const {
  const std::size_t d = config_.rank;
  const ReplicaArena& rep = service_replica_;
  [[maybe_unused]] const std::size_t stride = rep.stride();
  thread_local std::vector<double> srow;
  // Per-row fallback: a consistent widened snapshot through the replica
  // row's own seqlock, reduced in GEMV row order (matches the bulk
  // kernels' per-row reduction).
  const auto row_fallback = [&](std::size_t s) {
    srow.resize(d);
    rep.SnapshotRow(s, srow);
    return RowOrderDot(urow, srow.data(), d);
  };
  [[maybe_unused]] common::SeqlockVersion snap[kSharedPredictBlock];
  for (std::size_t b = begin; b < end; b += kSharedPredictBlock) {
    const std::size_t n = std::min(kSharedPredictBlock, end - b);
    const std::span<double> chunk = out.subspan(b - begin, n);
#if defined(AMF_TSAN_BUILD)
    // Same TSan carve-out as the master path: the bulk pass reads the
    // slab non-atomically (torn attempts are discarded, never observed),
    // which TSan cannot model — degrade to per-row atomic snapshots.
    for (std::size_t i = 0; i < n; ++i) chunk[i] = row_fallback(b + i);
#else
    // Block protocol against the replica's PACKED version words: the
    // sweep for 64 rows touches 4 cache lines (vs 64 private meta lines
    // on the master path), then one mixed-precision strided GEMV streams
    // the compressed rows — the bytes-per-scan win the replicas exist
    // for. Failed re-sweeps discard and retry; a refresh storm degrades
    // to per-row snapshots.
    int tries = 0;
    while (!common::SeqlockTryReadBlock(
        n, [&](std::size_t i) -> const common::SeqlockVersion& {
          return rep.version(b + i);
        },
        snap,
        [&] {
          if (rep.precision() == ReadPrecision::kFp32) {
            linalg::GemvRowMajorStridedFp32(urow, rep.fp32_row(b), stride,
                                            chunk);
          } else {
            linalg::GemvRowMajorStridedBf16(urow, rep.bf16_row(b), stride,
                                            chunk);
          }
        })) {
      common::SeqlockRetryCounter().fetch_add(1, std::memory_order_relaxed);
      if (++tries >= kMaxBlockTries) {
        for (std::size_t i = 0; i < n; ++i) chunk[i] = row_fallback(b + i);
        break;
      }
    }
#endif
  }
}

void AmfModel::SharedUserRow(data::UserId u, std::span<double> dst) const {
  if (user_replica_.enabled()) {
    user_replica_.SnapshotRow(u, dst);
  } else {
    common::SeqlockReadRow(user_.version(u), user_.row_span(u), dst);
  }
}

double AmfModel::PredictNormalizedShared(data::UserId u,
                                         data::ServiceId s) const {
  AMF_CHECK_MSG(HasUser(u) && HasService(s),
                "shared prediction for unregistered entity (" << u << ","
                                                              << s << ")");
  const std::size_t d = config_.rank;
  thread_local std::vector<double> urow;
  urow.resize(d);
  SharedUserRow(u, urow);
  double v;
  if (replicas_enabled()) {
    thread_local std::vector<double> srow;
    srow.resize(d);
    service_replica_.SnapshotRow(s, srow);
    v = RowOrderDot(urow, srow.data(), d);
  } else {
    v = SharedDotWithService(urow, s);
  }
  // One-element SigmoidRow, NOT scalar Sigmoid: the batched shared paths
  // (PredictManyRawShared, PredictRowRawShared) transform via SigmoidRow,
  // whose ExpRow differs from std::exp by a few ulp. The serving
  // coalescer's contract — a coalesced answer is bit-identical at fp64
  // to the per-request one — requires the single path to run the exact
  // same element-wise math.
  transform::SigmoidRow(std::span<const double>(&v, 1),
                        std::span<double>(&v, 1));
  return v;
}

double AmfModel::PredictRawShared(data::UserId u, data::ServiceId s) const {
  // One-element InverseRow for the same bit-identity reason as the
  // SigmoidRow call in PredictNormalizedShared.
  double v = PredictNormalizedShared(u, s);
  transform_.InverseRow(std::span<double>(&v, 1));
  return v;
}

void AmfModel::PredictManyRawShared(data::UserId u,
                                    std::span<const data::ServiceId> services,
                                    std::span<double> out) const {
  AMF_CHECK_MSG(services.size() == out.size(),
                "services/out size mismatch");
  AMF_CHECK_MSG(HasUser(u), "shared prediction for unregistered user " << u);
  const std::size_t d = config_.rank;
  thread_local std::vector<double> urow;
  urow.resize(d);
  SharedUserRow(u, urow);
  for (const data::ServiceId s : services) {
    AMF_CHECK_MSG(HasService(s),
                  "shared prediction for unregistered service " << s);
  }
  if (replicas_enabled()) {
    // Replica gather: same block-batched validation against the packed
    // replica versions; the bulk pass widens each compressed row in GEMV
    // row order (single ascending-k accumulator — identical reduction to
    // the per-row fallback, in this same strict-FP TU).
    const ReplicaArena& rep = service_replica_;
    thread_local std::vector<double> srow;
    const auto rep_fallback = [&](data::ServiceId s) {
      srow.resize(d);
      rep.SnapshotRow(s, srow);
      return RowOrderDot(urow, srow.data(), d);
    };
    [[maybe_unused]] common::SeqlockVersion snap[kSharedPredictBlock];
    for (std::size_t b = 0; b < services.size(); b += kSharedPredictBlock) {
      const std::size_t n =
          std::min(kSharedPredictBlock, services.size() - b);
      const std::span<double> chunk = out.subspan(b, n);
#if defined(AMF_TSAN_BUILD)
      for (std::size_t i = 0; i < n; ++i) {
        chunk[i] = rep_fallback(services[b + i]);
      }
#else
      int tries = 0;
      while (!common::SeqlockTryReadBlock(
          n, [&](std::size_t i) -> const common::SeqlockVersion& {
            return rep.version(services[b + i]);
          },
          snap,
          [&] {
            for (std::size_t i = 0; i < n; ++i) {
              const std::size_t s = services[b + i];
              double acc = 0.0;
              if (rep.precision() == ReadPrecision::kFp32) {
                const float* row = rep.fp32_row(s);
                for (std::size_t k = 0; k < d; ++k) {
                  acc += urow[k] * static_cast<double>(row[k]);
                }
              } else {
                const common::Bf16* row = rep.bf16_row(s);
                for (std::size_t k = 0; k < d; ++k) {
                  acc += urow[k] * common::Bf16ToDouble(row[k]);
                }
              }
              chunk[i] = acc;
            }
          })) {
        common::SeqlockRetryCounter().fetch_add(1,
                                                std::memory_order_relaxed);
        if (++tries >= kMaxBlockTries) {
          for (std::size_t i = 0; i < n; ++i) {
            chunk[i] = rep_fallback(services[b + i]);
          }
          break;
        }
      }
#endif
    }
    transform::SigmoidRow(out, out);
    transform_.InverseRow(out);
    return;
  }
  // Gathered rows validate in blocks too: one version sweep per
  // kSharedPredictBlock scattered rows around a bulk dot pass (linalg::Dot
  // — the same reduction PredictManyRaw uses, so quiescent results match
  // it bit for bit).
  thread_local std::vector<double> srow;
  const auto row_fallback = [&](data::ServiceId s) {
    srow.resize(d);
    common::SeqlockReadRow(service_.version(s), service_.row_span(s), srow);
    return linalg::Dot(urow, std::span<const double>(srow.data(), d));
  };
  [[maybe_unused]] common::SeqlockVersion snap[kSharedPredictBlock];
  for (std::size_t b = 0; b < services.size(); b += kSharedPredictBlock) {
    const std::size_t n = std::min(kSharedPredictBlock, services.size() - b);
    const std::span<double> chunk = out.subspan(b, n);
#if defined(AMF_TSAN_BUILD)
    for (std::size_t i = 0; i < n; ++i) {
      chunk[i] = row_fallback(services[b + i]);
    }
#else
    int tries = 0;
    while (!common::SeqlockTryReadBlock(
        n, [&](std::size_t i) -> const common::SeqlockVersion& {
          return service_.version(services[b + i]);
        },
        snap,
        [&] {
          for (std::size_t i = 0; i < n; ++i) {
            chunk[i] = linalg::Dot(
                urow, std::span<const double>(service_.row(services[b + i]),
                                              d));
          }
        })) {
      common::SeqlockRetryCounter().fetch_add(1, std::memory_order_relaxed);
      if (++tries >= kMaxBlockTries) {
        for (std::size_t i = 0; i < n; ++i) {
          chunk[i] = row_fallback(services[b + i]);
        }
        break;
      }
    }
#endif
  }
  transform::SigmoidRow(out, out);
  transform_.InverseRow(out);
}

void AmfModel::PredictRowRawShared(data::UserId u,
                                   std::span<double> out) const {
  AMF_CHECK_MSG(HasUser(u), "shared row prediction for unregistered user "
                                << u);
  AMF_CHECK_MSG(out.size() <= num_services(),
                "row of " << out.size() << " exceeds " << num_services()
                          << " registered services");
  const std::size_t d = config_.rank;
  thread_local std::vector<double> urow;
  urow.resize(d);
  SharedUserRow(u, urow);
  if (replicas_enabled()) {
    SharedDotBlockReplica(urow, 0, out.size(), out);
  } else {
    SharedDotBlock(urow, 0, out.size(), out);
  }
  transform::SigmoidRow(out, out);
  transform_.InverseRow(out);
}

double AmfModel::UserErrorShared(data::UserId u) const {
  AMF_CHECK(HasUser(u));
  return common::RelaxedLoad(user_.error(u));
}

double AmfModel::ServiceErrorShared(data::ServiceId s) const {
  AMF_CHECK(HasService(s));
  return common::RelaxedLoad(service_.error(s));
}

double AmfModel::PredictionUncertaintyShared(data::UserId u,
                                             data::ServiceId s) const {
  return 0.5 * (UserErrorShared(u) + ServiceErrorShared(s));
}

double AmfModel::PredictRaw(data::UserId u, data::ServiceId s) const {
  return transform_.Inverse(PredictNormalized(u, s));
}

double AmfModel::PredictNormalized(data::UserId u, data::ServiceId s) const {
  AMF_CHECK_MSG(HasUser(u) && HasService(s),
                "prediction for unregistered entity (" << u << "," << s
                                                       << ")");
  return transform::Sigmoid(
      linalg::Dot(user_.row_span(u), service_.row_span(s)));
}

void AmfModel::PredictRowNormalized(data::UserId u,
                                    std::span<double> out) const {
  AMF_CHECK_MSG(HasUser(u), "row prediction for unregistered user " << u);
  AMF_CHECK_MSG(out.size() <= num_services(),
                "row of " << out.size() << " exceeds " << num_services()
                          << " registered services");
  linalg::GemvRowMajorStrided(user_.row_span(u), service_.data(),
                              service_.stride(), out);
  transform::SigmoidRow(out, out);
}

void AmfModel::PredictRowRaw(data::UserId u, std::span<double> out) const {
  PredictRowNormalized(u, out);
  transform_.InverseRow(out);
}

void AmfModel::PredictManyNormalized(
    data::UserId u, std::span<const data::ServiceId> services,
    std::span<double> out) const {
  AMF_CHECK_MSG(services.size() == out.size(),
                "services/out size mismatch");
  AMF_CHECK_MSG(HasUser(u), "batch prediction for unregistered user " << u);
  const std::span<const double> x = user_.row_span(u);
  for (std::size_t i = 0; i < services.size(); ++i) {
    AMF_CHECK_MSG(HasService(services[i]),
                  "batch prediction for unregistered service "
                      << services[i]);
    out[i] = linalg::Dot(x, service_.row_span(services[i]));
  }
  transform::SigmoidRow(out, out);
}

void AmfModel::PredictManyRaw(data::UserId u,
                              std::span<const data::ServiceId> services,
                              std::span<double> out) const {
  PredictManyNormalized(u, services, out);
  transform_.InverseRow(out);
}

void AmfModel::PredictMatrixImpl(linalg::Matrix* out,
                                 common::ThreadPool* pool, bool raw) const {
  AMF_CHECK(out != nullptr);
  out->Resize(num_users(), num_services());
  if (num_users() == 0 || num_services() == 0) return;
  common::ThreadPool& tp = pool ? *pool : common::ThreadPool::Global();
  tp.ParallelFor(0, num_users(), [&](std::size_t u) {
    const std::span<double> row = out->row(u);
    PredictRowNormalized(static_cast<data::UserId>(u), row);
    if (raw) transform_.InverseRow(row);
  });
}

void AmfModel::PredictMatrixNormalized(linalg::Matrix* out,
                                       common::ThreadPool* pool) const {
  PredictMatrixImpl(out, pool, /*raw=*/false);
}

void AmfModel::PredictMatrixRaw(linalg::Matrix* out,
                                common::ThreadPool* pool) const {
  PredictMatrixImpl(out, pool, /*raw=*/true);
}

double AmfModel::UserError(data::UserId u) const {
  AMF_CHECK(HasUser(u));
  return user_.error(u);
}

double AmfModel::ServiceError(data::ServiceId s) const {
  AMF_CHECK(HasService(s));
  return service_.error(s);
}

double AmfModel::PredictionUncertainty(data::UserId u,
                                       data::ServiceId s) const {
  return 0.5 * (UserError(u) + ServiceError(s));
}

std::span<const double> AmfModel::UserFactors(data::UserId u) const {
  AMF_CHECK(HasUser(u));
  return user_.row_span(u);
}

std::span<const double> AmfModel::ServiceFactors(data::ServiceId s) const {
  AMF_CHECK(HasService(s));
  return service_.row_span(s);
}

std::span<double> AmfModel::MutableUserFactors(data::UserId u) {
  AMF_CHECK(HasUser(u));
  return user_.row_span(u);
}

std::span<double> AmfModel::MutableServiceFactors(data::ServiceId s) {
  AMF_CHECK(HasService(s));
  return service_.row_span(s);
}

void AmfModel::SetUserError(data::UserId u, double e) {
  AMF_CHECK(HasUser(u));
  AMF_CHECK_MSG(e >= 0.0, "entity error must be non-negative");
  user_.error(u) = e;
}

void AmfModel::SetServiceError(data::ServiceId s, double e) {
  AMF_CHECK(HasService(s));
  AMF_CHECK_MSG(e >= 0.0, "entity error must be non-negative");
  service_.error(s) = e;
}

std::size_t AmfModel::RebuildReplicas() {
  user_replica_.Configure(config_.read_precision, config_.rank);
  service_replica_.Configure(config_.read_precision, config_.rank);
  if (!replicas_enabled()) {
    user_dirty_.Clear();
    service_dirty_.Clear();
    replica_synced_updates_.store(updates(), std::memory_order_relaxed);
    return 0;
  }
  user_replica_.Grow(user_.size());
  service_replica_.Grow(service_.size());
  user_dirty_.EnsureRows(user_.size());
  service_dirty_.EnsureRows(service_.size());
  for (std::size_t i = 0; i < user_.size(); ++i) {
    user_replica_.PublishRow(i, user_.row_span(i));
  }
  for (std::size_t i = 0; i < service_.size(); ++i) {
    service_replica_.PublishRow(i, service_.row_span(i));
  }
  user_dirty_.Clear();
  service_dirty_.Clear();
  replica_synced_updates_.store(updates(), std::memory_order_relaxed);
  return user_.size() + service_.size();
}

void AmfModel::SetReadPrecision(ReadPrecision precision) {
  config_.read_precision = precision;
  const std::size_t rows = RebuildReplicas();
  if (replicas_enabled()) {
    replica_full_refreshes_.fetch_add(1, std::memory_order_relaxed);
    replica_rows_refreshed_.fetch_add(rows, std::memory_order_relaxed);
  }
}

std::size_t AmfModel::RefreshReplicas() {
  if (!replicas_enabled()) return 0;
  std::size_t rows = 0;
  rows += user_dirty_.Drain(
      [&](std::size_t i) { user_replica_.PublishRow(i, user_.row_span(i)); });
  rows += service_dirty_.Drain([&](std::size_t i) {
    service_replica_.PublishRow(i, service_.row_span(i));
  });
  replica_refreshes_.fetch_add(1, std::memory_order_relaxed);
  replica_rows_refreshed_.fetch_add(rows, std::memory_order_relaxed);
  replica_synced_updates_.store(updates(), std::memory_order_relaxed);
  return rows;
}

std::size_t AmfModel::RefreshAllReplicas() {
  if (!replicas_enabled()) return 0;
  const std::size_t rows = RebuildReplicas();
  replica_full_refreshes_.fetch_add(1, std::memory_order_relaxed);
  replica_rows_refreshed_.fetch_add(rows, std::memory_order_relaxed);
  return rows;
}

std::vector<double> PredictSamplesRaw(
    const AmfModel& model, std::span<const data::QoSSample> samples) {
  std::vector<double> out(samples.size());
  std::unordered_map<data::UserId, std::vector<std::size_t>> by_user;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    by_user[samples[i].user].push_back(i);
  }
  std::vector<data::ServiceId> ids;
  std::vector<double> scores;
  for (const auto& [u, idx] : by_user) {
    ids.clear();
    ids.reserve(idx.size());
    for (std::size_t i : idx) ids.push_back(samples[i].service);
    scores.resize(ids.size());
    model.PredictManyRaw(u, ids, scores);
    for (std::size_t j = 0; j < idx.size(); ++j) out[idx[j]] = scores[j];
  }
  return out;
}

}  // namespace amf::core

// Lock-striped parallel replay over a shared AmfModel.
//
// The online update touches exactly one user's and one service's state, so
// updates for disjoint (user, service) pairs commute. This trainer runs
// replay epochs across a thread pool, serializing conflicting updates with
// two arrays of striped mutexes (one per user stripe, one per service
// stripe), acquired in a fixed user-then-service order (deadlock-free:
// the two pools are disjoint and every thread acquires them in the same
// order). At the paper's scale (142 x 4500) stripe contention is low and
// the cold-start fit parallelizes nearly linearly on multicore hosts.
//
// Scope: batch/cold-start acceleration. The sequential OnlineTrainer
// remains the reference for Algorithm 1 (expiration, convergence, queue).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "core/amf_model.h"

namespace amf::core {

struct ParallelReplayConfig {
  /// Worker threads (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Mutex stripes per entity kind. More stripes = less contention.
  std::size_t stripes = 64;
  /// Shuffle seed for epoch orders.
  std::uint64_t seed = 7;
};

class ParallelReplayTrainer {
 public:
  /// The trainer updates `model` in place; the model must outlive it.
  /// Every entity that appears in a replayed sample must already be
  /// registered (EnsureUser/EnsureService) — growth is not thread-safe.
  /// ReplayEpoch enforces this with a debug-mode check (AMF_DCHECK);
  /// release builds skip the scan.
  ParallelReplayTrainer(AmfModel& model,
                        const ParallelReplayConfig& config = {});

  /// One parallel epoch over `samples` (each applied exactly once, in a
  /// fresh shuffled order). Returns the mean pre-update relative error.
  /// Requires a non-empty span.
  double ReplayEpoch(std::span<const data::QoSSample> samples);

  /// Runs epochs until the mean error's relative improvement drops below
  /// `tol` for `patience` consecutive epochs, or `max_epochs` is reached.
  /// Returns the number of epochs run.
  std::size_t ReplayUntilConverged(std::span<const data::QoSSample> samples,
                                   double tol = 5e-3,
                                   std::size_t patience = 2,
                                   std::size_t max_epochs = 200);

  double last_epoch_error() const { return last_epoch_error_; }

 private:
  AmfModel& model_;
  ParallelReplayConfig config_;
  common::Rng rng_;
  std::vector<std::mutex> user_locks_;
  std::vector<std::mutex> service_locks_;
  std::unique_ptr<common::ThreadPool> pool_;
  double last_epoch_error_ = 0.0;
};

}  // namespace amf::core

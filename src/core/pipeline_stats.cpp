#include "core/pipeline_stats.h"

#include <sstream>

namespace amf::core {

std::string PipelineStats::ToString() const {
  std::ostringstream oss;
  oss << "accepted=" << accepted << " rejected{nonfinite=" << rejected_nonfinite
      << " nonpositive=" << rejected_nonpositive
      << " out_of_range=" << rejected_out_of_range
      << " bad_timestamp=" << rejected_bad_timestamp
      << " duplicate=" << rejected_duplicate << "}"
      << " quarantined=" << quarantined_outlier
      << " dropped{ring=" << ring_dropped
      << " overflow=" << dropped_on_overflow
      << " journal=" << journal_dropped << "}"
      << " journal{appended=" << journal_appended
      << " replayed=" << journal_replayed
      << " replay_rejected=" << journal_replay_rejected << "}"
      << " lifecycle{purged=" << purged_samples
      << " unregistered=" << rejected_unregistered << "}"
      << " skipped_updates=" << skipped_updates
      << " nan_reinit{users=" << nan_reinit_users
      << " services=" << nan_reinit_services << "}"
      << " clock_regressions=" << clock_regressions
      << " checkpoints{written=" << checkpoints_written
      << " corrupt=" << checkpoints_corrupt << "}";
  return oss.str();
}

}  // namespace amf::core

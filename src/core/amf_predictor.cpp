#include "core/amf_predictor.h"

#include "common/check.h"
#include "common/rng.h"

namespace amf::core {

AmfPredictor::AmfPredictor(const AmfConfig& config,
                           const TrainerConfig& trainer_config)
    : model_(std::make_unique<AmfModel>(config)),
      trainer_(std::make_unique<OnlineTrainer>(*model_, trainer_config)) {}

std::string AmfPredictor::name() const {
  if (!model_->config().adaptive_weights) return "AMF(fixed-w)";
  if (model_->config().transform.alpha == 1.0) return "AMF(a=1)";
  return "AMF";
}

void AmfPredictor::Fit(const data::SparseMatrix& train) {
  AMF_CHECK_MSG(train.nnz() > 0, "AMF requires a non-empty training set");
  // Register the full slice shape so Predict() covers held-out entities
  // even if they have no training observations (cold entities keep their
  // random factors -- exactly the paper's new-user situation).
  if (train.rows() > 0) {
    model_->EnsureUser(static_cast<data::UserId>(train.rows() - 1));
  }
  if (train.cols() > 0) {
    model_->EnsureService(static_cast<data::ServiceId>(train.cols() - 1));
  }

  std::vector<data::QoSSample> samples = train.ToSamples();
  common::Rng shuffle_rng(model_->config().seed ^ 0x5DEECE66DULL);
  shuffle_rng.Shuffle(samples);
  for (data::QoSSample& s : samples) {
    s.timestamp = trainer_->now();  // all fresh: nothing expires during Fit
    trainer_->Observe(s);
  }
  epochs_run_ = trainer_->RunUntilConverged();
}

double AmfPredictor::Predict(data::UserId u, data::ServiceId s) const {
  return model_->PredictRaw(u, s);
}

void AmfPredictor::PredictRow(data::UserId u,
                              std::span<const data::ServiceId> services,
                              std::span<double> out) const {
  model_->PredictManyRaw(u, services, out);
}

}  // namespace amf::core

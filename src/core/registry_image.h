// Serializable snapshot of an entity registry (adapt::Registry): the
// name<->id bindings, per-slot lifecycle state, generation tags, and the
// free-list of reclaimed ids. Lives in core so the checkpoint layer can
// persist registries without depending on the adapt layer; adapt::Registry
// converts to/from this image (ToImage/FromImage).
//
// Persisting this alongside the model is what keeps names and latent rows
// bound across a crash-restore: factors alone are anonymous, and
// re-registering names in a different order after a restart would silently
// rebind every name to someone else's rows.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace amf::core {

/// Per-slot lifecycle state (adapt::Registry's state machine).
enum class SlotState : std::uint8_t {
  kActive = 0,    ///< joined, id resolves, samples accepted
  kDeparted = 1,  ///< left; binding and factors retained for a rejoin
  kFree = 2,      ///< retired; id is on the free-list awaiting reuse
};

struct RegistryImage {
  /// Parallel arrays over dense slot ids [0, names.size()). Free slots
  /// carry an empty name.
  std::vector<std::string> names;
  std::vector<std::uint8_t> states;       ///< SlotState per slot
  std::vector<std::uint32_t> generations; ///< bumped on each retirement
  /// Reclaimed ids in reuse order (back = handed out next).
  std::vector<std::uint32_t> free_list;
  /// Total slots ever handed out again after retirement.
  std::uint64_t recycled_total = 0;

  bool operator==(const RegistryImage&) const = default;
};

/// Writes one registry image as a self-describing text section
/// ("AMF_REGISTRY <version> ..."). Names are length-prefixed so they may
/// contain spaces.
void SaveRegistryImage(std::ostream& os, const RegistryImage& image);

/// Reads a section written by SaveRegistryImage. Throws common::CheckError
/// on malformed input.
RegistryImage LoadRegistryImage(std::istream& is);

}  // namespace amf::core

#include "core/registry_image.h"

#include <istream>
#include <ostream>

#include "common/check.h"

namespace amf::core {

namespace {

constexpr const char* kMagic = "AMF_REGISTRY";
constexpr int kVersion = 1;

}  // namespace

void SaveRegistryImage(std::ostream& os, const RegistryImage& image) {
  const std::size_t n = image.names.size();
  AMF_CHECK_MSG(image.states.size() == n && image.generations.size() == n,
                "registry image: parallel arrays out of sync");
  os << kMagic << " " << kVersion << " " << n << " "
     << image.free_list.size() << " " << image.recycled_total << "\n";
  for (std::size_t i = 0; i < n; ++i) {
    // "<state> <generation> <name_len> <name bytes>": the length prefix
    // makes names with whitespace round-trip.
    os << static_cast<unsigned>(image.states[i]) << " "
       << image.generations[i] << " " << image.names[i].size() << " "
       << image.names[i] << "\n";
  }
  for (std::size_t i = 0; i < image.free_list.size(); ++i) {
    os << image.free_list[i] << (i + 1 < image.free_list.size() ? " " : "");
  }
  os << "\n";
}

RegistryImage LoadRegistryImage(std::istream& is) {
  std::string tok;
  is >> tok;
  AMF_CHECK_MSG(is.good() && tok == kMagic,
                "registry image: bad magic '" << tok << "'");
  int version = 0;
  std::size_t n = 0;
  std::size_t free_count = 0;
  RegistryImage image;
  is >> version >> n >> free_count >> image.recycled_total;
  AMF_CHECK_MSG(!is.fail() && version == kVersion,
                "registry image: bad header");
  AMF_CHECK_MSG(free_count <= n, "registry image: free-list exceeds slots");
  image.names.resize(n);
  image.states.resize(n);
  image.generations.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    unsigned state = 0;
    std::size_t len = 0;
    is >> state >> image.generations[i] >> len;
    AMF_CHECK_MSG(!is.fail() && state <= 2,
                  "registry image: corrupt slot " << i);
    image.states[i] = static_cast<std::uint8_t>(state);
    is.ignore(1);  // the single space separating length from name bytes
    std::string name(len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(len));
    AMF_CHECK_MSG(static_cast<std::size_t>(is.gcount()) == len,
                  "registry image: truncated name in slot " << i);
    image.names[i] = std::move(name);
  }
  image.free_list.resize(free_count);
  for (std::size_t i = 0; i < free_count; ++i) {
    is >> image.free_list[i];
    AMF_CHECK_MSG(!is.fail() && image.free_list[i] < n,
                  "registry image: bad free-list entry " << i);
    AMF_CHECK_MSG(image.states[image.free_list[i]] ==
                      static_cast<std::uint8_t>(SlotState::kFree),
                  "registry image: free-list entry "
                      << image.free_list[i] << " not marked free");
  }
  return image;
}

}  // namespace amf::core

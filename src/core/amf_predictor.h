// Adapter exposing AMF through the batch eval::Predictor interface.
//
// Fit() is AMF's cold start: every observed entry of the slice is fed to
// the online trainer as a randomized stream (the paper: "the preserved
// data entries are randomized as a QoS data stream for training"), and the
// trainer replays until convergence. After Fit, Predict reads the model.
// The underlying model/trainer stay accessible for warm-started,
// incremental use (the efficiency and scalability experiments).
#pragma once

#include <memory>

#include "core/amf_model.h"
#include "core/online_trainer.h"
#include "eval/predictor.h"

namespace amf::core {

class AmfPredictor : public eval::Predictor {
 public:
  explicit AmfPredictor(const AmfConfig& config = MakeResponseTimeConfig(),
                        const TrainerConfig& trainer_config = {});

  std::string name() const override;

  /// Cold start: stream all observed entries (shuffled), replay to
  /// convergence. Entities are registered up to the slice's shape so that
  /// Predict works for every (u, s) in it.
  void Fit(const data::SparseMatrix& train) override;

  double Predict(data::UserId u, data::ServiceId s) const override;

  /// Batched scoring through the model's gather/row kernels (one GEMV-style
  /// pass + whole-row sigmoid/inverse transform).
  void PredictRow(data::UserId u, std::span<const data::ServiceId> services,
                  std::span<double> out) const override;

  AmfModel& model() { return *model_; }
  const AmfModel& model() const { return *model_; }
  OnlineTrainer& trainer() { return *trainer_; }
  const OnlineTrainer& trainer() const { return *trainer_; }

  /// Epochs spent by the last Fit (efficiency analysis).
  std::size_t epochs_run() const { return epochs_run_; }

 private:
  std::unique_ptr<AmfModel> model_;
  std::unique_ptr<OnlineTrainer> trainer_;
  std::size_t epochs_run_ = 0;
};

}  // namespace amf::core

#include "core/sample_store.h"

#include "common/check.h"

namespace amf::core {

bool SampleStore::Upsert(const data::QoSSample& sample) {
  const std::uint64_t key = Key(sample.user, sample.service);
  auto [it, inserted] = index_.try_emplace(key, samples_.size());
  if (inserted) {
    samples_.push_back(sample);
  } else {
    samples_[it->second] = sample;
  }
  return inserted;
}

bool SampleStore::Remove(data::UserId u, data::ServiceId s) {
  const auto it = index_.find(Key(u, s));
  if (it == index_.end()) return false;
  const std::size_t pos = it->second;
  index_.erase(it);
  const std::size_t last = samples_.size() - 1;
  if (pos != last) {
    samples_[pos] = samples_[last];
    index_[Key(samples_[pos].user, samples_[pos].service)] = pos;
  }
  samples_.pop_back();
  return true;
}

std::optional<data::QoSSample> SampleStore::Get(data::UserId u,
                                                data::ServiceId s) const {
  const auto it = index_.find(Key(u, s));
  if (it == index_.end()) return std::nullopt;
  return samples_[it->second];
}

bool SampleStore::Contains(data::UserId u, data::ServiceId s) const {
  return index_.contains(Key(u, s));
}

const data::QoSSample& SampleStore::PickRandom(common::Rng& rng) const {
  AMF_CHECK_MSG(!samples_.empty(), "PickRandom on empty store");
  return samples_[rng.Index(samples_.size())];
}

std::size_t SampleStore::ExpireOlderThan(double cutoff) {
  std::size_t expired = 0;
  std::size_t i = 0;
  while (i < samples_.size()) {
    if (samples_[i].timestamp < cutoff) {
      Remove(samples_[i].user, samples_[i].service);
      ++expired;
      // The swap-remove moved a new sample into position i; re-examine it.
    } else {
      ++i;
    }
  }
  return expired;
}

std::size_t SampleStore::RemoveUser(data::UserId u) {
  std::size_t removed = 0;
  std::size_t i = 0;
  while (i < samples_.size()) {
    if (samples_[i].user == u) {
      Remove(samples_[i].user, samples_[i].service);
      ++removed;
      // Swap-remove moved a new sample into position i; re-examine it.
    } else {
      ++i;
    }
  }
  return removed;
}

std::size_t SampleStore::RemoveService(data::ServiceId s) {
  std::size_t removed = 0;
  std::size_t i = 0;
  while (i < samples_.size()) {
    if (samples_[i].service == s) {
      Remove(samples_[i].user, samples_[i].service);
      ++removed;
    } else {
      ++i;
    }
  }
  return removed;
}

void SampleStore::Clear() {
  samples_.clear();
  index_.clear();
}

}  // namespace amf::core

// AmfModel: the adaptive matrix factorization model state and its
// per-sample online update (paper §IV-C, Eqs. 12-17).
//
// The model holds one latent vector and one running average error per user
// and per service. Entities are registered dynamically (Algorithm 1 lines
// 5-7): the model grows as new users/services appear, with freshly
// randomized factors and initial error 1 — no retraining of anyone else.
//
// One OnlineUpdate(u, s, raw_value) performs:
//   r     = normalize(boxcox(raw))                        (Eqs. 3-4)
//   g     = sigmoid(U_u . S_s)
//   e_us  = |r - g| / r                                   (Eq. 15)
//   w_u   = e_u / (e_u + e_s), w_s = e_s / (e_u + e_s)    (Eq. 12)
//   e_u  += beta w_u (e_us - e_u)  [EMA]                  (Eq. 13)
//   e_s  += beta w_s (e_us - e_s)                         (Eq. 14)
//   U_u  -= eta w_u ((g - r) g' S_s / r^2 + lambda_u U_u) (Eq. 16)
//   S_s  -= eta w_s ((g - r) g' U_u / r^2 + lambda_s S_s) (Eq. 17)
// with the two factor updates computed simultaneously from the old values.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/seqlock.h"
#include "core/amf_config.h"
#include "core/factor_arena.h"
#include "core/replica_arena.h"
#include "data/qos_types.h"

namespace amf::common {
class ThreadPool;
}
namespace amf::linalg {
class Matrix;
}

namespace amf::core {

class AmfModel {
 public:
  explicit AmfModel(const AmfConfig& config);

  // Copyable/movable despite the atomic update counter (snapshot copy).
  AmfModel(const AmfModel& other);
  AmfModel& operator=(const AmfModel& other);
  AmfModel(AmfModel&& other) noexcept;
  AmfModel& operator=(AmfModel&& other) noexcept;

  const AmfConfig& config() const { return config_; }
  const transform::QoSTransform& transform() const { return transform_; }

  std::size_t num_users() const { return user_.size(); }
  std::size_t num_services() const { return service_.size(); }

  /// Every latent row starts on a boundary of this many bytes (arena
  /// layout; see core/factor_arena.h). Exposed for tests and benches.
  static constexpr std::size_t kFactorRowAlignment = common::kCacheLineBytes;

  /// Doubles between consecutive factor-row starts (rank rounded up to a
  /// cache-line multiple; the pad lanes are permanently zero).
  std::size_t factor_row_stride() const { return user_.stride(); }

  /// Registers users/services up to and including the given id (no-op for
  /// already-known entities). New factors are randomized, errors set to
  /// config.initial_error.
  void EnsureUser(data::UserId u);
  void EnsureService(data::ServiceId s);

  bool HasUser(data::UserId u) const { return u < num_users(); }
  bool HasService(data::ServiceId s) const { return s < num_services(); }

  /// Reclaims a registered entity's slot for reuse by a new tenant
  /// (registry retirement): deterministically re-initializes the latent
  /// row (same (seed, id)-derived fill as NaN repair — no shared RNG
  /// state) and resets the error EMA to config.initial_error, the paper's
  /// cold-start state for a fresh entity (Eq. 13). The row write is
  /// published through the per-row seqlock, so it is safe against
  /// concurrent *Shared readers; writer-vs-writer exclusion (vs. guarded
  /// trainer updates on the same row) remains the caller's job —
  /// ConcurrentPredictionService defers retirement to the epoch barrier.
  void RetireUser(data::UserId u);
  void RetireService(data::ServiceId s);

  /// Relaxed load of service s's seqlock version word. Guarded trainer
  /// paths bump it by 2 per row publish, so the DELTA between two reads
  /// taken at epoch barriers (no writer in flight — the word is even)
  /// divided by 2 counts the publishes in between. The sharding facade
  /// uses these deltas as per-shard merge weights (DESIGN.md §15).
  std::uint32_t ServiceRowVersion(data::ServiceId s) const;

  /// Overwrites service s's latent row and error EMA with externally
  /// merged state, publishing through the per-row seqlock (and the
  /// replica slab when enabled) so concurrent *Shared readers never see
  /// a torn row — the same protocol as RetireService. Writer-vs-writer
  /// exclusion is the caller's job: the sharding facade only merges at
  /// the epoch barrier (no trainer in flight). `row` must be
  /// rank-length; the service must already be registered.
  void OverwriteServiceRow(data::ServiceId s, std::span<const double> row,
                           double error);

  /// One SGD step on an observed sample. Registers unknown entities.
  /// Returns the pre-update relative error e_us (Eq. 15) — the trainer's
  /// convergence signal.
  ///
  /// Hard robustness guards: a non-finite raw value, or one whose
  /// transformed value r falls below config.loss_epsilon (the
  /// relative-error loss divides by r), is skipped — the model is left
  /// untouched and NaN is returned so callers can count the skip. If a
  /// latent vector has been NaN-poisoned (by corrupted state from any
  /// source), it is detected here, re-randomized, and its entity error
  /// reset to initial_error instead of propagating NaN through replay;
  /// see nan_reinit_users()/nan_reinit_services().
  ///
  /// Thread-compatibility: concurrent OnlineUpdate calls are safe only if
  /// (a) both entities are already registered (Ensure* grows storage and
  /// must not race) and (b) callers serialize access per user and per
  /// service (see core::ParallelReplayTrainer's striped locks).
  double OnlineUpdate(data::UserId u, data::ServiceId s, double raw_value);

  /// Predicted raw QoS value (inverse-transformed sigmoid inner product).
  /// Both entities must be registered.
  double PredictRaw(data::UserId u, data::ServiceId s) const;

  /// Predicted normalized value g in (0, 1).
  double PredictNormalized(data::UserId u, data::ServiceId s) const;

  // --- Batched prediction --------------------------------------------------
  // The batch APIs score one registered user against many services in a
  // single pass: a rank-d GEMV over the contiguous service-factor block,
  // then the sigmoid (and for the raw variants the inverse transform)
  // applied to the whole row. They agree with the scalar Predict* entry
  // for entry up to floating-point summation order (~1e-15 relative; see
  // tests/batch_predict_test.cpp). They are const reads: safe to call
  // concurrently with each other, but not with OnlineUpdate/Ensure*.

  /// Scores user u against services [0, out.size()); out.size() must not
  /// exceed num_services().
  void PredictRowNormalized(data::UserId u, std::span<double> out) const;

  /// Row scoring with raw QoS readout (inverse transform over the row).
  void PredictRowRaw(data::UserId u, std::span<double> out) const;

  /// Gather variant for candidate subsets: out[i] scores (u, services[i]).
  /// Sizes must match; every id must be registered.
  void PredictManyNormalized(data::UserId u,
                             std::span<const data::ServiceId> services,
                             std::span<double> out) const;
  void PredictManyRaw(data::UserId u,
                      std::span<const data::ServiceId> services,
                      std::span<double> out) const;

  /// Scores every (user, service) pair into `out` (resized to num_users()
  /// x num_services()), fanning rows across `pool` (nullptr = the
  /// process-global pool). No OnlineUpdate may run concurrently.
  void PredictMatrixNormalized(linalg::Matrix* out,
                               common::ThreadPool* pool = nullptr) const;
  void PredictMatrixRaw(linalg::Matrix* out,
                        common::ThreadPool* pool = nullptr) const;

  // --- Concurrent access ---------------------------------------------------
  // Every latent row carries a seqlock version word (common/seqlock.h).
  // The *Guarded writer publishes row mutations through the seqlock, and
  // the *Shared readers snapshot rows through its retry loop, so training
  // and prediction may run concurrently with no lock between them.
  //
  // Division of responsibility: the seqlock orders ONE writer per row
  // against any number of readers. Writer-vs-writer exclusion is the
  // caller's job (OnlineTrainer shards users so each row has one owning
  // worker, and stripes services with spinlocks). Registration (Ensure*)
  // reallocates factor storage and must still exclude both readers and
  // writers — ConcurrentPredictionService keeps a registration lock for
  // exactly that path.

  /// OnlineUpdate that publishes its row writes via the per-row seqlock
  /// (same math, same return value; row stores go through relaxed
  /// atomic_ref inside a version bracket instead of the SIMD pair-step).
  /// Both entities MUST already be registered (AMF_DCHECK; growth here
  /// would race readers), and the caller must hold per-user and
  /// per-service writer exclusion.
  double OnlineUpdateGuarded(data::UserId u, data::ServiceId s,
                             double raw_value);

  /// Prediction readout that is safe concurrently with OnlineUpdateGuarded
  /// writers: each latent row is snapshotted through its seqlock. The two
  /// rows are individually consistent; the pair may straddle at most the
  /// writer's in-flight update (statistically irrelevant for QoS scores).
  /// Entities must be registered and must not be concurrently Ensure*d.
  double PredictRawShared(data::UserId u, data::ServiceId s) const;
  double PredictNormalizedShared(data::UserId u, data::ServiceId s) const;

  /// Gather variant of the shared readout: out[i] scores (u, services[i])
  /// raw. The user row is snapshotted once; service rows are validated in
  /// blocks (one version sweep bracketing a bulk dot pass per block of
  /// kSharedPredictBlock rows — see DESIGN.md §11) with a per-row seqlock
  /// fallback under write churn. Sizes must match; every id must be
  /// registered. Quiescent results are bit-identical to PredictManyRaw.
  void PredictManyRawShared(data::UserId u,
                            std::span<const data::ServiceId> services,
                            std::span<double> out) const;

  /// Row variant of the shared readout: scores user u against services
  /// [0, out.size()) concurrently with guarded writers. Contiguous service
  /// blocks validate once per block and run the strided SIMD GEMV inside
  /// the bracket, so this is the fast path for matrix scoring while
  /// training runs. Quiescent results are bit-identical to PredictRowRaw.
  void PredictRowRawShared(data::UserId u, std::span<double> out) const;

  /// Service rows validated per block in the *Shared batch readouts.
  static constexpr std::size_t kSharedPredictBlock = 64;

  // --- Compressed read replicas (DESIGN.md §13) ----------------------------
  // With read_precision kFp32/kBf16 the model keeps compressed copies of
  // every latent row (core/replica_arena.h) and the *Shared readouts
  // stream those instead of the fp64 masters — 2x/4x fewer bytes per
  // service-block scan. Masters stay the only training state; replicas
  // are refreshed from them at the trainer's epoch barrier (dirty rows
  // only) and republished whole on checkpoint restore / precision
  // switches. kFp64 (default) bypasses the subsystem entirely: the
  // *Shared paths read the masters bit-identically to earlier revisions.

  bool replicas_enabled() const { return user_replica_.enabled(); }
  ReadPrecision read_precision() const { return config_.read_precision; }

  /// Switches the read path's element type, rebuilding the replica slabs
  /// from the masters (a full refresh; counted in
  /// replica_full_refreshes). NOT safe against concurrent readers or
  /// writers — callers switch under the same exclusion that guards
  /// registration (see ConcurrentPredictionService::SetReadPrecision).
  void SetReadPrecision(ReadPrecision precision);

  /// Epoch-barrier refresh: republishes only the rows whose master
  /// mutated since the last refresh (through the replica rows' seqlocks,
  /// so concurrent *Shared readers never see a torn row). Returns rows
  /// republished; no-op (0) when replicas are disabled. The caller must
  /// guarantee no master writer is in flight (the trainers call this at
  /// their epoch barriers).
  std::size_t RefreshReplicas();

  /// Unconditional whole-slab republish: checkpoint restore and any other
  /// path that rewrites masters without dirty tracking (MutableUserFactors
  /// et al.) must call this before replica reads resume.
  std::size_t RefreshAllReplicas();

  /// Replica observability (relaxed reads, safe from any thread):
  /// rows republished so far, dirty-only refreshes, full refreshes,
  /// rows currently awaiting refresh, and the number of updates applied
  /// since the last refresh (the staleness window, in updates).
  std::uint64_t replica_rows_refreshed() const {
    return replica_rows_refreshed_.load(std::memory_order_relaxed);
  }
  std::uint64_t replica_refreshes() const {
    return replica_refreshes_.load(std::memory_order_relaxed);
  }
  std::uint64_t replica_full_refreshes() const {
    return replica_full_refreshes_.load(std::memory_order_relaxed);
  }
  std::size_t replica_dirty_rows() const {
    return user_dirty_.CountApprox() + service_dirty_.CountApprox();
  }
  std::uint64_t replica_staleness_updates() const {
    return updates() -
           replica_synced_updates_.load(std::memory_order_relaxed);
  }

  /// Bytes one batched scan streams per service row in the current read
  /// precision (pad lanes included; the fp64 value counts the master
  /// row). Bench/monitoring denominator.
  std::size_t read_row_bytes() const {
    return replicas_enabled() ? service_replica_.row_bytes()
                              : service_.stride() * sizeof(double);
  }

  /// Entity-error reads safe against concurrent guarded writers (relaxed
  /// atomic loads; 64-bit loads never tear).
  double UserErrorShared(data::UserId u) const;
  double ServiceErrorShared(data::ServiceId s) const;
  double PredictionUncertaintyShared(data::UserId u, data::ServiceId s) const;

  /// Running average error of one entity (Eq. 13/14 state).
  double UserError(data::UserId u) const;
  double ServiceError(data::ServiceId s) const;

  /// Relative-error-scale uncertainty of a prediction: the mean of the two
  /// entities' running errors. ~1 for never-trained entities (their error
  /// is still at initial_error), small once both sides converged. Used by
  /// risk-aware candidate selection.
  double PredictionUncertainty(data::UserId u, data::ServiceId s) const;

  /// Latent vectors (rank-length spans); for serialization and tests.
  std::span<const double> UserFactors(data::UserId u) const;
  std::span<const double> ServiceFactors(data::ServiceId s) const;
  std::span<double> MutableUserFactors(data::UserId u);
  std::span<double> MutableServiceFactors(data::ServiceId s);

  /// Directly sets entity error state (used by serialization).
  void SetUserError(data::UserId u, double e);
  void SetServiceError(data::ServiceId s, double e);

  /// Total online updates performed so far.
  std::uint64_t updates() const {
    return updates_.load(std::memory_order_relaxed);
  }

  /// Latent vectors re-randomized after NaN poisoning was detected.
  std::uint64_t nan_reinit_users() const {
    return nan_reinit_users_.load(std::memory_order_relaxed);
  }
  std::uint64_t nan_reinit_services() const {
    return nan_reinit_services_.load(std::memory_order_relaxed);
  }

 private:
  /// Grows one entity family to `need` entries: geometric capacity reserve,
  /// then one arena resize + randomized factor fill (same rng_ draw order
  /// as the pre-arena layout: rank draws per entity, registration order —
  /// fixed-seed traces are unchanged). When replicas are enabled the
  /// family's replica slab grows in the same call and the new rows are
  /// published immediately, so a freshly registered entity is readable at
  /// the configured precision without waiting for a barrier.
  void Grow(FactorArena& arena, ReplicaArena& replica, DirtyRowSet& dirty,
            std::size_t need);

  /// (Re)builds both replica slabs for the current config_.read_precision
  /// and publishes every master row into them (shared body of the
  /// constructor, SetReadPrecision, and RefreshAllReplicas).
  std::size_t RebuildReplicas();

  void PredictMatrixImpl(linalg::Matrix* out, common::ThreadPool* pool,
                         bool raw) const;

  /// If `v` contains any non-finite entry, re-randomizes it (deterministic
  /// in (config.seed, entity id), racing-update safe: no shared RNG state)
  /// and resets `error` to initial_error. Returns true if repaired.
  bool RepairNonFinite(std::span<double> v, double& error,
                       std::uint64_t entity_id);

  /// The deterministic replacement row RepairNonFinite writes.
  void FillDeterministicRow(std::uint64_t entity_id,
                            std::span<double> out) const;

  /// Dot of a snapshotted user row with service s's live row, computed
  /// inside s's seqlock read bracket.
  double SharedDotWithService(std::span<const double> urow,
                              data::ServiceId s) const;

  /// Shared-path dot pass over the contiguous service block [begin, end):
  /// block-batched seqlock validation around the strided GEMV, degrading
  /// to per-row snapshots for a block that keeps getting invalidated.
  void SharedDotBlock(std::span<const double> urow, std::size_t begin,
                      std::size_t end, std::span<double> out) const;

  /// Replica-path variant of SharedDotBlock: same block protocol against
  /// the service replica's packed version words, bulk pass through the
  /// mixed-precision strided GEMV.
  void SharedDotBlockReplica(std::span<const double> urow, std::size_t begin,
                             std::size_t end, std::span<double> out) const;

  /// Snapshots user u's row for a shared readout into `dst`: from the
  /// user replica (widened) when replicas are enabled, else from the
  /// master through its seqlock.
  void SharedUserRow(data::UserId u, std::span<double> dst) const;

  void MarkUserDirty(data::UserId u) {
    if (user_replica_.enabled()) user_dirty_.Mark(u);
  }
  void MarkServiceDirty(data::ServiceId s) {
    if (service_replica_.enabled()) service_dirty_.Mark(s);
  }

  AmfConfig config_;
  transform::QoSTransform transform_;
  common::Rng rng_;
  // Arena-backed blocked factor storage: one 64-byte-aligned padded row
  // per entity, its seqlock version word and error EMA co-located in a
  // private meta line (see core/factor_arena.h). Serial paths leave the
  // versions even and pay nothing.
  FactorArena user_;
  FactorArena service_;
  // Compressed read replicas + their dirty-row refresh bookkeeping
  // (empty/no-op at the default kFp64 precision; see class comment in
  // core/replica_arena.h).
  ReplicaArena user_replica_;
  ReplicaArena service_replica_;
  DirtyRowSet user_dirty_;
  DirtyRowSet service_dirty_;
  // Atomic so concurrent striped-lock updates may share the counter.
  std::atomic<std::uint64_t> updates_{0};
  std::atomic<std::uint64_t> nan_reinit_users_{0};
  std::atomic<std::uint64_t> nan_reinit_services_{0};
  // Replica refresh accounting (barrier thread writes, monitors read).
  std::atomic<std::uint64_t> replica_rows_refreshed_{0};
  std::atomic<std::uint64_t> replica_refreshes_{0};
  std::atomic<std::uint64_t> replica_full_refreshes_{0};
  // updates() observed at the last refresh: the staleness-window anchor.
  std::atomic<std::uint64_t> replica_synced_updates_{0};
};

/// Batched prediction for scattered test samples: groups them by user and
/// scores each group through the gather kernel in one pass. Returns raw
/// predictions aligned with `samples`. Every referenced entity must be
/// registered.
std::vector<double> PredictSamplesRaw(const AmfModel& model,
                                      std::span<const data::QoSSample> samples);

}  // namespace amf::core

// Wall-clock timing utilities used by the efficiency experiments (Fig. 13)
// and the micro benchmarks.
#pragma once

#include <chrono>

namespace amf::common {

/// Monotonic stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction / last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace amf::common

// Lightweight precondition / invariant checking.
//
// AMF_CHECK(cond)        -- always-on check; throws amf::common::CheckError.
// AMF_CHECK_MSG(cond, m) -- always-on check with an extra message.
// AMF_DCHECK(cond)       -- debug-only check (compiled out in NDEBUG builds).
//
// We throw instead of aborting so that library users (and tests) can treat
// contract violations as recoverable programming errors at the API boundary.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace amf::common {

/// Exception thrown when an AMF_CHECK fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream oss;
  oss << "CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) oss << " -- " << msg;
  throw CheckError(oss.str());
}
}  // namespace detail

}  // namespace amf::common

#define AMF_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond))                                                          \
      ::amf::common::detail::CheckFailed(#cond, __FILE__, __LINE__, "");  \
  } while (0)

#define AMF_CHECK_MSG(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream amf_check_oss_;                                  \
      amf_check_oss_ << msg;                                              \
      ::amf::common::detail::CheckFailed(#cond, __FILE__, __LINE__,       \
                                         amf_check_oss_.str());           \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define AMF_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define AMF_DCHECK(cond) AMF_CHECK(cond)
#endif

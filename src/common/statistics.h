// Descriptive statistics and histograms.
//
// Used by: dataset summaries (Fig. 6), value-distribution plots (Figs. 7/8),
// error-distribution plots (Fig. 10), and the evaluation metrics (MRE/NPRE
// are order statistics of the relative-error sample).
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace amf::common {

/// Streaming accumulator for count/mean/variance/min/max (Welford).
class RunningStats {
 public:
  void Add(double x);
  /// Merges another accumulator into this one.
  void Merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when count < 2.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& v);

/// Sample standard deviation (n-1); 0 when size < 2.
double StdDev(const std::vector<double>& v);

/// Median (average of the two middle order statistics for even sizes).
/// Requires non-empty input.
double Median(std::vector<double> v);

/// p-th percentile, p in [0, 100], using linear interpolation between
/// closest ranks. Requires non-empty input.
double Percentile(std::vector<double> v, double p);

/// Fixed-width histogram over [lo, hi). Out-of-range values (x < lo or
/// x >= hi; NaN counts as underflow) are tracked as explicit underflow /
/// overflow counts instead of being clamped into the edge bins — clamping
/// silently inflated the edge densities of Fig. 10-style plots. Densities
/// are fractions of the *in-range* samples and sum to 1 over all bins
/// whenever any sample landed in range.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double x);
  void AddAll(const std::vector<double>& xs);

  std::size_t bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  /// In-range samples (the density denominator).
  std::size_t total() const { return total_; }
  /// Samples below lo (including NaN).
  std::size_t underflow() const { return underflow_; }
  /// Samples at or above hi.
  std::size_t overflow() const { return overflow_; }
  /// Every Add() ever made, in range or not.
  std::size_t seen() const { return total_ + underflow_ + overflow_; }
  std::size_t count(std::size_t bin) const;
  /// Fraction of in-range samples in `bin` (0 when no in-range samples).
  double density(std::size_t bin) const;
  /// Center of `bin`.
  double bin_center(std::size_t bin) const;

  /// Renders a fixed-width ASCII bar chart (for bench output); reports
  /// underflow/overflow tallies on a trailing line when nonzero.
  std::string ToAscii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace amf::common

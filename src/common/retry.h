// Retry with exponential backoff, for transient failures (a collector read
// that timed out, a flaky network hop to the QoS manager). Header-only and
// policy-injectable: tests pass a fake sleep to stay deterministic.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <thread>
#include <utility>

namespace amf::common {

struct BackoffConfig {
  /// Total attempts (first try included). Must be >= 1.
  std::size_t max_attempts = 5;
  /// Delay before the second attempt.
  double initial_delay_seconds = 0.01;
  /// Delay growth factor per attempt.
  double multiplier = 2.0;
  /// Delay ceiling.
  double max_delay_seconds = 1.0;
};

/// Calls `fn` until its result converts to true (an engaged optional, a
/// non-false bool, ...) or max_attempts is exhausted, sleeping
/// exponentially longer between attempts via `sleep(seconds)`. Returns the
/// last result; `attempts_out` (optional) receives the attempt count.
template <typename F, typename SleepFn>
auto RetryWithBackoff(F&& fn, const BackoffConfig& config, SleepFn&& sleep,
                      std::size_t* attempts_out = nullptr)
    -> decltype(fn()) {
  double delay = config.initial_delay_seconds;
  const std::size_t attempts = std::max<std::size_t>(config.max_attempts, 1);
  for (std::size_t attempt = 1;; ++attempt) {
    auto result = fn();
    if (attempts_out != nullptr) *attempts_out = attempt;
    if (result || attempt >= attempts) return result;
    sleep(delay);
    delay = std::min(delay * config.multiplier, config.max_delay_seconds);
  }
}

/// Overload that really sleeps (std::this_thread::sleep_for).
template <typename F>
auto RetryWithBackoff(F&& fn, const BackoffConfig& config = {},
                      std::size_t* attempts_out = nullptr)
    -> decltype(fn()) {
  return RetryWithBackoff(
      std::forward<F>(fn), config,
      [](double seconds) {
        std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
      },
      attempts_out);
}

}  // namespace amf::common

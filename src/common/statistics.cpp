#include "common/statistics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/string_util.h"

namespace amf::common {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size() - 1));
}

double Median(std::vector<double> v) { return Percentile(std::move(v), 50.0); }

double Percentile(std::vector<double> v, double p) {
  AMF_CHECK_MSG(!v.empty(), "Percentile of empty sample");
  AMF_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile out of range");
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const std::size_t lo_idx = static_cast<std::size_t>(rank);
  const std::size_t hi_idx = std::min(lo_idx + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo_idx);
  return v[lo_idx] * (1.0 - frac) + v[hi_idx] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  AMF_CHECK_MSG(hi > lo, "Histogram requires hi > lo");
  AMF_CHECK_MSG(bins > 0, "Histogram requires at least one bin");
}

void Histogram::Add(double x) {
  if (!(x >= lo_)) {  // below range, or NaN
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  std::size_t bin = static_cast<std::size_t>((x - lo_) / bin_width_);
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
  ++total_;
}

void Histogram::AddAll(const std::vector<double>& xs) {
  for (double x : xs) Add(x);
}

std::size_t Histogram::count(std::size_t bin) const {
  AMF_CHECK(bin < counts_.size());
  return counts_[bin];
}

double Histogram::density(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

double Histogram::bin_center(std::size_t bin) const {
  AMF_CHECK(bin < counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * bin_width_;
}

std::string Histogram::ToAscii(std::size_t width) const {
  std::size_t max_count = 1;
  for (std::size_t c : counts_) max_count = std::max(max_count, c);
  std::ostringstream oss;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        counts_[b] * width / max_count;
    oss << FormatFixed(bin_center(b), 3) << " | ";
    for (std::size_t i = 0; i < bar; ++i) oss << '#';
    oss << "  (" << FormatFixed(density(b), 4) << ")\n";
  }
  if (underflow_ > 0 || overflow_ > 0) {
    oss << "out of range: underflow=" << underflow_
        << " overflow=" << overflow_ << " (excluded from densities)\n";
  }
  return oss.str();
}

}  // namespace amf::common

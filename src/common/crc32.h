// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant) for checkpoint
// integrity checking. Self-contained table-driven implementation so the
// library carries no compression-library dependency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace amf::common {

/// Streaming CRC-32 accumulator.
class Crc32 {
 public:
  /// Folds `size` bytes into the running checksum.
  void Update(const void* data, std::size_t size);
  void Update(std::string_view bytes) { Update(bytes.data(), bytes.size()); }

  /// Final checksum of everything Update()ed so far.
  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

  void Reset() { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot convenience.
std::uint32_t Crc32Of(std::string_view bytes);

}  // namespace amf::common

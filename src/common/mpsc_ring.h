// Bounded lock-free MPSC ring buffer (Vyukov's array queue, restricted to
// one consumer).
//
// Observation ingest is the one path that must never block: BPEL engines
// report samples from arbitrary threads while the trainer drains them at
// its own pace. Producers claim a slot with one CAS on the head counter
// and publish it by bumping the slot's sequence number; the consumer pops
// by sequence without touching the producers' cache line. A full ring
// rejects the push (TryPush returns false) — backpressure is explicit and
// the caller counts the drop — rather than blocking or growing without
// bound.
//
// Memory orders: a producer's release store of `seq = pos + 1` publishes
// the constructed value to the consumer's acquire load; the consumer's
// release store of `seq = pos + capacity` hands the recycled slot to the
// (pos + capacity)'th producer. Head/tail counters only carry slot
// ownership, so their RMW/stores are relaxed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/check.h"

namespace amf::common {

template <typename T>
class MpscRingBuffer {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2).
  explicit MpscRingBuffer(std::size_t min_capacity = 1024)
      : capacity_(RoundUpPow2(min_capacity)),
        mask_(capacity_ - 1),
        cells_(std::make_unique<Cell[]>(capacity_)) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRingBuffer(const MpscRingBuffer&) = delete;
  MpscRingBuffer& operator=(const MpscRingBuffer&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Lock-free multi-producer push. Returns false when the ring is full.
  bool TryPush(const T& value) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = value;
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded `pos`; retry with the newer slot.
      } else if (dif < 0) {
        return false;  // slot still holds an unconsumed value: full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer pop. Returns false when the ring is empty. Must only
  /// be called from one thread at a time.
  bool TryPop(T& out) {
    const std::size_t pos = tail_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) -
            static_cast<std::intptr_t>(pos + 1) < 0) {
      return false;  // producer has not published this slot yet
    }
    out = std::move(cell.value);
    cell.seq.store(pos + capacity_, std::memory_order_release);
    tail_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Racy size estimate (monitoring only).
  std::size_t SizeApprox() const {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    return head >= tail ? head - tail : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  static std::size_t RoundUpPow2(std::size_t n) {
    AMF_CHECK_MSG(n <= (std::size_t{1} << 31), "ring capacity too large");
    std::size_t p = 2;
    while (p < n) p <<= 1;
    return p;
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  // Producers and the consumer hammer different counters; keep them on
  // separate cache lines.
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace amf::common

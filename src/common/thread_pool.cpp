#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/check.h"

namespace amf::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> fut = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    AMF_CHECK_MSG(!stop_, "Submit on stopped ThreadPool");
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  // ~4 chunks per worker balances load without excessive task overhead.
  const std::size_t chunks =
      std::min(n, std::max<std::size_t>(1, workers_.size() * 4));
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    futures.push_back(Submit([&, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) {
        if (failed.load(std::memory_order_relaxed)) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }));
  }
  for (auto& f : futures) f.wait();
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // packaged_task captures exceptions into the future.
  }
}

}  // namespace amf::common

#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "common/check.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace amf::common {

namespace {

/// Pins `handle` to logical core `core`. Returns true on success; failure
/// (non-Linux, cgroup cpuset restrictions, core out of range) is benign —
/// the thread simply stays under scheduler placement.
bool PinThreadToCore(std::thread& handle, std::size_t core) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core % CPU_SETSIZE, &set);
  return pthread_setaffinity_np(handle.native_handle(), sizeof(set), &set) ==
         0;
#else
  (void)handle;
  (void)core;
  return false;
#endif
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads, bool pin_to_cores) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
    if (pin_to_cores && PinThreadToCore(workers_.back(), i % cores)) {
      ++pinned_workers_;
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> fut = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    AMF_CHECK_MSG(!stop_, "Submit on stopped ThreadPool");
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;

  // Chunked atomic work handout: the iteration cursor is one shared
  // counter and every participant claims `grain` consecutive indices per
  // fetch_add. Compared with pre-cut chunks queued through the task mutex,
  // this costs one uncontended RMW per grain, load-balances skewed
  // iterations for free, and lets the calling thread work the loop
  // instead of sleeping on futures. ~8 grains per participant keeps the
  // RMW rate negligible while still smoothing imbalance.
  const std::size_t participants = workers_.size() + 1;
  const std::size_t grain =
      std::max<std::size_t>(1, n / (participants * 8));

  // The control block is shared with the helper tasks so ParallelFor can
  // return without waiting for helpers that never got scheduled (e.g. all
  // workers busy with unrelated long tasks): such stragglers find the
  // cursor exhausted, touch nothing but the block, and retire as no-ops.
  struct LoopState {
    std::atomic<std::size_t> next;
    std::size_t end = 0;
    std::size_t grain = 1;
    const std::function<void(std::size_t)>* fn = nullptr;  // caller-owned;
    // only dereferenced for a successfully claimed chunk, and every chunk
    // is claimed-and-finished before ParallelFor returns (in_flight).
    std::atomic<std::size_t> in_flight{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mu;
  };
  auto state = std::make_shared<LoopState>();
  state->next.store(begin, std::memory_order_relaxed);
  state->end = end;
  state->grain = grain;
  state->fn = &fn;

  auto drain = [](LoopState& st) {
    // Participants exit ONLY via cursor exhaustion — a failure merely
    // stops fn from being executed. That way every drain() call (the
    // caller's in particular) leaves the cursor >= end, so a straggler
    // helper scheduled after ParallelFor returned can never claim a chunk
    // and never dereferences the caller-owned fn.
    for (;;) {
      // Claim is bracketed by in_flight so the caller's completion wait
      // (own drain returned AND in_flight == 0) cannot miss a chunk that
      // was claimed but not yet counted.
      st.in_flight.fetch_add(1, std::memory_order_acq_rel);
      const std::size_t lo =
          st.next.fetch_add(st.grain, std::memory_order_relaxed);
      if (lo >= st.end) {
        st.in_flight.fetch_sub(1, std::memory_order_acq_rel);
        return;
      }
      const std::size_t hi = std::min(st.end, lo + st.grain);
      for (std::size_t i = lo; i < hi; ++i) {
        if (st.failed.load(std::memory_order_relaxed)) break;
        try {
          (*st.fn)(i);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(st.error_mu);
            if (!st.first_error) st.first_error = std::current_exception();
          }
          st.failed.store(true, std::memory_order_relaxed);
          break;
        }
      }
      st.in_flight.fetch_sub(1, std::memory_order_acq_rel);
    }
  };

  // One helper task per worker that could possibly get a grain; helpers
  // that arrive after the cursor is exhausted return immediately.
  const std::size_t helpers =
      std::min(workers_.size(), (n + grain - 1) / grain);
  for (std::size_t h = 0; h < helpers; ++h) {
    Submit([state, drain] { drain(*state); });
  }
  drain(*state);  // the caller participates; returns with cursor >= end
  // Every index is now either finished or abandoned-by-failure except for
  // chunks other participants still hold. Chunks are short by
  // construction, so spin-yield suffices. Crucially this does NOT wait
  // for queued-but-unstarted helpers — a wedged pool cannot deadlock us.
  while (state->in_flight.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  if (state->first_error) std::rethrow_exception(state->first_error);
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // packaged_task captures exceptions into the future.
  }
}

}  // namespace amf::common

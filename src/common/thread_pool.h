// Fixed-size thread pool with a parallel-for helper.
//
// The IPCC baseline computes a services x services Pearson-correlation
// matrix (4,500^2 / 2 pairs at paper scale); ParallelFor spreads the row
// loop across hardware threads. The pool is also used by the experiment
// harness to run independent (density, round) cells concurrently.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace amf::common {

class ThreadPool {
 public:
  /// Creates a pool with `threads` workers (0 = hardware concurrency).
  ///
  /// `pin_to_cores` pins worker i to logical core i % hardware_concurrency
  /// (Linux only; a silent no-op elsewhere or when the affinity call is
  /// refused, e.g. in a restricted container). Pinning keeps each replay
  /// shard's working set — its users' factor rows — in one core's private
  /// cache instead of migrating with the thread; only worth it for pools
  /// whose workers own partitioned state (see OnlineTrainer), so it is off
  /// by default. With more workers than cores the modulo stacks them
  /// round-robin, which is no worse than the scheduler's time-slicing.
  explicit ThreadPool(std::size_t threads = 0, bool pin_to_cores = false);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Workers this pool managed to pin to cores at construction (0 when
  /// pinning was not requested or unavailable). For tests and benches.
  std::size_t pinned_workers() const { return pinned_workers_; }

  /// Enqueues a task; the returned future reports completion/exceptions.
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(i) for i in [begin, end) across the pool (the calling thread
  /// participates), blocking until all iterations complete. Work is handed
  /// out in chunks claimed from a shared atomic cursor, so fine-grained
  /// iteration mixes load-balance without queue contention. Exceptions
  /// from iterations are rethrown (the first one encountered).
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn);

  /// Shared process-wide pool (created on first use).
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::size_t pinned_workers_ = 0;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace amf::common

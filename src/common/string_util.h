// Small string helpers shared by IO, logging, and the bench harness.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace amf::common {

/// Lower-cases ASCII characters.
std::string ToLower(std::string_view s);

/// Strips leading/trailing whitespace.
std::string Trim(std::string_view s);

/// Splits on a delimiter character. Empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins strings with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Returns true if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a double; returns nullopt on any trailing garbage or failure.
std::optional<double> ParseDouble(std::string_view s);

/// Parses a signed 64-bit integer; nullopt on failure.
std::optional<std::int64_t> ParseInt(std::string_view s);

/// Formats a double with fixed precision (used by table printers).
std::string FormatFixed(double v, int precision);

}  // namespace amf::common

// Aligned plain-text table output.
//
// Every bench binary reports its figure/table as an aligned text table so
// that `for b in build/bench/*; do $b; done` produces readable output and
// the rows can be diffed against EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace amf::common {

class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 3);

  std::size_t rows() const { return rows_.size(); }

  /// Renders the table with a header separator.
  std::string ToString() const;

  /// RFC-4180-ish CSV (cells containing comma/quote/newline are quoted);
  /// for piping bench output into plotting scripts.
  std::string ToCsv() const;

  /// GitHub-flavored Markdown table; for pasting into EXPERIMENTS.md.
  std::string ToMarkdown() const;

  /// Prints to the stream (adds a trailing newline).
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace amf::common

// Environment-variable helpers used by benches and examples to override
// experiment scale (AMF_USERS, AMF_SERVICES, AMF_ROUNDS, ...).
#pragma once

#include <cstdint>
#include <string>

namespace amf::common {

/// Returns $name, or `def` if unset.
std::string EnvString(const std::string& name, const std::string& def);

/// Returns $name parsed as int64, or `def` if unset/unparseable.
std::int64_t EnvInt(const std::string& name, std::int64_t def);

/// Returns $name parsed as double, or `def` if unset/unparseable.
double EnvDouble(const std::string& name, double def);

/// Returns true if $name is set to a truthy value ("1", "true", "yes", "on").
bool EnvFlag(const std::string& name, bool def = false);

}  // namespace amf::common

// Function multiversioning for the batched prediction kernels.
//
// The hot row kernels (GemvRowMajor, ExpRow/LogRow/SigmoidRow, InverseRow)
// are written as straight-line vectorizable loops, but the binary is built
// for baseline x86-64 (SSE2) so it stays portable. AMF_MULTIVERSION
// compiles such a function several times — baseline, x86-64-v3 (AVX2+FMA)
// and x86-64-v4 (AVX-512) — and lets the dynamic loader pick the widest
// variant the host supports via an ifunc resolver, at zero per-call cost.
//
// Only apply this to PREDICTION-side kernels. Training kernels
// (SgdPairStep, Dot/Axpy) intentionally stay single-version so that a
// fixed seed replays to bit-identical factors on every machine; the
// prediction readout only promises ~1e-12 agreement with the scalar path,
// which FMA/width differences comfortably satisfy.
//
// On non-x86 or non-ELF targets the macro expands to nothing and the
// plain (still auto-vectorized where possible) build is used. It is also
// disabled under ThreadSanitizer: the ifunc resolvers target_clones
// emits run before TSan's runtime is initialized and crash at load time.
#pragma once

#if defined(__SANITIZE_THREAD__)
#define AMF_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define AMF_TSAN_BUILD 1
#endif
#endif

#if defined(__x86_64__) && defined(__ELF__) && defined(__GNUC__) && \
    !defined(__clang__) && !defined(AMF_TSAN_BUILD)
#define AMF_MULTIVERSION \
  __attribute__((target_clones("default", "arch=x86-64-v3", "arch=x86-64-v4")))
#else
#define AMF_MULTIVERSION
#endif

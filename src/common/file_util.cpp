#include "common/file_util.h"

#include <cstdio>
#include <filesystem>
#include <system_error>
#include <vector>

#include "common/check.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#define AMF_HAVE_POSIX_IO 1
#endif

namespace amf::common {

namespace fs = std::filesystem;

bool SyncFile(const std::string& path) {
#if AMF_HAVE_POSIX_IO
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  return false;
#endif
}

bool SyncDirectory(const std::string& path) {
#if AMF_HAVE_POSIX_IO
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  return false;
#endif
}

void CreateDirectoriesDurable(const std::string& path) {
  const fs::path target = fs::absolute(fs::path(path));
  // Walk up to the deepest existing ancestor, remembering what we are
  // about to create so each new entry's parent can be fsynced afterwards.
  std::vector<fs::path> created;
  fs::path probe = target;
  while (!probe.empty() && !fs::exists(probe)) {
    created.push_back(probe);
    const fs::path parent = probe.parent_path();
    if (parent == probe) break;
    probe = parent;
  }
  std::error_code ec;
  fs::create_directories(target, ec);
  AMF_CHECK_MSG(!ec, "cannot create directory " << target.string() << " ("
                                                << ec.message() << ")");
  // Sync the parent of every directory just created (deepest last so the
  // chain is durable bottom-up once this returns). Best-effort: a read-only
  // or exotic filesystem downgrades durability, it does not break creation.
  for (auto it = created.rbegin(); it != created.rend(); ++it) {
    SyncDirectory(it->parent_path().string());
  }
}

AppendFile::~AppendFile() { Close(); }

bool AppendFile::Open(const std::string& path) {
  Close();
  path_ = path;
  size_ = 0;
#if AMF_HAVE_POSIX_IO
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) return false;
  struct stat st {};
  if (::fstat(fd_, &st) == 0) size_ = static_cast<std::uint64_t>(st.st_size);
  return true;
#else
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return false;
  file_ = f;
  // "ab" only moves the position on the first write; seek explicitly so
  // size() is right immediately after a reopen.
  std::fseek(f, 0, SEEK_END);
  const long pos = std::ftell(f);
  size_ = pos > 0 ? static_cast<std::uint64_t>(pos) : 0;
  return true;
#endif
}

bool AppendFile::Append(const void* data, std::size_t size) {
  if (size == 0) return is_open();
#if AMF_HAVE_POSIX_IO
  if (fd_ < 0) return false;
  const char* p = static_cast<const char*>(data);
  std::size_t remaining = size;
  while (remaining > 0) {
    const ::ssize_t n = ::write(fd_, p, remaining);
    if (n <= 0) return false;
    p += n;
    remaining -= static_cast<std::size_t>(n);
  }
  size_ += size;
  return true;
#else
  if (file_ == nullptr) return false;
  std::FILE* f = static_cast<std::FILE*>(file_);
  if (std::fwrite(data, 1, size, f) != size) return false;
  size_ += size;
  return true;
#endif
}

bool AppendFile::Flush() {
#if AMF_HAVE_POSIX_IO
  return fd_ >= 0;  // ::write is unbuffered; already at the OS
#else
  return file_ != nullptr &&
         std::fflush(static_cast<std::FILE*>(file_)) == 0;
#endif
}

bool AppendFile::Sync() {
#if AMF_HAVE_POSIX_IO
  return fd_ >= 0 && ::fsync(fd_) == 0;
#else
  return Flush();  // no durability claim off POSIX
#endif
}

void AppendFile::Close() {
#if AMF_HAVE_POSIX_IO
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
#else
  if (file_ != nullptr) {
    std::fclose(static_cast<std::FILE*>(file_));
    file_ = nullptr;
  }
#endif
}

}  // namespace amf::common

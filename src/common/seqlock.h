// Seqlock protocol for versioned rows, TSan-clean via std::atomic_ref.
//
// A writer brackets each row mutation with BeginWrite/EndWrite on the
// row's 32-bit version word (odd = write in flight) and stores the row
// elements through relaxed atomic_ref stores. A reader loads the version
// (acquire), copies the row through relaxed atomic loads, issues an
// acquire fence, and re-reads the version: an unchanged even value proves
// the copy is a consistent snapshot. This is Boehm's recommended seqlock
// formulation ("Can seqlocks get along with programming language memory
// models?"): because the data accesses themselves are (relaxed) atomics,
// a torn read attempt is well-defined — the retry loop discards it — and
// ThreadSanitizer sees no race.
//
// Memory-order argument:
//   - BeginWrite's release fence orders the odd version store before any
//     subsequent data store becomes visible; a reader that observes new
//     data but an old even version would contradict it.
//   - EndWrite's release store orders all data stores before the closing
//     even version; a reader whose second version load (after the acquire
//     fence that orders its data loads) equals the first even value
//     therefore saw every store of at most one complete write.
//   - Readers never write, so any number of them proceed in parallel with
//     one writer per row; writers are wait-free (two increments), readers
//     lock-free (they retry only while a writer is mid-row).
//
// atomic_ref requires the referenced object to outlive all references and
// to be naturally aligned; std::uint32_t and double in vectors satisfy
// both on every platform this library targets.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>

namespace amf::common {

using SeqlockVersion = std::uint32_t;

/// Marks the row as being written (version becomes odd). The caller must
/// hold writer-side mutual exclusion for the row; the seqlock orders a
/// single writer against readers, not writers against each other.
inline void SeqlockBeginWrite(SeqlockVersion& version) {
  std::atomic_ref<SeqlockVersion> v(version);
  v.store(v.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
}

/// Publishes the write (version becomes even again).
inline void SeqlockEndWrite(SeqlockVersion& version) {
  std::atomic_ref<SeqlockVersion> v(version);
  v.store(v.load(std::memory_order_relaxed) + 1, std::memory_order_release);
}

/// Relaxed atomic store of one row element inside a write section.
/// Generic over the element type so the compressed read replicas (float /
/// bf16-as-uint16 lanes, see core/replica_arena.h) publish through the
/// same protocol as the fp64 masters; every instantiation used here is
/// always lock-free.
template <typename T>
inline void SeqlockStore(T& slot, T value) {
  std::atomic_ref<T>(slot).store(value, std::memory_order_relaxed);
}

/// Relaxed atomic load usable outside any version bracket (loads of
/// lock-free sizes never tear); for row snapshots prefer SeqlockReadRow.
template <typename T>
inline T RelaxedLoad(const T& slot) {
  // atomic_ref wants a mutable lvalue; the const_cast is sound because
  // loads never modify the object.
  return std::atomic_ref<T>(const_cast<T&>(slot))
      .load(std::memory_order_relaxed);
}

template <typename T>
inline void RelaxedStore(T& slot, T value) {
  std::atomic_ref<T>(slot).store(value, std::memory_order_relaxed);
}

/// One read attempt: calls `read_fn()` (relaxed atomic loads only) between
/// the two version loads. Returns true if the snapshot is consistent.
template <typename ReadFn>
inline bool SeqlockTryRead(const SeqlockVersion& version, ReadFn&& read_fn) {
  std::atomic_ref<SeqlockVersion> v(const_cast<SeqlockVersion&>(version));
  const SeqlockVersion v1 = v.load(std::memory_order_acquire);
  if (v1 & 1u) return false;  // writer mid-row
  read_fn();
  std::atomic_thread_fence(std::memory_order_acquire);
  return v.load(std::memory_order_relaxed) == v1;
}

/// Process-wide count of reader retries (snapshot attempts discarded
/// because a writer was mid-row). Monitoring only: the counter is bumped
/// on the retry path exclusively, so uncontended reads cost nothing, and
/// a monitoring layer can expose it as a contention signal (see
/// obs::MetricsRegistry callers). Constant-initialized, so safe to touch
/// from any thread at any time.
inline std::atomic<std::uint64_t>& SeqlockRetryCounter() {
  static std::atomic<std::uint64_t> retries{0};
  return retries;
}

/// Retries `read_fn` until it lands between writes. The wait is bounded by
/// the writer's two-increment critical section; a pause keeps the version
/// cache line shared while spinning. Each discarded attempt is counted in
/// SeqlockRetryCounter().
template <typename ReadFn>
inline void SeqlockRead(const SeqlockVersion& version, ReadFn&& read_fn) {
  while (!SeqlockTryRead(version, read_fn)) {
    SeqlockRetryCounter().fetch_add(1, std::memory_order_relaxed);
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }
}

/// Consistent snapshot of `row` into `dst` (sizes must match).
inline void SeqlockReadRow(const SeqlockVersion& version,
                           std::span<const double> row,
                           std::span<double> dst) {
  SeqlockRead(version, [&] {
    for (std::size_t k = 0; k < row.size(); ++k) {
      dst[k] = RelaxedLoad(row[k]);
    }
  });
}

/// Publishes `src` into `row` under one write bracket.
inline void SeqlockWriteRow(SeqlockVersion& version, std::span<double> row,
                            std::span<const double> src) {
  SeqlockBeginWrite(version);
  for (std::size_t k = 0; k < row.size(); ++k) SeqlockStore(row[k], src[k]);
  SeqlockEndWrite(version);
}

// --- Block-batched validation ----------------------------------------------
// Scoring one user against a block of B service rows with the per-row
// protocol costs 2B version ops, B acquire fences, and per-element atomic
// loads that defeat vectorization. The block protocol amortizes all of it:
// sweep the B version words once (acquire), run ONE bulk computation over
// the rows, fence, and re-sweep — an unchanged all-even sweep proves every
// row was stable across the whole computation, so the bulk kernel may use
// plain vector loads (non-TSan builds; a torn attempt is discarded by the
// failed re-sweep, never observed). The caller retries or degrades to the
// per-row protocol on failure.

/// One block read attempt. `version_at(i)` must return a (const) reference
/// to the i-th row's version word; `snapshot` receives the first-sweep
/// values (size >= n). `compute()` performs the bulk read. Returns true
/// when every row was even and unchanged across the computation.
template <typename VersionAt, typename ComputeFn>
inline bool SeqlockTryReadBlock(std::size_t n, VersionAt&& version_at,
                                SeqlockVersion* snapshot,
                                ComputeFn&& compute) {
  for (std::size_t i = 0; i < n; ++i) {
    std::atomic_ref<SeqlockVersion> v(
        const_cast<SeqlockVersion&>(version_at(i)));
    const SeqlockVersion v1 = v.load(std::memory_order_acquire);
    if (v1 & 1u) return false;  // writer mid-row somewhere in the block
    snapshot[i] = v1;
  }
  compute();
  std::atomic_thread_fence(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    std::atomic_ref<SeqlockVersion> v(
        const_cast<SeqlockVersion&>(version_at(i)));
    if (v.load(std::memory_order_relaxed) != snapshot[i]) return false;
  }
  return true;
}

}  // namespace amf::common

#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <sstream>

namespace amf::common {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string Trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.substr(0, prefix.size()) == prefix;
}

std::optional<double> ParseDouble(std::string_view s) {
  const std::string t = Trim(s);
  if (t.empty()) return std::nullopt;
  // std::from_chars(double) is not universally available; strtod is fine
  // here because `t` is NUL-terminated.
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  if (end != t.c_str() + t.size()) return std::nullopt;
  return v;
}

std::optional<std::int64_t> ParseInt(std::string_view s) {
  const std::string t = Trim(s);
  if (t.empty()) return std::nullopt;
  std::int64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(t.data(), t.data() + t.size(), v);
  if (ec != std::errc() || ptr != t.data() + t.size()) return std::nullopt;
  return v;
}

std::string FormatFixed(double v, int precision) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(precision);
  oss << v;
  return oss.str();
}

}  // namespace amf::common

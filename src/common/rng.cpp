#include "common/rng.h"

#include "common/check.h"

namespace amf::common {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t DeriveSeed(std::uint64_t seed, std::uint64_t stream_id) {
  std::uint64_t state = seed ^ (0xD1B54A32D192ED03ULL * (stream_id + 1));
  (void)SplitMix64(state);
  return SplitMix64(state);
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t state = seed;
  // Seed mt19937_64 with a splitmix-derived sequence (recommended practice:
  // raw small seeds produce correlated mt19937 streams).
  std::seed_seq seq{SplitMix64(state), SplitMix64(state), SplitMix64(state),
                    SplitMix64(state)};
  engine_.seed(seq);
}

double Rng::Uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Uniform(double lo, double hi) {
  AMF_DCHECK(lo <= hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::size_t Rng::Index(std::size_t n) {
  AMF_CHECK_MSG(n > 0, "Rng::Index requires n > 0");
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
}

std::int64_t Rng::Int(std::int64_t lo, std::int64_t hi) {
  AMF_DCHECK(lo <= hi);
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::Normal() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::lognormal_distribution<double>(mu, sigma)(engine_);
}

bool Rng::Bernoulli(double p) {
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::Exponential(double rate) {
  AMF_DCHECK(rate > 0.0);
  return std::exponential_distribution<double>(rate)(engine_);
}

std::vector<std::size_t> Rng::Permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  Shuffle(perm);
  return perm;
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  AMF_CHECK_MSG(k <= n, "sample size exceeds population");
  // Partial Fisher-Yates: O(n) memory, O(n + k) time.
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + Index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::Fork(std::uint64_t stream_id) const {
  return Rng(DeriveSeed(seed_, stream_id));
}

}  // namespace amf::common

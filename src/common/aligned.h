// Cache-line-aligned allocation helpers.
//
// The arena-backed factor layout (core/factor_arena.h) requires every
// latent row to start on a 64-byte boundary so (a) the SIMD GEMV kernels
// may assume aligned loads and (b) one row's seqlock publish never dirties
// a cache line shared with a neighboring row. std::vector's default
// allocator only guarantees alignof(double); this allocator upgrades it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

namespace amf::common {

/// Hot-path alignment unit: one x86/ARM cache line. Also the destructive
/// interference distance on every platform this library targets (we avoid
/// std::hardware_destructive_interference_size: it is 256 on some
/// libstdc++/arm combinations and would quadruple arena padding).
inline constexpr std::size_t kCacheLineBytes = 64;

/// True when `p` sits on an `alignment`-byte boundary.
inline bool IsAligned(const void* p, std::size_t alignment) {
  return (reinterpret_cast<std::uintptr_t>(p) & (alignment - 1)) == 0;
}

/// Rounds `n` up to the next multiple of `unit` (unit must be nonzero).
inline constexpr std::size_t RoundUp(std::size_t n, std::size_t unit) {
  return ((n + unit - 1) / unit) * unit;
}

/// Minimal allocator handing out `Align`-byte-aligned storage, for use as
/// std::vector's allocator. All instances are interchangeable (stateless),
/// so vectors with this allocator copy/move/swap exactly like default ones.
template <typename T, std::size_t Align = kCacheLineBytes>
struct AlignedAllocator {
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "Align must be a power of two >= alignof(T)");
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}  // NOLINT

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

}  // namespace amf::common

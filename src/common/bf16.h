// bfloat16 conversion helpers for the compressed read-replica path.
//
// bf16 is the top 16 bits of an IEEE-754 binary32: 1 sign bit, the same
// 8-bit exponent, and a 7-bit mantissa. Truncating a float's low half
// therefore preserves its full dynamic range (including subnormals, whose
// encoding is monotone in the raw bit pattern) at ~2-3 significant decimal
// digits. That is exactly the trade the predict-side replicas want: the
// latent factors' information content is bounded by SGD noise, so halving
// (vs fp32) or quartering (vs fp64) the bytes streamed per service-block
// scan costs accuracy only within an explicitly enforced MRE budget.
//
// Encoding rounds to nearest-even rather than truncating: RNE halves the
// worst-case quantization error and is what every hardware bf16 unit
// (AVX512-BF16, NEON BF16, TPUs) implements, so replica contents stay
// reproducible if the encode loop is ever offloaded. The round is the
// classic bias trick on the raw bits — add 0x7FFF plus the LSB of the
// kept half, then shift — which is correct for every finite value
// (subnormals included) and for ±Inf, and may legitimately round a huge
// finite value up to Inf (just as binary32 -> binary16 RNE does). NaN is
// special-cased: the bias could carry into the exponent and turn a NaN
// payload into Inf, so NaNs map to a canonical quiet NaN with the sign
// preserved instead.
//
// Decoding is exact (every bf16 value IS a float): shift the 16 bits back
// into the high half of a binary32. Both directions are pure bit
// arithmetic — no FP environment dependence, safe in any TU.
#pragma once

#include <bit>
#include <cstdint>

namespace amf::common {

/// Storage type of one bf16 lane (raw bits; top half of a binary32).
using Bf16 = std::uint16_t;

/// Round-to-nearest-even conversion, NaN-safe (see file comment).
inline Bf16 Bf16FromFloat(float value) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
  if ((bits & 0x7F800000u) == 0x7F800000u && (bits & 0x007FFFFFu) != 0u) {
    // NaN: rounding could carry into the exponent (=> Inf). Canonical
    // quiet NaN, sign preserved.
    return static_cast<Bf16>((bits >> 16) | 0x0040u);
  }
  const std::uint32_t rounded = bits + 0x7FFFu + ((bits >> 16) & 1u);
  return static_cast<Bf16>(rounded >> 16);
}

/// Exact widening: every bf16 value is representable as a float.
inline float Bf16ToFloat(Bf16 value) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(value) << 16);
}

/// double -> bf16 via the intermediate binary32: two RNE steps, which on
/// a double sitting within half a float-ulp of a bf16 tie midpoint can
/// land one bf16-ulp away from a direct single rounding (classic double
/// rounding). That deviation is deterministic, at most 2^-8 relative, and
/// far inside the replica accuracy budget; in exchange the encode matches
/// what a hardware float->bf16 unit fed fp32-converted masters produces.
inline Bf16 Bf16FromDouble(double value) {
  return Bf16FromFloat(static_cast<float>(value));
}

inline double Bf16ToDouble(Bf16 value) {
  return static_cast<double>(Bf16ToFloat(value));
}

}  // namespace amf::common

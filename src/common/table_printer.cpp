#include "common/table_printer.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/check.h"
#include "common/string_util.h"

namespace amf::common {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  AMF_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  AMF_CHECK_MSG(cells.size() == headers_.size(),
                "row width " << cells.size() << " != header width "
                             << headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(FormatFixed(v, precision));
  AddRow(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) oss << "  ";
      oss << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) {
        oss << ' ';
      }
    }
    oss << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (widths.size() - 1);
  for (std::size_t i = 0; i < total; ++i) oss << '-';
  oss << '\n';
  for (const auto& row : rows_) emit_row(row);
  return oss.str();
}

std::string TablePrinter::ToCsv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) oss << ',';
      oss << escape(row[c]);
    }
    oss << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return oss.str();
}

std::string TablePrinter::ToMarkdown() const {
  std::ostringstream oss;
  auto escape = [](const std::string& cell) {
    std::string out;
    for (char c : cell) {
      if (c == '|') out += "\\|";
      else out += c;
    }
    return out;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    oss << "|";
    for (const std::string& cell : row) oss << ' ' << escape(cell) << " |";
    oss << '\n';
  };
  emit(headers_);
  oss << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) oss << "---|";
  oss << '\n';
  for (const auto& row : rows_) emit(row);
  return oss.str();
}

void TablePrinter::Print(std::ostream& os) const { os << ToString() << "\n"; }

}  // namespace amf::common

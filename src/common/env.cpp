#include "common/env.h"

#include <cstdlib>

#include "common/string_util.h"

namespace amf::common {

std::string EnvString(const std::string& name, const std::string& def) {
  const char* v = std::getenv(name.c_str());
  return v ? std::string(v) : def;
}

std::int64_t EnvInt(const std::string& name, std::int64_t def) {
  const char* v = std::getenv(name.c_str());
  if (!v) return def;
  const auto parsed = ParseInt(v);
  return parsed ? *parsed : def;
}

double EnvDouble(const std::string& name, double def) {
  const char* v = std::getenv(name.c_str());
  if (!v) return def;
  const auto parsed = ParseDouble(v);
  return parsed ? *parsed : def;
}

bool EnvFlag(const std::string& name, bool def) {
  const char* v = std::getenv(name.c_str());
  if (!v) return def;
  const std::string s = ToLower(Trim(v));
  return s == "1" || s == "true" || s == "yes" || s == "on";
}

}  // namespace amf::common

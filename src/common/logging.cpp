#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

#include "common/string_util.h"

namespace amf::common {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::once_flag g_env_init;

void InitFromEnv() {
  if (const char* env = std::getenv("AMF_LOG")) {
    g_level.store(ParseLogLevel(env));
  }
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?????";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }

LogLevel GetLogLevel() {
  std::call_once(g_env_init, InitFromEnv);
  return g_level.load();
}

LogLevel ParseLogLevel(const std::string& s) {
  const std::string lower = ToLower(s);
  if (lower == "error") return LogLevel::kError;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "debug") return LogLevel::kDebug;
  return LogLevel::kWarning;
}

namespace detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << "] " << base << ":" << line << " ";
}

LogMessage::~LogMessage() {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::cerr << stream_.str() << "\n";
}

}  // namespace detail
}  // namespace amf::common

// Deterministic random number generation.
//
// Every stochastic component in this library takes an explicit 64-bit seed so
// that experiments are reproducible. `Rng` wraps std::mt19937_64 seeded
// through splitmix64 (which decorrelates nearby seeds), and provides the
// distributions the library needs.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace amf::common {

/// splitmix64 step: maps a 64-bit state to a well-mixed 64-bit output.
/// Used to derive independent sub-seeds from a master seed.
std::uint64_t SplitMix64(std::uint64_t& state);

/// Derives a decorrelated child seed from (seed, stream_id). Deterministic.
std::uint64_t DeriveSeed(std::uint64_t seed, std::uint64_t stream_id);

/// Seeded pseudo-random generator with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0);

  /// Uniform double in [0, 1).
  double Uniform();
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t Index(std::size_t n);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t Int(std::int64_t lo, std::int64_t hi);
  /// Standard normal draw.
  double Normal();
  /// Normal draw with the given mean / stddev.
  double Normal(double mean, double stddev);
  /// Log-normal draw: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);
  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p);
  /// Exponential draw with the given rate.
  double Exponential(double rate);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = Index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Returns a random permutation of {0, ..., n-1}.
  std::vector<std::size_t> Permutation(std::size_t n);

  /// Samples k distinct indices from {0, ..., n-1} (k <= n), in random order.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  /// Forks an independent child generator; deterministic in (this seed, id).
  Rng Fork(std::uint64_t stream_id) const;

  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace amf::common

// Durable file-system primitives shared by the checkpoint and journal
// layers (DESIGN.md §7/§12).
//
// POSIX durability has two independent halves that are easy to get only
// half right:
//   1. file *contents* survive power loss only after fsync(fd) returns;
//   2. the file's *name* survives only after the containing directory is
//      itself fsynced — a rename or create whose directory was never
//      synced can silently vanish, leaving a perfectly-synced orphan.
// Every helper here is a best-effort no-op on platforms without the
// POSIX calls (the library still works; durability claims do not hold
// there and DESIGN.md says so).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace amf::common {

/// fsyncs a file's contents by path (open + fsync + close). Returns false
/// when the file cannot be opened or synced (and on non-POSIX builds).
bool SyncFile(const std::string& path);

/// fsyncs a directory entry table by path, making renames/creates/removes
/// inside it durable. Returns false on failure / non-POSIX.
bool SyncDirectory(const std::string& path);

/// create_directories + directory fsync of every directory actually
/// created *and* of the deepest pre-existing parent, so the new chain of
/// names survives power loss (a freshly created checkpoint/journal
/// directory is otherwise itself a rename-away-from-durable). Throws
/// common::CheckError when creation fails.
void CreateDirectoriesDurable(const std::string& path);

/// Append-only file handle for write-ahead logging: buffered user-space
/// writes, explicit Flush (to the OS) and Sync (to the platter). Wraps a
/// raw POSIX fd when available so Sync is a real fsync on the same open
/// descriptor; falls back to std::FILE-based appends (Flush works, Sync
/// degrades to Flush) elsewhere.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile();
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Opens (creating if needed) `path` for appending. Returns false on
  /// failure. Reopening an already-open handle closes the old file first.
  bool Open(const std::string& path);

  bool is_open() const { return fd_ >= 0 || file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Appends `size` bytes at the end of the file. Returns false on a
  /// short or failed write (caller treats the record as not durable).
  bool Append(const void* data, std::size_t size);
  bool Append(std::string_view bytes) {
    return Append(bytes.data(), bytes.size());
  }

  /// Pushes buffered bytes to the OS (no durability claim).
  bool Flush();

  /// Durability point: everything appended so far has reached stable
  /// storage when this returns true (fsync on POSIX; Flush elsewhere).
  bool Sync();

  /// Current file size in bytes (appended so far + pre-existing).
  std::uint64_t size() const { return size_; }

  void Close();

 private:
  int fd_ = -1;          // POSIX path
  void* file_ = nullptr; // std::FILE* fallback
  std::string path_;
  std::uint64_t size_ = 0;
};

}  // namespace amf::common

// Minimal leveled logger for library diagnostics.
//
// Usage:
//   AMF_LOG(Info) << "trained " << n << " samples";
//
// The global level defaults to Warning so that library code is silent in
// tests and benches unless explicitly enabled (SetLogLevel or the AMF_LOG
// environment variable: error|warning|info|debug).
#pragma once

#include <sstream>
#include <string>

namespace amf::common {

enum class LogLevel { kError = 0, kWarning = 1, kInfo = 2, kDebug = 3 };

/// Sets the global log level.
void SetLogLevel(LogLevel level);

/// Returns the current global log level (initialized from $AMF_LOG once).
LogLevel GetLogLevel();

/// Parses "error" / "warning" / "info" / "debug" (case-insensitive).
/// Returns kWarning for unrecognized input.
LogLevel ParseLogLevel(const std::string& s);

namespace detail {

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace amf::common

#define AMF_LOG(severity)                                                  \
  if (::amf::common::LogLevel::k##severity >                               \
      ::amf::common::GetLogLevel()) {                                      \
  } else                                                                   \
    ::amf::common::detail::LogMessage(                                     \
        ::amf::common::LogLevel::k##severity, __FILE__, __LINE__)

// Test-and-test-and-set spinlock and a striped set of them.
//
// The sharded replay scheduler serializes same-service factor updates
// across user shards with one lock per service stripe. Critical sections
// are tens of nanoseconds (a rank-10 row write), far below the cost of
// parking a thread, so a spinlock beats std::mutex here; the TTAS load
// loop keeps the cache line shared while waiting instead of bouncing it
// with failed RMWs.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

namespace amf::common {

class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  bool try_lock() {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// Fixed set of spinlocks indexed by hash stripe. Entities map to stripes
/// by id modulo the stripe count; distinct entities may share a stripe
/// (coarser exclusion is always safe).
class StripedSpinlocks {
 public:
  explicit StripedSpinlocks(std::size_t stripes)
      : locks_(stripes == 0 ? 1 : stripes) {}

  std::size_t stripes() const { return locks_.size(); }

  Spinlock& ForIndex(std::size_t id) { return locks_[id % locks_.size()]; }

 private:
  // Spinlock is neither copyable nor movable; vector is constructed once
  // at full size and never resized.
  std::vector<Spinlock> locks_;
};

}  // namespace amf::common

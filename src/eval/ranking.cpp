#include "eval/ranking.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace amf::eval {

std::vector<std::size_t> RankByValue(std::span<const double> values,
                                     bool smaller_is_better) {
  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return smaller_is_better ? values[a] < values[b]
                                              : values[a] > values[b];
                   });
  return order;
}

std::vector<std::size_t> TopKByValue(std::span<const double> values,
                                     std::size_t k,
                                     bool smaller_is_better) {
  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  const std::size_t cutoff = std::min(k, order.size());
  // Comparing the index as a tiebreaker reproduces stable_sort's order on
  // equal values, so TopKByValue(v, k) == RankByValue(v)[0..k).
  std::partial_sort(order.begin(), order.begin() + cutoff, order.end(),
                    [&](std::size_t a, std::size_t b) {
                      const double va = values[a];
                      const double vb = values[b];
                      if (va != vb) {
                        return smaller_is_better ? va < vb : va > vb;
                      }
                      return a < b;
                    });
  order.resize(cutoff);
  return order;
}

SelectionMetrics EvaluateSelection(const Predictor& p, data::UserId user,
                                   std::span<const data::ServiceId> candidates,
                                   std::span<const double> truth,
                                   std::size_t k, bool smaller_is_better) {
  AMF_CHECK_MSG(!candidates.empty(), "need at least one candidate");
  AMF_CHECK_MSG(candidates.size() == truth.size(),
                "candidates/truth size mismatch");
  AMF_CHECK_MSG(k >= 1, "k must be >= 1");

  // One batched scoring pass over the candidate set.
  std::vector<double> predicted(candidates.size());
  p.PredictRow(user, candidates, predicted);
  const std::vector<std::size_t> pred_order =
      RankByValue(predicted, smaller_is_better);
  const std::vector<std::size_t> true_order =
      RankByValue(truth, smaller_is_better);

  SelectionMetrics m;
  const std::size_t picked = pred_order.front();
  const std::size_t best = true_order.front();
  // Ties in truth count as hits (either pick is equally good).
  m.top1_hit = truth[picked] == truth[best];

  if (truth[best] > 0.0) {
    m.relative_regret =
        smaller_is_better
            ? (truth[picked] - truth[best]) / truth[best]
            : (truth[best] - truth[picked]) / truth[best];
    m.relative_regret = std::max(0.0, m.relative_regret);
  }

  // Graded relevance from the true ranking: best candidate gets n, next
  // n-1, ... (exponential gains overweight the head too much for n-way
  // selection; linear-by-rank is standard for this use).
  const std::size_t n = candidates.size();
  std::vector<double> relevance(n, 0.0);
  for (std::size_t pos = 0; pos < n; ++pos) {
    relevance[true_order[pos]] = static_cast<double>(n - pos);
  }
  const std::size_t cutoff = std::min(k, n);
  auto dcg = [&](const std::vector<std::size_t>& order) {
    double sum = 0.0;
    for (std::size_t pos = 0; pos < cutoff; ++pos) {
      sum += relevance[order[pos]] /
             std::log2(static_cast<double>(pos) + 2.0);
    }
    return sum;
  };
  const double ideal = dcg(true_order);
  m.ndcg_at_k = ideal > 0.0 ? dcg(pred_order) / ideal : 0.0;
  return m;
}

SelectionSummary Aggregate(std::span<const SelectionMetrics> results) {
  SelectionSummary s;
  s.decisions = results.size();
  if (results.empty()) return s;
  for (const SelectionMetrics& m : results) {
    s.top1_hit_rate += m.top1_hit ? 1.0 : 0.0;
    s.mean_relative_regret += m.relative_regret;
    s.mean_ndcg_at_k += m.ndcg_at_k;
  }
  const double n = static_cast<double>(results.size());
  s.top1_hit_rate /= n;
  s.mean_relative_regret /= n;
  s.mean_ndcg_at_k /= n;
  return s;
}

}  // namespace amf::eval

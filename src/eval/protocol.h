// The Table-I evaluation protocol: for a fully-observed slice, sample an
// observed set at a target density, fit an approach, score on the removed
// entries, and average over rounds with different random seeds.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "data/masking.h"
#include "eval/metrics.h"
#include "eval/predictor.h"
#include "linalg/matrix.h"

namespace amf::eval {

/// Builds a fresh predictor for one round; `seed` varies per round so that
/// stochastic approaches (PMF/AMF initialization, AMF replay order) are
/// averaged over their randomness, exactly like the paper's "20 times with
/// different random seeds".
using PredictorFactory =
    std::function<std::unique_ptr<Predictor>(std::uint64_t seed)>;

struct ProtocolConfig {
  double density = 0.1;       ///< observed fraction, (0, 1]
  std::size_t rounds = 1;     ///< independent mask/seed repetitions
  std::uint64_t seed = 1;     ///< master seed
};

struct ProtocolResult {
  Metrics average;               ///< metrics averaged over rounds
  std::vector<Metrics> rounds;   ///< per-round metrics
  double fit_seconds = 0.0;      ///< total Fit() wall time over all rounds
  /// Total held-out scoring wall time over all rounds (batched by user
  /// through Predictor::PredictRow) — the deployment-side cost.
  double predict_seconds = 0.0;
};

/// Runs the protocol on one dense ground-truth slice.
ProtocolResult RunProtocol(const linalg::Matrix& slice,
                           const ProtocolConfig& config,
                           const PredictorFactory& factory);

}  // namespace amf::eval

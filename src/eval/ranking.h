// Candidate-ranking evaluation.
//
// The end use of QoS prediction in this paper is a *decision*: given a
// task's functionally equivalent candidates, bind the one with the best
// QoS. These metrics score that decision directly: did the predictor's
// top pick coincide with the true best (top-1 hit)? How much worse is the
// picked candidate than the true best (relative regret)? How well does
// the whole predicted ranking agree with the true one (NDCG@k)?
#pragma once

#include <span>
#include <vector>

#include "data/qos_types.h"
#include "eval/predictor.h"

namespace amf::eval {

/// Indices into `values`, sorted best-first. For QoS attributes like
/// response time `smaller_is_better` is true; for throughput it is false.
std::vector<std::size_t> RankByValue(std::span<const double> values,
                                     bool smaller_is_better);

/// Indices of the k best entries, best-first (std::partial_sort — O(n log
/// k) instead of a full sort). Ties break toward the lower index, matching
/// RankByValue's stable order. Returns min(k, values.size()) indices.
/// This is the top-k primitive for candidate selection over a
/// batch-scored prediction row.
std::vector<std::size_t> TopKByValue(std::span<const double> values,
                                     std::size_t k, bool smaller_is_better);

struct SelectionMetrics {
  /// Predicted-best candidate is the true best.
  bool top1_hit = false;
  /// (true value of predicted-best - true best value) / true best value,
  /// for smaller-is-better attributes (mirrored otherwise). 0 = optimal.
  double relative_regret = 0.0;
  /// Normalized discounted cumulative gain of the predicted ranking at
  /// cutoff k, in [0, 1]; 1 = perfect order.
  double ndcg_at_k = 0.0;
};

/// Scores one selection decision. `truth[i]` is the true QoS of
/// `candidates[i]`; predictions come from `p.Predict(user, candidates[i])`.
/// Requires at least one candidate and, for regret, positive truths.
SelectionMetrics EvaluateSelection(const Predictor& p, data::UserId user,
                                   std::span<const data::ServiceId> candidates,
                                   std::span<const double> truth,
                                   std::size_t k,
                                   bool smaller_is_better = true);

/// Aggregate of many selection decisions.
struct SelectionSummary {
  double top1_hit_rate = 0.0;
  double mean_relative_regret = 0.0;
  double mean_ndcg_at_k = 0.0;
  std::size_t decisions = 0;
};

SelectionSummary Aggregate(std::span<const SelectionMetrics> results);

}  // namespace amf::eval

#include "eval/metrics.h"

#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "common/statistics.h"

namespace amf::eval {

Metrics ComputeMetrics(std::span<const double> predicted,
                       std::span<const double> actual) {
  AMF_CHECK_MSG(predicted.size() == actual.size(),
                "prediction/truth size mismatch");
  Metrics m;
  m.count = predicted.size();
  if (predicted.empty()) return m;

  double abs_sum = 0.0;
  double sq_sum = 0.0;
  std::vector<double> rel;
  rel.reserve(predicted.size());
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double err = predicted[i] - actual[i];
    abs_sum += std::abs(err);
    sq_sum += err * err;
    if (actual[i] > 0.0) rel.push_back(std::abs(err) / actual[i]);
  }
  m.mae = abs_sum / static_cast<double>(predicted.size());
  m.rmse = std::sqrt(sq_sum / static_cast<double>(predicted.size()));
  if (!rel.empty()) {
    m.mre = common::Median(rel);
    m.npre = common::Percentile(std::move(rel), 90.0);
  }
  return m;
}

std::vector<double> PredictBatch(const Predictor& p,
                                 std::span<const data::QoSSample> test) {
  // Group sample indices by user so each group goes through the
  // predictor's batched row kernel in one pass.
  std::vector<double> pred(test.size());
  std::unordered_map<data::UserId, std::vector<std::size_t>> by_user;
  for (std::size_t i = 0; i < test.size(); ++i) {
    by_user[test[i].user].push_back(i);
  }
  std::vector<data::ServiceId> services;
  std::vector<double> scores;
  for (const auto& [u, idx] : by_user) {
    services.clear();
    services.reserve(idx.size());
    for (std::size_t i : idx) services.push_back(test[i].service);
    scores.resize(services.size());
    p.PredictRow(u, services, scores);
    for (std::size_t j = 0; j < idx.size(); ++j) pred[idx[j]] = scores[j];
  }
  return pred;
}

Metrics EvaluatePredictor(const Predictor& p,
                          std::span<const data::QoSSample> test) {
  const std::vector<double> pred = PredictBatch(p, test);
  std::vector<double> truth;
  truth.reserve(test.size());
  for (const data::QoSSample& s : test) truth.push_back(s.value);
  return ComputeMetrics(pred, truth);
}

std::vector<double> SignedErrors(const Predictor& p,
                                 std::span<const data::QoSSample> test) {
  std::vector<double> errs = PredictBatch(p, test);
  for (std::size_t i = 0; i < test.size(); ++i) errs[i] -= test[i].value;
  return errs;
}

std::vector<double> RelativeErrors(const Predictor& p,
                                   std::span<const data::QoSSample> test) {
  const std::vector<double> pred = PredictBatch(p, test);
  std::vector<double> errs;
  errs.reserve(test.size());
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (test[i].value <= 0.0) continue;
    errs.push_back(std::abs(pred[i] - test[i].value) / test[i].value);
  }
  return errs;
}

Metrics AverageMetrics(std::span<const Metrics> runs) {
  Metrics avg;
  if (runs.empty()) return avg;
  for (const Metrics& m : runs) {
    avg.mae += m.mae;
    avg.mre += m.mre;
    avg.npre += m.npre;
    avg.rmse += m.rmse;
    avg.count += m.count;
  }
  const double n = static_cast<double>(runs.size());
  avg.mae /= n;
  avg.mre /= n;
  avg.npre /= n;
  avg.rmse /= n;
  return avg;
}

}  // namespace amf::eval

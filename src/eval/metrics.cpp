#include "eval/metrics.h"

#include <cmath>

#include "common/check.h"
#include "common/statistics.h"

namespace amf::eval {

Metrics ComputeMetrics(std::span<const double> predicted,
                       std::span<const double> actual) {
  AMF_CHECK_MSG(predicted.size() == actual.size(),
                "prediction/truth size mismatch");
  Metrics m;
  m.count = predicted.size();
  if (predicted.empty()) return m;

  double abs_sum = 0.0;
  double sq_sum = 0.0;
  std::vector<double> rel;
  rel.reserve(predicted.size());
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double err = predicted[i] - actual[i];
    abs_sum += std::abs(err);
    sq_sum += err * err;
    if (actual[i] > 0.0) rel.push_back(std::abs(err) / actual[i]);
  }
  m.mae = abs_sum / static_cast<double>(predicted.size());
  m.rmse = std::sqrt(sq_sum / static_cast<double>(predicted.size()));
  if (!rel.empty()) {
    m.mre = common::Median(rel);
    m.npre = common::Percentile(std::move(rel), 90.0);
  }
  return m;
}

namespace {

std::pair<std::vector<double>, std::vector<double>> PredictAll(
    const Predictor& p, std::span<const data::QoSSample> test) {
  std::vector<double> pred;
  std::vector<double> truth;
  pred.reserve(test.size());
  truth.reserve(test.size());
  for (const data::QoSSample& s : test) {
    pred.push_back(p.Predict(s.user, s.service));
    truth.push_back(s.value);
  }
  return {std::move(pred), std::move(truth)};
}

}  // namespace

Metrics EvaluatePredictor(const Predictor& p,
                          std::span<const data::QoSSample> test) {
  const auto [pred, truth] = PredictAll(p, test);
  return ComputeMetrics(pred, truth);
}

std::vector<double> SignedErrors(const Predictor& p,
                                 std::span<const data::QoSSample> test) {
  std::vector<double> errs;
  errs.reserve(test.size());
  for (const data::QoSSample& s : test) {
    errs.push_back(p.Predict(s.user, s.service) - s.value);
  }
  return errs;
}

std::vector<double> RelativeErrors(const Predictor& p,
                                   std::span<const data::QoSSample> test) {
  std::vector<double> errs;
  errs.reserve(test.size());
  for (const data::QoSSample& s : test) {
    if (s.value <= 0.0) continue;
    errs.push_back(std::abs(p.Predict(s.user, s.service) - s.value) /
                   s.value);
  }
  return errs;
}

Metrics AverageMetrics(std::span<const Metrics> runs) {
  Metrics avg;
  if (runs.empty()) return avg;
  for (const Metrics& m : runs) {
    avg.mae += m.mae;
    avg.mre += m.mre;
    avg.npre += m.npre;
    avg.rmse += m.rmse;
    avg.count += m.count;
  }
  const double n = static_cast<double>(runs.size());
  avg.mae /= n;
  avg.mre /= n;
  avg.npre /= n;
  avg.rmse /= n;
  return avg;
}

}  // namespace amf::eval

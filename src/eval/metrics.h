// Accuracy metrics (paper §V-B).
//
//   MAE  = mean |pred - actual|
//   MRE  = median(|pred - actual| / actual)
//   NPRE = 90th percentile of (|pred - actual| / actual)
//   RMSE = sqrt(mean (pred-actual)^2)      (extra, not in the paper)
//
// The paper argues MAE is the wrong yardstick for QoS (wide value range)
// and optimizes/reports relative-error metrics; we report all of them.
#pragma once

#include <span>
#include <vector>

#include "data/qos_types.h"
#include "eval/predictor.h"

namespace amf::eval {

struct Metrics {
  double mae = 0.0;
  double mre = 0.0;
  double npre = 0.0;
  double rmse = 0.0;
  std::size_t count = 0;
};

/// Metrics from parallel prediction/ground-truth vectors.
/// Entries with non-positive ground truth are excluded from the relative
/// metrics (they cannot occur with the bundled generator, which floors
/// values at a positive epsilon, but real data may contain zeros).
Metrics ComputeMetrics(std::span<const double> predicted,
                       std::span<const double> actual);

/// Predicts every test sample, grouping samples by user so each group is
/// scored through the predictor's batched PredictRow in one pass. Returns
/// predictions aligned with `test`.
std::vector<double> PredictBatch(const Predictor& p,
                                 std::span<const data::QoSSample> test);

/// Predicts every test sample with `p` (batched by user) and scores it.
Metrics EvaluatePredictor(const Predictor& p,
                          std::span<const data::QoSSample> test);

/// Signed errors (pred - actual) for the Fig. 10 error-distribution plot.
std::vector<double> SignedErrors(const Predictor& p,
                                 std::span<const data::QoSSample> test);

/// Pairwise relative errors |pred - actual| / actual (positive truth only).
std::vector<double> RelativeErrors(const Predictor& p,
                                   std::span<const data::QoSSample> test);

/// Element-wise average of several metric sets (for multi-round protocols).
Metrics AverageMetrics(std::span<const Metrics> runs);

}  // namespace amf::eval

// Common interface every QoS-prediction approach implements.
//
// The accuracy experiments (Table I, Figs. 10-12) treat each approach as a
// black box: fit on the observed sparse slice, then predict the held-out
// (user, service) pairs. The online approaches (AMF) additionally expose
// incremental updates through their own APIs; Fit() is their cold-start
// wrapper so that one protocol can score everything.
#pragma once

#include <span>
#include <string>

#include "data/qos_types.h"
#include "data/sparse_matrix.h"

namespace amf::eval {

class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Short display name ("UPCC", "PMF", "AMF", ...).
  virtual std::string name() const = 0;

  /// Trains on the observed entries of one slice.
  virtual void Fit(const data::SparseMatrix& train) = 0;

  /// Predicts the QoS value for an unobserved (user, service) pair.
  /// Must be callable for any indices within the fitted matrix shape.
  virtual double Predict(data::UserId u, data::ServiceId s) const = 0;

  /// Batch variant: out[i] = prediction for (u, services[i]). Sizes must
  /// match. The default loops over Predict; approaches with a batched
  /// scoring path (AMF) override it with a single-pass row kernel. All
  /// evaluation loops (metrics, ranking, protocol) call this, so an
  /// override accelerates every experiment at once.
  virtual void PredictRow(data::UserId u,
                          std::span<const data::ServiceId> services,
                          std::span<double> out) const {
    for (std::size_t i = 0; i < services.size(); ++i) {
      out[i] = Predict(u, services[i]);
    }
  }
};

}  // namespace amf::eval

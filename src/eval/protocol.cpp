#include "eval/protocol.h"

#include "common/check.h"
#include "common/rng.h"
#include "common/timer.h"

namespace amf::eval {

ProtocolResult RunProtocol(const linalg::Matrix& slice,
                           const ProtocolConfig& config,
                           const PredictorFactory& factory) {
  AMF_CHECK_MSG(config.rounds > 0, "protocol needs at least one round");
  ProtocolResult result;
  result.rounds.reserve(config.rounds);
  common::Rng master(config.seed);

  for (std::size_t round = 0; round < config.rounds; ++round) {
    common::Rng mask_rng = master.Fork(2 * round);
    const data::TrainTestSplit split =
        data::SplitSlice(slice, config.density, mask_rng);
    std::unique_ptr<Predictor> predictor =
        factory(common::DeriveSeed(config.seed, 2 * round + 1));
    AMF_CHECK_MSG(predictor != nullptr, "factory returned null predictor");

    common::Stopwatch watch;
    predictor->Fit(split.train);
    result.fit_seconds += watch.ElapsedSeconds();

    common::Stopwatch predict_watch;
    result.rounds.push_back(EvaluatePredictor(*predictor, split.test));
    result.predict_seconds += predict_watch.ElapsedSeconds();
  }
  result.average = AverageMetrics(result.rounds);
  return result;
}

}  // namespace amf::eval

#include "cf/nimf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "linalg/vector_ops.h"

namespace amf::cf {

Nimf::Nimf(const NimfConfig& config) : config_(config) {
  AMF_CHECK_MSG(config_.rank > 0, "rank must be positive");
  AMF_CHECK_MSG(config_.alpha >= 0.0 && config_.alpha <= 1.0,
                "alpha must be in [0, 1]");
  AMF_CHECK_MSG(config_.learn_rate > 0.0, "learn_rate must be positive");
}

void Nimf::Fit(const data::SparseMatrix& train) {
  AMF_CHECK_MSG(train.nnz() > 0, "NIMF requires a non-empty training set");
  common::Rng rng(config_.seed);

  // Neighborhoods from user-user PCC on the raw slice.
  SimilarityOptions sim_opts;
  sim_opts.significance_gamma = config_.significance_gamma;
  const SimilarityMatrix sim = UserSimilarities(train, sim_opts);
  std::vector<std::uint32_t> all_users(train.rows());
  for (std::size_t u = 0; u < train.rows(); ++u) {
    all_users[u] = static_cast<std::uint32_t>(u);
  }
  neighbors_.assign(train.rows(), {});
  for (std::size_t u = 0; u < train.rows(); ++u) {
    std::vector<Neighbor> top =
        TopKPositiveNeighbors(sim, u, all_users, config_.top_k);
    double sum = 0.0;
    for (const Neighbor& n : top) sum += n.similarity;
    if (sum > 0.0) {
      for (Neighbor& n : top) n.similarity /= sum;
    }
    neighbors_[u] = std::move(top);
  }

  // Normalization bounds and mean-matched initialization (as in PMF).
  std::vector<data::QoSSample> samples = train.ToSamples();
  norm_lo_ = samples.front().value;
  norm_hi_ = samples.front().value;
  double value_sum = 0.0;
  for (const auto& s : samples) {
    norm_lo_ = std::min(norm_lo_, s.value);
    norm_hi_ = std::max(norm_hi_, s.value);
    value_sum += s.value;
  }
  if (norm_hi_ <= norm_lo_) norm_hi_ = norm_lo_ + 1.0;
  const double inv_span = 1.0 / (norm_hi_ - norm_lo_);
  const double mean_r =
      (value_sum / static_cast<double>(samples.size()) - norm_lo_) *
      inv_span;
  const double init_scale =
      2.0 * std::sqrt(std::max(mean_r, 1e-6) /
                      static_cast<double>(config_.rank));
  user_factors_.Resize(train.rows(), config_.rank);
  for (double& v : user_factors_.data()) v = rng.Uniform() * init_scale;
  service_factors_.Resize(train.cols(), config_.rank);
  for (double& v : service_factors_.data()) v = rng.Uniform() * init_scale;

  const double a = config_.alpha;
  const double lr = config_.learn_rate;
  std::vector<double> blended(config_.rank);

  double prev_rmse = std::numeric_limits<double>::infinity();
  std::size_t stall = 0;
  epochs_run_ = 0;
  for (std::size_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    rng.Shuffle(samples);
    double sq_err = 0.0;
    for (const data::QoSSample& sample : samples) {
      const double r = (sample.value - norm_lo_) * inv_span;
      auto ui = user_factors_.row(sample.user);
      auto sj = service_factors_.row(sample.service);
      const auto& nbrs = neighbors_[sample.user];

      // Blended latent user vector: a * Ui + (1-a) * sum w_ik Uk.
      for (std::size_t k = 0; k < config_.rank; ++k) {
        blended[k] = a * ui[k];
      }
      for (const Neighbor& n : nbrs) {
        const auto uk = user_factors_.row(n.index);
        for (std::size_t k = 0; k < config_.rank; ++k) {
          blended[k] += (1.0 - a) * n.similarity * uk[k];
        }
      }
      const double err = linalg::Dot(blended, sj) - r;
      sq_err += err * err;

      // Gradients w.r.t. the old values; Sj uses the old blended vector.
      const double coef = lr * err;
      for (std::size_t k = 0; k < config_.rank; ++k) {
        const double sk = sj[k];
        ui[k] -= coef * a * sk + lr * config_.lambda * ui[k];
        sj[k] -= coef * blended[k] + lr * config_.lambda * sk;
      }
      for (const Neighbor& n : nbrs) {
        auto uk = user_factors_.row(n.index);
        const double w = (1.0 - a) * n.similarity;
        for (std::size_t k = 0; k < config_.rank; ++k) {
          // sj was just updated; the deviation is second-order in lr and
          // standard for SGD with shared parameters.
          uk[k] -= coef * w * sj[k];
        }
      }
    }
    ++epochs_run_;
    const double rmse =
        std::sqrt(sq_err / static_cast<double>(samples.size()));
    const double improvement =
        prev_rmse > 0.0 ? (prev_rmse - rmse) / prev_rmse : 0.0;
    if (improvement < config_.convergence_tol) {
      if (++stall >= config_.patience) break;
    } else {
      stall = 0;
    }
    prev_rmse = rmse;
  }
}

double Nimf::PredictNormalized(data::UserId u, data::ServiceId s) const {
  const auto sj = service_factors_.row(s);
  double pred = config_.alpha * linalg::Dot(user_factors_.row(u), sj);
  for (const Neighbor& n : neighbors_[u]) {
    pred += (1.0 - config_.alpha) * n.similarity *
            linalg::Dot(user_factors_.row(n.index), sj);
  }
  return pred;
}

double Nimf::Predict(data::UserId u, data::ServiceId s) const {
  AMF_CHECK_MSG(!user_factors_.empty(), "Predict before Fit");
  AMF_CHECK(u < user_factors_.rows() && s < service_factors_.rows());
  const double r = std::clamp(PredictNormalized(u, s), 0.0, 1.0);
  return norm_lo_ + r * (norm_hi_ - norm_lo_);
}

}  // namespace amf::cf

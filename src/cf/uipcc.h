// UIPCC: the WSRec hybrid of UPCC and IPCC (paper §V-C baseline).
//
// Both component predictions carry a confidence weight; they are combined
// with a mixing parameter lambda:
//
//   w_u = (con_u * lambda) / (con_u * lambda + con_i * (1 - lambda))
//   R^  = w_u * R^_UPCC + (1 - w_u) * R^_IPCC
//
// falling back to whichever side is available, then to scalar means.
#pragma once

#include "cf/ipcc.h"
#include "cf/upcc.h"
#include "eval/predictor.h"

namespace amf::cf {

struct UipccConfig {
  NeighborhoodConfig neighborhood;
  /// Mixing parameter between the user- and item-based predictions.
  double lambda = 0.5;
};

class Uipcc : public eval::Predictor {
 public:
  explicit Uipcc(const UipccConfig& config = {});

  std::string name() const override { return "UIPCC"; }
  void Fit(const data::SparseMatrix& train) override;
  double Predict(data::UserId u, data::ServiceId s) const override;

 private:
  UipccConfig config_;
  Upcc upcc_;
  Ipcc ipcc_;
  MeansCache means_;
};

}  // namespace amf::cf

// Pearson-correlation similarity for neighborhood CF (UPCC/IPCC/UIPCC).
//
// Similarity between two users (or two services) is the Pearson correlation
// coefficient computed over their co-observed entries, with optional
// significance weighting min(|overlap| / gamma, 1) to damp correlations
// estimated from tiny overlaps (standard practice in the WSRec line of work
// the paper compares against).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "data/sparse_matrix.h"

namespace amf::cf {

struct SimilarityOptions {
  /// Significance-weighting threshold; overlaps smaller than this scale the
  /// correlation down proportionally. 0 disables.
  std::size_t significance_gamma = 8;
  /// Pairs with fewer co-observed entries than this get no similarity.
  std::size_t min_overlap = 2;
  /// Worker threads for the all-pairs computation (0 = global pool).
  bool parallel = true;
};

/// Pearson correlation over two aligned samples (the co-observed values).
/// Returns nullopt when fewer than 2 points or zero variance.
std::optional<double> PearsonCorrelation(const std::vector<double>& x,
                                         const std::vector<double>& y);

/// Dense symmetric similarity matrix, stored as float to halve memory at
/// paper scale (4500 x 4500). Unset/invalid similarities are 0.
class SimilarityMatrix {
 public:
  SimilarityMatrix() = default;
  explicit SimilarityMatrix(std::size_t n);

  std::size_t size() const { return n_; }
  float At(std::size_t i, std::size_t j) const;
  void Set(std::size_t i, std::size_t j, float v);

 private:
  std::size_t n_ = 0;
  std::vector<float> data_;
};

/// All-pairs similarity between rows (users) of the sparse matrix.
SimilarityMatrix UserSimilarities(const data::SparseMatrix& m,
                                  const SimilarityOptions& opts = {});

/// All-pairs similarity between columns (services) of the sparse matrix.
SimilarityMatrix ServiceSimilarities(const data::SparseMatrix& m,
                                     const SimilarityOptions& opts = {});

/// One neighbor (index + similarity) of a prediction target.
struct Neighbor {
  std::uint32_t index;
  double similarity;
};

/// The top-k positively-similar neighbors of `target` among `candidates`.
/// Result is sorted by descending similarity.
std::vector<Neighbor> TopKPositiveNeighbors(
    const SimilarityMatrix& sim, std::size_t target,
    const std::vector<std::uint32_t>& candidates, std::size_t k);

}  // namespace amf::cf

#include "cf/uipcc.h"

#include "common/check.h"

namespace amf::cf {

Uipcc::Uipcc(const UipccConfig& config)
    : config_(config),
      upcc_(config.neighborhood),
      ipcc_(config.neighborhood) {
  AMF_CHECK_MSG(config_.lambda >= 0.0 && config_.lambda <= 1.0,
                "lambda must be in [0, 1]");
}

void Uipcc::Fit(const data::SparseMatrix& train) {
  upcc_.Fit(train);
  ipcc_.Fit(train);
  means_ = MeansCache(train);
}

double Uipcc::Predict(data::UserId u, data::ServiceId s) const {
  const auto up = upcc_.PredictWithConfidence(u, s);
  const auto ip = ipcc_.PredictWithConfidence(u, s);
  if (up && ip) {
    const double wu_raw = up->confidence * config_.lambda;
    const double wi_raw = ip->confidence * (1.0 - config_.lambda);
    const double denom = wu_raw + wi_raw;
    if (denom <= 0.0) {
      return 0.5 * (up->value + ip->value);
    }
    const double wu = wu_raw / denom;
    return wu * up->value + (1.0 - wu) * ip->value;
  }
  if (up) return up->value;
  if (ip) return ip->value;
  return means_.Fallback(u, s);
}

}  // namespace amf::cf

// IPCC: item (service)-based collaborative filtering (paper §V-C baseline).
//
// Mirror image of UPCC: prediction for (u, s) is the service's mean plus
// the similarity-weighted deviation of the top-k most similar services
// that u has observed.
#pragma once

#include "cf/neighborhood.h"
#include "cf/similarity.h"
#include "eval/predictor.h"

namespace amf::cf {

class Ipcc : public eval::Predictor {
 public:
  explicit Ipcc(const NeighborhoodConfig& config = {});

  std::string name() const override { return "IPCC"; }
  void Fit(const data::SparseMatrix& train) override;
  double Predict(data::UserId u, data::ServiceId s) const override;

  /// Prediction plus UIPCC confidence; nullopt when no usable neighborhood.
  std::optional<ConfidentPrediction> PredictWithConfidence(
      data::UserId u, data::ServiceId s) const;

  const MeansCache& means() const { return means_; }

 private:
  NeighborhoodConfig config_;
  data::SparseMatrix train_;
  SimilarityMatrix service_sim_;
  MeansCache means_;
};

}  // namespace amf::cf

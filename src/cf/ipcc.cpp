#include "cf/ipcc.h"

#include "common/check.h"

namespace amf::cf {

Ipcc::Ipcc(const NeighborhoodConfig& config) : config_(config) {}

void Ipcc::Fit(const data::SparseMatrix& train) {
  train_ = train;
  SimilarityOptions opts;
  opts.significance_gamma = config_.significance_gamma;
  opts.min_overlap = config_.min_overlap;
  service_sim_ = ServiceSimilarities(train_, opts);
  means_ = MeansCache(train_);
}

std::optional<ConfidentPrediction> Ipcc::PredictWithConfidence(
    data::UserId u, data::ServiceId s) const {
  AMF_CHECK_MSG(train_.rows() > 0, "Predict before Fit");
  AMF_CHECK(u < train_.rows() && s < train_.cols());
  const auto service_mean = means_.ServiceMean(s);
  if (!service_mean) return std::nullopt;

  // Candidate neighbors: services that user u observed.
  std::vector<std::uint32_t> candidates;
  for (const data::SparseEntry& e : train_.Row(u)) {
    candidates.push_back(e.index);
  }
  const std::vector<Neighbor> neighbors =
      TopKPositiveNeighbors(service_sim_, s, candidates, config_.top_k);
  if (neighbors.empty()) return std::nullopt;

  double sim_sum = 0.0;
  for (const Neighbor& n : neighbors) sim_sum += n.similarity;
  double deviation = 0.0;
  double confidence = 0.0;
  for (const Neighbor& n : neighbors) {
    const auto value = train_.Get(u, n.index);
    AMF_DCHECK(value.has_value());
    const auto nb_mean = means_.ServiceMean(n.index);
    AMF_DCHECK(nb_mean.has_value());
    deviation += n.similarity * (*value - *nb_mean);
    confidence += (n.similarity / sim_sum) * n.similarity;
  }
  return ConfidentPrediction{*service_mean + deviation / sim_sum,
                             confidence};
}

double Ipcc::Predict(data::UserId u, data::ServiceId s) const {
  if (const auto p = PredictWithConfidence(u, s)) return p->value;
  return means_.Fallback(u, s);
}

}  // namespace amf::cf

// UPCC: user-based collaborative filtering (paper §V-C baseline).
//
// Prediction for (u, s) is the user's mean plus the similarity-weighted
// deviation of the top-k most similar users that observed s:
//
//   R^(u,s) = mean(u) + sum_v sim(u,v) (R(v,s) - mean(v)) / sum_v |sim(u,v)|
#pragma once

#include "cf/neighborhood.h"
#include "cf/similarity.h"
#include "eval/predictor.h"

namespace amf::cf {

class Upcc : public eval::Predictor {
 public:
  explicit Upcc(const NeighborhoodConfig& config = {});

  std::string name() const override { return "UPCC"; }
  void Fit(const data::SparseMatrix& train) override;
  double Predict(data::UserId u, data::ServiceId s) const override;

  /// Prediction plus UIPCC confidence; nullopt when no usable neighborhood
  /// exists (caller falls back).
  std::optional<ConfidentPrediction> PredictWithConfidence(
      data::UserId u, data::ServiceId s) const;

  const MeansCache& means() const { return means_; }

 private:
  NeighborhoodConfig config_;
  data::SparseMatrix train_;
  SimilarityMatrix user_sim_;
  MeansCache means_;
};

}  // namespace amf::cf

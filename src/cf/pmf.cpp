#include "cf/pmf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "linalg/vector_ops.h"

namespace amf::cf {

Pmf::Pmf(const PmfConfig& config) : config_(config) {
  AMF_CHECK_MSG(config_.rank > 0, "rank must be positive");
  AMF_CHECK_MSG(config_.learn_rate > 0.0, "learn_rate must be positive");
}

void Pmf::Fit(const data::SparseMatrix& train) {
  AMF_CHECK_MSG(train.nnz() > 0, "PMF requires a non-empty training set");
  common::Rng rng(config_.seed);

  // Min-max normalization bounds from the observed data.
  std::vector<data::QoSSample> samples = train.ToSamples();
  norm_lo_ = samples.front().value;
  norm_hi_ = samples.front().value;
  double value_sum = 0.0;
  for (const auto& s : samples) {
    norm_lo_ = std::min(norm_lo_, s.value);
    norm_hi_ = std::max(norm_hi_, s.value);
    value_sum += s.value;
  }
  if (norm_hi_ <= norm_lo_) norm_hi_ = norm_lo_ + 1.0;  // constant data
  const double inv_span = 1.0 / (norm_hi_ - norm_lo_);
  const double mean_r =
      (value_sum / static_cast<double>(samples.size()) - norm_lo_) *
      inv_span;

  // Initialize so that the expected inner product matches the mean of the
  // normalized data: entries Uniform(0, a) with d (a/2)^2 = mean_r.
  const double init_scale =
      2.0 * std::sqrt(std::max(mean_r, 1e-6) /
                      static_cast<double>(config_.rank));
  user_factors_.Resize(train.rows(), config_.rank);
  for (double& v : user_factors_.data()) v = rng.Uniform() * init_scale;
  service_factors_.Resize(train.cols(), config_.rank);
  for (double& v : service_factors_.data()) v = rng.Uniform() * init_scale;

  double prev_rmse = std::numeric_limits<double>::infinity();
  std::size_t stall = 0;
  epochs_run_ = 0;
  for (std::size_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    rng.Shuffle(samples);
    double sq_err = 0.0;
    for (const data::QoSSample& sample : samples) {
      const double r = (sample.value - norm_lo_) * inv_span;
      auto ui = user_factors_.row(sample.user);
      auto sj = service_factors_.row(sample.service);
      const double err = linalg::Dot(ui, sj) - r;
      sq_err += err * err;
      const double coef = config_.learn_rate * err;
      // Simultaneous update: compute both deltas from the old vectors.
      for (std::size_t k = 0; k < config_.rank; ++k) {
        const double uk = ui[k];
        const double sk = sj[k];
        ui[k] -= coef * sk + config_.learn_rate * config_.lambda * uk;
        sj[k] -= coef * uk + config_.learn_rate * config_.lambda * sk;
      }
    }
    ++epochs_run_;
    const double rmse =
        std::sqrt(sq_err / static_cast<double>(samples.size()));
    final_train_rmse_ = rmse;
    const double improvement =
        prev_rmse > 0.0 ? (prev_rmse - rmse) / prev_rmse : 0.0;
    if (improvement < config_.convergence_tol) {
      if (++stall >= config_.patience) break;
    } else {
      stall = 0;
    }
    prev_rmse = rmse;
  }
}

double Pmf::Predict(data::UserId u, data::ServiceId s) const {
  AMF_CHECK_MSG(!user_factors_.empty(), "Predict before Fit");
  AMF_CHECK(u < user_factors_.rows() && s < service_factors_.rows());
  // Linear reconstruction, clamped into the observed value range.
  const double r = std::clamp(
      linalg::Dot(user_factors_.row(u), service_factors_.row(s)), 0.0, 1.0);
  return norm_lo_ + r * (norm_hi_ - norm_lo_);
}

}  // namespace amf::cf

#include "cf/similarity.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/thread_pool.h"

namespace amf::cf {

std::optional<double> PearsonCorrelation(const std::vector<double>& x,
                                         const std::vector<double>& y) {
  AMF_CHECK(x.size() == y.size());
  const std::size_t n = x.size();
  if (n < 2) return std::nullopt;
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    syy += y[i] * y[i];
    sxy += x[i] * y[i];
  }
  const double dn = static_cast<double>(n);
  const double cov = dn * sxy - sx * sy;
  const double vx = dn * sxx - sx * sx;
  const double vy = dn * syy - sy * sy;
  if (vx <= 0.0 || vy <= 0.0) return std::nullopt;
  return cov / std::sqrt(vx * vy);
}

SimilarityMatrix::SimilarityMatrix(std::size_t n)
    : n_(n), data_(n * n, 0.0f) {}

float SimilarityMatrix::At(std::size_t i, std::size_t j) const {
  AMF_DCHECK(i < n_ && j < n_);
  return data_[i * n_ + j];
}

void SimilarityMatrix::Set(std::size_t i, std::size_t j, float v) {
  AMF_DCHECK(i < n_ && j < n_);
  data_[i * n_ + j] = v;
  data_[j * n_ + i] = v;
}

namespace {

/// PCC over the sorted-index intersection of two sparse vectors.
/// Returns 0 when the overlap is too small or degenerate.
float IntersectionPcc(std::span<const data::SparseEntry> a,
                      std::span<const data::SparseEntry> b,
                      const SimilarityOptions& opts) {
  std::size_t i = 0, j = 0, n = 0;
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].index < b[j].index) {
      ++i;
    } else if (a[i].index > b[j].index) {
      ++j;
    } else {
      const double x = a[i].value;
      const double y = b[j].value;
      sx += x;
      sy += y;
      sxx += x * x;
      syy += y * y;
      sxy += x * y;
      ++n;
      ++i;
      ++j;
    }
  }
  if (n < std::max<std::size_t>(2, opts.min_overlap)) return 0.0f;
  const double dn = static_cast<double>(n);
  const double cov = dn * sxy - sx * sy;
  const double vx = dn * sxx - sx * sx;
  const double vy = dn * syy - sy * sy;
  if (vx <= 0.0 || vy <= 0.0) return 0.0f;
  double corr = cov / std::sqrt(vx * vy);
  if (opts.significance_gamma > 0) {
    corr *= std::min(1.0, dn / static_cast<double>(opts.significance_gamma));
  }
  return static_cast<float>(std::clamp(corr, -1.0, 1.0));
}

/// All-pairs similarity between sparse vectors fetched via `get(i)`.
template <typename GetVec>
SimilarityMatrix AllPairs(std::size_t n, const GetVec& get,
                          const SimilarityOptions& opts) {
  SimilarityMatrix sim(n);
  auto compute_row = [&](std::size_t i) {
    const auto vi = get(i);
    if (vi.empty()) return;
    for (std::size_t j = i + 1; j < n; ++j) {
      const float s = IntersectionPcc(vi, get(j), opts);
      if (s != 0.0f) sim.Set(i, j, s);
    }
  };
  if (opts.parallel && n >= 64) {
    common::ThreadPool::Global().ParallelFor(0, n, compute_row);
  } else {
    for (std::size_t i = 0; i < n; ++i) compute_row(i);
  }
  return sim;
}

}  // namespace

SimilarityMatrix UserSimilarities(const data::SparseMatrix& m,
                                  const SimilarityOptions& opts) {
  return AllPairs(
      m.rows(), [&](std::size_t i) { return m.Row(i); }, opts);
}

SimilarityMatrix ServiceSimilarities(const data::SparseMatrix& m,
                                     const SimilarityOptions& opts) {
  return AllPairs(
      m.cols(), [&](std::size_t i) { return m.Col(i); }, opts);
}

std::vector<Neighbor> TopKPositiveNeighbors(
    const SimilarityMatrix& sim, std::size_t target,
    const std::vector<std::uint32_t>& candidates, std::size_t k) {
  std::vector<Neighbor> all;
  all.reserve(candidates.size());
  for (std::uint32_t c : candidates) {
    if (c == target) continue;
    const float s = sim.At(target, c);
    if (s > 0.0f) all.push_back(Neighbor{c, static_cast<double>(s)});
  }
  const std::size_t keep = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + keep, all.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.similarity > b.similarity;
                    });
  all.resize(keep);
  return all;
}

}  // namespace amf::cf

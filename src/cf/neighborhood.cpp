#include "cf/neighborhood.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace amf::cf {

MeansCache::MeansCache(const data::SparseMatrix& m) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  user_means_.assign(m.rows(), kNaN);
  for (std::size_t u = 0; u < m.rows(); ++u) {
    if (const auto mean = m.RowMean(u)) user_means_[u] = *mean;
  }
  service_means_.assign(m.cols(), kNaN);
  for (std::size_t s = 0; s < m.cols(); ++s) {
    if (const auto mean = m.ColMean(s)) service_means_[s] = *mean;
  }
  global_ = m.GlobalMean();
}

std::optional<double> MeansCache::UserMean(std::size_t u) const {
  AMF_CHECK(u < user_means_.size());
  if (std::isnan(user_means_[u])) return std::nullopt;
  return user_means_[u];
}

std::optional<double> MeansCache::ServiceMean(std::size_t s) const {
  AMF_CHECK(s < service_means_.size());
  if (std::isnan(service_means_[s])) return std::nullopt;
  return service_means_[s];
}

double MeansCache::Fallback(std::size_t u, std::size_t s) const {
  if (const auto um = UserMean(u)) return *um;
  if (const auto sm = ServiceMean(s)) return *sm;
  return global_;
}

}  // namespace amf::cf

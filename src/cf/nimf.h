// NIMF: neighborhood-integrated matrix factorization (paper ref. [23],
// Zheng et al., IEEE TSC 2013) — the strongest offline baseline family in
// the paper's related work, here as an extension beyond the Table-I set.
//
// Prediction blends a user's own latent factors with those of the top-K
// PCC-similar users:
//
//   R^(i,j) = alpha * Ui.Sj + (1 - alpha) * sum_{k in N(i)} w_ik Uk.Sj
//
// trained by SGD on min-max-normalized values with L2 regularization.
// Like PMF it is an offline, absolute-error model — it shares PMF's
// retraining cost and its weak relative-error behaviour, but the
// neighborhood term typically buys a little accuracy at low densities.
#pragma once

#include <cstdint>
#include <vector>

#include "cf/similarity.h"
#include "eval/predictor.h"
#include "linalg/matrix.h"

namespace amf::cf {

struct NimfConfig {
  std::size_t rank = 10;
  /// Blend between own factors (1.0) and neighborhood factors (0.0).
  double alpha = 0.4;
  /// Neighborhood size (top-K positively correlated users).
  std::size_t top_k = 10;
  double learn_rate = 0.05;
  double lambda = 0.001;
  std::size_t max_epochs = 300;
  double convergence_tol = 1e-4;
  std::size_t patience = 3;
  /// PCC significance weighting (see SimilarityOptions).
  std::size_t significance_gamma = 8;
  std::uint64_t seed = 1;
};

class Nimf : public eval::Predictor {
 public:
  explicit Nimf(const NimfConfig& config = {});

  std::string name() const override { return "NIMF"; }
  void Fit(const data::SparseMatrix& train) override;
  double Predict(data::UserId u, data::ServiceId s) const override;

  std::size_t epochs_run() const { return epochs_run_; }

 private:
  /// Normalized-domain prediction for (u, s).
  double PredictNormalized(data::UserId u, data::ServiceId s) const;

  NimfConfig config_;
  linalg::Matrix user_factors_;     // users x rank
  linalg::Matrix service_factors_;  // services x rank
  /// Flattened per-user neighborhoods: neighbors_[u] holds (index, weight)
  /// with weights normalized to sum 1.
  std::vector<std::vector<Neighbor>> neighbors_;
  double norm_lo_ = 0.0;
  double norm_hi_ = 1.0;
  std::size_t epochs_run_ = 0;
};

}  // namespace amf::cf

// Shared state of the neighborhood CF baselines (UPCC / IPCC / UIPCC):
// the fitted training slice plus cached user, service, and global means.
#pragma once

#include <optional>
#include <vector>

#include "data/sparse_matrix.h"

namespace amf::cf {

struct NeighborhoodConfig {
  /// Neighborhood size (top-k positively correlated entities).
  std::size_t top_k = 10;
  /// Significance-weighting threshold for PCC (see SimilarityOptions).
  std::size_t significance_gamma = 8;
  std::size_t min_overlap = 2;
};

/// Means cache over a fitted sparse slice.
class MeansCache {
 public:
  MeansCache() = default;
  explicit MeansCache(const data::SparseMatrix& m);

  std::optional<double> UserMean(std::size_t u) const;
  std::optional<double> ServiceMean(std::size_t s) const;
  double GlobalMean() const { return global_; }

  /// Best-effort scalar fallback: user mean, else service mean, else global.
  double Fallback(std::size_t u, std::size_t s) const;

 private:
  std::vector<double> user_means_;      // NaN = user has no observations
  std::vector<double> service_means_;   // NaN = service has no observations
  double global_ = 0.0;
};

/// A prediction together with the confidence weight UIPCC combines on
/// (WSRec's "con" value: sum over neighbors of (sim / sum sims) * sim).
struct ConfidentPrediction {
  double value = 0.0;
  double confidence = 0.0;
};

}  // namespace amf::cf

// PMF: probabilistic matrix factorization baseline (paper §IV-B / §V-C).
//
// The conventional offline MF model: latent factors U, S minimizing the
// regularized squared *absolute* error of linear reconstructions UᵀS of
// max-normalized QoS values (Salakhutdinov & Mnih 2007, as applied to
// WS-DREAM-style QoS data). Trained by epoch-wise SGD over all observed
// entries until convergence — i.e., the whole-model retraining the paper
// contrasts AMF against. Minimizing absolute error on skewed QoS data is
// exactly why PMF's MAE is competitive while its MRE/NPRE are poor
// (Table I / Fig. 11).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "eval/predictor.h"
#include "linalg/matrix.h"

namespace amf::cf {

struct PmfConfig {
  std::size_t rank = 10;
  double learn_rate = 0.05;
  double lambda = 0.001;
  std::size_t max_epochs = 300;
  /// Stop when the relative improvement of the epoch training RMSE drops
  /// below this for `patience` consecutive epochs.
  double convergence_tol = 1e-4;
  std::size_t patience = 3;
  std::uint64_t seed = 1;
};

class Pmf : public eval::Predictor {
 public:
  explicit Pmf(const PmfConfig& config = {});

  std::string name() const override { return "PMF"; }
  void Fit(const data::SparseMatrix& train) override;
  double Predict(data::UserId u, data::ServiceId s) const override;

  /// Number of epochs the last Fit() ran (for the efficiency analysis).
  std::size_t epochs_run() const { return epochs_run_; }

  /// Training RMSE (normalized domain) after the last epoch.
  double final_train_rmse() const { return final_train_rmse_; }

 private:
  PmfConfig config_;
  linalg::Matrix user_factors_;     // users x rank
  linalg::Matrix service_factors_;  // services x rank
  double norm_lo_ = 0.0;            // min observed training value
  double norm_hi_ = 1.0;            // max observed training value
  std::size_t epochs_run_ = 0;
  double final_train_rmse_ = 0.0;
};

}  // namespace amf::cf

// AR(p) forecaster fit online by Yule-Walker / Levinson-Durbin.
//
// Maintains a sliding window of the series; on each forecast request the
// autocorrelation is estimated over the window and the AR coefficients
// solved by the Levinson-Durbin recursion (O(p^2), p is small). This is
// the "linear time series modeling" family of the paper's related work
// [8] (Amin et al. use ARIMA/GARCH; a windowed AR(p) captures the linear
// part and is the right cost for per-invocation use).
#pragma once

#include <deque>
#include <vector>

#include "forecast/forecaster.h"

namespace amf::forecast {

/// Solves the Yule-Walker equations for AR coefficients given the
/// autocorrelation sequence rho[0..p] (rho[0] == 1). Returns p
/// coefficients phi[1..p] (index 0 of the result is phi_1).
/// Degenerate inputs yield an all-zero solution.
std::vector<double> LevinsonDurbin(const std::vector<double>& rho);

class AutoRegressive : public Forecaster {
 public:
  /// AR order `p`, fit over the most recent `window` observations.
  explicit AutoRegressive(std::size_t p = 3, std::size_t window = 32);

  std::string name() const override;
  void Observe(double value) override;
  double Forecast() const override;
  std::size_t count() const override { return count_; }
  std::unique_ptr<Forecaster> Clone() const override;

  /// The AR coefficients of the most recent Forecast() fit (for tests).
  const std::vector<double>& last_coefficients() const { return last_phi_; }

 private:
  std::size_t p_;
  std::size_t window_;
  std::deque<double> buffer_;
  std::size_t count_ = 0;
  mutable std::vector<double> last_phi_;
};

}  // namespace amf::forecast

// Exponential smoothing forecasters.
//
// SimpleExponentialSmoothing: level-only EWMA, the workhorse for noisy
// stationary-ish QoS series. HoltLinear: adds a trend term, useful when a
// service is steadily degrading (the situation proactive adaptation cares
// about most).
#pragma once

#include "forecast/forecaster.h"

namespace amf::forecast {

class SimpleExponentialSmoothing : public Forecaster {
 public:
  /// `alpha` in (0, 1]: weight of the newest observation.
  explicit SimpleExponentialSmoothing(double alpha = 0.3);

  std::string name() const override;
  void Observe(double value) override;
  double Forecast() const override;
  std::size_t count() const override { return count_; }
  std::unique_ptr<Forecaster> Clone() const override;

 private:
  double alpha_;
  double level_ = 0.0;
  std::size_t count_ = 0;
};

class HoltLinear : public Forecaster {
 public:
  /// `alpha` smooths the level, `beta` the trend; both in (0, 1].
  HoltLinear(double alpha = 0.4, double beta = 0.1);

  std::string name() const override;
  void Observe(double value) override;
  double Forecast() const override;
  std::size_t count() const override { return count_; }
  std::unique_ptr<Forecaster> Clone() const override;

 private:
  double alpha_;
  double beta_;
  double level_ = 0.0;
  double trend_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace amf::forecast

#include "forecast/autoregressive.h"

#include <cmath>

#include "common/check.h"

namespace amf::forecast {

std::vector<double> LevinsonDurbin(const std::vector<double>& rho) {
  AMF_CHECK_MSG(rho.size() >= 2, "need rho[0..p] with p >= 1");
  AMF_CHECK_MSG(std::abs(rho[0] - 1.0) < 1e-9, "rho[0] must be 1");
  const std::size_t p = rho.size() - 1;
  std::vector<double> phi(p, 0.0);
  std::vector<double> prev(p, 0.0);
  double error = 1.0;  // normalized innovation variance
  for (std::size_t k = 1; k <= p; ++k) {
    double acc = rho[k];
    for (std::size_t j = 1; j < k; ++j) {
      acc -= prev[j - 1] * rho[k - j];
    }
    if (error <= 1e-12) {
      // Perfectly predictable (or degenerate) series: stop here; higher
      // coefficients stay zero.
      for (std::size_t j = 0; j < k - 1; ++j) phi[j] = prev[j];
      return phi;
    }
    const double reflection = acc / error;
    phi[k - 1] = reflection;
    for (std::size_t j = 1; j < k; ++j) {
      phi[j - 1] = prev[j - 1] - reflection * prev[k - 1 - j];
    }
    error *= (1.0 - reflection * reflection);
    for (std::size_t j = 0; j < k; ++j) prev[j] = phi[j];
  }
  return phi;
}

AutoRegressive::AutoRegressive(std::size_t p, std::size_t window)
    : p_(p), window_(window) {
  AMF_CHECK_MSG(p_ >= 1, "AR order must be >= 1");
  AMF_CHECK_MSG(window_ >= 2 * p_ + 2,
                "window too small for the requested order");
}

std::string AutoRegressive::name() const {
  return "AR(" + std::to_string(p_) + ")";
}

void AutoRegressive::Observe(double value) {
  buffer_.push_back(value);
  if (buffer_.size() > window_) buffer_.pop_front();
  ++count_;
}

double AutoRegressive::Forecast() const {
  AMF_CHECK_MSG(!buffer_.empty(), "Forecast before any observation");
  const std::size_t n = buffer_.size();
  // Too little data for a stable fit: fall back to the window mean.
  double mean = 0.0;
  for (double v : buffer_) mean += v;
  mean /= static_cast<double>(n);
  if (n < 2 * p_ + 2) {
    last_phi_.assign(p_, 0.0);
    return mean;
  }

  // Autocorrelation estimates rho[0..p] on the demeaned window.
  std::vector<double> x(buffer_.begin(), buffer_.end());
  for (double& v : x) v -= mean;
  double c0 = 0.0;
  for (double v : x) c0 += v * v;
  if (c0 <= 1e-12) {
    last_phi_.assign(p_, 0.0);
    return mean;  // constant series
  }
  std::vector<double> rho(p_ + 1, 0.0);
  rho[0] = 1.0;
  for (std::size_t k = 1; k <= p_; ++k) {
    double ck = 0.0;
    for (std::size_t t = k; t < n; ++t) ck += x[t] * x[t - k];
    rho[k] = ck / c0;
  }

  last_phi_ = LevinsonDurbin(rho);
  double pred = 0.0;
  for (std::size_t j = 0; j < p_; ++j) {
    pred += last_phi_[j] * x[n - 1 - j];
  }
  return mean + pred;
}

std::unique_ptr<Forecaster> AutoRegressive::Clone() const {
  return std::make_unique<AutoRegressive>(p_, window_);
}

}  // namespace amf::forecast

// One-step-ahead forecast evaluation over a series.
#pragma once

#include <span>

#include "forecast/forecaster.h"

namespace amf::forecast {

struct ForecastMetrics {
  double mae = 0.0;   ///< mean |forecast - actual|
  double mre = 0.0;   ///< median relative error (actual > 0 only)
  double rmse = 0.0;
  std::size_t evaluated = 0;  ///< forecasts scored (after warmup)
};

/// Walks the series once: after `warmup` observations, each further value
/// is first predicted (scored), then observed. `proto` is cloned, not
/// mutated.
ForecastMetrics EvaluateOneStep(const Forecaster& proto,
                                std::span<const double> series,
                                std::size_t warmup = 3);

}  // namespace amf::forecast

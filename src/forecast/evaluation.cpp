#include "forecast/evaluation.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/statistics.h"

namespace amf::forecast {

ForecastMetrics EvaluateOneStep(const Forecaster& proto,
                                std::span<const double> series,
                                std::size_t warmup) {
  AMF_CHECK_MSG(warmup >= 1, "warmup must be >= 1");
  ForecastMetrics m;
  if (series.size() <= warmup) return m;

  const std::unique_ptr<Forecaster> f = proto.Clone();
  for (std::size_t i = 0; i < warmup; ++i) f->Observe(series[i]);

  double abs_sum = 0.0, sq_sum = 0.0;
  std::vector<double> rel;
  for (std::size_t i = warmup; i < series.size(); ++i) {
    const double pred = f->Forecast();
    const double actual = series[i];
    const double err = pred - actual;
    abs_sum += std::abs(err);
    sq_sum += err * err;
    if (actual > 0.0) rel.push_back(std::abs(err) / actual);
    f->Observe(actual);
    ++m.evaluated;
  }
  m.mae = abs_sum / static_cast<double>(m.evaluated);
  m.rmse = std::sqrt(sq_sum / static_cast<double>(m.evaluated));
  if (!rel.empty()) m.mre = common::Median(rel);
  return m;
}

}  // namespace amf::forecast

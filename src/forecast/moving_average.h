// Simple moving-average forecaster: the mean of the last `window`
// observations. The "naive but robust" baseline of the forecasting
// comparison (window = 1 degenerates to last-value / random-walk).
#pragma once

#include <deque>

#include "forecast/forecaster.h"

namespace amf::forecast {

class MovingAverage : public Forecaster {
 public:
  explicit MovingAverage(std::size_t window = 4);

  std::string name() const override;
  void Observe(double value) override;
  double Forecast() const override;
  std::size_t count() const override { return count_; }
  std::unique_ptr<Forecaster> Clone() const override;

 private:
  std::size_t window_;
  std::deque<double> buffer_;
  double buffer_sum_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace amf::forecast

#include "forecast/moving_average.h"

#include "common/check.h"

namespace amf::forecast {

MovingAverage::MovingAverage(std::size_t window) : window_(window) {
  AMF_CHECK_MSG(window_ > 0, "window must be positive");
}

std::string MovingAverage::name() const {
  return "MA(" + std::to_string(window_) + ")";
}

void MovingAverage::Observe(double value) {
  buffer_.push_back(value);
  buffer_sum_ += value;
  if (buffer_.size() > window_) {
    buffer_sum_ -= buffer_.front();
    buffer_.pop_front();
  }
  ++count_;
}

double MovingAverage::Forecast() const {
  AMF_CHECK_MSG(!buffer_.empty(), "Forecast before any observation");
  return buffer_sum_ / static_cast<double>(buffer_.size());
}

std::unique_ptr<Forecaster> MovingAverage::Clone() const {
  return std::make_unique<MovingAverage>(window_);
}

}  // namespace amf::forecast

// Time-series forecasting of working-service QoS.
//
// The paper's related work ([6] Wang & Pazat, [8] Amin et al.) predicts
// the QoS of *working* services from their own observation history to
// decide WHEN to adapt; AMF predicts *candidate* services to decide WHERE
// to go. This module provides the working-service side so the adaptation
// framework can be proactive end to end: a Forecaster consumes one
// service's observation stream and produces one-step-ahead forecasts.
#pragma once

#include <memory>
#include <string>

namespace amf::forecast {

class Forecaster {
 public:
  virtual ~Forecaster() = default;

  virtual std::string name() const = 0;

  /// Feeds the next observation of the series.
  virtual void Observe(double value) = 0;

  /// One-step-ahead forecast given everything observed so far.
  /// Defined once at least one observation has been made.
  virtual double Forecast() const = 0;

  /// Number of observations consumed.
  virtual std::size_t count() const = 0;

  /// Fresh instance with identical configuration (for per-series use).
  virtual std::unique_ptr<Forecaster> Clone() const = 0;
};

}  // namespace amf::forecast

#include "forecast/exponential_smoothing.h"

#include "common/check.h"
#include "common/string_util.h"

namespace amf::forecast {

SimpleExponentialSmoothing::SimpleExponentialSmoothing(double alpha)
    : alpha_(alpha) {
  AMF_CHECK_MSG(alpha_ > 0.0 && alpha_ <= 1.0, "alpha must be in (0, 1]");
}

std::string SimpleExponentialSmoothing::name() const {
  return "SES(" + common::FormatFixed(alpha_, 2) + ")";
}

void SimpleExponentialSmoothing::Observe(double value) {
  if (count_ == 0) {
    level_ = value;
  } else {
    level_ += alpha_ * (value - level_);
  }
  ++count_;
}

double SimpleExponentialSmoothing::Forecast() const {
  AMF_CHECK_MSG(count_ > 0, "Forecast before any observation");
  return level_;
}

std::unique_ptr<Forecaster> SimpleExponentialSmoothing::Clone() const {
  return std::make_unique<SimpleExponentialSmoothing>(alpha_);
}

HoltLinear::HoltLinear(double alpha, double beta)
    : alpha_(alpha), beta_(beta) {
  AMF_CHECK_MSG(alpha_ > 0.0 && alpha_ <= 1.0, "alpha must be in (0, 1]");
  AMF_CHECK_MSG(beta_ > 0.0 && beta_ <= 1.0, "beta must be in (0, 1]");
}

std::string HoltLinear::name() const {
  return "Holt(" + common::FormatFixed(alpha_, 2) + "," +
         common::FormatFixed(beta_, 2) + ")";
}

void HoltLinear::Observe(double value) {
  if (count_ == 0) {
    level_ = value;
    trend_ = 0.0;
  } else {
    const double prev_level = level_;
    level_ = alpha_ * value + (1.0 - alpha_) * (level_ + trend_);
    trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
  }
  ++count_;
}

double HoltLinear::Forecast() const {
  AMF_CHECK_MSG(count_ > 0, "Forecast before any observation");
  return level_ + trend_;
}

std::unique_ptr<Forecaster> HoltLinear::Clone() const {
  return std::make_unique<HoltLinear>(alpha_, beta_);
}

}  // namespace amf::forecast

#include "stream/collector.h"

namespace amf::stream {

Collector::Collector(core::OnlineTrainer& trainer) : trainer_(&trainer) {}

void Collector::Collect(const data::QoSSample& sample) {
  buffer_.push_back(sample);
  ++total_collected_;
}

void Collector::CollectBatch(const std::vector<data::QoSSample>& samples) {
  buffer_.insert(buffer_.end(), samples.begin(), samples.end());
  total_collected_ += samples.size();
}

std::size_t Collector::RemoveUser(data::UserId u) {
  return std::erase_if(buffer_,
                       [u](const data::QoSSample& s) { return s.user == u; });
}

std::size_t Collector::RemoveService(data::ServiceId s) {
  return std::erase_if(buffer_, [s](const data::QoSSample& sample) {
    return sample.service == s;
  });
}

std::size_t Collector::Flush() {
  const std::size_t n = buffer_.size();
  for (const data::QoSSample& s : buffer_) trainer_->Observe(s);
  buffer_.clear();
  return n;
}

}  // namespace amf::stream

// Simulated wall clock shared by the streaming/adaptation components.
#pragma once

#include "common/check.h"

namespace amf::stream {

class SimClock {
 public:
  explicit SimClock(double start = 0.0) : now_(start) {}

  double Now() const { return now_; }

  /// Advances by dt seconds (dt >= 0).
  void Advance(double dt) {
    AMF_CHECK_MSG(dt >= 0.0, "clock cannot go backwards");
    now_ += dt;
  }

  /// Jumps to an absolute time >= Now().
  void AdvanceTo(double t) {
    AMF_CHECK_MSG(t >= now_, "clock cannot go backwards");
    now_ = t;
  }

 private:
  double now_;
};

}  // namespace amf::stream

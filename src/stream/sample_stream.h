// Replays a QoS dataset as the timestamped observation stream the QoS
// prediction service consumes (Fig. 3 "observed QoS data").
//
// For each slice, a density-sampled subset of the user x service pairs is
// "invoked"; their measurements arrive in random order with timestamps
// spread uniformly across the slice interval. The same (user, service)
// subset can be resampled independently per slice (fresh invocations) or
// kept fixed across slices (a stable monitoring deployment).
#pragma once

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/qos_types.h"

namespace amf::stream {

struct StreamConfig {
  data::QoSAttribute attribute = data::QoSAttribute::kResponseTime;
  /// Fraction of pairs observed per slice, (0, 1].
  double density = 0.1;
  /// true: each slice observes an independently re-sampled subset of pairs;
  /// false: one subset is drawn up front and observed every slice.
  bool resample_pairs_each_slice = false;
  /// Seconds covered by one slice (timestamps are spread across it).
  double slice_interval_seconds = 900.0;
  std::uint64_t seed = 42;
};

class SampleStream {
 public:
  /// `dataset` must outlive the stream.
  SampleStream(const data::QoSDataset& dataset, const StreamConfig& config);

  std::size_t num_slices() const { return dataset_->num_slices(); }

  /// All observations of slice t, shuffled, timestamps in
  /// [t, t+1) * interval. Deterministic in (seed, t).
  std::vector<data::QoSSample> Slice(data::SliceId t) const;

 private:
  const data::QoSDataset* dataset_;
  StreamConfig config_;
  /// Flattened (user * num_services + service) pair ids of the fixed
  /// deployment (empty when resampling per slice).
  std::vector<std::size_t> fixed_pairs_;

  std::vector<std::size_t> PairsForSlice(data::SliceId t) const;
};

}  // namespace amf::stream

#include "stream/wal.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string_view>
#include <system_error>

#include "common/check.h"
#include "common/crc32.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace amf::stream {

namespace {

namespace fs = std::filesystem;

constexpr char kMagic[8] = {'A', 'M', 'F', 'W', 'A', 'L', '1', '\n'};
constexpr std::size_t kHeaderBytes = sizeof(kMagic) + sizeof(std::uint64_t);
constexpr std::size_t kFrameHeaderBytes = 2 * sizeof(std::uint32_t);
// lsn + slice + user + service + ugen + sgen + value + timestamp.
constexpr std::size_t kRecordPayloadBytes =
    sizeof(std::uint64_t) + 5 * sizeof(std::uint32_t) + 2 * sizeof(double);
// A frame whose length field exceeds this is treated as corruption, not a
// future record type: it bounds how far a flipped length bit can reach.
constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;
constexpr const char* kSegmentPrefix = "wal-";
constexpr const char* kSegmentExtension = ".amfwal";

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Fixed-layout native-endian encoding (the journal is machine-local
// recovery state, not an interchange format; DESIGN.md §12).
template <typename T>
void PutRaw(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

template <typename T>
T GetRaw(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

std::string EncodePayload(std::uint64_t lsn, const data::QoSSample& s,
                          std::uint32_t ugen, std::uint32_t sgen) {
  std::string payload;
  payload.reserve(kRecordPayloadBytes);
  PutRaw(payload, lsn);
  PutRaw(payload, s.slice);
  PutRaw(payload, s.user);
  PutRaw(payload, s.service);
  PutRaw(payload, ugen);
  PutRaw(payload, sgen);
  PutRaw(payload, s.value);
  PutRaw(payload, s.timestamp);
  return payload;
}

JournalRecord DecodePayload(const char* p) {
  JournalRecord r;
  r.lsn = GetRaw<std::uint64_t>(p);
  p += sizeof(std::uint64_t);
  r.sample.slice = GetRaw<std::uint32_t>(p);
  p += sizeof(std::uint32_t);
  r.sample.user = GetRaw<std::uint32_t>(p);
  p += sizeof(std::uint32_t);
  r.sample.service = GetRaw<std::uint32_t>(p);
  p += sizeof(std::uint32_t);
  r.user_generation = GetRaw<std::uint32_t>(p);
  p += sizeof(std::uint32_t);
  r.service_generation = GetRaw<std::uint32_t>(p);
  p += sizeof(std::uint32_t);
  r.sample.value = GetRaw<double>(p);
  p += sizeof(double);
  r.sample.timestamp = GetRaw<double>(p);
  return r;
}

void AppendFrame(std::string& out, const std::string& payload) {
  PutRaw(out, static_cast<std::uint32_t>(payload.size()));
  PutRaw(out, common::Crc32Of(payload));
  out.append(payload);
}

std::string SegmentName(std::uint64_t base_lsn) {
  std::ostringstream name;
  name << kSegmentPrefix << std::setw(20) << std::setfill('0') << base_lsn
       << kSegmentExtension;
  return name.str();
}

std::vector<std::string> ListSegments(const std::string& directory) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    if (p.extension() != kSegmentExtension) continue;
    if (p.filename().string().rfind(kSegmentPrefix, 0) != 0) continue;
    paths.push_back(p.string());
  }
  std::sort(paths.begin(), paths.end());  // zero-padded base LSN
  return paths;
}

// How a segment's byte stream ends.
enum class TailState {
  kClean,    // last frame ends exactly at EOF
  kTorn,     // trailing bytes are a prefix of a frame (crash mid-append)
  kCorrupt,  // a complete frame failed its CRC (or an impossible length)
};

struct SegmentScan {
  JournalSegmentInfo info;
  TailState tail = TailState::kClean;
  // Offset just past the last frame that parsed and verified; everything
  // after it is torn or quarantined.
  std::uint64_t valid_end = 0;
  std::vector<JournalRecord> records;
};

SegmentScan ScanSegment(const std::string& path) {
  SegmentScan scan;
  scan.info.path = path;
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    bytes = buf.str();
  }
  scan.info.bytes = bytes.size();
  if (bytes.size() < kHeaderBytes ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    scan.tail = TailState::kCorrupt;
    scan.info.quarantined_bytes = bytes.size();
    return scan;
  }
  scan.info.header_ok = true;
  scan.info.base_lsn = GetRaw<std::uint64_t>(bytes.data() + sizeof(kMagic));
  std::size_t off = kHeaderBytes;
  scan.valid_end = off;
  while (off < bytes.size()) {
    if (bytes.size() - off < kFrameHeaderBytes) {
      scan.tail = TailState::kTorn;
      break;
    }
    const auto len = GetRaw<std::uint32_t>(bytes.data() + off);
    if (len < kRecordPayloadBytes || len > kMaxPayloadBytes) {
      scan.tail = TailState::kCorrupt;
      break;
    }
    if (bytes.size() - off - kFrameHeaderBytes < len) {
      scan.tail = TailState::kTorn;
      break;
    }
    const auto crc = GetRaw<std::uint32_t>(bytes.data() + off + sizeof(len));
    const std::string_view payload(bytes.data() + off + kFrameHeaderBytes,
                                   len);
    if (common::Crc32Of(payload) != crc) {
      scan.tail = TailState::kCorrupt;
      break;
    }
    scan.records.push_back(DecodePayload(payload.data()));
    off += kFrameHeaderBytes + len;
    scan.valid_end = off;
  }
  scan.info.records = scan.records.size();
  if (!scan.records.empty()) {
    scan.info.first_lsn = scan.records.front().lsn;
    scan.info.last_lsn = scan.records.back().lsn;
  }
  scan.info.quarantined_bytes = scan.info.bytes - scan.valid_end;
  return scan;
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kOs:
      return "os";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kAlways:
      return "always";
  }
  return "unknown";
}

std::optional<FsyncPolicy> ParseFsyncPolicy(const std::string& name) {
  if (name == "os") return FsyncPolicy::kOs;
  if (name == "interval") return FsyncPolicy::kInterval;
  if (name == "always") return FsyncPolicy::kAlways;
  return std::nullopt;
}

ObservationJournal::ObservationJournal(const JournalConfig& config)
    : config_(config) {
  AMF_CHECK_MSG(!config_.directory.empty(), "journal directory must be set");
  AMF_CHECK_MSG(config_.segment_max_bytes > kHeaderBytes,
                "journal segment_max_bytes too small");
  common::CreateDirectoriesDurable(config_.directory);
  const std::uint64_t truncated = TruncateTornTail(config_.directory);
  if (truncated > 0) {
    torn_tail_truncations_.fetch_add(1, std::memory_order_relaxed);
    AMF_LOG(Warning) << "journal: truncated " << truncated
                     << " torn-tail bytes on open";
  }
  // Resume LSN numbering past everything readable on disk, and continue
  // appending to the last segment only when it is fully clean — a
  // quarantined segment is sealed and a fresh one started, so new records
  // never hide behind corrupt bytes.
  const std::vector<std::string> paths = ListSegments(config_.directory);
  bool reuse_last = false;
  std::uint64_t last_size = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const SegmentScan scan = ScanSegment(paths[i]);
    if (scan.info.last_lsn > 0) {
      next_lsn_ = std::max(next_lsn_, scan.info.last_lsn + 1);
    }
    if (scan.info.header_ok) {
      next_lsn_ = std::max(next_lsn_, scan.info.base_lsn);
      // Quarantined / torn frames carry LSNs we cannot read (their CRC
      // failed), but frames are fixed-size and LSNs within a segment are
      // contiguous from base_lsn — so the byte count bounds every LSN
      // this segment may ever have issued. Numbering must resume past
      // that bound: reusing an LSN that an existing checkpoint watermark
      // covers would make the record invisible to the next recovery (and
      // prematurely GC-eligible).
      if (scan.info.bytes > kHeaderBytes) {
        const std::uint64_t frame = kFrameHeaderBytes + kRecordPayloadBytes;
        const std::uint64_t issued_bound =
            (scan.info.bytes - kHeaderBytes + frame - 1) / frame;
        next_lsn_ = std::max(next_lsn_, scan.info.base_lsn + issued_bound);
      }
    }
    if (i + 1 == paths.size()) {
      reuse_last = scan.info.header_ok && scan.tail == TailState::kClean &&
                   scan.info.bytes < config_.segment_max_bytes;
      last_size = scan.info.bytes;
    }
  }
  last_lsn_.store(next_lsn_ - 1, std::memory_order_relaxed);
  if (reuse_last) {
    broken_ = !file_.Open(paths.back());
    AMF_CHECK_MSG(!broken_, "journal: cannot reopen " << paths.back());
    AMF_CHECK_MSG(file_.size() == last_size,
                  "journal: size changed between scan and open of "
                      << paths.back());
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    AMF_CHECK_MSG(RotateLocked(), "journal: cannot create first segment in "
                                      << config_.directory);
    rotations_.store(0, std::memory_order_relaxed);  // opening is not a roll
  }
}

ObservationJournal::~ObservationJournal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_.is_open()) {
    file_.Flush();
    file_.Close();
  }
}

bool ObservationJournal::RotateLocked() {
  if (file_.is_open()) {
    // Seal the old segment: its bytes must be on the platter before the
    // new name appears, or recovery could see the successor but not the
    // records it implies exist. The seal covers every pending append, so
    // the interval anchor resets.
    file_.Sync();
    file_.Close();
    oldest_unsynced_monotonic_ = -1.0;
  }
  const std::string path =
      (fs::path(config_.directory) / SegmentName(next_lsn_)).string();
  if (!file_.Open(path)) {
    broken_ = true;
    return false;
  }
  std::string header(kMagic, sizeof(kMagic));
  PutRaw(header, next_lsn_);
  if (!file_.Append(header) || !file_.Sync()) {
    broken_ = true;
    return false;
  }
  common::SyncDirectory(config_.directory);
  rotations_.fetch_add(1, std::memory_order_relaxed);
  broken_ = false;
  return true;
}

bool ObservationJournal::AppendEncodedLocked(const std::string& frames,
                                             std::size_t records) {
  if (broken_) return false;
  if (file_.size() >= config_.segment_max_bytes) {
    if (!RotateLocked()) return false;
  }
  obs::ScopedLatencyTimer timer(append_hist_);
  if (!file_.Append(frames)) {
    broken_ = true;
    return false;
  }
  bytes_appended_.fetch_add(frames.size(), std::memory_order_relaxed);
  appends_.fetch_add(records, std::memory_order_relaxed);
  // Anchor the interval-sync deadline on the oldest append still awaiting
  // an fsync: a record's durability window is its own age.
  if (oldest_unsynced_monotonic_ < 0.0) {
    oldest_unsynced_monotonic_ = MonotonicSeconds();
  }
  return true;
}

void ObservationJournal::ApplySyncPolicyLocked() {
  switch (config_.fsync_policy) {
    case FsyncPolicy::kOs:
      file_.Flush();
      return;
    case FsyncPolicy::kAlways:
      break;
    case FsyncPolicy::kInterval: {
      const double now = MonotonicSeconds();
      if (oldest_unsynced_monotonic_ < 0.0 ||
          (now - oldest_unsynced_monotonic_) * 1e3 <
              config_.fsync_interval_ms) {
        file_.Flush();
        return;
      }
      break;
    }
  }
  obs::ScopedLatencyTimer timer(sync_hist_);
  if (file_.Sync()) {
    syncs_.fetch_add(1, std::memory_order_relaxed);
    oldest_unsynced_monotonic_ = -1.0;
  }
}

bool ObservationJournal::SyncIfDue() {
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.fsync_policy != FsyncPolicy::kInterval) return false;
  if (!file_.is_open() || oldest_unsynced_monotonic_ < 0.0) return false;
  const double now = MonotonicSeconds();
  if ((now - oldest_unsynced_monotonic_) * 1e3 < config_.fsync_interval_ms) {
    return false;
  }
  obs::ScopedLatencyTimer timer(sync_hist_);
  if (!file_.Sync()) return false;
  syncs_.fetch_add(1, std::memory_order_relaxed);
  oldest_unsynced_monotonic_ = -1.0;
  return true;
}

std::optional<std::uint64_t> ObservationJournal::Append(
    const data::QoSSample& sample, std::uint32_t user_generation,
    std::uint32_t service_generation) {
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.fail_appends_after > 0 &&
      appends_.load(std::memory_order_relaxed) >= config_.fail_appends_after) {
    append_failures_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const std::uint64_t lsn = next_lsn_;
  std::string frames;
  AppendFrame(frames,
              EncodePayload(lsn, sample, user_generation, service_generation));
  if (!AppendEncodedLocked(frames, 1)) {
    append_failures_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  next_lsn_ = lsn + 1;
  last_lsn_.store(lsn, std::memory_order_relaxed);
  ApplySyncPolicyLocked();
  return lsn;
}

std::size_t ObservationJournal::AppendBatch(
    const std::vector<data::QoSSample>& samples,
    const std::function<std::pair<std::uint32_t, std::uint32_t>(
        const data::QoSSample&)>& generations_of) {
  if (samples.empty()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  // The fault hook caps how many of this batch may succeed, so the
  // accounting tests can hit a failure exactly mid-drain.
  std::size_t limit = samples.size();
  if (config_.fail_appends_after > 0) {
    const std::uint64_t used = appends_.load(std::memory_order_relaxed);
    limit = used >= config_.fail_appends_after
                ? 0
                : std::min<std::size_t>(limit,
                                        config_.fail_appends_after - used);
  }
  std::string frames;
  frames.reserve(limit * (kFrameHeaderBytes + kRecordPayloadBytes));
  for (std::size_t i = 0; i < limit; ++i) {
    std::pair<std::uint32_t, std::uint32_t> gens{0, 0};
    if (generations_of) gens = generations_of(samples[i]);
    AppendFrame(frames, EncodePayload(next_lsn_ + i, samples[i], gens.first,
                                      gens.second));
  }
  std::size_t appended = 0;
  if (limit > 0 && AppendEncodedLocked(frames, limit)) {
    appended = limit;
    next_lsn_ += limit;
    last_lsn_.store(next_lsn_ - 1, std::memory_order_relaxed);
    ApplySyncPolicyLocked();
  }
  const std::size_t failed = samples.size() - appended;
  if (failed > 0) {
    append_failures_.fetch_add(failed, std::memory_order_relaxed);
  }
  return appended;
}

bool ObservationJournal::SyncNow() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!file_.is_open()) return false;
  obs::ScopedLatencyTimer timer(sync_hist_);
  const bool ok = file_.Sync();
  if (ok) {
    syncs_.fetch_add(1, std::memory_order_relaxed);
    oldest_unsynced_monotonic_ = -1.0;
  }
  return ok;
}

std::size_t ObservationJournal::RemoveSegmentsCoveredBy(
    std::uint64_t watermark) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::vector<std::string> paths = ListSegments(config_.directory);
  if (paths.size() < 2) return 0;
  // Segment i holds LSNs in [base_i, base_{i+1}): removable when its
  // successor's base shows every record is <= watermark. The active (last)
  // segment always stays — its upper bound is still moving.
  std::vector<std::uint64_t> bases(paths.size(), 0);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    std::ifstream is(paths[i], std::ios::binary);
    char header[kHeaderBytes] = {};
    is.read(header, sizeof(header));
    if (is.gcount() == static_cast<std::streamsize>(sizeof(header)) &&
        std::memcmp(header, kMagic, sizeof(kMagic)) == 0) {
      bases[i] = GetRaw<std::uint64_t>(header + sizeof(kMagic));
    }
  }
  std::size_t removed = 0;
  for (std::size_t i = 0; i + 1 < paths.size(); ++i) {
    if (bases[i] == 0 || bases[i + 1] == 0) continue;  // unreadable: keep
    if (paths[i] == file_.path()) continue;
    if (bases[i + 1] > watermark + 1) continue;
    std::error_code ec;
    if (fs::remove(paths[i], ec) && !ec) ++removed;
  }
  if (removed > 0) {
    common::SyncDirectory(config_.directory);
    segments_removed_.fetch_add(removed, std::memory_order_relaxed);
  }
  return removed;
}

void ObservationJournal::AttachMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  registry->RegisterCallbackCounter("wal.appends", [this] {
    return appends_.load(std::memory_order_relaxed);
  });
  registry->RegisterCallbackCounter("wal.append_failures", [this] {
    return append_failures_.load(std::memory_order_relaxed);
  });
  registry->RegisterCallbackCounter("wal.bytes_appended", [this] {
    return bytes_appended_.load(std::memory_order_relaxed);
  });
  registry->RegisterCallbackCounter("wal.fsyncs", [this] {
    return syncs_.load(std::memory_order_relaxed);
  });
  registry->RegisterCallbackCounter("wal.rotations", [this] {
    return rotations_.load(std::memory_order_relaxed);
  });
  registry->RegisterCallbackCounter("wal.torn_tail_truncations", [this] {
    return torn_tail_truncations_.load(std::memory_order_relaxed);
  });
  registry->RegisterCallbackCounter("wal.segments_removed", [this] {
    return segments_removed_.load(std::memory_order_relaxed);
  });
  append_hist_ = registry->GetLatencyHistogram("wal.append_seconds");
  sync_hist_ = registry->GetLatencyHistogram("wal.fsync_seconds");
}

JournalScanResult ScanJournal(
    const std::string& directory, std::uint64_t min_exclusive_lsn,
    const std::function<void(const JournalRecord&)>& on_record) {
  JournalScanResult result;
  std::error_code ec;
  if (!fs::is_directory(directory, ec)) return result;
  std::uint64_t prev_lsn = 0;
  for (const std::string& path : ListSegments(directory)) {
    SegmentScan scan = ScanSegment(path);
    if (scan.tail == TailState::kCorrupt) {
      ++result.quarantined_segments;
    }
    result.quarantined_bytes += scan.info.quarantined_bytes;
    for (const JournalRecord& record : scan.records) {
      if (prev_lsn != 0 && record.lsn != prev_lsn + 1) ++result.lsn_gaps;
      prev_lsn = record.lsn;
      if (record.lsn <= min_exclusive_lsn) {
        ++result.records_skipped;
        continue;
      }
      ++result.records_scanned;
      if (result.min_lsn == 0) result.min_lsn = record.lsn;
      result.max_lsn = std::max(result.max_lsn, record.lsn);
      if (on_record) on_record(record);
    }
    result.segments.push_back(std::move(scan.info));
  }
  return result;
}

JournalReadResult ReadJournal(const std::string& directory,
                              std::uint64_t min_exclusive_lsn) {
  JournalReadResult result;
  result.scan = ScanJournal(directory, min_exclusive_lsn,
                            [&result](const JournalRecord& record) {
                              result.records.push_back(record);
                            });
  return result;
}

std::uint64_t TruncateTornTail(const std::string& directory) {
  const std::vector<std::string> paths = ListSegments(directory);
  if (paths.empty()) return 0;
  const SegmentScan scan = ScanSegment(paths.back());
  if (scan.tail != TailState::kTorn || !scan.info.header_ok) return 0;
  const std::uint64_t excess = scan.info.bytes - scan.valid_end;
  if (excess == 0) return 0;
  std::error_code ec;
  fs::resize_file(paths.back(), scan.valid_end, ec);
  if (ec) return 0;
  common::SyncFile(paths.back());
  return excess;
}

}  // namespace amf::stream

#include "stream/sample_stream.h"

#include <cmath>

#include "common/check.h"

namespace amf::stream {

SampleStream::SampleStream(const data::QoSDataset& dataset,
                           const StreamConfig& config)
    : dataset_(&dataset), config_(config) {
  AMF_CHECK_MSG(config_.density > 0.0 && config_.density <= 1.0,
                "density must be in (0, 1]");
  AMF_CHECK_MSG(config_.slice_interval_seconds > 0.0,
                "slice interval must be positive");
  if (!config_.resample_pairs_each_slice) {
    const std::size_t cells =
        dataset_->num_users() * dataset_->num_services();
    const std::size_t keep = static_cast<std::size_t>(
        std::llround(config_.density * static_cast<double>(cells)));
    common::Rng rng(common::DeriveSeed(config_.seed, 0xFFFF));
    fixed_pairs_ = rng.SampleWithoutReplacement(cells, keep);
  }
}

std::vector<std::size_t> SampleStream::PairsForSlice(data::SliceId t) const {
  if (!config_.resample_pairs_each_slice) return fixed_pairs_;
  const std::size_t cells = dataset_->num_users() * dataset_->num_services();
  const std::size_t keep = static_cast<std::size_t>(
      std::llround(config_.density * static_cast<double>(cells)));
  common::Rng rng(common::DeriveSeed(config_.seed, t));
  return rng.SampleWithoutReplacement(cells, keep);
}

std::vector<data::QoSSample> SampleStream::Slice(data::SliceId t) const {
  AMF_CHECK_MSG(t < dataset_->num_slices(), "slice out of range: " << t);
  std::vector<std::size_t> pairs = PairsForSlice(t);
  common::Rng rng(common::DeriveSeed(config_.seed, 0x1000000ULL + t));
  rng.Shuffle(pairs);

  const double slice_start =
      static_cast<double>(t) * config_.slice_interval_seconds;
  std::vector<data::QoSSample> samples;
  samples.reserve(pairs.size());
  const std::size_t services = dataset_->num_services();
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto u = static_cast<data::UserId>(pairs[i] / services);
    const auto s = static_cast<data::ServiceId>(pairs[i] % services);
    // Spread arrivals uniformly (in shuffle order) across the interval so
    // that expiration behaves like a real 15-minute measurement window.
    const double offset = config_.slice_interval_seconds *
                          static_cast<double>(i) /
                          static_cast<double>(pairs.size());
    samples.push_back(data::QoSSample{
        t, u, s, dataset_->Value(config_.attribute, u, s, t),
        slice_start + offset});
  }
  return samples;
}

}  // namespace amf::stream

// Input-handling stage of the QoS prediction service (Fig. 3): collects
// observed QoS data from users, batches it, and feeds the online trainer.
// Also maintains simple ingestion statistics for monitoring.
#pragma once

#include <vector>

#include "core/online_trainer.h"
#include "data/qos_types.h"

namespace amf::stream {

class Collector {
 public:
  /// `trainer` must outlive the collector.
  explicit Collector(core::OnlineTrainer& trainer);

  /// Buffers one observation.
  void Collect(const data::QoSSample& sample);

  /// Buffers a batch.
  void CollectBatch(const std::vector<data::QoSSample>& samples);

  std::size_t buffered() const { return buffer_.size(); }
  std::size_t total_collected() const { return total_collected_; }

  /// Hands all buffered samples to the trainer (Observe) and clears the
  /// buffer. Returns the number flushed. Does not run training itself —
  /// call trainer.RunUntilConverged() (or ProcessIncoming) afterwards.
  std::size_t Flush();

  /// Drops every buffered sample naming the entity (order-preserving);
  /// returns the number removed. Part of entity retirement: samples still
  /// sitting in this buffer would otherwise be flushed after the purge and
  /// train the reclaimed slot's next tenant.
  std::size_t RemoveUser(data::UserId u);
  std::size_t RemoveService(data::ServiceId s);

 private:
  core::OnlineTrainer* trainer_;
  std::vector<data::QoSSample> buffer_;
  std::size_t total_collected_ = 0;
};

}  // namespace amf::stream

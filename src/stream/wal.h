// Durable observation write-ahead journal (DESIGN.md §12).
//
// Every observation the pipeline accepts is appended here as a
// length-prefixed, CRC-32-framed record *before* it is acknowledged as
// durable, so a `kill -9` between checkpoints loses nothing that was
// acked. The journal is a directory of rotating segment files
//
//   wal-<base_lsn, 20 decimal digits>.amfwal
//
// each starting with an 16-byte header (magic "AMFWAL1\n" + u64 base
// LSN) followed by frames
//
//   [u32 payload_len][u32 crc32(payload)][payload]
//
// whose payload is one fixed-layout record: LSN (u64), slice/user/
// service ids (u32 each), the user/service registry *generations*
// captured at append time (u32 each, so replay can reject records whose
// id was retired and recycled since), then value and timestamp (f64
// little-endian bits each). LSNs are assigned at append, start at 1, and
// are strictly monotonic across segments and reopens.
//
// Durability is governed by FsyncPolicy:
//   kAlways   — fsync after every Append/AppendBatch (the drill policy:
//               acknowledged == durable);
//   kInterval — fsync when the OLDEST unsynced append is at least
//               fsync_interval_ms old (bounded loss window anchored on
//               the record that has waited longest, not on the last
//               sync: anchoring on the last sync let a burst's tail sit
//               unsynced indefinitely once appends stopped, and forced a
//               pointless fsync on the first append after an idle gap).
//               Callers with quiet periods should call SyncIfDue() from
//               their tick loop so the window stays bounded even when no
//               further append arrives to trigger the check.
//   kOs       — never fsync; bytes reach the OS page cache on append and
//               survive process death but not power loss.
// A batch append is one write + at most one fsync (group commit): the
// concurrent facade drains its MPSC ring and journals the whole drain in
// one call, keeping the wait-free hot path untouched.
//
// On (re)open the last segment's torn tail — a partial frame from a
// crash mid-append — is truncated away; earlier corruption (bit flips)
// is the reader's problem: JournalScan stops at the first bad frame of a
// segment, quarantines the remainder, and moves on to the next segment
// (skip-with-quarantine, never abort). Segments whose whole LSN range is
// at or below the newest durable checkpoint watermark are garbage
// collected by RemoveSegmentsCoveredBy().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/file_util.h"
#include "data/qos_types.h"

namespace amf::obs {
class LatencyHistogram;
class MetricsRegistry;
}  // namespace amf::obs

namespace amf::stream {

/// When appended bytes are forced to stable storage.
enum class FsyncPolicy {
  kOs,        // never fsync (page cache only)
  kInterval,  // fsync at most once per fsync_interval_ms
  kAlways,    // fsync on every append (acknowledged == durable)
};

/// "always" / "interval" / "os" <-> FsyncPolicy (CLI + config plumbing).
const char* FsyncPolicyName(FsyncPolicy policy);
std::optional<FsyncPolicy> ParseFsyncPolicy(const std::string& name);

struct JournalConfig {
  /// Directory holding the segment files (created durably if missing).
  std::string directory;
  FsyncPolicy fsync_policy = FsyncPolicy::kInterval;
  /// kInterval: maximum wall-clock milliseconds between fsyncs (the
  /// bounded window of acknowledged-but-lost observations on power loss).
  double fsync_interval_ms = 50.0;
  /// A segment at or past this size rotates before the next append.
  std::uint64_t segment_max_bytes = 8u << 20;
  /// Fault-injection hook: after this many successful appends every
  /// further append fails (0 = never). Lets tests and the chaos layer
  /// exercise the journal_dropped accounting deterministically.
  std::uint64_t fail_appends_after = 0;
};

/// One journaled observation: the sample plus the registry generations
/// current when it was accepted. Generation 0 means "not tracked"
/// (raw-id ingest without a registry) and always replays.
struct JournalRecord {
  std::uint64_t lsn = 0;
  data::QoSSample sample;
  std::uint32_t user_generation = 0;
  std::uint32_t service_generation = 0;
};

/// Append-side handle. All mutating calls are internally serialized (one
/// mutex); the intended writer is the single trainer/drain thread, but
/// concurrent appenders are safe (see the TSan stress test). Counters are
/// relaxed atomics readable from any thread.
class ObservationJournal {
 public:
  explicit ObservationJournal(const JournalConfig& config);
  ~ObservationJournal();

  ObservationJournal(const ObservationJournal&) = delete;
  ObservationJournal& operator=(const ObservationJournal&) = delete;

  const JournalConfig& config() const { return config_; }

  /// Appends one record (LSN assigned internally) and applies the fsync
  /// policy. Returns the assigned LSN, or nullopt when the append failed
  /// (IO error or the fail_appends_after hook) — the caller must count
  /// the observation as journal-dropped, not acknowledged-durable.
  std::optional<std::uint64_t> Append(const data::QoSSample& sample,
                                      std::uint32_t user_generation = 0,
                                      std::uint32_t service_generation = 0);

  /// Group commit: encodes all `samples` into one buffer, appends it with
  /// one write, applies the fsync policy once. Generations are looked up
  /// per sample via `generations_of` (may be null -> 0/0). Returns the
  /// number of records appended (a failure stops the batch; records
  /// before the failure point are appended and keep their LSNs).
  std::size_t AppendBatch(
      const std::vector<data::QoSSample>& samples,
      const std::function<std::pair<std::uint32_t, std::uint32_t>(
          const data::QoSSample&)>& generations_of = nullptr);

  /// Forces an fsync of the active segment regardless of policy (used at
  /// checkpoint time so the watermark never exceeds durable LSNs).
  bool SyncNow();

  /// kInterval housekeeping: fsyncs iff there are unsynced appends and
  /// the oldest of them is at least fsync_interval_ms old. Returns true
  /// when a sync was performed. No-op (false) under kAlways (nothing is
  /// ever pending) and kOs (never syncs by contract). Tick loops call
  /// this so a burst's tail is made durable within the interval even
  /// when no further append arrives.
  bool SyncIfDue();

  /// Removes every segment whose entire LSN range is <= `watermark`
  /// (i.e. fully covered by a durable checkpoint). The active segment is
  /// never removed. Returns the number of segments deleted; the deletions
  /// are made durable with a directory fsync.
  std::size_t RemoveSegmentsCoveredBy(std::uint64_t watermark);

  /// LSN of the most recently appended record (0 before any append).
  std::uint64_t last_lsn() const {
    return last_lsn_.load(std::memory_order_relaxed);
  }

  /// Registers wal.* counters and append/fsync latency histograms.
  void AttachMetrics(obs::MetricsRegistry* registry);

  // Counters (relaxed; monitors read them concurrently with appends).
  std::uint64_t appends() const {
    return appends_.load(std::memory_order_relaxed);
  }
  std::uint64_t append_failures() const {
    return append_failures_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_appended() const {
    return bytes_appended_.load(std::memory_order_relaxed);
  }
  std::uint64_t syncs() const { return syncs_.load(std::memory_order_relaxed); }
  std::uint64_t rotations() const {
    return rotations_.load(std::memory_order_relaxed);
  }
  std::uint64_t torn_tail_truncations() const {
    return torn_tail_truncations_.load(std::memory_order_relaxed);
  }
  std::uint64_t segments_removed() const {
    return segments_removed_.load(std::memory_order_relaxed);
  }

 private:
  bool RotateLocked();
  bool AppendEncodedLocked(const std::string& frames, std::size_t records);
  void ApplySyncPolicyLocked();

  JournalConfig config_;
  std::mutex mu_;
  common::AppendFile file_;          // active segment
  std::uint64_t next_lsn_ = 1;       // under mu_
  std::atomic<std::uint64_t> last_lsn_{0};
  /// Monotonic seconds of the oldest append not yet covered by an fsync;
  /// < 0 when everything appended is synced. The kInterval anchor: the
  /// durability window of any acknowledged record is its own age, so the
  /// sync deadline runs from the record that has waited longest. Under
  /// mu_.
  double oldest_unsynced_monotonic_ = -1.0;
  bool broken_ = false;               // active segment unwritable

  std::atomic<std::uint64_t> appends_{0};
  std::atomic<std::uint64_t> append_failures_{0};
  std::atomic<std::uint64_t> bytes_appended_{0};
  std::atomic<std::uint64_t> syncs_{0};
  std::atomic<std::uint64_t> rotations_{0};
  std::atomic<std::uint64_t> torn_tail_truncations_{0};
  std::atomic<std::uint64_t> segments_removed_{0};
  obs::LatencyHistogram* append_hist_ = nullptr;
  obs::LatencyHistogram* sync_hist_ = nullptr;
};

/// Everything a read pass learns about one segment file.
struct JournalSegmentInfo {
  std::string path;
  std::uint64_t base_lsn = 0;   // from the header
  std::uint64_t first_lsn = 0;  // 0 when no valid record
  std::uint64_t last_lsn = 0;
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;            // file size
  std::uint64_t quarantined_bytes = 0;  // unread tail after a bad frame
  bool header_ok = false;
};

/// Result of scanning a journal directory.
struct JournalScanResult {
  std::vector<JournalSegmentInfo> segments;  // sorted by base LSN
  std::uint64_t records_scanned = 0;   // delivered to the callback
  std::uint64_t records_skipped = 0;   // valid frames at/below min LSN
  std::uint64_t quarantined_segments = 0;  // segments cut short by corruption
  std::uint64_t quarantined_bytes = 0;
  std::uint64_t lsn_gaps = 0;  // missing records/segments in the LSN line
  std::uint64_t min_lsn = 0;   // over delivered records (0 when none)
  std::uint64_t max_lsn = 0;
};

/// Scans every segment under `directory` in LSN order, invoking
/// `on_record` for each valid record with LSN > `min_exclusive_lsn`
/// (pass 0 to get everything). Corruption never throws: a bad frame
/// quarantines the rest of its segment, a missing middle segment counts
/// as an LSN gap, and scanning continues with the next segment. A null
/// callback just inventories (amf_cli wal).
JournalScanResult ScanJournal(
    const std::string& directory, std::uint64_t min_exclusive_lsn,
    const std::function<void(const JournalRecord&)>& on_record);

/// Convenience wrapper materializing the records (tests, dry-run CLI).
struct JournalReadResult {
  JournalScanResult scan;
  std::vector<JournalRecord> records;
};
JournalReadResult ReadJournal(const std::string& directory,
                              std::uint64_t min_exclusive_lsn = 0);

/// Truncates the final segment's torn tail (partial trailing frame) in
/// `directory`, if any. Returns bytes removed. Exposed for tests and
/// amf_cli; ObservationJournal does this automatically on open.
std::uint64_t TruncateTornTail(const std::string& directory);

}  // namespace amf::stream

#include "data/dataset.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace amf::data {

linalg::Matrix QoSDataset::DenseSlice(QoSAttribute attr, SliceId t) const {
  linalg::Matrix m(num_users(), num_services());
  for (std::size_t u = 0; u < num_users(); ++u) {
    for (std::size_t s = 0; s < num_services(); ++s) {
      m(u, s) = Value(attr, static_cast<UserId>(u),
                      static_cast<ServiceId>(s), t);
    }
  }
  return m;
}

InMemoryDataset::InMemoryDataset(std::size_t users, std::size_t services,
                                 std::size_t slices)
    : users_(users), services_(services), slices_(slices) {
  slices_by_attr_.resize(2);
  for (auto& per_attr : slices_by_attr_) {
    per_attr.assign(slices, linalg::Matrix(
        users, services, std::numeric_limits<double>::quiet_NaN()));
  }
}

const linalg::Matrix& InMemoryDataset::Slice(QoSAttribute attr,
                                             SliceId t) const {
  AMF_CHECK_MSG(t < slices_, "slice out of range: " << t);
  return slices_by_attr_[static_cast<std::size_t>(attr)][t];
}

double InMemoryDataset::Value(QoSAttribute attr, UserId u, ServiceId s,
                              SliceId t) const {
  const double v = Slice(attr, t)(u, s);
  AMF_CHECK_MSG(std::isfinite(v), "Value() on missing entry ("
                                      << u << "," << s << "," << t << ")");
  return v;
}

linalg::Matrix InMemoryDataset::DenseSlice(QoSAttribute attr,
                                           SliceId t) const {
  return Slice(attr, t);
}

bool InMemoryDataset::Has(QoSAttribute attr, UserId u, ServiceId s,
                          SliceId t) const {
  AMF_CHECK(u < users_ && s < services_);
  return std::isfinite(Slice(attr, t)(u, s));
}

void InMemoryDataset::SetValue(QoSAttribute attr, UserId u, ServiceId s,
                               SliceId t, double value) {
  AMF_CHECK(u < users_ && s < services_ && t < slices_);
  slices_by_attr_[static_cast<std::size_t>(attr)][t](u, s) = value;
}

linalg::Matrix& InMemoryDataset::MutableSlice(QoSAttribute attr, SliceId t) {
  AMF_CHECK(t < slices_);
  return slices_by_attr_[static_cast<std::size_t>(attr)][t];
}

}  // namespace amf::data

// Dataset summary statistics -- regenerates the Fig. 6 table.
#pragma once

#include <string>

#include "common/statistics.h"
#include "data/dataset.h"

namespace amf::data {

struct AttributeSummary {
  common::RunningStats stats;  ///< over all scanned values
};

struct DatasetSummary {
  std::size_t users = 0;
  std::size_t services = 0;
  std::size_t slices = 0;
  std::size_t scanned_slices = 0;
  AttributeSummary rt;
  AttributeSummary tp;
};

/// Scans up to `max_slices` slices (0 = all) and accumulates statistics.
DatasetSummary Summarize(const QoSDataset& dataset,
                         std::size_t max_slices = 0);

/// Renders the Fig. 6-style statistics table.
std::string SummaryTable(const DatasetSummary& summary,
                         double slice_interval_minutes = 15.0);

}  // namespace amf::data

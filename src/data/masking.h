// Train/test splitting at a given matrix density (paper §V-C protocol).
//
// "To simulate the sparse situation, we randomly remove entries from the
//  data matrix at each time slice so that each user only keeps a few
//  available historical values" -- we sample exactly round(density * cells)
// entries uniformly without replacement as the observed (training) set;
// the removed entries form the test set.
#pragma once

#include <vector>

#include "common/rng.h"
#include "data/qos_types.h"
#include "data/sparse_matrix.h"
#include "linalg/matrix.h"

namespace amf::data {

struct TrainTestSplit {
  /// Observed entries at the requested density.
  SparseMatrix train;
  /// Held-out entries (ground truth) used to score predictions.
  std::vector<QoSSample> test;
};

/// Splits a fully-observed dense slice into observed/held-out sets.
/// `density` in (0, 1]; NaN cells (missing ground truth) are excluded from
/// both sets. Deterministic in `rng`.
TrainTestSplit SplitSlice(const linalg::Matrix& slice, double density,
                          common::Rng& rng, SliceId slice_id = 0);

/// Samples an observed SparseMatrix at `density` (no test set materialized).
SparseMatrix SampleDensity(const linalg::Matrix& slice, double density,
                           common::Rng& rng);

}  // namespace amf::data

#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"
#include "common/rng.h"
#include "linalg/vector_ops.h"

namespace amf::data {

namespace {

/// Cheap deterministic hash -> standard normal, for per-observation noise.
/// Uses three splitmix64 rounds to mix (u, s, t) into two uniforms, then a
/// Box-Muller cosine branch. Much faster than constructing an engine.
double HashNormal(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                  std::uint64_t c) {
  std::uint64_t state =
      seed ^ (a * 0x9E3779B97F4A7C15ULL) ^ (b * 0xC2B2AE3D27D4EB4FULL) ^
      (c * 0x165667B19E3779F9ULL);
  const std::uint64_t u1 = common::SplitMix64(state);
  const std::uint64_t u2 = common::SplitMix64(state);
  // (0, 1] for the log argument; [0, 1) for the angle.
  const double x1 =
      (static_cast<double>(u1 >> 11) + 1.0) * 0x1.0p-53;
  const double x2 = static_cast<double>(u2 >> 11) * 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(x1)) *
         std::cos(2.0 * std::numbers::pi * x2);
}

}  // namespace

AttributeProfile ResponseTimeProfile() {
  AttributeProfile p;
  p.mu = -0.2;  // exp(mu + sigma^2/2) ~ 1.3 s mean, matching Fig. 6
  p.sd_user_bias = 0.45;
  p.sd_service_bias = 0.5;
  p.sd_latent = 0.55;
  p.sd_region = 0.3;
  p.sd_temporal = 0.25;
  p.sd_noise = 0.2;
  p.v_max = 20.0;
  p.v_floor = 0.005;
  return p;
}

AttributeProfile ThroughputProfile() {
  AttributeProfile p;
  p.mu = 1.55;  // exp(mu + sigma^2/2) ~ 11 kbps mean, matching Fig. 6
  p.sd_user_bias = 0.6;
  p.sd_service_bias = 0.7;
  p.sd_latent = 0.7;
  p.sd_region = 0.35;
  p.sd_temporal = 0.3;
  p.sd_noise = 0.25;
  p.v_max = 7000.0;
  p.v_floor = 0.01;
  return p;
}

SyntheticQoSDataset::SyntheticQoSDataset(const SyntheticConfig& config)
    : config_(config) {
  AMF_CHECK_MSG(config_.users > 0 && config_.services > 0 &&
                    config_.slices > 0,
                "dataset dimensions must be positive");
  AMF_CHECK_MSG(config_.latent_rank > 0, "latent_rank must be positive");
  AMF_CHECK_MSG(config_.regions > 0, "regions must be positive");
  AMF_CHECK_MSG(config_.temporal_waves > 0, "temporal_waves must be > 0");

  common::Rng master(config_.seed);

  // Shared region assignments (geography is attribute-independent).
  common::Rng region_rng = master.Fork(1);
  user_region_.resize(config_.users);
  for (auto& r : user_region_) r = region_rng.Index(config_.regions);
  service_region_.resize(config_.services);
  for (auto& r : service_region_) r = region_rng.Index(config_.regions);

  auto build_model = [&](const AttributeProfile& prof,
                         std::uint64_t stream) -> AttributeModel {
    common::Rng rng = master.Fork(stream);
    AttributeModel m;

    m.user_bias.resize(config_.users);
    for (auto& b : m.user_bias) b = rng.Normal(0.0, prof.sd_user_bias);
    m.service_bias.resize(config_.services);
    for (auto& b : m.service_bias) b = rng.Normal(0.0, prof.sd_service_bias);

    // Latent vectors scaled so the inner product has stddev ~ sd_latent:
    // sum of d* products of N(0, a) N(0, a) has variance d* a^4... we use
    // entries N(0, sqrt(sd_latent / sqrt(d*))) so Var(dot) = sd_latent^2.
    const double d = static_cast<double>(config_.latent_rank);
    const double entry_sd = std::sqrt(prof.sd_latent / std::sqrt(d));
    m.user_latent.Resize(config_.users, config_.latent_rank);
    for (double& x : m.user_latent.data()) x = rng.Normal(0.0, entry_sd);
    m.service_latent.Resize(config_.services, config_.latent_rank);
    for (double& x : m.service_latent.data()) x = rng.Normal(0.0, entry_sd);

    m.region_effect.Resize(config_.regions, config_.regions);
    for (double& x : m.region_effect.data()) {
      x = rng.Normal(0.0, prof.sd_region);
    }

    auto fill_temporal = [&](std::size_t entities, std::vector<double>& amp,
                             std::vector<double>& freq,
                             std::vector<double>& phase) {
      const std::size_t k = config_.temporal_waves;
      amp.resize(entities * k);
      freq.resize(entities * k);
      phase.resize(entities * k);
      for (std::size_t e = 0; e < entities; ++e) {
        double sum_sq = 0.0;
        for (std::size_t w = 0; w < k; ++w) {
          const double a = rng.Uniform(0.5, 1.0);
          amp[e * k + w] = a;
          sum_sq += a * a;
        }
        // Normalize so the mixture has unit variance: Var(sum a sin) =
        // sum a^2 / 2.
        const double scale = 1.0 / std::sqrt(sum_sq / 2.0);
        for (std::size_t w = 0; w < k; ++w) {
          amp[e * k + w] *= scale;
          freq[e * k + w] = rng.Uniform(1.0, 6.0);  // cycles per horizon
          phase[e * k + w] =
              rng.Uniform(0.0, 2.0 * std::numbers::pi);
        }
      }
    };
    fill_temporal(config_.users, m.user_amp, m.user_freq, m.user_phase);
    fill_temporal(config_.services, m.svc_amp, m.svc_freq, m.svc_phase);
    return m;
  };

  rt_model_ = build_model(config_.rt, 100);
  tp_model_ = build_model(config_.tp, 200);
  noise_seed_rt_ = common::DeriveSeed(config_.seed, 300);
  noise_seed_tp_ = common::DeriveSeed(config_.seed, 301);
}

const SyntheticQoSDataset::AttributeModel& SyntheticQoSDataset::Model(
    QoSAttribute attr) const {
  return attr == QoSAttribute::kResponseTime ? rt_model_ : tp_model_;
}

const AttributeProfile& SyntheticQoSDataset::Profile(
    QoSAttribute attr) const {
  return attr == QoSAttribute::kResponseTime ? config_.rt : config_.tp;
}

double SyntheticQoSDataset::TemporalFactor(const std::vector<double>& amp,
                                           const std::vector<double>& freq,
                                           const std::vector<double>& phase,
                                           std::size_t entity,
                                           std::size_t waves, double t_frac) {
  double v = 0.0;
  const std::size_t base = entity * waves;
  for (std::size_t w = 0; w < waves; ++w) {
    v += amp[base + w] *
         std::sin(2.0 * std::numbers::pi * freq[base + w] * t_frac +
                  phase[base + w]);
  }
  return v;
}

double SyntheticQoSDataset::LogDomain(QoSAttribute attr, UserId u,
                                      ServiceId s, SliceId t) const {
  AMF_CHECK_MSG(u < config_.users && s < config_.services &&
                    t < config_.slices,
                "index out of range (" << u << "," << s << "," << t << ")");
  const AttributeModel& m = Model(attr);
  const AttributeProfile& prof = Profile(attr);
  const double t_frac =
      static_cast<double>(t) / config_.temporal_period_slices;
  const std::uint64_t noise_seed =
      attr == QoSAttribute::kResponseTime ? noise_seed_rt_ : noise_seed_tp_;

  double y = prof.mu + m.user_bias[u] + m.service_bias[s];
  y += linalg::Dot(m.user_latent.row(u), m.service_latent.row(s));
  y += m.region_effect(user_region_[u], service_region_[s]);
  y += prof.sd_temporal *
       (TemporalFactor(m.user_amp, m.user_freq, m.user_phase, u,
                       config_.temporal_waves, t_frac) +
        TemporalFactor(m.svc_amp, m.svc_freq, m.svc_phase, s,
                       config_.temporal_waves, t_frac)) /
       std::sqrt(2.0);
  y += prof.sd_noise * HashNormal(noise_seed, u, s, t);
  return y;
}

double SyntheticQoSDataset::Value(QoSAttribute attr, UserId u, ServiceId s,
                                  SliceId t) const {
  const AttributeProfile& prof = Profile(attr);
  return std::clamp(std::exp(LogDomain(attr, u, s, t)), prof.v_floor,
                    prof.v_max);
}

linalg::Matrix SyntheticQoSDataset::DenseSlice(QoSAttribute attr,
                                               SliceId t) const {
  AMF_CHECK(t < config_.slices);
  const AttributeModel& m = Model(attr);
  const AttributeProfile& prof = Profile(attr);
  const double t_frac =
      static_cast<double>(t) / config_.temporal_period_slices;
  const std::uint64_t noise_seed =
      attr == QoSAttribute::kResponseTime ? noise_seed_rt_ : noise_seed_tp_;

  // Precompute per-service temporal factors for this slice.
  std::vector<double> svc_temporal(config_.services);
  for (std::size_t s = 0; s < config_.services; ++s) {
    svc_temporal[s] = TemporalFactor(m.svc_amp, m.svc_freq, m.svc_phase, s,
                                     config_.temporal_waves, t_frac);
  }

  linalg::Matrix out(config_.users, config_.services);
  const double temporal_scale = prof.sd_temporal / std::sqrt(2.0);
  for (std::size_t u = 0; u < config_.users; ++u) {
    const double user_part =
        prof.mu + m.user_bias[u] +
        temporal_scale * TemporalFactor(m.user_amp, m.user_freq,
                                        m.user_phase, u,
                                        config_.temporal_waves, t_frac);
    const auto u_lat = m.user_latent.row(u);
    const std::size_t ur = user_region_[u];
    for (std::size_t s = 0; s < config_.services; ++s) {
      double y = user_part + m.service_bias[s] +
                 linalg::Dot(u_lat, m.service_latent.row(s)) +
                 m.region_effect(ur, service_region_[s]) +
                 temporal_scale * svc_temporal[s] +
                 prof.sd_noise * HashNormal(noise_seed, u, s, t);
      out(u, s) = std::clamp(std::exp(y), prof.v_floor, prof.v_max);
    }
  }
  return out;
}

std::size_t SyntheticQoSDataset::UserRegion(UserId u) const {
  AMF_CHECK(u < config_.users);
  return user_region_[u];
}

std::size_t SyntheticQoSDataset::ServiceRegion(ServiceId s) const {
  AMF_CHECK(s < config_.services);
  return service_region_[s];
}

}  // namespace amf::data

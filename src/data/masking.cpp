#include "data/masking.h"

#include <cmath>

#include "common/check.h"

namespace amf::data {

namespace {

/// Indices of all finite cells, flattened row-major.
std::vector<std::size_t> FiniteCells(const linalg::Matrix& slice) {
  std::vector<std::size_t> cells;
  cells.reserve(slice.size());
  const auto data = slice.data();
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (std::isfinite(data[i])) cells.push_back(i);
  }
  return cells;
}

}  // namespace

TrainTestSplit SplitSlice(const linalg::Matrix& slice, double density,
                          common::Rng& rng, SliceId slice_id) {
  AMF_CHECK_MSG(density > 0.0 && density <= 1.0,
                "density must be in (0, 1], got " << density);
  std::vector<std::size_t> cells = FiniteCells(slice);
  rng.Shuffle(cells);
  const std::size_t n_train = static_cast<std::size_t>(
      std::llround(density * static_cast<double>(cells.size())));

  TrainTestSplit split;
  split.train = SparseMatrix(slice.rows(), slice.cols());
  split.test.reserve(cells.size() - n_train);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::size_t r = cells[i] / slice.cols();
    const std::size_t c = cells[i] % slice.cols();
    const double v = slice(r, c);
    if (i < n_train) {
      split.train.Set(r, c, v);
    } else {
      split.test.push_back(QoSSample{slice_id, static_cast<UserId>(r),
                                     static_cast<ServiceId>(c), v, 0.0});
    }
  }
  return split;
}

SparseMatrix SampleDensity(const linalg::Matrix& slice, double density,
                           common::Rng& rng) {
  return SplitSlice(slice, density, rng).train;
}

}  // namespace amf::data

#include "data/sparse_matrix.h"

#include <algorithm>

#include "common/check.h"

namespace amf::data {

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols)
    : row_data_(rows), col_data_(cols) {}

double SparseMatrix::Density() const {
  const std::size_t cells = rows() * cols();
  if (cells == 0) return 0.0;
  return static_cast<double>(nnz_) / static_cast<double>(cells);
}

void SparseMatrix::SetInVec(std::vector<SparseEntry>& vec,
                            std::uint32_t index, double value,
                            bool& inserted) {
  auto it = std::lower_bound(
      vec.begin(), vec.end(), index,
      [](const SparseEntry& e, std::uint32_t i) { return e.index < i; });
  if (it != vec.end() && it->index == index) {
    it->value = value;
    inserted = false;
  } else {
    vec.insert(it, SparseEntry{index, value});
    inserted = true;
  }
}

bool SparseMatrix::EraseInVec(std::vector<SparseEntry>& vec,
                              std::uint32_t index) {
  auto it = std::lower_bound(
      vec.begin(), vec.end(), index,
      [](const SparseEntry& e, std::uint32_t i) { return e.index < i; });
  if (it == vec.end() || it->index != index) return false;
  vec.erase(it);
  return true;
}

const SparseEntry* SparseMatrix::FindInVec(
    const std::vector<SparseEntry>& vec, std::uint32_t index) {
  auto it = std::lower_bound(
      vec.begin(), vec.end(), index,
      [](const SparseEntry& e, std::uint32_t i) { return e.index < i; });
  if (it == vec.end() || it->index != index) return nullptr;
  return &*it;
}

void SparseMatrix::Set(std::size_t r, std::size_t c, double value) {
  AMF_CHECK_MSG(r < rows() && c < cols(),
                "Set out of range: (" << r << "," << c << ")");
  bool inserted = false;
  SetInVec(row_data_[r], static_cast<std::uint32_t>(c), value, inserted);
  bool inserted_col = false;
  SetInVec(col_data_[c], static_cast<std::uint32_t>(r), value, inserted_col);
  AMF_DCHECK(inserted == inserted_col);
  if (inserted) ++nnz_;
}

bool SparseMatrix::Erase(std::size_t r, std::size_t c) {
  AMF_CHECK(r < rows() && c < cols());
  const bool erased = EraseInVec(row_data_[r], static_cast<std::uint32_t>(c));
  if (erased) {
    EraseInVec(col_data_[c], static_cast<std::uint32_t>(r));
    --nnz_;
  }
  return erased;
}

std::optional<double> SparseMatrix::Get(std::size_t r, std::size_t c) const {
  AMF_CHECK(r < rows() && c < cols());
  const SparseEntry* e =
      FindInVec(row_data_[r], static_cast<std::uint32_t>(c));
  if (!e) return std::nullopt;
  return e->value;
}

bool SparseMatrix::Has(std::size_t r, std::size_t c) const {
  return Get(r, c).has_value();
}

std::span<const SparseEntry> SparseMatrix::Row(std::size_t r) const {
  AMF_CHECK(r < rows());
  return row_data_[r];
}

std::span<const SparseEntry> SparseMatrix::Col(std::size_t c) const {
  AMF_CHECK(c < cols());
  return col_data_[c];
}

std::optional<double> SparseMatrix::RowMean(std::size_t r) const {
  const auto row = Row(r);
  if (row.empty()) return std::nullopt;
  double s = 0.0;
  for (const SparseEntry& e : row) s += e.value;
  return s / static_cast<double>(row.size());
}

std::optional<double> SparseMatrix::ColMean(std::size_t c) const {
  const auto col = Col(c);
  if (col.empty()) return std::nullopt;
  double s = 0.0;
  for (const SparseEntry& e : col) s += e.value;
  return s / static_cast<double>(col.size());
}

double SparseMatrix::GlobalMean() const {
  if (nnz_ == 0) return 0.0;
  double s = 0.0;
  for (const auto& row : row_data_) {
    for (const SparseEntry& e : row) s += e.value;
  }
  return s / static_cast<double>(nnz_);
}

std::vector<QoSSample> SparseMatrix::ToSamples(SliceId slice) const {
  std::vector<QoSSample> samples;
  samples.reserve(nnz_);
  for (std::size_t r = 0; r < rows(); ++r) {
    for (const SparseEntry& e : row_data_[r]) {
      samples.push_back(QoSSample{slice, static_cast<UserId>(r),
                                  static_cast<ServiceId>(e.index), e.value,
                                  0.0});
    }
  }
  return samples;
}

}  // namespace amf::data

// Sparse user x service QoS matrix.
//
// Stores the observed entries of one time slice. Both row (per-user) and
// column (per-service) adjacency are maintained because the CF baselines
// need fast access from both sides (UPCC walks user rows, IPCC service
// columns). Entries are kept sorted by index for deterministic iteration
// and O(log k) lookup.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "data/qos_types.h"

namespace amf::data {

/// (index, value) pair inside a sparse row/column.
struct SparseEntry {
  std::uint32_t index = 0;  // column for rows, row for columns
  double value = 0.0;

  bool operator==(const SparseEntry&) const = default;
};

class SparseMatrix {
 public:
  SparseMatrix() = default;
  SparseMatrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return row_data_.size(); }
  std::size_t cols() const { return col_data_.size(); }
  /// Number of stored (observed) entries.
  std::size_t nnz() const { return nnz_; }
  /// nnz / (rows * cols); 0 for a degenerate shape.
  double Density() const;

  /// Inserts or overwrites entry (r, c).
  void Set(std::size_t r, std::size_t c, double value);

  /// Removes entry (r, c) if present; returns whether it existed.
  bool Erase(std::size_t r, std::size_t c);

  /// Value at (r, c), or nullopt if not observed.
  std::optional<double> Get(std::size_t r, std::size_t c) const;

  bool Has(std::size_t r, std::size_t c) const;

  /// Observed entries of row r, sorted by column index.
  std::span<const SparseEntry> Row(std::size_t r) const;

  /// Observed entries of column c, sorted by row index.
  std::span<const SparseEntry> Col(std::size_t c) const;

  /// Mean of the observed entries in row r / column c (nullopt if empty).
  std::optional<double> RowMean(std::size_t r) const;
  std::optional<double> ColMean(std::size_t c) const;

  /// Mean over all observed entries (0 when empty).
  double GlobalMean() const;

  /// All observed entries as samples with the given slice id (timestamp 0).
  std::vector<QoSSample> ToSamples(SliceId slice = 0) const;

 private:
  static void SetInVec(std::vector<SparseEntry>& vec, std::uint32_t index,
                       double value, bool& inserted);
  static bool EraseInVec(std::vector<SparseEntry>& vec, std::uint32_t index);
  static const SparseEntry* FindInVec(const std::vector<SparseEntry>& vec,
                                      std::uint32_t index);

  std::vector<std::vector<SparseEntry>> row_data_;
  std::vector<std::vector<SparseEntry>> col_data_;
  std::size_t nnz_ = 0;
};

}  // namespace amf::data

// Triplet-file IO, compatible with the WS-DREAM text layout
// (one "user service slice value" record per line).
//
// This is the bridge to the real dataset: if a copy of the paper's data is
// available, load it into an InMemoryDataset with these routines and every
// experiment runs on it unchanged.
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.h"
#include "data/sparse_matrix.h"

namespace amf::data {

/// Writes every finite entry of one dataset attribute as
/// "user<sep>service<sep>slice<sep>value" lines.
void WriteTriplets(std::ostream& os, const QoSDataset& dataset,
                   QoSAttribute attr, char sep = ' ');

/// Writes one sparse slice as "user<sep>service<sep>slice<sep>value" lines.
void WriteSliceTriplets(std::ostream& os, const SparseMatrix& slice,
                        SliceId slice_id, char sep = ' ');

/// Malformed-line policy for the options-based triplet reader.
struct TripletReadOptions {
  /// Throw common::CheckError on the first malformed or out-of-range
  /// record (the legacy behavior). When false, bad lines are counted and
  /// skipped instead.
  bool strict = false;
  /// Lenient mode only: abort with common::CheckError once more than this
  /// many bad lines have been seen (a file that is mostly garbage is a
  /// wrong file, not a noisy one). 0 disables the cap.
  std::size_t max_bad_lines = 0;
  /// Log a warning for each skipped line, up to `max_warnings` of them.
  bool warn = true;
  std::size_t max_warnings = 10;
};

/// Outcome counters from one options-based read.
struct TripletReadStats {
  std::size_t lines = 0;      ///< total input lines (incl. blanks/comments)
  std::size_t records = 0;    ///< well-formed records stored
  std::size_t bad_lines = 0;  ///< malformed / unparsable / out-of-range
};

/// Parses triplet lines into `dataset` for `attr`. Blank lines and lines
/// starting with '#' are skipped. Accepts space-, tab- or comma-separated
/// fields. Throws common::CheckError on malformed records or out-of-range
/// indices.
void ReadTriplets(std::istream& is, InMemoryDataset& dataset,
                  QoSAttribute attr);

/// Hardened variant: malformed records are handled per `options` and the
/// counters are returned. With `options.strict` this matches the legacy
/// overload; otherwise bad lines are skipped (warned, counted) until the
/// optional `max_bad_lines` cap trips.
TripletReadStats ReadTriplets(std::istream& is, InMemoryDataset& dataset,
                              QoSAttribute attr,
                              const TripletReadOptions& options);

/// Reads triplets of a single slice into a SparseMatrix (records whose
/// slice differs from `slice_id` are ignored).
SparseMatrix ReadSliceTriplets(std::istream& is, std::size_t users,
                               std::size_t services, SliceId slice_id);

/// File-path conveniences (throw on IO failure).
void WriteTripletsFile(const std::string& path, const QoSDataset& dataset,
                       QoSAttribute attr, char sep = ' ');
void ReadTripletsFile(const std::string& path, InMemoryDataset& dataset,
                      QoSAttribute attr);
TripletReadStats ReadTripletsFile(const std::string& path,
                                  InMemoryDataset& dataset, QoSAttribute attr,
                                  const TripletReadOptions& options);

}  // namespace amf::data

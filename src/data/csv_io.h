// Triplet-file IO, compatible with the WS-DREAM text layout
// (one "user service slice value" record per line).
//
// This is the bridge to the real dataset: if a copy of the paper's data is
// available, load it into an InMemoryDataset with these routines and every
// experiment runs on it unchanged.
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.h"
#include "data/sparse_matrix.h"

namespace amf::data {

/// Writes every finite entry of one dataset attribute as
/// "user<sep>service<sep>slice<sep>value" lines.
void WriteTriplets(std::ostream& os, const QoSDataset& dataset,
                   QoSAttribute attr, char sep = ' ');

/// Writes one sparse slice as "user<sep>service<sep>slice<sep>value" lines.
void WriteSliceTriplets(std::ostream& os, const SparseMatrix& slice,
                        SliceId slice_id, char sep = ' ');

/// Parses triplet lines into `dataset` for `attr`. Blank lines and lines
/// starting with '#' are skipped. Accepts space-, tab- or comma-separated
/// fields. Throws common::CheckError on malformed records or out-of-range
/// indices.
void ReadTriplets(std::istream& is, InMemoryDataset& dataset,
                  QoSAttribute attr);

/// Reads triplets of a single slice into a SparseMatrix (records whose
/// slice differs from `slice_id` are ignored).
SparseMatrix ReadSliceTriplets(std::istream& is, std::size_t users,
                               std::size_t services, SliceId slice_id);

/// File-path conveniences (throw on IO failure).
void WriteTripletsFile(const std::string& path, const QoSDataset& dataset,
                       QoSAttribute attr, char sep = ' ');
void ReadTripletsFile(const std::string& path, InMemoryDataset& dataset,
                      QoSAttribute attr);

}  // namespace amf::data

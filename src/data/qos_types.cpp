#include "data/qos_types.h"

namespace amf::data {

std::string AttributeName(QoSAttribute attr) {
  switch (attr) {
    case QoSAttribute::kResponseTime:
      return "RT";
    case QoSAttribute::kThroughput:
      return "TP";
  }
  return "??";
}

}  // namespace amf::data

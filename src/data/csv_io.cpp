#include "data/csv_io.h"

#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace amf::data {

namespace {

/// Splits a record on spaces, tabs, or commas; empty fields dropped.
std::vector<std::string> Fields(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : line) {
    if (ch == ' ' || ch == '\t' || ch == ',') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

struct Record {
  std::size_t user;
  std::size_t service;
  std::size_t slice;
  double value;
};

enum class ParseStatus { kOk, kSkip, kBad };

/// Non-throwing parse of one line. kSkip for blank/comment lines; kBad
/// fills `error` with a "line N: ..." diagnostic.
ParseStatus TryParseRecord(const std::string& line, std::size_t line_no,
                           Record& rec, std::string& error) {
  const auto bad = [&](const std::string& what) {
    error = "line " + std::to_string(line_no) + ": " + what;
    return ParseStatus::kBad;
  };
  const std::string trimmed = common::Trim(line);
  if (trimmed.empty() || trimmed[0] == '#') return ParseStatus::kSkip;
  const std::vector<std::string> f = Fields(trimmed);
  if (f.size() != 4) {
    return bad("expected 4 fields, got " + std::to_string(f.size()));
  }
  const auto u = common::ParseInt(f[0]);
  const auto s = common::ParseInt(f[1]);
  const auto t = common::ParseInt(f[2]);
  const auto v = common::ParseDouble(f[3]);
  if (!(u && s && t && v)) return bad("parse error");
  if (*u < 0 || *s < 0 || *t < 0) return bad("negative index");
  rec = Record{static_cast<std::size_t>(*u), static_cast<std::size_t>(*s),
               static_cast<std::size_t>(*t), *v};
  return ParseStatus::kOk;
}

/// Parses one record; returns false for blank/comment lines. Throws
/// common::CheckError on malformed records (legacy strict contract).
bool ParseRecord(const std::string& line, std::size_t line_no, Record& rec) {
  std::string error;
  const ParseStatus st = TryParseRecord(line, line_no, rec, error);
  AMF_CHECK_MSG(st != ParseStatus::kBad, error);
  return st == ParseStatus::kOk;
}

}  // namespace

void WriteTriplets(std::ostream& os, const QoSDataset& dataset,
                   QoSAttribute attr, char sep) {
  for (std::size_t t = 0; t < dataset.num_slices(); ++t) {
    const linalg::Matrix slice =
        dataset.DenseSlice(attr, static_cast<SliceId>(t));
    for (std::size_t u = 0; u < slice.rows(); ++u) {
      for (std::size_t s = 0; s < slice.cols(); ++s) {
        const double v = slice(u, s);
        if (!std::isfinite(v)) continue;
        os << u << sep << s << sep << t << sep << v << '\n';
      }
    }
  }
}

void WriteSliceTriplets(std::ostream& os, const SparseMatrix& slice,
                        SliceId slice_id, char sep) {
  for (std::size_t u = 0; u < slice.rows(); ++u) {
    for (const SparseEntry& e : slice.Row(u)) {
      os << u << sep << e.index << sep << slice_id << sep << e.value << '\n';
    }
  }
}

void ReadTriplets(std::istream& is, InMemoryDataset& dataset,
                  QoSAttribute attr) {
  TripletReadOptions strict;
  strict.strict = true;
  (void)ReadTriplets(is, dataset, attr, strict);
}

TripletReadStats ReadTriplets(std::istream& is, InMemoryDataset& dataset,
                              QoSAttribute attr,
                              const TripletReadOptions& options) {
  TripletReadStats stats;
  std::string line;
  std::string error;
  const auto handle_bad = [&]() {
    ++stats.bad_lines;
    AMF_CHECK_MSG(!options.strict, error);
    if (options.warn && stats.bad_lines <= options.max_warnings) {
      AMF_LOG(Warning) << "ReadTriplets: skipping " << error;
    }
    AMF_CHECK_MSG(
        options.max_bad_lines == 0 || stats.bad_lines <= options.max_bad_lines,
        "too many malformed lines (" << stats.bad_lines << " > "
                                     << options.max_bad_lines
                                     << "); last: " << error);
  };
  while (std::getline(is, line)) {
    ++stats.lines;
    Record rec;
    switch (TryParseRecord(line, stats.lines, rec, error)) {
      case ParseStatus::kSkip:
        continue;
      case ParseStatus::kBad:
        handle_bad();
        continue;
      case ParseStatus::kOk:
        break;
    }
    if (rec.user >= dataset.num_users() ||
        rec.service >= dataset.num_services() ||
        rec.slice >= dataset.num_slices()) {
      error = "line " + std::to_string(stats.lines) +
              ": index out of dataset bounds";
      handle_bad();
      continue;
    }
    dataset.SetValue(attr, static_cast<UserId>(rec.user),
                     static_cast<ServiceId>(rec.service),
                     static_cast<SliceId>(rec.slice), rec.value);
    ++stats.records;
  }
  return stats;
}

SparseMatrix ReadSliceTriplets(std::istream& is, std::size_t users,
                               std::size_t services, SliceId slice_id) {
  SparseMatrix m(users, services);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    Record rec;
    if (!ParseRecord(line, line_no, rec)) continue;
    if (rec.slice != slice_id) continue;
    AMF_CHECK_MSG(rec.user < users && rec.service < services,
                  "line " << line_no << ": index out of bounds");
    m.Set(rec.user, rec.service, rec.value);
  }
  return m;
}

void WriteTripletsFile(const std::string& path, const QoSDataset& dataset,
                       QoSAttribute attr, char sep) {
  std::ofstream os(path);
  AMF_CHECK_MSG(os.good(), "cannot open for writing: " << path);
  WriteTriplets(os, dataset, attr, sep);
  AMF_CHECK_MSG(os.good(), "write failed: " << path);
}

void ReadTripletsFile(const std::string& path, InMemoryDataset& dataset,
                      QoSAttribute attr) {
  std::ifstream is(path);
  AMF_CHECK_MSG(is.good(), "cannot open for reading: " << path);
  ReadTriplets(is, dataset, attr);
}

TripletReadStats ReadTripletsFile(const std::string& path,
                                  InMemoryDataset& dataset, QoSAttribute attr,
                                  const TripletReadOptions& options) {
  std::ifstream is(path);
  AMF_CHECK_MSG(is.good(), "cannot open for reading: " << path);
  return ReadTriplets(is, dataset, attr, options);
}

}  // namespace amf::data

// Core identifier and sample types shared across the library.
#pragma once

#include <cstdint>
#include <string>

namespace amf::data {

/// Index of a service user (a cloud application / measurement node).
using UserId = std::uint32_t;
/// Index of a (candidate or working) service.
using ServiceId = std::uint32_t;
/// Index of a time slice (paper: 64 slices at 15-minute intervals).
using SliceId = std::uint32_t;

/// QoS attributes studied in the paper's evaluation.
enum class QoSAttribute : std::uint8_t {
  kResponseTime = 0,  // seconds, paper range 0-20 s
  kThroughput = 1,    // kbps, paper range 0-7000 kbps
};

inline constexpr QoSAttribute kAllAttributes[] = {
    QoSAttribute::kResponseTime, QoSAttribute::kThroughput};

/// Human-readable attribute name ("RT" / "TP").
std::string AttributeName(QoSAttribute attr);

/// One observed QoS measurement: "user u invoked service s during slice t
/// (at time `timestamp` seconds) and observed `value`".
struct QoSSample {
  SliceId slice = 0;
  UserId user = 0;
  ServiceId service = 0;
  double value = 0.0;
  /// Observation wall-clock time in seconds (simulated); used for sample
  /// expiration in Algorithm 1.
  double timestamp = 0.0;

  bool operator==(const QoSSample&) const = default;
};

}  // namespace amf::data

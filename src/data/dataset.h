// QoS dataset abstraction.
//
// A dataset is a fully-observed users x services x slices tensor per QoS
// attribute — the "ground truth" the experiments sample from. The paper
// uses the WS-DREAM dataset (142 x 4500 x 64); this repo substitutes a
// calibrated synthetic generator (see synthetic.h and DESIGN.md §2) behind
// the same interface, and can load real triplet files via csv_io.h.
#pragma once

#include <memory>
#include <vector>

#include "data/qos_types.h"
#include "linalg/matrix.h"

namespace amf::data {

class QoSDataset {
 public:
  virtual ~QoSDataset() = default;

  virtual std::size_t num_users() const = 0;
  virtual std::size_t num_services() const = 0;
  virtual std::size_t num_slices() const = 0;

  /// Ground-truth QoS value for (attr, user, service, slice).
  virtual double Value(QoSAttribute attr, UserId u, ServiceId s,
                       SliceId t) const = 0;

  /// Materializes one slice as a dense users x services matrix.
  /// The default implementation loops over Value().
  virtual linalg::Matrix DenseSlice(QoSAttribute attr, SliceId t) const;
};

/// Dataset held fully in memory (one dense matrix per attribute x slice).
/// Missing entries are NaN; Value() on a missing entry is a contract error.
class InMemoryDataset : public QoSDataset {
 public:
  InMemoryDataset(std::size_t users, std::size_t services,
                  std::size_t slices);

  std::size_t num_users() const override { return users_; }
  std::size_t num_services() const override { return services_; }
  std::size_t num_slices() const override { return slices_; }

  double Value(QoSAttribute attr, UserId u, ServiceId s,
               SliceId t) const override;
  linalg::Matrix DenseSlice(QoSAttribute attr, SliceId t) const override;

  /// Returns true if (attr, u, s, t) holds a finite value.
  bool Has(QoSAttribute attr, UserId u, ServiceId s, SliceId t) const;

  void SetValue(QoSAttribute attr, UserId u, ServiceId s, SliceId t,
                double value);

  /// Mutable access to a whole slice.
  linalg::Matrix& MutableSlice(QoSAttribute attr, SliceId t);

 private:
  const linalg::Matrix& Slice(QoSAttribute attr, SliceId t) const;

  std::size_t users_;
  std::size_t services_;
  std::size_t slices_;
  // Indexed [attribute][slice].
  std::vector<std::vector<linalg::Matrix>> slices_by_attr_;
};

}  // namespace amf::data

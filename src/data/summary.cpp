#include "data/summary.h"

#include <cmath>
#include <sstream>

#include "common/string_util.h"
#include "common/table_printer.h"

namespace amf::data {

DatasetSummary Summarize(const QoSDataset& dataset, std::size_t max_slices) {
  DatasetSummary out;
  out.users = dataset.num_users();
  out.services = dataset.num_services();
  out.slices = dataset.num_slices();
  const std::size_t scan =
      max_slices == 0 ? out.slices : std::min(max_slices, out.slices);
  out.scanned_slices = scan;
  for (std::size_t t = 0; t < scan; ++t) {
    for (QoSAttribute attr : kAllAttributes) {
      const linalg::Matrix slice =
          dataset.DenseSlice(attr, static_cast<SliceId>(t));
      AttributeSummary& dst =
          attr == QoSAttribute::kResponseTime ? out.rt : out.tp;
      for (double v : slice.data()) {
        if (std::isfinite(v)) dst.stats.Add(v);
      }
    }
  }
  return out;
}

std::string SummaryTable(const DatasetSummary& summary,
                         double slice_interval_minutes) {
  using common::FormatFixed;
  common::TablePrinter table({"Statistics", "Values"});
  table.AddRow({"#Users", std::to_string(summary.users)});
  table.AddRow({"#Services", std::to_string(summary.services)});
  table.AddRow({"#Time slices", std::to_string(summary.slices)});
  table.AddRow({"#Time interval",
                FormatFixed(slice_interval_minutes, 0) + "min"});
  table.AddRow({"RT range", FormatFixed(summary.rt.stats.min(), 3) + " ~ " +
                                FormatFixed(summary.rt.stats.max(), 2) +
                                "s"});
  table.AddRow({"RT average", FormatFixed(summary.rt.stats.mean(), 2) + "s"});
  table.AddRow({"TP range", FormatFixed(summary.tp.stats.min(), 3) + " ~ " +
                                FormatFixed(summary.tp.stats.max(), 1) +
                                "kbps"});
  table.AddRow({"TP average",
                FormatFixed(summary.tp.stats.mean(), 2) + "kbps"});
  std::ostringstream oss;
  oss << table.ToString();
  if (summary.scanned_slices < summary.slices) {
    oss << "(statistics over the first " << summary.scanned_slices
        << " of " << summary.slices << " slices)\n";
  }
  return oss.str();
}

}  // namespace amf::data

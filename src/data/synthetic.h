// Synthetic WS-DREAM-like QoS dataset (the data substrate).
//
// The paper evaluates on a proprietary-collection dataset: 142 users
// (PlanetLab nodes in 22 countries) x 4,500 Web services (57 countries)
// x 64 time slices at 15-minute intervals, with response time (0-20 s,
// mean 1.33 s) and throughput (0-7000 kbps, mean 11.35 kbps). That data
// is not available offline, so this generator reproduces the properties
// the paper's evaluation actually depends on:
//
//  * heavy-tailed, highly skewed marginals (Fig. 7) -- values are
//    log-normal-ish: exp() of a Gaussian factor model, clamped to the
//    paper's ranges and calibrated to its means;
//  * approximate low-rankness of the user x service matrix (Fig. 9) --
//    the log-domain model is exactly low-rank (user bias + service bias +
//    rank-d* latent inner product + region effects) plus small noise;
//  * user-specific QoS (Fig. 2b) -- per-user biases and a user x service
//    region latency term (users/services are assigned to regions,
//    mimicking geographic distribution);
//  * temporal fluctuation around a per-pair mean (Fig. 2a) -- smooth
//    per-user and per-service sinusoidal mixtures over slices plus
//    per-observation noise.
//
// Generation is deterministic in the seed and O(1)-ish per queried value,
// so paper-scale tensors never need to be materialized in memory.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "linalg/matrix.h"

namespace amf::data {

/// Log-domain variance budget and output range for one QoS attribute.
struct AttributeProfile {
  double mu = 0.0;               ///< log-domain mean
  double sd_user_bias = 0.45;    ///< per-user offset stddev
  double sd_service_bias = 0.5;  ///< per-service offset stddev
  double sd_latent = 0.55;       ///< stddev of the rank-d* inner product
  double sd_region = 0.3;        ///< stddev of region-pair effects
  double sd_temporal = 0.25;     ///< stddev of the temporal fluctuation
  double sd_noise = 0.2;         ///< per-observation noise stddev
  double v_max = 20.0;           ///< clamp ceiling (paper Rmax)
  double v_floor = 0.005;        ///< clamp floor (positive; paper Rmin=0)
};

/// Profile calibrated to the paper's response-time statistics.
AttributeProfile ResponseTimeProfile();
/// Profile calibrated to the paper's throughput statistics.
AttributeProfile ThroughputProfile();

struct SyntheticConfig {
  std::size_t users = 142;
  std::size_t services = 4500;
  std::size_t slices = 64;
  /// Rank of the log-domain latent factor model (true effective rank is
  /// about latent_rank + 2 thanks to the bias terms; Fig. 9 motivates ~10).
  std::size_t latent_rank = 8;
  /// Number of geographic regions users/services are assigned to.
  std::size_t regions = 8;
  /// Sinusoids mixed into each entity's temporal fluctuation.
  std::size_t temporal_waves = 3;
  /// Slices per full temporal period: frequencies are drawn in cycles per
  /// `temporal_period_slices`, so slice-to-slice drift matches the paper's
  /// 64-slice / 15-minute cadence regardless of how many slices a dataset
  /// actually materializes.
  double temporal_period_slices = 64.0;
  /// Paper: 15-minute slices.
  double slice_interval_seconds = 900.0;
  std::uint64_t seed = 2014;
  AttributeProfile rt = ResponseTimeProfile();
  AttributeProfile tp = ThroughputProfile();
};

class SyntheticQoSDataset : public QoSDataset {
 public:
  explicit SyntheticQoSDataset(const SyntheticConfig& config);

  std::size_t num_users() const override { return config_.users; }
  std::size_t num_services() const override { return config_.services; }
  std::size_t num_slices() const override { return config_.slices; }

  double Value(QoSAttribute attr, UserId u, ServiceId s,
               SliceId t) const override;
  linalg::Matrix DenseSlice(QoSAttribute attr, SliceId t) const override;

  const SyntheticConfig& config() const { return config_; }

  /// Simulated wall-clock timestamp (seconds) of slice t.
  double SliceTimestamp(SliceId t) const {
    return static_cast<double>(t) * config_.slice_interval_seconds;
  }

  /// Region assignment (useful for the adaptation examples).
  std::size_t UserRegion(UserId u) const;
  std::size_t ServiceRegion(ServiceId s) const;

 private:
  /// All per-entity parameters of one attribute's factor model.
  struct AttributeModel {
    std::vector<double> user_bias;         // [users]
    std::vector<double> service_bias;      // [services]
    linalg::Matrix user_latent;            // users x d*
    linalg::Matrix service_latent;         // services x d*
    linalg::Matrix region_effect;          // regions x regions
    // Temporal sinusoid parameters, K per entity, flattened [entity*K + k].
    std::vector<double> user_amp, user_freq, user_phase;
    std::vector<double> svc_amp, svc_freq, svc_phase;
  };

  const AttributeModel& Model(QoSAttribute attr) const;
  const AttributeProfile& Profile(QoSAttribute attr) const;

  /// Smooth per-entity fluctuation at slice t (unit variance, scaled by
  /// the profile's sd_temporal at the call site).
  static double TemporalFactor(const std::vector<double>& amp,
                               const std::vector<double>& freq,
                               const std::vector<double>& phase,
                               std::size_t entity, std::size_t waves,
                               double t_frac);

  /// Log-domain value before exp/clamp.
  double LogDomain(QoSAttribute attr, UserId u, ServiceId s, SliceId t) const;

  SyntheticConfig config_;
  std::vector<std::size_t> user_region_;
  std::vector<std::size_t> service_region_;
  AttributeModel rt_model_;
  AttributeModel tp_model_;
  std::uint64_t noise_seed_rt_;
  std::uint64_t noise_seed_tp_;
};

}  // namespace amf::data

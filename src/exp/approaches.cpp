#include "exp/approaches.h"

#include "cf/ipcc.h"
#include "cf/nimf.h"
#include "cf/pmf.h"
#include "cf/uipcc.h"
#include "cf/upcc.h"
#include "common/check.h"
#include "core/amf_predictor.h"

namespace amf::exp {

std::vector<std::string> StandardApproaches() {
  return {"UPCC", "IPCC", "UIPCC", "PMF", "AMF"};
}

core::AmfConfig AmfConfigFor(data::QoSAttribute attr, std::uint64_t seed) {
  return attr == data::QoSAttribute::kResponseTime
             ? core::MakeResponseTimeConfig(seed)
             : core::MakeThroughputConfig(seed);
}

eval::PredictorFactory MakeFactory(const std::string& name,
                                   data::QoSAttribute attr) {
  if (name == "UPCC") {
    return [](std::uint64_t) { return std::make_unique<cf::Upcc>(); };
  }
  if (name == "IPCC") {
    return [](std::uint64_t) { return std::make_unique<cf::Ipcc>(); };
  }
  if (name == "UIPCC") {
    return [](std::uint64_t) { return std::make_unique<cf::Uipcc>(); };
  }
  if (name == "PMF") {
    return [](std::uint64_t seed) {
      cf::PmfConfig cfg;
      cfg.seed = seed;
      return std::make_unique<cf::Pmf>(cfg);
    };
  }
  if (name == "NIMF") {
    return [](std::uint64_t seed) {
      cf::NimfConfig cfg;
      cfg.seed = seed;
      return std::make_unique<cf::Nimf>(cfg);
    };
  }
  if (name == "AMF") {
    return [attr](std::uint64_t seed) {
      return std::make_unique<core::AmfPredictor>(AmfConfigFor(attr, seed));
    };
  }
  if (name == "AMF(a=1)") {
    return [attr](std::uint64_t seed) {
      core::AmfConfig cfg = AmfConfigFor(attr, seed);
      cfg.transform.alpha = 1.0;  // Box-Cox masked: plain normalization
      return std::make_unique<core::AmfPredictor>(cfg);
    };
  }
  if (name == "AMF(fixed-w)") {
    return [attr](std::uint64_t seed) {
      core::AmfConfig cfg = AmfConfigFor(attr, seed);
      cfg.adaptive_weights = false;
      return std::make_unique<core::AmfPredictor>(cfg);
    };
  }
  AMF_CHECK_MSG(false, "unknown approach: " << name);
  return {};
}

linalg::Matrix PredictDenseMatrix(const eval::Predictor& p,
                                  std::size_t users, std::size_t services) {
  linalg::Matrix out(users, services);
  std::vector<data::ServiceId> all(services);
  for (std::size_t s = 0; s < services; ++s) {
    all[s] = static_cast<data::ServiceId>(s);
  }
  for (std::size_t u = 0; u < users; ++u) {
    p.PredictRow(static_cast<data::UserId>(u), all, out.row(u));
  }
  return out;
}

}  // namespace amf::exp

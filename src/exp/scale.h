// Experiment scale control shared by every bench binary.
//
// Defaults are the paper's scale (142 users x 4500 services x 64 slices);
// environment variables override them so the full suite can be dialed up
// or down without recompiling:
//
//   AMF_SCALE=small      preset quick scale (60 x 500 x 16, 1 round)
//   AMF_USERS, AMF_SERVICES, AMF_SLICES, AMF_ROUNDS, AMF_SEED   integers
//   AMF_THREADS          worker threads for batched matrix scoring /
//                        parallel replay (0 = hardware concurrency)
//   AMF_DENSITIES        comma list, e.g. "0.1,0.3,0.5"
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"

namespace amf::exp {

struct ExperimentScale {
  std::size_t users = 142;
  std::size_t services = 4500;
  std::size_t slices = 64;
  /// Mask/seed repetitions per protocol cell (paper: 20).
  std::size_t rounds = 1;
  std::vector<double> densities = {0.10, 0.20, 0.30, 0.40, 0.50};
  std::uint64_t seed = 2014;
  /// Worker threads for batched matrix scoring and parallel replay
  /// (0 = hardware concurrency).
  std::size_t threads = 0;
};

/// Paper-scale defaults.
ExperimentScale PaperScale();

/// Fast preset for smoke runs.
ExperimentScale SmallScale();

/// PaperScale/SmallScale chosen by $AMF_SCALE, then field-wise env
/// overrides applied.
ExperimentScale ScaleFromEnv();

/// Like ScaleFromEnv but starting from a custom base (benches with their
/// own affordable defaults, e.g. fig13).
ExperimentScale ApplyEnvOverrides(ExperimentScale base);

/// Builds the standard synthetic dataset for a scale.
std::shared_ptr<data::SyntheticQoSDataset> MakeDataset(
    const ExperimentScale& scale);

/// One-line description for bench headers.
std::string Describe(const ExperimentScale& scale);

}  // namespace amf::exp

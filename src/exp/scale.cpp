#include "exp/scale.h"

#include <sstream>

#include "common/check.h"
#include "common/env.h"
#include "common/string_util.h"

namespace amf::exp {

ExperimentScale PaperScale() { return ExperimentScale{}; }

ExperimentScale SmallScale() {
  ExperimentScale s;
  s.users = 60;
  s.services = 500;
  s.slices = 16;
  s.rounds = 1;
  return s;
}

ExperimentScale ApplyEnvOverrides(ExperimentScale base) {
  base.users = static_cast<std::size_t>(
      common::EnvInt("AMF_USERS", static_cast<std::int64_t>(base.users)));
  base.services = static_cast<std::size_t>(common::EnvInt(
      "AMF_SERVICES", static_cast<std::int64_t>(base.services)));
  base.slices = static_cast<std::size_t>(
      common::EnvInt("AMF_SLICES", static_cast<std::int64_t>(base.slices)));
  base.rounds = static_cast<std::size_t>(
      common::EnvInt("AMF_ROUNDS", static_cast<std::int64_t>(base.rounds)));
  base.seed = static_cast<std::uint64_t>(
      common::EnvInt("AMF_SEED", static_cast<std::int64_t>(base.seed)));
  base.threads = static_cast<std::size_t>(common::EnvInt(
      "AMF_THREADS", static_cast<std::int64_t>(base.threads)));
  const std::string densities = common::EnvString("AMF_DENSITIES", "");
  if (!densities.empty()) {
    std::vector<double> parsed;
    for (const std::string& part : common::Split(densities, ',')) {
      const auto d = common::ParseDouble(part);
      AMF_CHECK_MSG(d && *d > 0.0 && *d <= 1.0,
                    "bad AMF_DENSITIES entry: " << part);
      parsed.push_back(*d);
    }
    base.densities = std::move(parsed);
  }
  AMF_CHECK_MSG(base.users > 0 && base.services > 0 && base.slices > 0 &&
                    base.rounds > 0,
                "scale fields must be positive");
  return base;
}

ExperimentScale ScaleFromEnv() {
  const std::string preset =
      common::ToLower(common::EnvString("AMF_SCALE", "paper"));
  ExperimentScale base =
      preset == "small" ? SmallScale() : PaperScale();
  return ApplyEnvOverrides(base);
}

std::shared_ptr<data::SyntheticQoSDataset> MakeDataset(
    const ExperimentScale& scale) {
  data::SyntheticConfig cfg;
  cfg.users = scale.users;
  cfg.services = scale.services;
  cfg.slices = scale.slices;
  cfg.seed = scale.seed;
  return std::make_shared<data::SyntheticQoSDataset>(cfg);
}

std::string Describe(const ExperimentScale& scale) {
  std::ostringstream oss;
  oss << scale.users << " users x " << scale.services << " services x "
      << scale.slices << " slices, " << scale.rounds << " round(s), seed "
      << scale.seed;
  return oss.str();
}

}  // namespace amf::exp

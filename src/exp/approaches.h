// Approach registry: maps the names used in the paper's tables/figures to
// predictor factories, wiring the per-attribute AMF configuration
// (alpha = -0.007 / Rmax = 20 for RT; alpha = -0.05 / Rmax = 7000 for TP).
#pragma once

#include <string>
#include <vector>

#include "core/amf_config.h"
#include "data/qos_types.h"
#include "eval/protocol.h"
#include "linalg/matrix.h"

namespace amf::exp {

/// The Table-I comparison set, in paper order.
std::vector<std::string> StandardApproaches();

/// AMF configuration for an attribute (paper Table-I parameters).
core::AmfConfig AmfConfigFor(data::QoSAttribute attr, std::uint64_t seed);

/// Factory for one named approach:
///   "UPCC", "IPCC", "UIPCC", "PMF", "NIMF", "AMF",
///   "AMF(a=1)"     data transformation relaxed to linear normalization,
///   "AMF(fixed-w)" adaptive weights disabled (w_u = w_s = 1/2).
/// Throws common::CheckError for unknown names.
eval::PredictorFactory MakeFactory(const std::string& name,
                                   data::QoSAttribute attr);

/// Scores every (user, service) pair of a fitted predictor into a dense
/// users x services matrix, one batched PredictRow per user (candidate
/// selection over the full service catalog, Fig. 14-style sweeps).
/// Rows run serially because eval::Predictor implementations are not
/// required to support concurrent reads; for parallel fan-out over rows
/// use core::AmfModel::PredictMatrixRaw on the model directly.
linalg::Matrix PredictDenseMatrix(const eval::Predictor& p,
                                  std::size_t users, std::size_t services);

}  // namespace amf::exp

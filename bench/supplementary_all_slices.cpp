// Supplementary-report regenerator: accuracy over ALL time slices.
//
// Table I reports slice 1 only; the paper's supplementary report carries
// the full per-slice results. This bench runs AMF *online* across every
// slice (warm model, expiring samples — the deployment mode) and scores
// each slice's held-out entries, demonstrating that the slice-1 accuracy
// is representative and that the online model tracks the moving QoS.
#include <iostream>

#include "common/statistics.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/amf_model.h"
#include "core/online_trainer.h"
#include "data/masking.h"
#include "exp/approaches.h"
#include "exp/scale.h"

int main() {
  using namespace amf;
  exp::ExperimentScale base = exp::PaperScale();
  base.services = 2000;  // 64 slices x full width is the paper's testbed
  const exp::ExperimentScale scale = exp::ApplyEnvOverrides(base);
  const double density = 0.10;
  const auto dataset = exp::MakeDataset(scale);
  std::cout << "=== Supplementary: AMF online accuracy over all "
            << scale.slices << " slices (density 10%, "
            << exp::Describe(scale) << ") ===\n\n";

  const data::QoSAttribute attr = data::QoSAttribute::kResponseTime;
  core::AmfModel model(exp::AmfConfigFor(attr, scale.seed));
  model.EnsureUser(static_cast<data::UserId>(scale.users - 1));
  model.EnsureService(static_cast<data::ServiceId>(scale.services - 1));
  core::TrainerConfig tcfg;
  tcfg.expiry_seconds = 900.0;
  tcfg.seed = scale.seed;
  core::OnlineTrainer trainer(model, tcfg);

  common::TablePrinter table({"slice", "MAE", "MRE", "NPRE", "epochs"});
  common::RunningStats mre_stats, npre_stats;
  for (data::SliceId t = 0; t < scale.slices; ++t) {
    const linalg::Matrix slice = dataset->DenseSlice(attr, t);
    common::Rng rng(common::DeriveSeed(scale.seed, t));
    const data::TrainTestSplit split =
        data::SplitSlice(slice, density, rng, t);

    const double now = static_cast<double>(t) * 900.0;
    trainer.AdvanceTime(now);
    for (data::QoSSample s : split.train.ToSamples(t)) {
      s.timestamp = now;
      trainer.Observe(s);
    }
    const std::size_t epochs = trainer.RunUntilConverged();

    const std::vector<double> pred =
        core::PredictSamplesRaw(model, split.test);
    std::vector<double> truth;
    truth.reserve(split.test.size());
    for (const auto& s : split.test) truth.push_back(s.value);
    const eval::Metrics m = eval::ComputeMetrics(pred, truth);
    mre_stats.Add(m.mre);
    npre_stats.Add(m.npre);
    table.AddRow({std::to_string(t), common::FormatFixed(m.mae, 3),
                  common::FormatFixed(m.mre, 3),
                  common::FormatFixed(m.npre, 3), std::to_string(epochs)});
  }
  table.Print(std::cout);
  std::cout << "MRE over slices: mean "
            << common::FormatFixed(mre_stats.mean(), 3) << " (min "
            << common::FormatFixed(mre_stats.min(), 3) << ", max "
            << common::FormatFixed(mre_stats.max(), 3) << "); NPRE mean "
            << common::FormatFixed(npre_stats.mean(), 3) << "\n";
  std::cout << "expected: after the cold first slices, per-slice MRE "
               "stays in a stable band (no drift blow-up).\n";
  return 0;
}

// Fig. 9 regenerator: sorted normalized singular values of the RT and TP
// user x service matrices (slice 0). The fast decay — only the first few
// singular values are large — justifies the low-rank assumption (the
// paper sets d = 10).
#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "exp/scale.h"
#include "linalg/svd.h"

int main() {
  using namespace amf;
  const exp::ExperimentScale scale = exp::ScaleFromEnv();
  const auto dataset = exp::MakeDataset(scale);
  std::cout << "=== Fig. 9: sorted normalized singular values ("
            << exp::Describe(scale) << ") ===\n\n";

  std::vector<std::vector<double>> spectra;
  for (data::QoSAttribute attr : data::kAllAttributes) {
    const linalg::Matrix slice = dataset->DenseSlice(attr, 0);
    spectra.push_back(linalg::NormalizedSingularValues(slice));
  }

  const std::size_t show = std::min<std::size_t>(50, spectra[0].size());
  common::TablePrinter table({"ID", "Response Time", "Throughput"});
  for (std::size_t i = 0; i < show; ++i) {
    table.AddRow({std::to_string(i + 1),
                  common::FormatFixed(spectra[0][i], 4),
                  common::FormatFixed(spectra[1][i], 4)});
  }
  table.Print(std::cout);

  for (std::size_t a = 0; a < 2; ++a) {
    std::size_t big = 0;
    for (double s : spectra[a]) {
      if (s >= 0.1) ++big;
    }
    std::cout << data::AttributeName(data::kAllAttributes[a])
              << ": singular values >= 0.1 x top: " << big << " of "
              << spectra[a].size() << " (approximately low-rank)\n";
  }
  return 0;
}

// Ablation A6: candidate-selection quality (DESIGN.md extension).
//
// Value-accuracy metrics (Table I) are a proxy; the decision that matters
// for adaptation is "pick the best candidate". For each approach: fit at
// density 10%, then for many random (user, candidate-set) draws from the
// held-out entries compare the predicted-best candidate against the true
// best: top-1 hit rate, mean relative regret, NDCG@5.
#include <iostream>
#include <unordered_map>

#include "common/check.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/masking.h"
#include "eval/ranking.h"
#include "exp/approaches.h"
#include "exp/scale.h"

int main() {
  using namespace amf;
  exp::ExperimentScale base = exp::PaperScale();
  base.services = 2000;  // IPCC cost is quadratic in services
  const exp::ExperimentScale scale = exp::ApplyEnvOverrides(base);
  const auto dataset = exp::MakeDataset(scale);
  const double density = 0.10;
  const std::size_t kCandidates = 8;
  const std::size_t kDecisions = 500;
  std::cout << "=== A6: candidate-selection quality (density 10%, "
            << kCandidates << "-way, " << kDecisions << " decisions, "
            << exp::Describe(scale) << ") ===\n\n";

  const data::QoSAttribute attr = data::QoSAttribute::kResponseTime;
  const linalg::Matrix slice = dataset->DenseSlice(attr, 0);
  common::Rng mask_rng(scale.seed);
  const data::TrainTestSplit split =
      data::SplitSlice(slice, density, mask_rng);

  // Group held-out entries by user so candidate sets are drawn from
  // services genuinely unobserved by that user.
  std::unordered_map<data::UserId, std::vector<data::QoSSample>> by_user;
  for (const auto& s : split.test) by_user[s.user].push_back(s);
  std::vector<data::UserId> users;
  for (const auto& [u, v] : by_user) {
    if (v.size() >= kCandidates) users.push_back(u);
  }
  AMF_CHECK_MSG(!users.empty(), "no user has enough held-out entries");

  common::TablePrinter table({"approach", "top-1 hit rate",
                              "mean rel. regret", "NDCG@5"});
  for (const std::string& name : exp::StandardApproaches()) {
    auto predictor = exp::MakeFactory(name, attr)(scale.seed + 1);
    predictor->Fit(split.train);

    common::Rng rng(scale.seed + 99);
    std::vector<eval::SelectionMetrics> results;
    results.reserve(kDecisions);
    for (std::size_t d = 0; d < kDecisions; ++d) {
      const data::UserId u = users[rng.Index(users.size())];
      const auto& pool = by_user[u];
      const auto picks =
          rng.SampleWithoutReplacement(pool.size(), kCandidates);
      std::vector<data::ServiceId> candidates;
      std::vector<double> truth;
      for (std::size_t idx : picks) {
        candidates.push_back(pool[idx].service);
        truth.push_back(pool[idx].value);
      }
      results.push_back(eval::EvaluateSelection(*predictor, u, candidates,
                                                truth, 5));
    }
    const eval::SelectionSummary s = eval::Aggregate(results);
    table.AddRow(name, {s.top1_hit_rate, s.mean_relative_regret,
                        s.mean_ndcg_at_k});
  }
  table.Print(std::cout);
  std::cout << "random guessing baseline: top-1 hit rate = "
            << common::FormatFixed(1.0 / kCandidates, 3)
            << ". expected: AMF highest hit rate / NDCG, lowest regret.\n";
  return 0;
}

// Ablation A7: extended offline-baseline comparison (DESIGN.md extension).
//
// Adds NIMF (paper ref. [23]) next to PMF and AMF across densities. The
// paper argues ([23]-style approaches) "primarily work offline ... and
// cannot easily scale"; accuracy-wise NIMF should sit at or slightly above
// PMF on MAE while AMF keeps its relative-error lead.
#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "eval/protocol.h"
#include "exp/approaches.h"
#include "exp/scale.h"

int main() {
  using namespace amf;
  exp::ExperimentScale base = exp::PaperScale();
  base.services = 2000;  // NIMF epochs touch K neighbors per sample
  const exp::ExperimentScale scale = exp::ApplyEnvOverrides(base);
  const auto dataset = exp::MakeDataset(scale);
  const std::vector<std::string> approaches = {"PMF", "NIMF", "AMF"};
  std::cout << "=== A7: extended baselines PMF / NIMF / AMF ("
            << exp::Describe(scale) << ") ===\n\n";

  const data::QoSAttribute attr = data::QoSAttribute::kResponseTime;
  const linalg::Matrix slice = dataset->DenseSlice(attr, 0);
  common::TablePrinter table({"density", "PMF MAE", "NIMF MAE", "AMF MAE",
                              "PMF MRE", "NIMF MRE", "AMF MRE"});
  for (double density : {0.05, 0.10, 0.20, 0.30}) {
    std::vector<eval::Metrics> row_metrics;
    for (const std::string& name : approaches) {
      eval::ProtocolConfig cfg;
      cfg.density = density;
      cfg.rounds = scale.rounds;
      cfg.seed = scale.seed + static_cast<std::uint64_t>(311 * density);
      row_metrics.push_back(
          eval::RunProtocol(slice, cfg, exp::MakeFactory(name, attr))
              .average);
    }
    table.AddRow(common::FormatFixed(100 * density, 0) + "%",
                 {row_metrics[0].mae, row_metrics[1].mae,
                  row_metrics[2].mae, row_metrics[0].mre,
                  row_metrics[1].mre, row_metrics[2].mre});
  }
  table.Print(std::cout);
  std::cout << "expected: NIMF ~ PMF (or slightly better) on MAE; AMF far "
               "ahead on MRE at every density.\n";
  return 0;
}

// Ablation A8: cold-start curve (DESIGN.md extension).
//
// Quantifies the paper's scalability claim: how many observations does a
// newly joined service need before its predictions are useful? A model is
// trained to convergence on existing services; new services then receive
// k = 0, 1, 2, 4, ... observations each (from distinct users), followed
// by a fixed replay budget, and the new services' MRE is reported per k.
#include <cmath>
#include <iostream>

#include "common/statistics.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/online_trainer.h"
#include "data/masking.h"
#include "exp/approaches.h"
#include "exp/scale.h"

int main() {
  using namespace amf;
  exp::ExperimentScale base = exp::PaperScale();
  base.services = 1000;
  const exp::ExperimentScale scale = exp::ApplyEnvOverrides(base);
  const auto dataset = exp::MakeDataset(scale);
  const double density = 0.15;
  const std::size_t existing = scale.services * 8 / 10;
  std::cout << "=== A8: cold-start curve for new services ("
            << exp::Describe(scale) << ") ===\n\n";

  const data::QoSAttribute attr = data::QoSAttribute::kResponseTime;
  const linalg::Matrix slice = dataset->DenseSlice(attr, 0);

  common::TablePrinter table(
      {"observations per new service", "new-service MRE",
       "existing MRE (reference)"});
  for (std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                        std::size_t{4}, std::size_t{8}, std::size_t{16},
                        std::size_t{32}}) {
    common::Rng rng(scale.seed);
    const data::TrainTestSplit split =
        data::SplitSlice(slice, density, rng);

    core::AmfModel model(exp::AmfConfigFor(attr, scale.seed));
    model.EnsureUser(static_cast<data::UserId>(scale.users - 1));
    model.EnsureService(static_cast<data::ServiceId>(scale.services - 1));
    core::TrainerConfig tcfg;
    tcfg.expiry_seconds = 0.0;
    tcfg.seed = scale.seed;
    core::OnlineTrainer trainer(model, tcfg);

    // Phase 1: existing services only.
    for (const auto& s : split.train.ToSamples()) {
      if (s.service < existing) trainer.Observe(s);
    }
    trainer.RunUntilConverged();

    // Phase 2: at most k observations per new service.
    std::vector<std::size_t> given(scale.services, 0);
    for (const auto& s : split.train.ToSamples()) {
      if (s.service >= existing && given[s.service] < k) {
        trainer.Observe(s);
        ++given[s.service];
      }
    }
    trainer.ProcessIncoming();
    for (int e = 0; e < 10; ++e) trainer.ReplayEpoch();

    auto mre_of = [&](bool new_block) {
      std::vector<double> rel;
      for (const auto& s : split.test) {
        if ((s.service >= existing) != new_block) continue;
        if (s.value <= 0.0) continue;
        rel.push_back(
            std::abs(model.PredictRaw(s.user, s.service) - s.value) /
            s.value);
      }
      return rel.empty() ? std::nan("") : common::Median(rel);
    };
    table.AddRow({std::to_string(k), common::FormatFixed(mre_of(true), 3),
                  common::FormatFixed(mre_of(false), 3)});
  }
  table.Print(std::cout);
  std::cout << "expected: new-service MRE falls steeply over the first few "
               "observations and approaches the existing level by ~8-32.\n";
  return 0;
}

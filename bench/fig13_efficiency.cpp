// Fig. 13 regenerator: efficiency analysis — per-slice convergence time of
// UIPCC, PMF, and AMF over consecutive time slices at density 10%.
//
// UIPCC and PMF must retrain from scratch on every slice; AMF is warm:
// after a long first slice, each subsequent slice only needs incremental
// updates with the newly observed data. Expected shape: AMF's curve drops
// to a small fraction of the baselines' after slice 0.
//
// Default scale is reduced (paper-scale UIPCC+PMF retrains x64 slices take
// many minutes by design — slowness of the baselines is the result);
// AMF_USERS/AMF_SERVICES/AMF_SLICES override.
#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/amf_predictor.h"
#include "data/masking.h"
#include "exp/approaches.h"
#include "exp/scale.h"

int main() {
  using namespace amf;
  exp::ExperimentScale base = exp::SmallScale();
  base.users = 142;
  base.services = 1500;
  base.slices = 16;
  const exp::ExperimentScale scale = exp::ApplyEnvOverrides(base);
  const double density = 0.10;
  const auto dataset = exp::MakeDataset(scale);
  std::cout << "=== Fig. 13: per-slice convergence time (density 10%, "
            << exp::Describe(scale) << ") ===\n\n";

  const data::QoSAttribute attr = data::QoSAttribute::kResponseTime;

  // AMF: one persistent model, warm-started across slices.
  core::AmfConfig amf_cfg = exp::AmfConfigFor(attr, scale.seed);
  core::AmfModel amf_model(amf_cfg);
  core::TrainerConfig trainer_cfg;
  trainer_cfg.expiry_seconds = 900.0;
  trainer_cfg.seed = scale.seed;
  core::OnlineTrainer amf_trainer(amf_model, trainer_cfg);

  common::TablePrinter table(
      {"slice", "UIPCC (s)", "PMF (s)", "AMF (s)", "AMF epochs"});
  double uipcc_total = 0, pmf_total = 0, amf_total = 0;
  for (data::SliceId t = 0; t < scale.slices; ++t) {
    const linalg::Matrix slice = dataset->DenseSlice(attr, t);
    common::Rng rng(common::DeriveSeed(scale.seed, t));
    const data::TrainTestSplit split =
        data::SplitSlice(slice, density, rng, t);

    // UIPCC: full retrain.
    common::Stopwatch w1;
    {
      auto uipcc = exp::MakeFactory("UIPCC", attr)(scale.seed);
      uipcc->Fit(split.train);
    }
    const double uipcc_s = w1.ElapsedSeconds();

    // PMF: full retrain.
    common::Stopwatch w2;
    {
      auto pmf = exp::MakeFactory("PMF", attr)(scale.seed);
      pmf->Fit(split.train);
    }
    const double pmf_s = w2.ElapsedSeconds();

    // AMF: stream this slice's observations into the warm model.
    common::Stopwatch w3;
    const double slice_time = static_cast<double>(t) * 900.0;
    amf_trainer.AdvanceTime(slice_time);
    for (data::QoSSample s : split.train.ToSamples(t)) {
      s.timestamp = slice_time;
      amf_trainer.Observe(s);
    }
    const std::size_t epochs = amf_trainer.RunUntilConverged();
    const double amf_s = w3.ElapsedSeconds();

    uipcc_total += uipcc_s;
    pmf_total += pmf_s;
    amf_total += amf_s;
    table.AddRow({std::to_string(t), common::FormatFixed(uipcc_s, 3),
                  common::FormatFixed(pmf_s, 3),
                  common::FormatFixed(amf_s, 3), std::to_string(epochs)});
  }
  table.Print(std::cout);
  std::cout << "totals: UIPCC " << common::FormatFixed(uipcc_total, 2)
            << "s, PMF " << common::FormatFixed(pmf_total, 2) << "s, AMF "
            << common::FormatFixed(amf_total, 2) << "s\n";
  std::cout << "expected: AMF expensive only on slice 0, then far below "
               "both retraining baselines.\n";
  return 0;
}

// Fig. 10 regenerator: distribution of signed prediction errors
// (pred - truth) for UIPCC, PMF, and AMF at density 10%, for RT and TP.
// AMF's distribution should be visibly denser around 0.
#include <iostream>
#include <memory>

#include "common/statistics.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/masking.h"
#include "eval/metrics.h"
#include "exp/approaches.h"
#include "exp/scale.h"

int main() {
  using namespace amf;
  const exp::ExperimentScale scale = exp::ScaleFromEnv();
  const auto dataset = exp::MakeDataset(scale);
  const double density = 0.10;
  const std::vector<std::string> approaches = {"UIPCC", "PMF", "AMF"};
  std::cout << "=== Fig. 10: distribution of prediction errors (density "
            << common::FormatFixed(100 * density, 0) << "%, "
            << exp::Describe(scale) << ") ===\n\n";

  for (data::QoSAttribute attr : data::kAllAttributes) {
    const linalg::Matrix slice = dataset->DenseSlice(attr, 0);
    common::Rng rng(scale.seed);
    const data::TrainTestSplit split =
        data::SplitSlice(slice, density, rng);

    // Histogram over [-3, 3] (paper's visible range), 24 bins.
    const double lo = -3.0, hi = 3.0;
    const std::size_t bins = 24;
    std::vector<common::Histogram> hists;
    for (const std::string& name : approaches) {
      auto predictor = exp::MakeFactory(name, attr)(scale.seed + 1);
      predictor->Fit(split.train);
      common::Histogram h(lo, hi, bins);
      h.AddAll(eval::SignedErrors(*predictor, split.test));
      hists.push_back(std::move(h));
    }

    common::TablePrinter table(
        {"error bin center", "UIPCC", "PMF", "AMF"});
    std::vector<double> center_density(approaches.size(), 0.0);
    for (std::size_t b = 0; b < bins; ++b) {
      std::vector<std::string> row = {
          common::FormatFixed(hists[0].bin_center(b), 2)};
      for (std::size_t a = 0; a < approaches.size(); ++a) {
        row.push_back(common::FormatFixed(hists[a].density(b), 4));
        if (std::abs(hists[a].bin_center(b)) < 0.3) {
          center_density[a] += hists[a].density(b);
        }
      }
      table.AddRow(std::move(row));
    }
    std::cout << data::AttributeName(attr) << " error distribution:\n";
    table.Print(std::cout);
    std::cout << "mass within +-0.25s of zero:  UIPCC "
              << common::FormatFixed(center_density[0], 3) << "  PMF "
              << common::FormatFixed(center_density[1], 3) << "  AMF "
              << common::FormatFixed(center_density[2], 3)
              << "  (AMF should be densest)\n\n";
  }
  return 0;
}

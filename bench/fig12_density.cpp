// Fig. 12 regenerator: impact of matrix density on AMF accuracy.
// Densities 5%..50% in steps of 5%; reports MAE, MRE, NPRE for RT and TP.
// Expected: all errors fall as density grows, steepest when very sparse
// (overfitting relieved by more data).
#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "eval/protocol.h"
#include "exp/approaches.h"
#include "exp/scale.h"

int main() {
  using namespace amf;
  exp::ExperimentScale scale = exp::ScaleFromEnv();
  std::cout << "=== Fig. 12: impact of matrix density on AMF ("
            << exp::Describe(scale) << ") ===\n\n";
  const auto dataset = exp::MakeDataset(scale);

  // Paper sweep: 5% to 50% at 5% steps (independent of Table-I densities).
  std::vector<double> densities;
  for (int i = 1; i <= 10; ++i) densities.push_back(0.05 * i);

  for (data::QoSAttribute attr : data::kAllAttributes) {
    const linalg::Matrix slice = dataset->DenseSlice(attr, 0);
    common::TablePrinter table({"density", "MAE", "MRE", "NPRE"});
    for (double density : densities) {
      eval::ProtocolConfig cfg;
      cfg.density = density;
      cfg.rounds = scale.rounds;
      cfg.seed = scale.seed + static_cast<std::uint64_t>(101 * density);
      const auto res =
          eval::RunProtocol(slice, cfg, exp::MakeFactory("AMF", attr));
      table.AddRow(common::FormatFixed(100 * density, 0) + "%",
                   {res.average.mae, res.average.mre, res.average.npre});
    }
    std::cout << data::AttributeName(attr) << ":\n";
    table.Print(std::cout);
  }
  std::cout << "expected: errors decrease with density, sharply below "
               "~10%.\n";
  return 0;
}

// Ablation A3: micro benchmarks (google-benchmark) for the hot paths —
// one online SGD update, one prediction, the data transformation, the
// sample-store operations, and dense-slice generation.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/aligned.h"
#include "common/bf16.h"
#include "core/amf_model.h"
#include "core/sample_store.h"
#include "data/synthetic.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "transform/qos_transform.h"

namespace {

using namespace amf;

void BM_OnlineUpdate(benchmark::State& state) {
  core::AmfConfig cfg = core::MakeResponseTimeConfig(1);
  cfg.rank = static_cast<std::size_t>(state.range(0));
  core::AmfModel model(cfg);
  model.EnsureUser(141);
  model.EnsureService(4499);
  common::Rng rng(2);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto u = static_cast<data::UserId>(i % 142);
    const auto s = static_cast<data::ServiceId>((i * 31) % 4500);
    benchmark::DoNotOptimize(
        model.OnlineUpdate(u, s, 0.5 + 0.001 * static_cast<double>(i % 97)));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OnlineUpdate)->Arg(10)->Arg(32)->Arg(128);

void BM_PredictRaw(benchmark::State& state) {
  core::AmfModel model(core::MakeResponseTimeConfig(1));
  model.EnsureUser(141);
  model.EnsureService(4499);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto u = static_cast<data::UserId>(i % 142);
    const auto s = static_cast<data::ServiceId>((i * 17) % 4500);
    benchmark::DoNotOptimize(model.PredictRaw(u, s));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PredictRaw);

// Batched row scoring (GemvRowMajor + SigmoidRow) vs. the equivalent
// per-service PredictNormalized loop. The ratio of these two benchmarks
// is the headline speedup of the batched prediction path.
void BM_PredictRow(benchmark::State& state) {
  core::AmfConfig cfg = core::MakeResponseTimeConfig(1);
  cfg.rank = static_cast<std::size_t>(state.range(0));
  core::AmfModel model(cfg);
  model.EnsureUser(141);
  model.EnsureService(4499);
  std::vector<double> out(model.num_services());
  std::uint64_t i = 0;
  for (auto _ : state) {
    model.PredictRowRaw(static_cast<data::UserId>(i % 142), out);
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_PredictRow)->Arg(10)->Arg(32);

// The same work expressed as scalar Predict calls — the pre-batching
// baseline BM_PredictRow is measured against.
void BM_PredictRowScalarLoop(benchmark::State& state) {
  core::AmfConfig cfg = core::MakeResponseTimeConfig(1);
  cfg.rank = static_cast<std::size_t>(state.range(0));
  core::AmfModel model(cfg);
  model.EnsureUser(141);
  model.EnsureService(4499);
  std::vector<double> out(model.num_services());
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto u = static_cast<data::UserId>(i % 142);
    for (data::ServiceId s = 0; s < 4500; ++s) out[s] = model.PredictRaw(u, s);
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_PredictRowScalarLoop)->Arg(10)->Arg(32);

void BM_PredictMatrix(benchmark::State& state) {
  core::AmfModel model(core::MakeResponseTimeConfig(1));
  model.EnsureUser(141);
  model.EnsureService(4499);
  linalg::Matrix out;
  for (auto _ : state) {
    model.PredictMatrixRaw(&out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          142 * 4500);
  state.SetLabel("142x4500");
}
BENCHMARK(BM_PredictMatrix)->Unit(benchmark::kMillisecond);

// --- GEMV alignment ablation -----------------------------------------------
// The arena layout exists so every factor row starts on a 64-byte boundary
// with a cache-line-multiple stride. These three benchmarks isolate what
// that buys the GEMV kernel itself: the same 4500x{rank} scoring pass over
// (a) a 64B-aligned packed block, (b) the identical data deliberately
// shifted one double off alignment (the old vector-of-rows worst case),
// and (c) the arena's padded-stride block through GemvRowMajorStrided,
// which may assume alignment outright under AMF_NATIVE.

constexpr std::size_t kGemvRows = 4500;

std::vector<double, common::AlignedAllocator<double>> FillBlock(
    std::size_t doubles) {
  std::vector<double, common::AlignedAllocator<double>> block(doubles);
  common::Rng rng(11);
  for (double& v : block) v = rng.Uniform() - 0.5;
  return block;
}

void BM_GemvAligned(benchmark::State& state) {
  const auto rank = static_cast<std::size_t>(state.range(0));
  const auto block = FillBlock(kGemvRows * rank);
  const auto x = FillBlock(rank);
  std::vector<double> out(kGemvRows);
  for (auto _ : state) {
    linalg::GemvRowMajor({x.data(), rank}, {block.data(), block.size()}, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kGemvRows));
}
BENCHMARK(BM_GemvAligned)->Arg(10)->Arg(32);

void BM_GemvUnaligned(benchmark::State& state) {
  const auto rank = static_cast<std::size_t>(state.range(0));
  // One extra lane, then score from +1: every row now straddles cache
  // lines the way rows in a packed std::vector could before the arena.
  const auto backing = FillBlock(kGemvRows * rank + 1);
  const double* block = backing.data() + 1;
  const auto x = FillBlock(rank);
  std::vector<double> out(kGemvRows);
  for (auto _ : state) {
    linalg::GemvRowMajor({x.data(), rank}, {block, kGemvRows * rank}, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kGemvRows));
}
BENCHMARK(BM_GemvUnaligned)->Arg(10)->Arg(32);

void BM_GemvStridedArena(benchmark::State& state) {
  const auto rank = static_cast<std::size_t>(state.range(0));
  const std::size_t stride =
      common::RoundUp(rank, common::kCacheLineBytes / sizeof(double));
  auto block = FillBlock(kGemvRows * stride);
  // Zero the pad lanes like the arena does; they are read (stride > rank
  // loads nothing past rank in the kernel, but keep the data honest).
  for (std::size_t r = 0; r < kGemvRows; ++r) {
    for (std::size_t k = rank; k < stride; ++k) block[r * stride + k] = 0.0;
  }
  const auto x = FillBlock(rank);
  std::vector<double> out(kGemvRows);
  for (auto _ : state) {
    linalg::GemvRowMajorStrided({x.data(), rank}, block.data(), stride, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kGemvRows));
}
BENCHMARK(BM_GemvStridedArena)->Arg(10)->Arg(32);

// --- Strided GEMV precision ablation ---------------------------------------
// The compressed read replicas (DESIGN.md §13) trade per-lane precision
// for bytes: at a given rank the bf16/fp32 rows stream fewer cache lines
// than fp64 ones. That trade only pays when the block spills cache — at
// resident sizes fp64 wins (no widening converts, same lines from L1/L2)
// — so this ablation uses a row count chosen to overflow typical L2+L3
// slices and measure the bandwidth-bound regime the replicas target.

constexpr std::size_t kReplicaGemvRows = 100000;

void BM_GemvStridedFp64(benchmark::State& state) {
  const auto rank = static_cast<std::size_t>(state.range(0));
  const std::size_t stride =
      common::RoundUp(rank, common::kCacheLineBytes / sizeof(double));
  auto block = FillBlock(kReplicaGemvRows * stride);
  for (std::size_t r = 0; r < kReplicaGemvRows; ++r) {
    for (std::size_t k = rank; k < stride; ++k) block[r * stride + k] = 0.0;
  }
  const auto x = FillBlock(rank);
  std::vector<double> out(kReplicaGemvRows);
  for (auto _ : state) {
    linalg::GemvRowMajorStrided({x.data(), rank}, block.data(), stride, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kReplicaGemvRows));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kReplicaGemvRows *
                                                    stride * sizeof(double)));
}
BENCHMARK(BM_GemvStridedFp64)->Arg(8)->Arg(16)->Arg(32);

void BM_GemvStridedFp32(benchmark::State& state) {
  const auto rank = static_cast<std::size_t>(state.range(0));
  const std::size_t stride =
      common::RoundUp(rank, common::kCacheLineBytes / sizeof(float));
  std::vector<float, common::AlignedAllocator<float>> block(
      kReplicaGemvRows * stride, 0.0f);
  common::Rng rng(11);
  for (std::size_t r = 0; r < kReplicaGemvRows; ++r) {
    for (std::size_t k = 0; k < rank; ++k) {
      block[r * stride + k] = static_cast<float>(rng.Uniform() - 0.5);
    }
  }
  const auto x = FillBlock(rank);
  std::vector<double> out(kReplicaGemvRows);
  for (auto _ : state) {
    linalg::GemvRowMajorStridedFp32({x.data(), rank}, block.data(), stride,
                                    out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kReplicaGemvRows));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kReplicaGemvRows *
                                                    stride * sizeof(float)));
}
BENCHMARK(BM_GemvStridedFp32)->Arg(8)->Arg(16)->Arg(32);

void BM_GemvStridedBf16(benchmark::State& state) {
  const auto rank = static_cast<std::size_t>(state.range(0));
  const std::size_t stride =
      common::RoundUp(rank, common::kCacheLineBytes / sizeof(common::Bf16));
  std::vector<common::Bf16, common::AlignedAllocator<common::Bf16>> block(
      kReplicaGemvRows * stride, 0);
  common::Rng rng(11);
  for (std::size_t r = 0; r < kReplicaGemvRows; ++r) {
    for (std::size_t k = 0; k < rank; ++k) {
      block[r * stride + k] = common::Bf16FromDouble(rng.Uniform() - 0.5);
    }
  }
  const auto x = FillBlock(rank);
  std::vector<double> out(kReplicaGemvRows);
  for (auto _ : state) {
    linalg::GemvRowMajorStridedBf16({x.data(), rank}, block.data(), stride,
                                    out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kReplicaGemvRows));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(kReplicaGemvRows * stride *
                                sizeof(common::Bf16)));
}
BENCHMARK(BM_GemvStridedBf16)->Arg(8)->Arg(16)->Arg(32);

void BM_TransformForward(benchmark::State& state) {
  transform::QoSTransformConfig cfg;
  cfg.alpha = -0.007;
  const transform::QoSTransform t(cfg);
  double v = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.Forward(v));
    v = v < 19.0 ? v + 0.07 : 0.01;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TransformForward);

void BM_TransformRoundTrip(benchmark::State& state) {
  transform::QoSTransformConfig cfg;
  cfg.alpha = -0.05;
  cfg.r_max = 7000.0;
  const transform::QoSTransform t(cfg);
  double v = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.Inverse(t.Forward(v)));
    v = v < 6900.0 ? v * 1.01 : 0.5;
  }
}
BENCHMARK(BM_TransformRoundTrip);

void BM_SampleStoreUpsertPick(benchmark::State& state) {
  core::SampleStore store;
  common::Rng rng(3);
  for (int i = 0; i < 60000; ++i) {
    store.Upsert({0, static_cast<data::UserId>(rng.Index(142)),
                  static_cast<data::ServiceId>(rng.Index(4500)), 1.0, 0.0});
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    if ((i & 7) == 0) {
      store.Upsert({0, static_cast<data::UserId>(i % 142),
                    static_cast<data::ServiceId>((i * 13) % 4500), 2.0,
                    0.0});
    } else {
      benchmark::DoNotOptimize(store.PickRandom(rng));
    }
    ++i;
  }
}
BENCHMARK(BM_SampleStoreUpsertPick);

void BM_DenseSliceGeneration(benchmark::State& state) {
  data::SyntheticConfig cfg;
  cfg.users = 142;
  cfg.services = static_cast<std::size_t>(state.range(0));
  cfg.slices = 4;
  const data::SyntheticQoSDataset dataset(cfg);
  data::SliceId t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dataset.DenseSlice(data::QoSAttribute::kResponseTime, t));
    t = (t + 1) % 4;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          142 * state.range(0));
}
BENCHMARK(BM_DenseSliceGeneration)->Arg(500)->Arg(4500)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Ablation A1: parameter sensitivity of AMF (not a paper figure; DESIGN.md
// extension). Sweeps one hyperparameter at a time around the Table-I
// operating point (d=10, eta=0.8, lambda=0.001, beta=0.3, alpha=-0.007)
// and reports MRE/NPRE on RT at density 10%.
#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/amf_predictor.h"
#include "eval/protocol.h"
#include "exp/approaches.h"
#include "exp/scale.h"

namespace {

using namespace amf;

eval::Metrics RunWith(const linalg::Matrix& slice, const core::AmfConfig& c,
                      std::size_t rounds, std::uint64_t seed) {
  eval::ProtocolConfig cfg;
  cfg.density = 0.10;
  cfg.rounds = rounds;
  cfg.seed = seed;
  return eval::RunProtocol(slice, cfg,
                           [&c](std::uint64_t s) {
                             core::AmfConfig cc = c;
                             cc.seed = s;
                             return std::make_unique<core::AmfPredictor>(cc);
                           })
      .average;
}

}  // namespace

int main() {
  exp::ExperimentScale scale = exp::ScaleFromEnv();
  const auto dataset = exp::MakeDataset(scale);
  const linalg::Matrix slice =
      dataset->DenseSlice(data::QoSAttribute::kResponseTime, 0);
  const core::AmfConfig base =
      exp::AmfConfigFor(data::QoSAttribute::kResponseTime, scale.seed);
  std::cout << "=== Ablation A1: AMF parameter sensitivity (RT, density "
               "10%, "
            << exp::Describe(scale) << ") ===\n\n";

  auto sweep = [&](const std::string& param,
                   const std::vector<double>& values, auto apply) {
    common::TablePrinter table({param, "MRE", "NPRE", "MAE"});
    for (double v : values) {
      core::AmfConfig c = base;
      apply(c, v);
      const eval::Metrics m = RunWith(slice, c, scale.rounds, scale.seed);
      table.AddRow(common::FormatFixed(v, 4), {m.mre, m.npre, m.mae});
    }
    std::cout << table.ToString() << "\n";
  };

  sweep("rank d", {2, 5, 10, 20, 40},
        [](core::AmfConfig& c, double v) {
          c.rank = static_cast<std::size_t>(v);
        });
  sweep("eta (learn rate)", {0.1, 0.4, 0.8, 1.2, 2.0},
        [](core::AmfConfig& c, double v) { c.learn_rate = v; });
  sweep("lambda (regularization)", {0.0, 0.0001, 0.001, 0.01, 0.1},
        [](core::AmfConfig& c, double v) {
          c.lambda_user = v;
          c.lambda_service = v;
        });
  sweep("beta (error EMA rate)", {0.05, 0.1, 0.3, 0.6, 1.0},
        [](core::AmfConfig& c, double v) { c.beta = v; });
  sweep("alpha (Box-Cox)", {-0.5, -0.05, -0.007, 0.0, 0.5, 1.0},
        [](core::AmfConfig& c, double v) { c.transform.alpha = v; });

  std::cout << "operating point (paper): d=10 eta=0.8 lambda=0.001 "
               "beta=0.3 alpha=-0.007\n";
  return 0;
}

// Serving front-end benchmark: latency vs offered load over the binary
// protocol, plus the request-coalescing ratio (DESIGN.md §14).
//
// Boots a warmed ConcurrentPredictionService behind serve::Server on an
// ephemeral loopback port in this process, then drives the standard
// phase plan (warmup -> three open-loop offered-load levels ->
// flash-crowd burst -> mixed read/report closed loop) through real
// sockets. Open-loop phases send on absolute deadlines, so the reported
// p50/p95/p99 include queueing honestly (no coordinated omission).
//
// Emits BENCH_serving.json. Flags:
//   --quick       smaller rates/durations (CI smoke)
//   --out <path>  JSON output path (default BENCH_serving.json)
//
// Honesty notes:
//   - Client and server share this host, so the latencies are loopback
//     RTT + server time, and high offered loads contend with the server
//     for cores; the numbers compare load levels against each other on
//     one machine, they are not cross-machine capacity claims.
//   - The coalescing ratio is computed from server-side counter deltas
//     (serve.coalesce.requests / serve.coalesce.flushes), not inferred
//     by the client.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "adapt/concurrent_service.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/amf_predictor.h"
#include "obs/export.h"
#include "serve/loadgen.h"
#include "serve/server.h"

namespace {

using namespace amf;

constexpr std::size_t kUsers = 64;
constexpr std::size_t kServices = 256;
constexpr std::size_t kConnections = 8;

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: serving [--quick] [--out path]\n";
      return 1;
    }
  }

  adapt::PredictionServiceConfig cfg;
  cfg.model = core::MakeResponseTimeConfig(2014);
  adapt::ConcurrentPredictionService service(cfg, 4096);
  for (std::size_t u = 0; u < kUsers; ++u) {
    service.RegisterUser("u" + std::to_string(u));
  }
  for (std::size_t s = 0; s < kServices; ++s) {
    service.RegisterService("s" + std::to_string(s));
  }
  {
    common::Rng rng(2014 ^ 0x5e);
    common::Stopwatch clock;
    for (std::size_t i = 0; i < kUsers * kServices / 4; ++i) {
      service.ReportObservation(data::QoSSample{
          .slice = 0,
          .user = static_cast<data::UserId>(rng.Index(kUsers)),
          .service = static_cast<data::ServiceId>(rng.Index(kServices)),
          .value = rng.LogNormal(-1.0, 0.5),
          .timestamp = clock.ElapsedSeconds()});
      if ((i & 1023) == 1023) service.Tick(clock.ElapsedSeconds());
    }
    service.TrainToConvergence(clock.ElapsedSeconds());
  }

  serve::ServerConfig sc;
  sc.port = 0;  // ephemeral
  serve::Server server(&service, sc);
  if (!server.Start()) {
    std::cerr << "serving bench: " << server.last_error() << "\n";
    return 2;
  }

  serve::LoadGenConfig lg;
  lg.port = server.port();
  const std::string before = obs::ToJson(service.metrics().Snapshot());
  std::vector<serve::PhaseResult> results;
  for (const serve::LoadPhase& phase : serve::StandardPhasePlan(
           quick, kConnections, kUsers, kServices)) {
    std::cerr << "serving bench: phase " << phase.name << "\n";
    const auto result = serve::RunLoadPhase(lg, phase);
    if (!result) {
      std::cerr << "serving bench: phase " << phase.name << " failed\n";
      return 2;
    }
    results.push_back(*result);
  }
  const std::string after = obs::ToJson(service.metrics().Snapshot());
  server.Shutdown();

  const std::string json = serve::RenderServingReport(
      quick, kConnections, results,
      serve::ComputeServingDeltas(before, after));
  std::ofstream os(out_path, std::ios::trunc);
  if (!os.good()) {
    std::cerr << "serving bench: cannot open " << out_path << "\n";
    return 2;
  }
  os << json;
  std::cout << json;
  return 0;
}

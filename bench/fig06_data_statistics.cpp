// Fig. 6 regenerator: dataset statistics table.
//
// Paper values: 142 users, 4500 services, 64 slices @15min,
// RT 0~20s avg 1.33s, TP 0~7000kbps avg 11.35kbps. Our synthetic
// substitute is calibrated to those statistics.
#include <iostream>

#include "common/env.h"
#include "data/summary.h"
#include "exp/scale.h"

int main() {
  using namespace amf;
  const exp::ExperimentScale scale = exp::ScaleFromEnv();
  const auto dataset = exp::MakeDataset(scale);
  // Scanning all 64 paper-scale slices takes a few seconds; default to a
  // representative subsample, AMF_ALL_SLICES=1 scans everything.
  const std::size_t max_slices =
      common::EnvFlag("AMF_ALL_SLICES") ? 0 : std::min<std::size_t>(
          8, scale.slices);
  std::cout << "=== Fig. 6: data statistics (" << exp::Describe(scale)
            << ") ===\n\n";
  const data::DatasetSummary summary = data::Summarize(*dataset, max_slices);
  std::cout << data::SummaryTable(summary) << "\n";
  std::cout << "paper reference: RT 0~20s avg 1.33s | TP 0~7000kbps avg "
               "11.35kbps\n";
  return 0;
}

// Fig. 2 regenerator: real-world QoS observations.
//  (a) response time of one user-service pair over all time slices
//  (b) response times (sorted ascending) of 100 users invoking one service
//
// The paper uses these plots to motivate that QoS is time-varying and
// user-specific; the same qualitative shapes must appear in our data
// substrate: fluctuation around a per-pair level in (a), a wide sorted
// spread in (b).
#include <algorithm>
#include <iostream>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "exp/scale.h"

int main() {
  using namespace amf;
  const exp::ExperimentScale scale = exp::ScaleFromEnv();
  const auto dataset = exp::MakeDataset(scale);
  std::cout << "=== Fig. 2: response-time observations ("
            << exp::Describe(scale) << ") ===\n\n";

  // (a) one pair across slices.
  const data::UserId user = 0;
  const data::ServiceId service = 7 % scale.services;
  std::cout << "(a) RT vs. time slice for user " << user << ", service "
            << service << ":\n";
  common::TablePrinter ta({"slice", "RT (s)"});
  for (data::SliceId t = 0; t < scale.slices; ++t) {
    ta.AddRow({std::to_string(t),
               common::FormatFixed(
                   dataset->Value(data::QoSAttribute::kResponseTime, user,
                                  service, t),
                   3)});
  }
  ta.Print(std::cout);

  // (b) 100 random users, one service, sorted ascending.
  const std::size_t n_users = std::min<std::size_t>(100, scale.users);
  common::Rng rng(13);
  const auto picks = rng.SampleWithoutReplacement(scale.users, n_users);
  std::vector<double> rts;
  rts.reserve(n_users);
  for (std::size_t u : picks) {
    rts.push_back(dataset->Value(data::QoSAttribute::kResponseTime,
                                 static_cast<data::UserId>(u), service, 0));
  }
  std::sort(rts.begin(), rts.end());
  std::cout << "(b) sorted RT across " << n_users
            << " users invoking service " << service << " (slice 0):\n";
  common::TablePrinter tb({"rank", "RT (s)"});
  for (std::size_t i = 0; i < rts.size(); ++i) {
    tb.AddRow({std::to_string(i), common::FormatFixed(rts[i], 3)});
  }
  tb.Print(std::cout);
  std::cout << "spread: min " << common::FormatFixed(rts.front(), 3)
            << "s, max " << common::FormatFixed(rts.back(), 3)
            << "s  (user-specific QoS)\n";
  return 0;
}

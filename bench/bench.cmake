# Bench binaries. Included (not add_subdirectory'd) from the top-level
# CMakeLists so that ${CMAKE_BINARY_DIR}/bench contains ONLY executables.
set(AMF_BENCH_DIR ${CMAKE_CURRENT_LIST_DIR})

function(amf_add_bench name)
  add_executable(${name} ${AMF_BENCH_DIR}/${name}.cpp)
  target_link_libraries(${name} PRIVATE amf)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

amf_add_bench(fig02_observations)
amf_add_bench(fig06_data_statistics)
amf_add_bench(fig07_08_distributions)
amf_add_bench(fig09_singular_values)
amf_add_bench(table1_accuracy)
amf_add_bench(fig10_error_distribution)
amf_add_bench(fig11_transformation)
amf_add_bench(fig12_density)
amf_add_bench(fig13_efficiency)
amf_add_bench(fig14_scalability)
amf_add_bench(ablation_parameters)
amf_add_bench(ablation_weights)
amf_add_bench(adaptation_quality)
amf_add_bench(forecast_quality)
amf_add_bench(selection_quality)
amf_add_bench(baselines_extended)
amf_add_bench(supplementary_all_slices)
amf_add_bench(coldstart_curve)
amf_add_bench(train_throughput)
amf_add_bench(serving)

# Micro benchmarks use google-benchmark.
add_executable(micro_kernels ${AMF_BENCH_DIR}/micro_kernels.cpp)
target_link_libraries(micro_kernels PRIVATE amf benchmark::benchmark)
set_target_properties(micro_kernels PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

// Table I regenerator: accuracy comparison (MAE, MRE, NPRE) of UPCC, IPCC,
// UIPCC, PMF, and AMF at matrix densities 10%..50% for both response time
// and throughput, plus the "Improve.%" row (AMF vs the best competitor).
//
// Paper setup: slice 1, d = 10, lambda = 0.001, beta = 0.3, eta = 0.8,
// alpha = -0.007 (RT) / -0.05 (TP), 20 rounds. Rounds default to 1 here
// (AMF_ROUNDS=20 reproduces the paper's averaging).
#include <iostream>

#include "common/env.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "eval/protocol.h"
#include "exp/approaches.h"
#include "exp/scale.h"

int main() {
  using namespace amf;
  const exp::ExperimentScale scale = exp::ScaleFromEnv();
  const auto dataset = exp::MakeDataset(scale);
  const auto approaches = exp::StandardApproaches();
  // Paper reports slice 1 (our slice 0); AMF_SLICE regenerates any other
  // slice (the supplementary report's "results over all time slices").
  const auto slice_id = static_cast<data::SliceId>(
      common::EnvInt("AMF_SLICE", 0));
  std::cout << "=== Table I: accuracy comparison, slice " << slice_id
            << " (" << exp::Describe(scale)
            << ") ===\n(smaller MAE, MRE, NPRE is better)\n\n";

  common::Stopwatch total;
  for (data::QoSAttribute attr : data::kAllAttributes) {
    const linalg::Matrix slice = dataset->DenseSlice(attr, slice_id);

    std::vector<std::string> headers = {"QoS", "Approach"};
    for (double d : scale.densities) {
      const std::string tag =
          "d=" + common::FormatFixed(100.0 * d, 0) + "%";
      headers.push_back(tag + " MAE");
      headers.push_back(tag + " MRE");
      headers.push_back(tag + " NPRE");
    }
    common::TablePrinter table(headers);

    // results[approach][density] = metrics
    std::vector<std::vector<eval::Metrics>> results(approaches.size());
    for (std::size_t a = 0; a < approaches.size(); ++a) {
      std::vector<std::string> row = {data::AttributeName(attr),
                                      approaches[a]};
      for (double density : scale.densities) {
        eval::ProtocolConfig cfg;
        cfg.density = density;
        cfg.rounds = scale.rounds;
        cfg.seed = scale.seed + static_cast<std::uint64_t>(1000 * density);
        const eval::ProtocolResult res = eval::RunProtocol(
            slice, cfg, exp::MakeFactory(approaches[a], attr));
        results[a].push_back(res.average);
        row.push_back(common::FormatFixed(res.average.mae, 3));
        row.push_back(common::FormatFixed(res.average.mre, 3));
        row.push_back(common::FormatFixed(res.average.npre, 3));
      }
      table.AddRow(std::move(row));
    }

    // Improvement row: AMF (last) vs the best of the others, per metric.
    std::vector<std::string> improve = {data::AttributeName(attr),
                                        "Improve.(%)"};
    const std::size_t amf_idx = approaches.size() - 1;
    for (std::size_t di = 0; di < scale.densities.size(); ++di) {
      auto best_other = [&](auto metric) {
        double best = 1e300;
        for (std::size_t a = 0; a < amf_idx; ++a) {
          best = std::min(best, metric(results[a][di]));
        }
        return best;
      };
      auto pct = [&](auto metric) {
        const double other = best_other(metric);
        const double amf = metric(results[amf_idx][di]);
        return common::FormatFixed(100.0 * (other - amf) / other, 1) + "%";
      };
      improve.push_back(pct([](const eval::Metrics& m) { return m.mae; }));
      improve.push_back(pct([](const eval::Metrics& m) { return m.mre; }));
      improve.push_back(pct([](const eval::Metrics& m) { return m.npre; }));
    }
    table.AddRow(std::move(improve));
    table.Print(std::cout);
  }
  std::cout << "total wall time: "
            << common::FormatFixed(total.ElapsedSeconds(), 1) << "s\n";
  std::cout << "expected shape: AMF best on MRE/NPRE at every density; MAE "
               "comparable to the best baseline.\n";
  return 0;
}

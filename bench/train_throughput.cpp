// Replay-training throughput: serial Algorithm-1 loop vs user-sharded
// parallel epochs at 1/2/4/8 worker threads, the predict-path (matrix
// scoring) throughput over the arena factor layout, plus the lock-free
// MPSC observation ring's ingest rate.
//
// Emits machine-readable JSON (default BENCH_train_throughput.json in the
// current directory) so CI and the acceptance harness can parse the
// numbers. Flags:
//   --quick       smaller workload (CI smoke)
//   --out <path>  JSON output path
//
// Honesty rules (this bench has previously committed meaningless numbers
// from a 1-core container, so they are enforced in the output schema):
//   - Every thread configuration carries "speedup_valid": whether the host
//     actually has >= that many cores. When it does not, the headline
//     "speedup_vs_1_thread" is emitted as null and nothing is printed to
//     stderr as a speedup — time-slicing one core proves nothing.
//   - Every timing is a median over N measured repetitions after a warmup
//     run, with min/max recorded, so a single noisy rep can neither
//     flatter nor sink the number (the old best-of-3 overhead measurement
//     once reported -3.09% "overhead" — pure noise).
//   - The arena alignment invariants the predict numbers depend on are
//     checked at runtime and recorded under "alignment".
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "adapt/prediction_service.h"
#include "common/aligned.h"
#include "common/mpsc_ring.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/amf_model.h"
#include "core/online_trainer.h"
#include "data/masking.h"
#include "data/qos_types.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "linalg/matrix.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "stream/wal.h"

namespace {

struct ReplayResult {
  std::size_t threads = 0;
  std::size_t updates = 0;
  bool pinned = false;
  double seconds = 0.0;
  double updates_per_sec = 0.0;
  double updates_per_sec_min = 0.0;
  double updates_per_sec_max = 0.0;
  double epoch_p50 = 0.0;  // trainer.epoch_seconds percentiles
  double epoch_p95 = 0.0;
  double epoch_p99 = 0.0;
  std::string metrics_json;  // full registry export for this run
};

std::vector<amf::data::QoSSample> MakeStream(std::size_t users,
                                             std::size_t services,
                                             std::size_t count,
                                             std::uint64_t seed) {
  amf::common::Rng rng(seed);
  std::vector<amf::data::QoSSample> samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    samples.push_back({0,
                       static_cast<amf::data::UserId>(rng.Index(users)),
                       static_cast<amf::data::ServiceId>(rng.Index(services)),
                       rng.LogNormal(-0.2, 1.0), 0.0});
  }
  return samples;
}

ReplayResult MeasureReplay(const std::vector<amf::data::QoSSample>& samples,
                           std::size_t users, std::size_t services,
                           std::size_t threads, std::size_t epochs,
                           bool instrument, bool pin) {
  amf::obs::MetricsRegistry registry;  // outlives the trainer (below)
  amf::core::AmfModel model(amf::core::MakeResponseTimeConfig(7));
  model.EnsureUser(static_cast<amf::data::UserId>(users - 1));
  model.EnsureService(static_cast<amf::data::ServiceId>(services - 1));
  amf::core::TrainerConfig cfg;
  cfg.expiry_seconds = 0.0;
  cfg.validate_ingest = false;
  cfg.replay_threads = threads;
  cfg.pin_replay_threads = pin;
  cfg.metrics = instrument ? &registry : nullptr;
  amf::core::OnlineTrainer trainer(model, cfg);
  for (const auto& s : samples) trainer.Observe(s);
  trainer.ProcessIncoming();  // ingest excluded from the replay timing

  const std::size_t per_epoch = trainer.store().size();
  amf::common::Stopwatch watch;
  for (std::size_t e = 0; e < epochs; ++e) trainer.ReplayEpoch();
  ReplayResult r;
  r.threads = threads;
  r.pinned = pin;
  r.updates = per_epoch * epochs;
  r.seconds = watch.ElapsedSeconds();
  r.updates_per_sec =
      r.seconds > 0.0 ? static_cast<double>(r.updates) / r.seconds : 0.0;
  if (instrument) {
    const amf::obs::MetricsSnapshot snap = registry.Snapshot();
    if (const amf::obs::HistogramSnapshot* h =
            snap.FindHistogram("trainer.epoch_seconds")) {
      r.epoch_p50 = h->p50();
      r.epoch_p95 = h->p95();
      r.epoch_p99 = h->p99();
    }
    r.metrics_json = amf::obs::ToJson(snap);
  }
  return r;
}

/// Median-of-N wrapper: one discarded warmup run (page-faults the factor
/// arena and the store, spins the pool up), then `reps` measured runs.
/// Returns the median-throughput rep with the min/max range filled in, so
/// a single noisy repetition on a shared container cannot set the number.
ReplayResult MedianReplay(const std::vector<amf::data::QoSSample>& samples,
                          std::size_t users, std::size_t services,
                          std::size_t threads, std::size_t epochs,
                          bool instrument, bool pin, int reps) {
  MeasureReplay(samples, users, services, threads, epochs, instrument, pin);
  std::vector<ReplayResult> runs;
  runs.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    runs.push_back(MeasureReplay(samples, users, services, threads, epochs,
                                 instrument, pin));
  }
  std::sort(runs.begin(), runs.end(),
            [](const ReplayResult& a, const ReplayResult& b) {
              return a.updates_per_sec < b.updates_per_sec;
            });
  ReplayResult median = runs[runs.size() / 2];
  median.updates_per_sec_min = runs.front().updates_per_sec;
  median.updates_per_sec_max = runs.back().updates_per_sec;
  return median;
}

struct PredictResult {
  std::size_t rank = 0;
  std::size_t users = 0;
  std::size_t services = 0;
  double shared_entries_per_sec = 0.0;  // block-validated seqlock path
  double shared_min = 0.0;
  double shared_max = 0.0;
  double plain_entries_per_sec = 0.0;  // unguarded PredictMatrixRaw
  double plain_min = 0.0;
  double plain_max = 0.0;
};

/// Matrix-scoring throughput over the arena layout at rank 10 (the
/// paper's headline configuration): the shared path is what a live
/// serving tier runs concurrently with training (block-batched seqlock
/// validation + strided GEMV), the plain path is the quiesced batch
/// readout. Median-of-`reps` after one warmup pass each.
PredictResult MeasurePredict(std::size_t users, std::size_t services,
                             int reps) {
  amf::core::AmfConfig cfg = amf::core::MakeResponseTimeConfig(11);
  cfg.rank = 10;
  amf::core::AmfModel model(cfg);
  model.EnsureUser(static_cast<amf::data::UserId>(users - 1));
  model.EnsureService(static_cast<amf::data::ServiceId>(services - 1));

  PredictResult r;
  r.rank = cfg.rank;
  r.users = users;
  r.services = services;
  const double entries = static_cast<double>(users * services);

  const auto median_rate = [&](auto&& one_pass, double& lo, double& hi) {
    one_pass();  // warmup
    std::vector<double> rates;
    rates.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i) {
      amf::common::Stopwatch watch;
      one_pass();
      const double s = watch.ElapsedSeconds();
      rates.push_back(s > 0.0 ? entries / s : 0.0);
    }
    std::sort(rates.begin(), rates.end());
    lo = rates.front();
    hi = rates.back();
    return rates[rates.size() / 2];
  };

  std::vector<double> row(services);
  r.shared_entries_per_sec = median_rate(
      [&] {
        for (std::size_t u = 0; u < users; ++u) {
          model.PredictRowRawShared(static_cast<amf::data::UserId>(u), row);
        }
      },
      r.shared_min, r.shared_max);

  amf::linalg::Matrix out;
  r.plain_entries_per_sec = median_rate(
      [&] { model.PredictMatrixRaw(&out, nullptr); }, r.plain_min,
      r.plain_max);
  return r;
}

struct ReplicaModeResult {
  const char* precision = "fp64";
  double entries_per_sec = 0.0;
  double entries_min = 0.0;
  double entries_max = 0.0;
  std::size_t row_bytes = 0;  // streamed per service row, pad included
  double mre = 0.0;           // accuracy drill (trained model, held-out)
};

struct ReplicaPredictResult {
  std::size_t rank = 0;
  std::size_t tp_users = 0, tp_services = 0;   // throughput shape
  std::size_t acc_users = 0, acc_services = 0; // accuracy shape
  std::size_t train_samples = 0, test_samples = 0;
  std::vector<ReplicaModeResult> modes;  // fp64, fp32, bf16 in order
  double mre_delta_budget = 0.0;
  bool within_budget = false;
};

/// Compressed read-replica drill (DESIGN.md §13), two halves:
///
/// Throughput — the whole-matrix shared readout at a service count big
/// enough that the factor slabs spill cache, because that is where the
/// replica exists: the scan is bandwidth-bound, and at rank 10 the bf16 /
/// fp32 rows stream one 64-byte line per service where fp64 streams two.
/// At cache-RESIDENT sizes fp64 wins (fewer convert ops, same lines) —
/// measured and expected — so benching there would be dishonest either
/// way; the paper-scale matrix (142 x 4500) fits in L2 and is covered by
/// the "predict" section above.
///
/// Accuracy — the budget that makes the speedup reportable at all: a
/// model trained on the synthetic dataset scores held-out entries through
/// each precision, and the replica-vs-master MRE delta must stay inside
/// `budget`. If it does not, the speedups are emitted as null — a faster
/// wrong answer is not a result.
ReplicaPredictResult MeasureReplicaPredict(bool quick, int reps,
                                           double budget) {
  ReplicaPredictResult out;
  out.mre_delta_budget = budget;

  // --- Accuracy drill (paper-scale synthetic, trained model) ---
  amf::data::SyntheticConfig syn;
  syn.users = quick ? 100 : 142;
  syn.services = quick ? 1500 : 4500;
  syn.slices = 1;
  syn.seed = 2014;
  const amf::data::SyntheticQoSDataset dataset(syn);
  const amf::linalg::Matrix slice =
      dataset.DenseSlice(amf::data::QoSAttribute::kResponseTime, 0);
  amf::common::Rng split_rng(1);
  const amf::data::TrainTestSplit split =
      amf::data::SplitSlice(slice, 0.3, split_rng);
  out.acc_users = syn.users;
  out.acc_services = syn.services;

  amf::core::AmfConfig acc_cfg = amf::core::MakeResponseTimeConfig(17);
  out.rank = acc_cfg.rank;
  amf::core::AmfModel acc_model(acc_cfg);
  acc_model.EnsureUser(static_cast<amf::data::UserId>(syn.users - 1));
  acc_model.EnsureService(static_cast<amf::data::ServiceId>(syn.services - 1));
  {
    amf::core::TrainerConfig tcfg;
    tcfg.expiry_seconds = 0.0;
    tcfg.validate_ingest = false;
    amf::core::OnlineTrainer trainer(acc_model, tcfg);
    for (const auto& s : split.train.ToSamples()) trainer.Observe(s);
    trainer.ProcessIncoming();
    for (int e = 0; e < 2; ++e) trainer.ReplayEpoch();
    out.train_samples = trainer.store().size();
  }
  out.test_samples = split.test.size();
  std::vector<double> truth;
  truth.reserve(split.test.size());
  for (const auto& s : split.test) truth.push_back(s.value);

  const amf::core::ReadPrecision precisions[] = {
      amf::core::ReadPrecision::kFp64, amf::core::ReadPrecision::kFp32,
      amf::core::ReadPrecision::kBf16};
  std::vector<double> pred(split.test.size());
  for (const auto p : precisions) {
    acc_model.SetReadPrecision(p);
    for (std::size_t i = 0; i < split.test.size(); ++i) {
      pred[i] =
          acc_model.PredictRawShared(split.test[i].user, split.test[i].service);
    }
    ReplicaModeResult mode;
    mode.precision = amf::core::ToString(p);
    mode.mre = amf::eval::ComputeMetrics(pred, truth).mre;
    out.modes.push_back(mode);
  }
  const double mre_fp64 = out.modes[0].mre;
  out.within_budget =
      std::abs(out.modes[1].mre - mre_fp64) <= budget &&
      std::abs(out.modes[2].mre - mre_fp64) <= budget;

  // --- Throughput drill (cache-spilling service count) ---
  out.tp_users = 8;
  out.tp_services = 200000;  // ~25 MB of fp64 service rows at rank 10
  amf::core::AmfConfig tp_cfg = amf::core::MakeResponseTimeConfig(11);
  amf::core::AmfModel tp_model(tp_cfg);
  tp_model.EnsureUser(static_cast<amf::data::UserId>(out.tp_users - 1));
  tp_model.EnsureService(
      static_cast<amf::data::ServiceId>(out.tp_services - 1));
  const double entries =
      static_cast<double>(out.tp_users * out.tp_services);
  std::vector<double> row(out.tp_services);
  for (std::size_t m = 0; m < out.modes.size(); ++m) {
    tp_model.SetReadPrecision(precisions[m]);
    out.modes[m].row_bytes =
        precisions[m] == amf::core::ReadPrecision::kFp64
            ? tp_model.factor_row_stride() * sizeof(double)
            : tp_model.read_row_bytes();
    const auto one_pass = [&] {
      for (std::size_t u = 0; u < out.tp_users; ++u) {
        tp_model.PredictRowRawShared(static_cast<amf::data::UserId>(u), row);
      }
    };
    one_pass();  // warmup (faults the replica slabs in)
    std::vector<double> rates;
    rates.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i) {
      amf::common::Stopwatch watch;
      one_pass();
      const double s = watch.ElapsedSeconds();
      rates.push_back(s > 0.0 ? entries / s : 0.0);
    }
    std::sort(rates.begin(), rates.end());
    out.modes[m].entries_per_sec = rates[rates.size() / 2];
    out.modes[m].entries_min = rates.front();
    out.modes[m].entries_max = rates.back();
  }
  return out;
}

/// Runtime re-check of the arena invariants the predict numbers assume.
bool FactorRowsAligned(const amf::core::AmfModel& model) {
  for (std::size_t u = 0; u < model.num_users(); ++u) {
    if (!amf::common::IsAligned(
            model.UserFactors(static_cast<amf::data::UserId>(u)).data(),
            amf::core::AmfModel::kFactorRowAlignment)) {
      return false;
    }
  }
  for (std::size_t s = 0; s < model.num_services(); ++s) {
    if (!amf::common::IsAligned(
            model.ServiceFactors(static_cast<amf::data::ServiceId>(s)).data(),
            amf::core::AmfModel::kFactorRowAlignment)) {
      return false;
    }
  }
  return true;
}

struct JournalIngestResult {
  std::string mode;  // "off", "os", "interval", "always"
  double obs_per_sec = 0.0;
  double obs_per_sec_min = 0.0;
  double obs_per_sec_max = 0.0;
};

/// Write-ahead-journal overhead on the serial ingest path: the same
/// observation stream reported through QoSPredictionService with the
/// journal off vs each fsync policy. Only the accept-and-buffer path is
/// timed (no Tick inside the window), so the number isolates exactly the
/// frame/CRC/write/fsync cost the WAL adds per accepted observation.
JournalIngestResult MeasureJournalIngest(
    const std::vector<amf::data::QoSSample>& samples, std::size_t users,
    std::size_t services, const char* mode, int reps) {
  namespace fs = std::filesystem;
  const std::string dir = "amf_bench_wal";
  const auto one_pass = [&]() {
    amf::adapt::PredictionServiceConfig cfg{
        amf::core::MakeResponseTimeConfig(7), amf::core::TrainerConfig{}, 0};
    amf::adapt::QoSPredictionService svc(cfg);
    svc.EnsureRegistered(static_cast<amf::data::UserId>(users - 1),
                         static_cast<amf::data::ServiceId>(services - 1));
    if (std::strcmp(mode, "off") != 0) {
      fs::remove_all(dir);
      amf::stream::JournalConfig wal;
      wal.directory = dir;
      wal.fsync_policy = *amf::stream::ParseFsyncPolicy(mode);
      svc.EnableJournal(wal);
    }
    amf::common::Stopwatch watch;
    for (const auto& s : samples) svc.ReportObservationTrusted(s);
    return watch.ElapsedSeconds();
  };

  one_pass();  // warmup
  std::vector<double> rates;
  rates.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const double s = one_pass();
    rates.push_back(s > 0.0 ? static_cast<double>(samples.size()) / s : 0.0);
  }
  fs::remove_all(dir);
  std::sort(rates.begin(), rates.end());
  JournalIngestResult r;
  r.mode = mode;
  r.obs_per_sec = rates[rates.size() / 2];
  r.obs_per_sec_min = rates.front();
  r.obs_per_sec_max = rates.back();
  return r;
}

double MeasureRingThroughput(std::size_t items) {
  amf::common::MpscRingBuffer<amf::data::QoSSample> ring(65536);
  const amf::data::QoSSample sample{0, 1, 2, 0.5, 0.0};
  std::size_t consumed = 0;
  amf::common::Stopwatch watch;
  std::thread consumer([&] {
    amf::data::QoSSample out;
    while (consumed < items) {
      if (ring.TryPop(out)) {
        ++consumed;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::size_t pushed = 0;
  while (pushed < items) {
    if (ring.TryPush(sample)) {
      ++pushed;
    } else {
      std::this_thread::yield();
    }
  }
  consumer.join();
  const double s = watch.ElapsedSeconds();
  return s > 0.0 ? static_cast<double>(items) / s : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_train_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  // Quick mode still needs epochs big enough (several ms) that the
  // sharded pass's fan-out/barrier overhead cannot mask real scaling —
  // CI asserts the 2-thread floor on this workload.
  const std::size_t users = quick ? 100 : 200;
  const std::size_t services = quick ? 600 : 2000;
  const std::size_t stream = quick ? 30000 : 50000;
  const std::size_t epochs = quick ? 3 : 5;
  const std::size_t ring_items = quick ? 200000 : 2000000;
  const int reps = quick ? 3 : 5;
  const unsigned hw = std::thread::hardware_concurrency();

  const std::vector<amf::data::QoSSample> samples =
      MakeStream(users, services, stream, 42);

  // Instrumentation overhead: same 1-thread workload, metrics off vs on,
  // median-of-reps each (warmup discarded inside MedianReplay).
  const ReplayResult plain =
      MedianReplay(samples, users, services, 1, epochs,
                   /*instrument=*/false, /*pin=*/false, reps);
  std::fprintf(stderr,
               "uninstrumented 1-thread: %.0f updates/s "
               "(min %.0f, max %.0f over %d reps)\n",
               plain.updates_per_sec, plain.updates_per_sec_min,
               plain.updates_per_sec_max, reps);

  std::vector<ReplayResult> results;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    // Pin replay workers whenever the host has a core per worker — the
    // layout pass exists to keep shard rows cache-resident, and pinning
    // removes migration from the measurement. Never pin an oversubscribed
    // configuration (it would serialize on the stacked cores).
    const bool pin = hw >= threads && threads > 1;
    results.push_back(MedianReplay(samples, users, services, threads, epochs,
                                   /*instrument=*/true, pin, reps));
    const ReplayResult& r = results.back();
    const bool valid = hw >= threads;
    if (valid && results.front().updates_per_sec > 0.0) {
      std::fprintf(stderr,
                   "replay threads=%zu%s: %.0f updates/s (%zu in %.3fs, "
                   "speedup %.2fx, epoch p50=%.4fs p99=%.4fs)\n",
                   r.threads, r.pinned ? " (pinned)" : "", r.updates_per_sec,
                   r.updates, r.seconds,
                   r.updates_per_sec / results.front().updates_per_sec,
                   r.epoch_p50, r.epoch_p99);
    } else {
      std::fprintf(stderr,
                   "replay threads=%zu: %.0f updates/s — SPEEDUP NOT VALID "
                   "(host has %u hardware threads; configurations wider "
                   "than the host time-slice and prove nothing)\n",
                   r.threads, r.updates_per_sec, hw);
    }
  }

  const PredictResult predict =
      MeasurePredict(quick ? 60 : 142, quick ? 300 : 4500, reps);
  std::fprintf(stderr,
               "predict matrix rank=%zu (%zux%zu): shared %.1fM entries/s, "
               "plain %.1fM entries/s\n",
               predict.rank, predict.users, predict.services,
               predict.shared_entries_per_sec / 1e6,
               predict.plain_entries_per_sec / 1e6);

  const ReplicaPredictResult replica =
      MeasureReplicaPredict(quick, reps, /*budget=*/0.02);
  for (const ReplicaModeResult& m : replica.modes) {
    std::fprintf(stderr,
                 "predict replica %s (%zux%zu): %.1fM entries/s "
                 "(%zu B/row, held-out MRE %.4f)\n",
                 m.precision, replica.tp_users, replica.tp_services,
                 m.entries_per_sec / 1e6, m.row_bytes, m.mre);
  }
  if (!replica.within_budget) {
    std::fprintf(stderr,
                 "replica MRE delta EXCEEDS budget %.3f — speedups will be "
                 "reported as null\n",
                 replica.mre_delta_budget);
  }

  const double ring_rate = MeasureRingThroughput(ring_items);
  std::fprintf(stderr, "mpsc ring: %.0f items/s\n", ring_rate);

  // WAL overhead: ingest with the journal off vs each fsync policy.
  const std::size_t wal_stream = quick ? 4000 : 20000;
  std::vector<amf::data::QoSSample> wal_samples =
      MakeStream(users, services, wal_stream, 43);
  for (std::size_t i = 0; i < wal_samples.size(); ++i) {
    wal_samples[i].timestamp = 0.001 * static_cast<double>(i);
  }
  std::vector<JournalIngestResult> wal_results;
  for (const char* mode : {"off", "os", "interval", "always"}) {
    wal_results.push_back(
        MeasureJournalIngest(wal_samples, users, services, mode, reps));
    const JournalIngestResult& r = wal_results.back();
    std::fprintf(stderr,
                 "journal ingest fsync=%s: %.0f obs/s (min %.0f, max %.0f)\n",
                 r.mode.c_str(), r.obs_per_sec, r.obs_per_sec_min,
                 r.obs_per_sec_max);
  }

  // Alignment invariants the numbers above rely on.
  amf::core::AmfConfig probe_cfg = amf::core::MakeResponseTimeConfig(3);
  probe_cfg.rank = 10;
  amf::core::AmfModel probe(probe_cfg);
  probe.EnsureUser(static_cast<amf::data::UserId>(users - 1));
  probe.EnsureService(static_cast<amf::data::ServiceId>(services - 1));
  const bool rows_aligned = FactorRowsAligned(probe);

  const double base = results.front().updates_per_sec;
  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"train_throughput\",\n");
  std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n", hw);
  std::fprintf(out, "  \"speedup_valid\": %s,\n",
               hw >= 2 ? "true" : "false");
  std::fprintf(out, "  \"users\": %zu,\n", users);
  std::fprintf(out, "  \"services\": %zu,\n", services);
  std::fprintf(out, "  \"stream_samples\": %zu,\n", stream);
  std::fprintf(out, "  \"replay_epochs\": %zu,\n", epochs);
  std::fprintf(out,
               "  \"measurement\": {\"reps\": %d, \"warmup_runs\": 1, "
               "\"aggregate\": \"median\"},\n",
               reps);
  std::fprintf(out,
               "  \"alignment\": {\"factor_rows_64b_aligned\": %s, "
               "\"row_alignment_bytes\": %zu, "
               "\"factor_row_stride_doubles\": %zu},\n",
               rows_aligned ? "true" : "false",
               amf::core::AmfModel::kFactorRowAlignment,
               probe.factor_row_stride());
  std::fprintf(out, "  \"replay\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ReplayResult& r = results[i];
    const bool valid = hw >= r.threads;
    char speedup[32];
    if (valid && base > 0.0) {
      std::snprintf(speedup, sizeof(speedup), "%.3f",
                    r.updates_per_sec / base);
    } else {
      // A thread count the host cannot actually run in parallel produces
      // a time-slicing artifact, not a speedup; refuse to report one.
      std::snprintf(speedup, sizeof(speedup), "null");
    }
    std::fprintf(out,
                 "    {\"threads\": %zu, \"pinned\": %s, \"updates\": %zu, "
                 "\"seconds\": %.6f, \"updates_per_sec\": %.1f, "
                 "\"updates_per_sec_min\": %.1f, "
                 "\"updates_per_sec_max\": %.1f, "
                 "\"speedup_valid\": %s, "
                 "\"speedup_vs_1_thread\": %s, "
                 "\"epoch_seconds_p50\": %.6f, "
                 "\"epoch_seconds_p95\": %.6f, "
                 "\"epoch_seconds_p99\": %.6f}%s\n",
                 r.threads, r.pinned ? "true" : "false", r.updates,
                 r.seconds, r.updates_per_sec, r.updates_per_sec_min,
                 r.updates_per_sec_max, valid ? "true" : "false", speedup,
                 r.epoch_p50, r.epoch_p95, r.epoch_p99,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"predict\": {\n");
  std::fprintf(out, "    \"rank\": %zu,\n", predict.rank);
  std::fprintf(out, "    \"users\": %zu,\n", predict.users);
  std::fprintf(out, "    \"services\": %zu,\n", predict.services);
  std::fprintf(out,
               "    \"matrix_shared_entries_per_sec\": %.1f,\n"
               "    \"matrix_shared_entries_per_sec_min\": %.1f,\n"
               "    \"matrix_shared_entries_per_sec_max\": %.1f,\n",
               predict.shared_entries_per_sec, predict.shared_min,
               predict.shared_max);
  std::fprintf(out,
               "    \"matrix_entries_per_sec\": %.1f,\n"
               "    \"matrix_entries_per_sec_min\": %.1f,\n"
               "    \"matrix_entries_per_sec_max\": %.1f\n",
               predict.plain_entries_per_sec, predict.plain_min,
               predict.plain_max);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"predict_replica\": {\n");
  std::fprintf(out, "    \"rank\": %zu,\n", replica.rank);
  std::fprintf(out,
               "    \"throughput\": {\"users\": %zu, \"services\": %zu},\n",
               replica.tp_users, replica.tp_services);
  std::fprintf(out,
               "    \"accuracy\": {\"users\": %zu, \"services\": %zu, "
               "\"train_density\": 0.3, \"train_samples\": %zu, "
               "\"test_samples\": %zu},\n",
               replica.acc_users, replica.acc_services,
               replica.train_samples, replica.test_samples);
  std::fprintf(out, "    \"mre_delta_budget\": %.4f,\n",
               replica.mre_delta_budget);
  std::fprintf(out, "    \"within_budget\": %s,\n",
               replica.within_budget ? "true" : "false");
  std::fprintf(out, "    \"modes\": [\n");
  for (std::size_t i = 0; i < replica.modes.size(); ++i) {
    const ReplicaModeResult& m = replica.modes[i];
    const double base_rate = replica.modes[0].entries_per_sec;
    char speedup[32];
    char delta[32];
    if (i == 0) {
      std::snprintf(speedup, sizeof(speedup), "null");
      std::snprintf(delta, sizeof(delta), "null");
    } else {
      // A speedup bought with out-of-budget accuracy is not a result.
      if (replica.within_budget && base_rate > 0.0) {
        std::snprintf(speedup, sizeof(speedup), "%.3f",
                      m.entries_per_sec / base_rate);
      } else {
        std::snprintf(speedup, sizeof(speedup), "null");
      }
      std::snprintf(delta, sizeof(delta), "%.6f",
                    std::abs(m.mre - replica.modes[0].mre));
    }
    std::fprintf(out,
                 "      {\"precision\": \"%s\", "
                 "\"entries_per_sec\": %.1f, "
                 "\"entries_per_sec_min\": %.1f, "
                 "\"entries_per_sec_max\": %.1f, "
                 "\"service_row_bytes\": %zu, "
                 "\"mre\": %.6f, "
                 "\"mre_delta_vs_fp64\": %s, "
                 "\"speedup_vs_fp64\": %s}%s\n",
                 m.precision, m.entries_per_sec, m.entries_min,
                 m.entries_max, m.row_bytes, m.mre, delta, speedup,
                 i + 1 < replica.modes.size() ? "," : "");
  }
  std::fprintf(out, "    ]\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"instrumentation_overhead\": {\n");
  std::fprintf(out, "    \"reps\": %d,\n", reps);
  std::fprintf(out, "    \"uninstrumented_updates_per_sec\": %.1f,\n",
               plain.updates_per_sec);
  std::fprintf(out,
               "    \"uninstrumented_updates_per_sec_min\": %.1f,\n"
               "    \"uninstrumented_updates_per_sec_max\": %.1f,\n",
               plain.updates_per_sec_min, plain.updates_per_sec_max);
  std::fprintf(out, "    \"instrumented_updates_per_sec\": %.1f,\n", base);
  std::fprintf(out,
               "    \"instrumented_updates_per_sec_min\": %.1f,\n"
               "    \"instrumented_updates_per_sec_max\": %.1f,\n",
               results.front().updates_per_sec_min,
               results.front().updates_per_sec_max);
  std::fprintf(out, "    \"overhead_pct\": %.2f,\n",
               plain.updates_per_sec > 0.0
                   ? 100.0 * (plain.updates_per_sec - base) /
                         plain.updates_per_sec
                   : 0.0);
  // Worst-case disagreement across the two rep distributions, so the
  // reader can judge whether the point estimate is distinguishable from
  // the run-to-run jitter on this host.
  std::fprintf(out, "    \"overhead_pct_spread\": [%.2f, %.2f]\n",
               plain.updates_per_sec_max > 0.0
                   ? 100.0 * (plain.updates_per_sec_min -
                              results.front().updates_per_sec_max) /
                         plain.updates_per_sec_max
                   : 0.0,
               plain.updates_per_sec_min > 0.0
                   ? 100.0 * (plain.updates_per_sec_max -
                              results.front().updates_per_sec_min) /
                         plain.updates_per_sec_min
                   : 0.0);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"metrics\": %s,\n", results.back().metrics_json.c_str());
  std::fprintf(out, "  \"mpsc_ring_items_per_sec\": %.1f,\n", ring_rate);
  std::fprintf(out, "  \"journal_ingest\": {\n");
  std::fprintf(out, "    \"samples\": %zu,\n", wal_stream);
  std::fprintf(out, "    \"reps\": %d,\n", reps);
  std::fprintf(out, "    \"fsync_interval_ms\": 50,\n");
  std::fprintf(out, "    \"modes\": [\n");
  for (std::size_t i = 0; i < wal_results.size(); ++i) {
    const JournalIngestResult& r = wal_results[i];
    std::fprintf(out,
                 "      {\"mode\": \"%s\", \"obs_per_sec\": %.1f, "
                 "\"obs_per_sec_min\": %.1f, \"obs_per_sec_max\": %.1f}%s\n",
                 r.mode.c_str(), r.obs_per_sec, r.obs_per_sec_min,
                 r.obs_per_sec_max, i + 1 < wal_results.size() ? "," : "");
  }
  std::fprintf(out, "    ]\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out,
               "  \"note\": \"medians over reps after one warmup; "
               "speedup_vs_1_thread is null for thread counts wider than "
               "hardware_concurrency (time-slicing one core proves "
               "nothing); see DESIGN.md section 11 for the arena layout "
               "these numbers measure\"\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}

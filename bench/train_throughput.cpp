// Replay-training throughput: serial Algorithm-1 loop vs user-sharded
// parallel epochs at 1/2/4/8 worker threads, plus the lock-free MPSC
// observation ring's ingest rate.
//
// Emits machine-readable JSON (default BENCH_train_throughput.json in the
// current directory) so CI and the acceptance harness can parse the
// numbers. Flags:
//   --quick       smaller workload (CI smoke)
//   --out <path>  JSON output path
//
// Every instrumented run carries a live obs::MetricsRegistry, so the
// output includes trainer.epoch_seconds percentiles per configuration, an
// embedded metrics export, and an instrumentation-overhead measurement
// (uninstrumented vs instrumented 1-thread replay).
//
// Speedups are relative to the measured 1-thread sharded run and bounded
// above by the physical core count reported in the JSON — on a 1-core
// container every configuration time-slices the same CPU and the speedup
// stays ~1 regardless of thread count.
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/mpsc_ring.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/amf_model.h"
#include "core/online_trainer.h"
#include "data/qos_types.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace {

struct ReplayResult {
  std::size_t threads = 0;
  std::size_t updates = 0;
  double seconds = 0.0;
  double updates_per_sec = 0.0;
  double epoch_p50 = 0.0;  // trainer.epoch_seconds percentiles
  double epoch_p95 = 0.0;
  double epoch_p99 = 0.0;
  std::string metrics_json;  // full registry export for this run
};

std::vector<amf::data::QoSSample> MakeStream(std::size_t users,
                                             std::size_t services,
                                             std::size_t count,
                                             std::uint64_t seed) {
  amf::common::Rng rng(seed);
  std::vector<amf::data::QoSSample> samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    samples.push_back({0,
                       static_cast<amf::data::UserId>(rng.Index(users)),
                       static_cast<amf::data::ServiceId>(rng.Index(services)),
                       rng.LogNormal(-0.2, 1.0), 0.0});
  }
  return samples;
}

ReplayResult MeasureReplay(const std::vector<amf::data::QoSSample>& samples,
                           std::size_t users, std::size_t services,
                           std::size_t threads, std::size_t epochs,
                           bool instrument) {
  amf::obs::MetricsRegistry registry;  // outlives the trainer (below)
  amf::core::AmfModel model(amf::core::MakeResponseTimeConfig(7));
  model.EnsureUser(static_cast<amf::data::UserId>(users - 1));
  model.EnsureService(static_cast<amf::data::ServiceId>(services - 1));
  amf::core::TrainerConfig cfg;
  cfg.expiry_seconds = 0.0;
  cfg.validate_ingest = false;
  cfg.replay_threads = threads;
  cfg.metrics = instrument ? &registry : nullptr;
  amf::core::OnlineTrainer trainer(model, cfg);
  for (const auto& s : samples) trainer.Observe(s);
  trainer.ProcessIncoming();  // ingest excluded from the replay timing

  const std::size_t per_epoch = trainer.store().size();
  amf::common::Stopwatch watch;
  for (std::size_t e = 0; e < epochs; ++e) trainer.ReplayEpoch();
  ReplayResult r;
  r.threads = threads;
  r.updates = per_epoch * epochs;
  r.seconds = watch.ElapsedSeconds();
  r.updates_per_sec =
      r.seconds > 0.0 ? static_cast<double>(r.updates) / r.seconds : 0.0;
  if (instrument) {
    const amf::obs::MetricsSnapshot snap = registry.Snapshot();
    if (const amf::obs::HistogramSnapshot* h =
            snap.FindHistogram("trainer.epoch_seconds")) {
      r.epoch_p50 = h->p50();
      r.epoch_p95 = h->p95();
      r.epoch_p99 = h->p99();
    }
    r.metrics_json = amf::obs::ToJson(snap);
  }
  return r;
}

/// Best-of-N wrapper: replay timings on a shared container jitter by tens
/// of percent run to run, so keep the fastest (least-disturbed) repeat.
ReplayResult BestReplay(const std::vector<amf::data::QoSSample>& samples,
                        std::size_t users, std::size_t services,
                        std::size_t threads, std::size_t epochs,
                        bool instrument, int reps) {
  ReplayResult best;
  for (int i = 0; i < reps; ++i) {
    ReplayResult r =
        MeasureReplay(samples, users, services, threads, epochs, instrument);
    if (r.updates_per_sec > best.updates_per_sec) best = std::move(r);
  }
  return best;
}

double MeasureRingThroughput(std::size_t items) {
  amf::common::MpscRingBuffer<amf::data::QoSSample> ring(65536);
  const amf::data::QoSSample sample{0, 1, 2, 0.5, 0.0};
  std::size_t consumed = 0;
  amf::common::Stopwatch watch;
  std::thread consumer([&] {
    amf::data::QoSSample out;
    while (consumed < items) {
      if (ring.TryPop(out)) {
        ++consumed;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::size_t pushed = 0;
  while (pushed < items) {
    if (ring.TryPush(sample)) {
      ++pushed;
    } else {
      std::this_thread::yield();
    }
  }
  consumer.join();
  const double s = watch.ElapsedSeconds();
  return s > 0.0 ? static_cast<double>(items) / s : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_train_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  const std::size_t users = quick ? 60 : 200;
  const std::size_t services = quick ? 300 : 2000;
  const std::size_t stream = quick ? 8000 : 50000;
  const std::size_t epochs = quick ? 2 : 5;
  const std::size_t ring_items = quick ? 200000 : 2000000;

  const std::vector<amf::data::QoSSample> samples =
      MakeStream(users, services, stream, 42);

  // Instrumentation overhead: same 1-thread workload, metrics off vs on.
  const ReplayResult plain = BestReplay(samples, users, services, 1, epochs,
                                        /*instrument=*/false, /*reps=*/3);
  std::fprintf(stderr, "uninstrumented 1-thread: %.0f updates/s\n",
               plain.updates_per_sec);

  std::vector<ReplayResult> results;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    results.push_back(BestReplay(samples, users, services, threads, epochs,
                                 /*instrument=*/true, /*reps=*/3));
    std::fprintf(stderr,
                 "replay threads=%zu: %.0f updates/s (%zu in %.3fs, "
                 "epoch p50=%.4fs p99=%.4fs)\n",
                 results.back().threads, results.back().updates_per_sec,
                 results.back().updates, results.back().seconds,
                 results.back().epoch_p50, results.back().epoch_p99);
  }
  const double ring_rate = MeasureRingThroughput(ring_items);
  std::fprintf(stderr, "mpsc ring: %.0f items/s\n", ring_rate);

  const double base = results.front().updates_per_sec;
  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"train_throughput\",\n");
  std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"users\": %zu,\n", users);
  std::fprintf(out, "  \"services\": %zu,\n", services);
  std::fprintf(out, "  \"stream_samples\": %zu,\n", stream);
  std::fprintf(out, "  \"replay_epochs\": %zu,\n", epochs);
  std::fprintf(out, "  \"replay\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ReplayResult& r = results[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"updates\": %zu, "
                 "\"seconds\": %.6f, \"updates_per_sec\": %.1f, "
                 "\"speedup_vs_1_thread\": %.3f, "
                 "\"epoch_seconds_p50\": %.6f, "
                 "\"epoch_seconds_p95\": %.6f, "
                 "\"epoch_seconds_p99\": %.6f}%s\n",
                 r.threads, r.updates, r.seconds, r.updates_per_sec,
                 base > 0.0 ? r.updates_per_sec / base : 0.0, r.epoch_p50,
                 r.epoch_p95, r.epoch_p99, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"instrumentation_overhead\": {\n");
  std::fprintf(out, "    \"uninstrumented_updates_per_sec\": %.1f,\n",
               plain.updates_per_sec);
  std::fprintf(out, "    \"instrumented_updates_per_sec\": %.1f,\n", base);
  std::fprintf(out, "    \"overhead_pct\": %.2f\n",
               plain.updates_per_sec > 0.0
                   ? 100.0 * (plain.updates_per_sec - base) /
                         plain.updates_per_sec
                   : 0.0);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"metrics\": %s,\n", results.back().metrics_json.c_str());
  std::fprintf(out, "  \"mpsc_ring_items_per_sec\": %.1f,\n", ring_rate);
  std::fprintf(out,
               "  \"note\": \"speedup is bounded by hardware_concurrency; "
               "on a single-core host all thread counts time-slice one "
               "CPU and speedup stays ~1\"\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}

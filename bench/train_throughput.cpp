// Replay-training throughput: serial Algorithm-1 loop vs user-sharded
// parallel epochs at 1/2/4/8 worker threads, plus the lock-free MPSC
// observation ring's ingest rate.
//
// Emits machine-readable JSON (default BENCH_train_throughput.json in the
// current directory) so CI and the acceptance harness can parse the
// numbers. Flags:
//   --quick       smaller workload (CI smoke)
//   --out <path>  JSON output path
//
// Speedups are relative to the measured 1-thread sharded run and bounded
// above by the physical core count reported in the JSON — on a 1-core
// container every configuration time-slices the same CPU and the speedup
// stays ~1 regardless of thread count.
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/mpsc_ring.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/amf_model.h"
#include "core/online_trainer.h"
#include "data/qos_types.h"

namespace {

struct ReplayResult {
  std::size_t threads = 0;
  std::size_t updates = 0;
  double seconds = 0.0;
  double updates_per_sec = 0.0;
};

std::vector<amf::data::QoSSample> MakeStream(std::size_t users,
                                             std::size_t services,
                                             std::size_t count,
                                             std::uint64_t seed) {
  amf::common::Rng rng(seed);
  std::vector<amf::data::QoSSample> samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    samples.push_back({0,
                       static_cast<amf::data::UserId>(rng.Index(users)),
                       static_cast<amf::data::ServiceId>(rng.Index(services)),
                       rng.LogNormal(-0.2, 1.0), 0.0});
  }
  return samples;
}

ReplayResult MeasureReplay(const std::vector<amf::data::QoSSample>& samples,
                           std::size_t users, std::size_t services,
                           std::size_t threads, std::size_t epochs) {
  amf::core::AmfModel model(amf::core::MakeResponseTimeConfig(7));
  model.EnsureUser(static_cast<amf::data::UserId>(users - 1));
  model.EnsureService(static_cast<amf::data::ServiceId>(services - 1));
  amf::core::TrainerConfig cfg;
  cfg.expiry_seconds = 0.0;
  cfg.validate_ingest = false;
  cfg.replay_threads = threads;
  amf::core::OnlineTrainer trainer(model, cfg);
  for (const auto& s : samples) trainer.Observe(s);
  trainer.ProcessIncoming();  // ingest excluded from the replay timing

  const std::size_t per_epoch = trainer.store().size();
  amf::common::Stopwatch watch;
  for (std::size_t e = 0; e < epochs; ++e) trainer.ReplayEpoch();
  ReplayResult r;
  r.threads = threads;
  r.updates = per_epoch * epochs;
  r.seconds = watch.ElapsedSeconds();
  r.updates_per_sec =
      r.seconds > 0.0 ? static_cast<double>(r.updates) / r.seconds : 0.0;
  return r;
}

double MeasureRingThroughput(std::size_t items) {
  amf::common::MpscRingBuffer<amf::data::QoSSample> ring(65536);
  const amf::data::QoSSample sample{0, 1, 2, 0.5, 0.0};
  std::size_t consumed = 0;
  amf::common::Stopwatch watch;
  std::thread consumer([&] {
    amf::data::QoSSample out;
    while (consumed < items) {
      if (ring.TryPop(out)) {
        ++consumed;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::size_t pushed = 0;
  while (pushed < items) {
    if (ring.TryPush(sample)) {
      ++pushed;
    } else {
      std::this_thread::yield();
    }
  }
  consumer.join();
  const double s = watch.ElapsedSeconds();
  return s > 0.0 ? static_cast<double>(items) / s : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_train_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  const std::size_t users = quick ? 60 : 200;
  const std::size_t services = quick ? 300 : 2000;
  const std::size_t stream = quick ? 8000 : 50000;
  const std::size_t epochs = quick ? 2 : 5;
  const std::size_t ring_items = quick ? 200000 : 2000000;

  const std::vector<amf::data::QoSSample> samples =
      MakeStream(users, services, stream, 42);

  std::vector<ReplayResult> results;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    results.push_back(
        MeasureReplay(samples, users, services, threads, epochs));
    std::fprintf(stderr, "replay threads=%zu: %.0f updates/s (%zu in %.3fs)\n",
                 results.back().threads, results.back().updates_per_sec,
                 results.back().updates, results.back().seconds);
  }
  const double ring_rate = MeasureRingThroughput(ring_items);
  std::fprintf(stderr, "mpsc ring: %.0f items/s\n", ring_rate);

  const double base = results.front().updates_per_sec;
  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"train_throughput\",\n");
  std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"users\": %zu,\n", users);
  std::fprintf(out, "  \"services\": %zu,\n", services);
  std::fprintf(out, "  \"stream_samples\": %zu,\n", stream);
  std::fprintf(out, "  \"replay_epochs\": %zu,\n", epochs);
  std::fprintf(out, "  \"replay\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ReplayResult& r = results[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"updates\": %zu, "
                 "\"seconds\": %.6f, \"updates_per_sec\": %.1f, "
                 "\"speedup_vs_1_thread\": %.3f}%s\n",
                 r.threads, r.updates, r.seconds, r.updates_per_sec,
                 base > 0.0 ? r.updates_per_sec / base : 0.0,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"mpsc_ring_items_per_sec\": %.1f,\n", ring_rate);
  std::fprintf(out,
               "  \"note\": \"speedup is bounded by hardware_concurrency; "
               "on a single-core host all thread counts time-slice one "
               "CPU and speedup stays ~1\"\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}

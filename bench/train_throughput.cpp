// Replay-training throughput: serial Algorithm-1 loop vs user-sharded
// parallel epochs at 1/2/4/8 worker threads, the predict-path (matrix
// scoring) throughput over the arena factor layout, plus the lock-free
// MPSC observation ring's ingest rate.
//
// Emits machine-readable JSON (default BENCH_train_throughput.json in the
// current directory) so CI and the acceptance harness can parse the
// numbers. Flags:
//   --quick       smaller workload (CI smoke)
//   --out <path>  JSON output path
//
// Honesty rules (this bench has previously committed meaningless numbers
// from a 1-core container, so they are enforced in the output schema):
//   - Every thread configuration carries "speedup_valid": whether the host
//     actually has >= that many cores. When it does not, the headline
//     "speedup_vs_1_thread" is emitted as null and nothing is printed to
//     stderr as a speedup — time-slicing one core proves nothing.
//   - Every timing is a median over N measured repetitions after a warmup
//     run, with min/max recorded, so a single noisy rep can neither
//     flatter nor sink the number (the old best-of-3 overhead measurement
//     once reported -3.09% "overhead" — pure noise).
//   - The arena alignment invariants the predict numbers depend on are
//     checked at runtime and recorded under "alignment".
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "adapt/prediction_service.h"
#include "common/aligned.h"
#include "common/mpsc_ring.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/amf_model.h"
#include "core/online_trainer.h"
#include "data/qos_types.h"
#include "linalg/matrix.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "stream/wal.h"

namespace {

struct ReplayResult {
  std::size_t threads = 0;
  std::size_t updates = 0;
  bool pinned = false;
  double seconds = 0.0;
  double updates_per_sec = 0.0;
  double updates_per_sec_min = 0.0;
  double updates_per_sec_max = 0.0;
  double epoch_p50 = 0.0;  // trainer.epoch_seconds percentiles
  double epoch_p95 = 0.0;
  double epoch_p99 = 0.0;
  std::string metrics_json;  // full registry export for this run
};

std::vector<amf::data::QoSSample> MakeStream(std::size_t users,
                                             std::size_t services,
                                             std::size_t count,
                                             std::uint64_t seed) {
  amf::common::Rng rng(seed);
  std::vector<amf::data::QoSSample> samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    samples.push_back({0,
                       static_cast<amf::data::UserId>(rng.Index(users)),
                       static_cast<amf::data::ServiceId>(rng.Index(services)),
                       rng.LogNormal(-0.2, 1.0), 0.0});
  }
  return samples;
}

ReplayResult MeasureReplay(const std::vector<amf::data::QoSSample>& samples,
                           std::size_t users, std::size_t services,
                           std::size_t threads, std::size_t epochs,
                           bool instrument, bool pin) {
  amf::obs::MetricsRegistry registry;  // outlives the trainer (below)
  amf::core::AmfModel model(amf::core::MakeResponseTimeConfig(7));
  model.EnsureUser(static_cast<amf::data::UserId>(users - 1));
  model.EnsureService(static_cast<amf::data::ServiceId>(services - 1));
  amf::core::TrainerConfig cfg;
  cfg.expiry_seconds = 0.0;
  cfg.validate_ingest = false;
  cfg.replay_threads = threads;
  cfg.pin_replay_threads = pin;
  cfg.metrics = instrument ? &registry : nullptr;
  amf::core::OnlineTrainer trainer(model, cfg);
  for (const auto& s : samples) trainer.Observe(s);
  trainer.ProcessIncoming();  // ingest excluded from the replay timing

  const std::size_t per_epoch = trainer.store().size();
  amf::common::Stopwatch watch;
  for (std::size_t e = 0; e < epochs; ++e) trainer.ReplayEpoch();
  ReplayResult r;
  r.threads = threads;
  r.pinned = pin;
  r.updates = per_epoch * epochs;
  r.seconds = watch.ElapsedSeconds();
  r.updates_per_sec =
      r.seconds > 0.0 ? static_cast<double>(r.updates) / r.seconds : 0.0;
  if (instrument) {
    const amf::obs::MetricsSnapshot snap = registry.Snapshot();
    if (const amf::obs::HistogramSnapshot* h =
            snap.FindHistogram("trainer.epoch_seconds")) {
      r.epoch_p50 = h->p50();
      r.epoch_p95 = h->p95();
      r.epoch_p99 = h->p99();
    }
    r.metrics_json = amf::obs::ToJson(snap);
  }
  return r;
}

/// Median-of-N wrapper: one discarded warmup run (page-faults the factor
/// arena and the store, spins the pool up), then `reps` measured runs.
/// Returns the median-throughput rep with the min/max range filled in, so
/// a single noisy repetition on a shared container cannot set the number.
ReplayResult MedianReplay(const std::vector<amf::data::QoSSample>& samples,
                          std::size_t users, std::size_t services,
                          std::size_t threads, std::size_t epochs,
                          bool instrument, bool pin, int reps) {
  MeasureReplay(samples, users, services, threads, epochs, instrument, pin);
  std::vector<ReplayResult> runs;
  runs.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    runs.push_back(MeasureReplay(samples, users, services, threads, epochs,
                                 instrument, pin));
  }
  std::sort(runs.begin(), runs.end(),
            [](const ReplayResult& a, const ReplayResult& b) {
              return a.updates_per_sec < b.updates_per_sec;
            });
  ReplayResult median = runs[runs.size() / 2];
  median.updates_per_sec_min = runs.front().updates_per_sec;
  median.updates_per_sec_max = runs.back().updates_per_sec;
  return median;
}

struct PredictResult {
  std::size_t rank = 0;
  std::size_t users = 0;
  std::size_t services = 0;
  double shared_entries_per_sec = 0.0;  // block-validated seqlock path
  double shared_min = 0.0;
  double shared_max = 0.0;
  double plain_entries_per_sec = 0.0;  // unguarded PredictMatrixRaw
  double plain_min = 0.0;
  double plain_max = 0.0;
};

/// Matrix-scoring throughput over the arena layout at rank 10 (the
/// paper's headline configuration): the shared path is what a live
/// serving tier runs concurrently with training (block-batched seqlock
/// validation + strided GEMV), the plain path is the quiesced batch
/// readout. Median-of-`reps` after one warmup pass each.
PredictResult MeasurePredict(std::size_t users, std::size_t services,
                             int reps) {
  amf::core::AmfConfig cfg = amf::core::MakeResponseTimeConfig(11);
  cfg.rank = 10;
  amf::core::AmfModel model(cfg);
  model.EnsureUser(static_cast<amf::data::UserId>(users - 1));
  model.EnsureService(static_cast<amf::data::ServiceId>(services - 1));

  PredictResult r;
  r.rank = cfg.rank;
  r.users = users;
  r.services = services;
  const double entries = static_cast<double>(users * services);

  const auto median_rate = [&](auto&& one_pass, double& lo, double& hi) {
    one_pass();  // warmup
    std::vector<double> rates;
    rates.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i) {
      amf::common::Stopwatch watch;
      one_pass();
      const double s = watch.ElapsedSeconds();
      rates.push_back(s > 0.0 ? entries / s : 0.0);
    }
    std::sort(rates.begin(), rates.end());
    lo = rates.front();
    hi = rates.back();
    return rates[rates.size() / 2];
  };

  std::vector<double> row(services);
  r.shared_entries_per_sec = median_rate(
      [&] {
        for (std::size_t u = 0; u < users; ++u) {
          model.PredictRowRawShared(static_cast<amf::data::UserId>(u), row);
        }
      },
      r.shared_min, r.shared_max);

  amf::linalg::Matrix out;
  r.plain_entries_per_sec = median_rate(
      [&] { model.PredictMatrixRaw(&out, nullptr); }, r.plain_min,
      r.plain_max);
  return r;
}

/// Runtime re-check of the arena invariants the predict numbers assume.
bool FactorRowsAligned(const amf::core::AmfModel& model) {
  for (std::size_t u = 0; u < model.num_users(); ++u) {
    if (!amf::common::IsAligned(
            model.UserFactors(static_cast<amf::data::UserId>(u)).data(),
            amf::core::AmfModel::kFactorRowAlignment)) {
      return false;
    }
  }
  for (std::size_t s = 0; s < model.num_services(); ++s) {
    if (!amf::common::IsAligned(
            model.ServiceFactors(static_cast<amf::data::ServiceId>(s)).data(),
            amf::core::AmfModel::kFactorRowAlignment)) {
      return false;
    }
  }
  return true;
}

struct JournalIngestResult {
  std::string mode;  // "off", "os", "interval", "always"
  double obs_per_sec = 0.0;
  double obs_per_sec_min = 0.0;
  double obs_per_sec_max = 0.0;
};

/// Write-ahead-journal overhead on the serial ingest path: the same
/// observation stream reported through QoSPredictionService with the
/// journal off vs each fsync policy. Only the accept-and-buffer path is
/// timed (no Tick inside the window), so the number isolates exactly the
/// frame/CRC/write/fsync cost the WAL adds per accepted observation.
JournalIngestResult MeasureJournalIngest(
    const std::vector<amf::data::QoSSample>& samples, std::size_t users,
    std::size_t services, const char* mode, int reps) {
  namespace fs = std::filesystem;
  const std::string dir = "amf_bench_wal";
  const auto one_pass = [&]() {
    amf::adapt::PredictionServiceConfig cfg{
        amf::core::MakeResponseTimeConfig(7), amf::core::TrainerConfig{}, 0};
    amf::adapt::QoSPredictionService svc(cfg);
    svc.EnsureRegistered(static_cast<amf::data::UserId>(users - 1),
                         static_cast<amf::data::ServiceId>(services - 1));
    if (std::strcmp(mode, "off") != 0) {
      fs::remove_all(dir);
      amf::stream::JournalConfig wal;
      wal.directory = dir;
      wal.fsync_policy = *amf::stream::ParseFsyncPolicy(mode);
      svc.EnableJournal(wal);
    }
    amf::common::Stopwatch watch;
    for (const auto& s : samples) svc.ReportObservationTrusted(s);
    return watch.ElapsedSeconds();
  };

  one_pass();  // warmup
  std::vector<double> rates;
  rates.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const double s = one_pass();
    rates.push_back(s > 0.0 ? static_cast<double>(samples.size()) / s : 0.0);
  }
  fs::remove_all(dir);
  std::sort(rates.begin(), rates.end());
  JournalIngestResult r;
  r.mode = mode;
  r.obs_per_sec = rates[rates.size() / 2];
  r.obs_per_sec_min = rates.front();
  r.obs_per_sec_max = rates.back();
  return r;
}

double MeasureRingThroughput(std::size_t items) {
  amf::common::MpscRingBuffer<amf::data::QoSSample> ring(65536);
  const amf::data::QoSSample sample{0, 1, 2, 0.5, 0.0};
  std::size_t consumed = 0;
  amf::common::Stopwatch watch;
  std::thread consumer([&] {
    amf::data::QoSSample out;
    while (consumed < items) {
      if (ring.TryPop(out)) {
        ++consumed;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::size_t pushed = 0;
  while (pushed < items) {
    if (ring.TryPush(sample)) {
      ++pushed;
    } else {
      std::this_thread::yield();
    }
  }
  consumer.join();
  const double s = watch.ElapsedSeconds();
  return s > 0.0 ? static_cast<double>(items) / s : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_train_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  // Quick mode still needs epochs big enough (several ms) that the
  // sharded pass's fan-out/barrier overhead cannot mask real scaling —
  // CI asserts the 2-thread floor on this workload.
  const std::size_t users = quick ? 100 : 200;
  const std::size_t services = quick ? 600 : 2000;
  const std::size_t stream = quick ? 30000 : 50000;
  const std::size_t epochs = quick ? 3 : 5;
  const std::size_t ring_items = quick ? 200000 : 2000000;
  const int reps = quick ? 3 : 5;
  const unsigned hw = std::thread::hardware_concurrency();

  const std::vector<amf::data::QoSSample> samples =
      MakeStream(users, services, stream, 42);

  // Instrumentation overhead: same 1-thread workload, metrics off vs on,
  // median-of-reps each (warmup discarded inside MedianReplay).
  const ReplayResult plain =
      MedianReplay(samples, users, services, 1, epochs,
                   /*instrument=*/false, /*pin=*/false, reps);
  std::fprintf(stderr,
               "uninstrumented 1-thread: %.0f updates/s "
               "(min %.0f, max %.0f over %d reps)\n",
               plain.updates_per_sec, plain.updates_per_sec_min,
               plain.updates_per_sec_max, reps);

  std::vector<ReplayResult> results;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    // Pin replay workers whenever the host has a core per worker — the
    // layout pass exists to keep shard rows cache-resident, and pinning
    // removes migration from the measurement. Never pin an oversubscribed
    // configuration (it would serialize on the stacked cores).
    const bool pin = hw >= threads && threads > 1;
    results.push_back(MedianReplay(samples, users, services, threads, epochs,
                                   /*instrument=*/true, pin, reps));
    const ReplayResult& r = results.back();
    const bool valid = hw >= threads;
    if (valid && results.front().updates_per_sec > 0.0) {
      std::fprintf(stderr,
                   "replay threads=%zu%s: %.0f updates/s (%zu in %.3fs, "
                   "speedup %.2fx, epoch p50=%.4fs p99=%.4fs)\n",
                   r.threads, r.pinned ? " (pinned)" : "", r.updates_per_sec,
                   r.updates, r.seconds,
                   r.updates_per_sec / results.front().updates_per_sec,
                   r.epoch_p50, r.epoch_p99);
    } else {
      std::fprintf(stderr,
                   "replay threads=%zu: %.0f updates/s — SPEEDUP NOT VALID "
                   "(host has %u hardware threads; configurations wider "
                   "than the host time-slice and prove nothing)\n",
                   r.threads, r.updates_per_sec, hw);
    }
  }

  const PredictResult predict =
      MeasurePredict(quick ? 60 : 142, quick ? 300 : 4500, reps);
  std::fprintf(stderr,
               "predict matrix rank=%zu (%zux%zu): shared %.1fM entries/s, "
               "plain %.1fM entries/s\n",
               predict.rank, predict.users, predict.services,
               predict.shared_entries_per_sec / 1e6,
               predict.plain_entries_per_sec / 1e6);

  const double ring_rate = MeasureRingThroughput(ring_items);
  std::fprintf(stderr, "mpsc ring: %.0f items/s\n", ring_rate);

  // WAL overhead: ingest with the journal off vs each fsync policy.
  const std::size_t wal_stream = quick ? 4000 : 20000;
  std::vector<amf::data::QoSSample> wal_samples =
      MakeStream(users, services, wal_stream, 43);
  for (std::size_t i = 0; i < wal_samples.size(); ++i) {
    wal_samples[i].timestamp = 0.001 * static_cast<double>(i);
  }
  std::vector<JournalIngestResult> wal_results;
  for (const char* mode : {"off", "os", "interval", "always"}) {
    wal_results.push_back(
        MeasureJournalIngest(wal_samples, users, services, mode, reps));
    const JournalIngestResult& r = wal_results.back();
    std::fprintf(stderr,
                 "journal ingest fsync=%s: %.0f obs/s (min %.0f, max %.0f)\n",
                 r.mode.c_str(), r.obs_per_sec, r.obs_per_sec_min,
                 r.obs_per_sec_max);
  }

  // Alignment invariants the numbers above rely on.
  amf::core::AmfConfig probe_cfg = amf::core::MakeResponseTimeConfig(3);
  probe_cfg.rank = 10;
  amf::core::AmfModel probe(probe_cfg);
  probe.EnsureUser(static_cast<amf::data::UserId>(users - 1));
  probe.EnsureService(static_cast<amf::data::ServiceId>(services - 1));
  const bool rows_aligned = FactorRowsAligned(probe);

  const double base = results.front().updates_per_sec;
  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"train_throughput\",\n");
  std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n", hw);
  std::fprintf(out, "  \"speedup_valid\": %s,\n",
               hw >= 2 ? "true" : "false");
  std::fprintf(out, "  \"users\": %zu,\n", users);
  std::fprintf(out, "  \"services\": %zu,\n", services);
  std::fprintf(out, "  \"stream_samples\": %zu,\n", stream);
  std::fprintf(out, "  \"replay_epochs\": %zu,\n", epochs);
  std::fprintf(out,
               "  \"measurement\": {\"reps\": %d, \"warmup_runs\": 1, "
               "\"aggregate\": \"median\"},\n",
               reps);
  std::fprintf(out,
               "  \"alignment\": {\"factor_rows_64b_aligned\": %s, "
               "\"row_alignment_bytes\": %zu, "
               "\"factor_row_stride_doubles\": %zu},\n",
               rows_aligned ? "true" : "false",
               amf::core::AmfModel::kFactorRowAlignment,
               probe.factor_row_stride());
  std::fprintf(out, "  \"replay\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ReplayResult& r = results[i];
    const bool valid = hw >= r.threads;
    char speedup[32];
    if (valid && base > 0.0) {
      std::snprintf(speedup, sizeof(speedup), "%.3f",
                    r.updates_per_sec / base);
    } else {
      // A thread count the host cannot actually run in parallel produces
      // a time-slicing artifact, not a speedup; refuse to report one.
      std::snprintf(speedup, sizeof(speedup), "null");
    }
    std::fprintf(out,
                 "    {\"threads\": %zu, \"pinned\": %s, \"updates\": %zu, "
                 "\"seconds\": %.6f, \"updates_per_sec\": %.1f, "
                 "\"updates_per_sec_min\": %.1f, "
                 "\"updates_per_sec_max\": %.1f, "
                 "\"speedup_valid\": %s, "
                 "\"speedup_vs_1_thread\": %s, "
                 "\"epoch_seconds_p50\": %.6f, "
                 "\"epoch_seconds_p95\": %.6f, "
                 "\"epoch_seconds_p99\": %.6f}%s\n",
                 r.threads, r.pinned ? "true" : "false", r.updates,
                 r.seconds, r.updates_per_sec, r.updates_per_sec_min,
                 r.updates_per_sec_max, valid ? "true" : "false", speedup,
                 r.epoch_p50, r.epoch_p95, r.epoch_p99,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"predict\": {\n");
  std::fprintf(out, "    \"rank\": %zu,\n", predict.rank);
  std::fprintf(out, "    \"users\": %zu,\n", predict.users);
  std::fprintf(out, "    \"services\": %zu,\n", predict.services);
  std::fprintf(out,
               "    \"matrix_shared_entries_per_sec\": %.1f,\n"
               "    \"matrix_shared_entries_per_sec_min\": %.1f,\n"
               "    \"matrix_shared_entries_per_sec_max\": %.1f,\n",
               predict.shared_entries_per_sec, predict.shared_min,
               predict.shared_max);
  std::fprintf(out,
               "    \"matrix_entries_per_sec\": %.1f,\n"
               "    \"matrix_entries_per_sec_min\": %.1f,\n"
               "    \"matrix_entries_per_sec_max\": %.1f\n",
               predict.plain_entries_per_sec, predict.plain_min,
               predict.plain_max);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"instrumentation_overhead\": {\n");
  std::fprintf(out, "    \"reps\": %d,\n", reps);
  std::fprintf(out, "    \"uninstrumented_updates_per_sec\": %.1f,\n",
               plain.updates_per_sec);
  std::fprintf(out,
               "    \"uninstrumented_updates_per_sec_min\": %.1f,\n"
               "    \"uninstrumented_updates_per_sec_max\": %.1f,\n",
               plain.updates_per_sec_min, plain.updates_per_sec_max);
  std::fprintf(out, "    \"instrumented_updates_per_sec\": %.1f,\n", base);
  std::fprintf(out,
               "    \"instrumented_updates_per_sec_min\": %.1f,\n"
               "    \"instrumented_updates_per_sec_max\": %.1f,\n",
               results.front().updates_per_sec_min,
               results.front().updates_per_sec_max);
  std::fprintf(out, "    \"overhead_pct\": %.2f,\n",
               plain.updates_per_sec > 0.0
                   ? 100.0 * (plain.updates_per_sec - base) /
                         plain.updates_per_sec
                   : 0.0);
  // Worst-case disagreement across the two rep distributions, so the
  // reader can judge whether the point estimate is distinguishable from
  // the run-to-run jitter on this host.
  std::fprintf(out, "    \"overhead_pct_spread\": [%.2f, %.2f]\n",
               plain.updates_per_sec_max > 0.0
                   ? 100.0 * (plain.updates_per_sec_min -
                              results.front().updates_per_sec_max) /
                         plain.updates_per_sec_max
                   : 0.0,
               plain.updates_per_sec_min > 0.0
                   ? 100.0 * (plain.updates_per_sec_max -
                              results.front().updates_per_sec_min) /
                         plain.updates_per_sec_min
                   : 0.0);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"metrics\": %s,\n", results.back().metrics_json.c_str());
  std::fprintf(out, "  \"mpsc_ring_items_per_sec\": %.1f,\n", ring_rate);
  std::fprintf(out, "  \"journal_ingest\": {\n");
  std::fprintf(out, "    \"samples\": %zu,\n", wal_stream);
  std::fprintf(out, "    \"reps\": %d,\n", reps);
  std::fprintf(out, "    \"fsync_interval_ms\": 50,\n");
  std::fprintf(out, "    \"modes\": [\n");
  for (std::size_t i = 0; i < wal_results.size(); ++i) {
    const JournalIngestResult& r = wal_results[i];
    std::fprintf(out,
                 "      {\"mode\": \"%s\", \"obs_per_sec\": %.1f, "
                 "\"obs_per_sec_min\": %.1f, \"obs_per_sec_max\": %.1f}%s\n",
                 r.mode.c_str(), r.obs_per_sec, r.obs_per_sec_min,
                 r.obs_per_sec_max, i + 1 < wal_results.size() ? "," : "");
  }
  std::fprintf(out, "    ]\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out,
               "  \"note\": \"medians over reps after one warmup; "
               "speedup_vs_1_thread is null for thread counts wider than "
               "hardware_concurrency (time-slicing one core proves "
               "nothing); see DESIGN.md section 11 for the arena layout "
               "these numbers measure\"\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}
